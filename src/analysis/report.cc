#include "analysis/report.hh"

#include <ostream>

namespace gllc
{

void
writeSweepCsv(const PolicySweep &sweep, std::ostream &os)
{
    os << "app,frame,policy,accesses,hits,misses,writebacks,"
       << "tex_hit_rate,rt_hit_rate,z_hit_rate,"
       << "rt_productions,rt_consumptions,"
       << "inter_tex_hits,intra_tex_hits\n";
    for (const SweepCell &cell : sweep.cells()) {
        const LlcStats &s = cell.result.stats;
        const Characterization &ch = cell.result.characterization;
        os << cell.app << ',' << cell.frameIndex << ',' << cell.policy
           << ',' << s.totalAccesses() << ',' << s.totalHits() << ','
           << s.totalMisses() << ',' << s.writebacks << ','
           << s.hitRate(StreamType::Texture) << ','
           << s.hitRate(StreamType::RenderTarget) << ','
           << s.hitRate(StreamType::Z) << ',' << ch.rtProductions
           << ',' << ch.rtConsumptions << ',' << ch.interTexHits
           << ',' << ch.intraTexHits << '\n';
    }
}

} // namespace gllc
