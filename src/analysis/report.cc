#include "analysis/report.hh"

#include <ostream>

namespace gllc
{

namespace
{

/** Quote a CSV field that may hold commas or quotes (errors). */
std::string
csvQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

/** Registry names are plain ASCII, but stay valid JSON regardless. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void
writeSweepCsv(const SweepResult &result, std::ostream &os)
{
    os << "app,frame,policy,status,attempts,accesses,hits,misses,"
       << "writebacks,tex_hit_rate,rt_hit_rate,z_hit_rate,"
       << "rt_productions,rt_consumptions,"
       << "inter_tex_hits,intra_tex_hits,error\n";
    for (const SweepCell &cell : result.cells()) {
        const LlcStats &s = cell.result.stats;
        const Characterization &ch = cell.result.characterization;
        os << cell.key.app << ',' << cell.key.frameIndex << ','
           << cell.key.policy
           << ",ok," << cell.attempts << ',' << s.totalAccesses()
           << ',' << s.totalHits() << ',' << s.totalMisses() << ','
           << s.writebacks << ',' << s.hitRate(StreamType::Texture)
           << ',' << s.hitRate(StreamType::RenderTarget) << ','
           << s.hitRate(StreamType::Z) << ',' << ch.rtProductions
           << ',' << ch.rtConsumptions << ',' << ch.interTexHits
           << ',' << ch.intraTexHits << ",\n";
    }
    // Quarantined cells ride in the same table (a downstream
    // join on app/frame/policy must see the hole, not infer it):
    // stats columns stay empty, the error says why.
    for (const QuarantinedCell &q : result.quarantined()) {
        os << q.key.app << ',' << q.key.frameIndex << ','
           << q.key.policy
           << ",quarantined," << q.attempts << ",,,,,,,,,,,,"
           << csvQuote(q.error) << '\n';
    }
}

void
writeSweepJson(const SweepResult &result, std::ostream &os)
{
    const LlcConfig &llc = result.llcConfig();
    os << "{\n"
       << "  \"scale\": " << result.scale().linear << ",\n"
       << "  \"llc\": {\"capacity_bytes\": " << llc.capacityBytes
       << ", \"ways\": " << llc.ways << ", \"banks\": " << llc.banks
       << "},\n"
       << "  \"policies\": [";
    for (std::size_t i = 0; i < result.policies().size(); ++i) {
        os << (i ? ", " : "") << '"'
           << jsonEscape(result.policies()[i]) << '"';
    }
    os << "],\n  \"cells\": [\n";
    for (std::size_t i = 0; i < result.cells().size(); ++i) {
        const SweepCell &cell = result.cells()[i];
        const LlcStats &s = cell.result.stats;
        const Characterization &ch = cell.result.characterization;
        os << "    {\"app\": \"" << jsonEscape(cell.key.app)
           << "\", \"frame\": " << cell.key.frameIndex
           << ", \"policy\": \"" << jsonEscape(cell.key.policy)
           << "\", \"accesses\": " << s.totalAccesses()
           << ", \"hits\": " << s.totalHits()
           << ", \"misses\": " << s.totalMisses()
           << ", \"writebacks\": " << s.writebacks
           << ", \"tex_hit_rate\": " << s.hitRate(StreamType::Texture)
           << ", \"rt_hit_rate\": "
           << s.hitRate(StreamType::RenderTarget)
           << ", \"z_hit_rate\": " << s.hitRate(StreamType::Z)
           << ", \"rt_productions\": " << ch.rtProductions
           << ", \"rt_consumptions\": " << ch.rtConsumptions
           << ", \"inter_tex_hits\": " << ch.interTexHits
           << ", \"intra_tex_hits\": " << ch.intraTexHits
           << ", \"attempts\": " << cell.attempts << "}"
           << (i + 1 < result.cells().size() ? "," : "") << '\n';
    }
    os << "  ],\n  \"quarantined\": [";
    for (std::size_t i = 0; i < result.quarantined().size(); ++i) {
        const QuarantinedCell &q = result.quarantined()[i];
        os << (i ? ",\n    " : "\n    ") << "{\"app\": \""
           << jsonEscape(q.key.app)
           << "\", \"frame\": " << q.key.frameIndex
           << ", \"policy\": \"" << jsonEscape(q.key.policy)
           << "\", \"attempts\": " << q.attempts
           << ", \"error\": \"" << jsonEscape(q.error) << "\"}";
    }
    os << (result.quarantined().empty() ? "]\n}\n" : "\n  ]\n}\n");
}

void
SweepResult::writeCsv(std::ostream &os) const
{
    writeSweepCsv(*this, os);
}

void
SweepResult::writeJson(std::ostream &os) const
{
    writeSweepJson(*this, os);
}

} // namespace gllc
