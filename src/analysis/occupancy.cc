#include "analysis/occupancy.hh"

#include <unordered_map>

#include "cache/policy/belady.hh"
#include "common/logging.hh"

namespace gllc
{

namespace
{

/** Observer maintaining per-stream resident block counts. */
class OccupancyObserver : public LlcObserver
{
  public:
    void
    onMiss(const MemAccess &access) override
    {
        // The cache will fill this block.
        setOwner(blockNumber(access.addr), access.stream);
    }

    void
    onHit(const MemAccess &access) override
    {
        // Ownership follows use: a texture hit to a render target
        // re-attributes the block (dynamic texturing).
        setOwner(blockNumber(access.addr), access.stream);
    }

    void
    onEvict(Addr block_addr) override
    {
        const auto it = owner_.find(blockNumber(block_addr));
        if (it != owner_.end()) {
            --counts_[static_cast<std::size_t>(it->second)];
            owner_.erase(it);
        }
    }

    const std::array<std::uint32_t, kNumStreams> &
    counts() const
    {
        return counts_;
    }

  private:
    void
    setOwner(Addr block, StreamType stream)
    {
        const auto it = owner_.find(block);
        if (it != owner_.end()) {
            if (it->second == stream)
                return;
            --counts_[static_cast<std::size_t>(it->second)];
            it->second = stream;
        } else {
            owner_.emplace(block, stream);
        }
        ++counts_[static_cast<std::size_t>(stream)];
    }

    std::unordered_map<Addr, StreamType> owner_;
    std::array<std::uint32_t, kNumStreams> counts_{};
};

} // namespace

std::vector<OccupancySample>
trackOccupancy(const FrameTrace &trace, const PolicySpec &spec,
               const LlcConfig &llc_config,
               std::uint32_t sample_count)
{
    GLLC_ASSERT(sample_count >= 1);

    LlcConfig config = llc_config;
    if (spec.uncachedDisplay)
        config.uncachedDisplay = true;
    BankedLlc llc(config, spec.factory);

    OccupancyObserver observer;
    llc.setObserver(&observer);

    std::vector<std::uint64_t> oracle;
    if (spec.needsOracle)
        oracle = buildNextUseOracle(trace.accesses);

    const std::uint64_t period = std::max<std::uint64_t>(
        1, trace.accesses.size() / sample_count);

    std::vector<OccupancySample> samples;
    for (std::size_t i = 0; i < trace.accesses.size(); ++i) {
        llc.access(trace.accesses[i], i,
                   spec.needsOracle ? oracle[i] : kNever);
        const bool last = (i + 1 == trace.accesses.size());
        if (((i + 1) % period == 0 && samples.size() + 1 < sample_count)
            || last) {
            OccupancySample s;
            s.accessIndex = i + 1;
            s.blocks = observer.counts();
            samples.push_back(s);
        }
    }
    return samples;
}

} // namespace gllc
