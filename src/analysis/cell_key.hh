/**
 * @file
 * The typed identity of one sweep cell.
 *
 * Every layer that names a (frame, policy) replay — the sweep
 * engine, the checkpoint journal, the service result store, the
 * CSV/JSON reports — used to carry the three coordinates as loose
 * fields or ad-hoc "app\x1fframe\x1fpolicy" strings.  CellKey is the
 * one shared value type: comparable, hashable, and ordered the way
 * the paper orders its tables (applications in Table-1 order, frames
 * ascending within an application, policies lexicographic within a
 * frame), so a container keyed by CellKey iterates in report order
 * for free.
 */

#ifndef GLLC_ANALYSIS_CELL_KEY_HH
#define GLLC_ANALYSIS_CELL_KEY_HH

#include <cstdint>
#include <string>

namespace gllc
{

/** (application, frame, policy) coordinates of one sweep cell. */
struct CellKey
{
    std::string app;
    std::uint32_t frameIndex = 0;
    std::string policy;

    bool
    operator==(const CellKey &other) const
    {
        return frameIndex == other.frameIndex && app == other.app
            && policy == other.policy;
    }
    bool operator!=(const CellKey &other) const
    {
        return !(*this == other);
    }

    /** "app frame N policy" for logs and error messages. */
    std::string toString() const;

    /** Stable 64-bit content hash (fnv1a64 over the coordinates). */
    std::uint64_t hash() const;
};

/**
 * Table-1 ordering: applications in paperApps() order (names the
 * paper does not know sort after them, lexicographically), then
 * frame index, then policy name.  This is the iteration order of the
 * checkpoint map and the deterministic merge order of the sweep.
 */
bool operator<(const CellKey &a, const CellKey &b);

/**
 * Rank of @p app in the paper's Table 1 (paperApps() index), or a
 * rank past every known application for foreign names.
 */
std::size_t appTableRank(const std::string &app);

} // namespace gllc

#endif // GLLC_ANALYSIS_CELL_KEY_HH
