#include "analysis/characterizer.hh"

#include "common/logging.hh"
#include "common/stats.hh"

namespace gllc
{

double
Characterization::texDeathRatio(unsigned k) const
{
    GLLC_ASSERT(k + 1 < kEpochs);
    if (texReach[k] == 0)
        return 0.0;
    return 1.0
        - static_cast<double>(texReach[k + 1])
            / static_cast<double>(texReach[k]);
}

double
Characterization::zDeathRatio(unsigned k) const
{
    GLLC_ASSERT(k + 1 < kEpochs);
    if (zReach[k] == 0)
        return 0.0;
    return 1.0
        - static_cast<double>(zReach[k + 1])
            / static_cast<double>(zReach[k]);
}

double
Characterization::rtConsumptionRate() const
{
    return safeRatio(static_cast<double>(rtConsumptions),
                     static_cast<double>(rtProductions));
}

void
Characterization::merge(const Characterization &other)
{
    interTexHits += other.interTexHits;
    intraTexHits += other.intraTexHits;
    rtProductions += other.rtProductions;
    rtConsumptions += other.rtConsumptions;
    for (unsigned k = 0; k < kEpochs; ++k) {
        texEpochHits[k] += other.texEpochHits[k];
        texReach[k] += other.texReach[k];
        zReach[k] += other.zReach[k];
    }
}

void
Characterizer::startTexLifetime(BlockMeta &meta)
{
    meta.kind = Kind::Texture;
    meta.hits = 0;
    ++stats_.texReach[0];
}

void
Characterizer::startZLifetime(BlockMeta &meta)
{
    meta.kind = Kind::Z;
    meta.hits = 0;
    ++stats_.zReach[0];
}

void
Characterizer::bindFrames(std::size_t frames)
{
    frameMeta_.assign(frames, BlockMeta{});
}

void
Characterizer::installInto(BlockMeta &meta, const MemAccess &access)
{
    meta = BlockMeta{};
    switch (policyStream(access.stream)) {
      case PolicyStream::Texture:
        startTexLifetime(meta);
        break;
      case PolicyStream::Z:
        startZLifetime(meta);
        break;
      case PolicyStream::RenderTarget:
        meta.rtBit = true;
        ++stats_.rtProductions;
        break;
      default:
        break;
    }
}

void
Characterizer::onMiss(const MemAccess &access)
{
    // The cache always fills on a (non-bypassed) miss.
    installInto(meta_[blockNumber(access.addr)], access);
}

void
Characterizer::onHit(const MemAccess &access)
{
    hitBlock(meta_[blockNumber(access.addr)],
             policyStream(access.stream));
}

void
Characterizer::hitBlock(BlockMeta &meta, PolicyStream ps)
{
    if (ps == PolicyStream::Texture) {
        if (meta.rtBit) {
            // Inter-stream reuse: render target consumed as texture.
            ++stats_.interTexHits;
            ++stats_.rtConsumptions;
            meta.rtBit = false;
            startTexLifetime(meta);
            return;
        }
        if (meta.kind != Kind::Texture) {
            // A texture hit to a block brought in by another stream
            // (rare aliasing): treat as the start of a texture
            // lifetime that immediately enjoys its E0 hit.
            startTexLifetime(meta);
        }
        const unsigned epoch = std::min<unsigned>(
            meta.hits, Characterization::kEpochs - 1);
        ++stats_.texEpochHits[epoch];
        ++stats_.intraTexHits;
        if (meta.hits + 1u < Characterization::kEpochs)
            ++stats_.texReach[meta.hits + 1];
        if (meta.hits < 0xff)
            ++meta.hits;
        return;
    }

    if (ps == PolicyStream::RenderTarget) {
        if (!meta.rtBit) {
            // The application reuses the surface as a render target
            // again: a fresh production.
            meta.rtBit = true;
            ++stats_.rtProductions;
        }
        // Blending hits do not advance texture/Z epochs; the block
        // stops being a texture/Z block.
        meta.kind = Kind::None;
        meta.hits = 0;
        return;
    }

    if (ps == PolicyStream::Z) {
        if (meta.kind != Kind::Z)
            startZLifetime(meta);
        if (meta.hits + 1u < Characterization::kEpochs)
            ++stats_.zReach[meta.hits + 1];
        if (meta.hits < 0xff)
            ++meta.hits;
        return;
    }
}

void
Characterizer::onEvict(Addr block_addr)
{
    meta_.erase(blockNumber(block_addr));
}

} // namespace gllc
