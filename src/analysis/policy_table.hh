/**
 * @file
 * Named registry of every evaluated LLC policy (Table 6 and more).
 *
 * Benchmarks and examples refer to policies by the names the paper
 * uses; a "+UCD" suffix selects the uncached-displayable-color
 * configuration of the same policy.
 */

#ifndef GLLC_ANALYSIS_POLICY_TABLE_HH
#define GLLC_ANALYSIS_POLICY_TABLE_HH

#include <string>
#include <vector>

#include "cache/replacement.hh"

namespace gllc
{

/** Everything needed to instantiate one evaluated policy. */
struct PolicySpec
{
    std::string name;

    /** Creates one per-bank ReplacementPolicy instance. */
    PolicyFactory factory;

    /** Requires the Belady next-use oracle. */
    bool needsOracle = false;

    /** Display stream bypasses the LLC (UCD). */
    bool uncachedDisplay = false;
};

/**
 * Look up a policy by name.  Recognized base names: NRU, LRU,
 * Random, SRRIP, DRRIP, DRRIP-4, GS-DRRIP, GS-DRRIP-4, SHiP-mem,
 * Belady, GSPZTC, GSPZTC+TSE, GSPC, and GSPZTC(t=N) for threshold
 * sweeps.  Any name may carry a "+UCD" suffix.  Unknown names are
 * fatal.
 */
PolicySpec policySpec(const std::string &name);

/** All registered base policy names (no UCD variants). */
std::vector<std::string> allPolicyNames();

} // namespace gllc

#endif // GLLC_ANALYSIS_POLICY_TABLE_HH
