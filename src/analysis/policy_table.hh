/**
 * @file
 * Named registry of every evaluated LLC policy (Table 6 and more).
 *
 * Benchmarks and examples refer to policies by the names the paper
 * uses; a "+UCD" suffix selects the uncached-displayable-color
 * configuration of the same policy.
 */

#ifndef GLLC_ANALYSIS_POLICY_TABLE_HH
#define GLLC_ANALYSIS_POLICY_TABLE_HH

#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/result.hh"

namespace gllc
{

/** Everything needed to instantiate one evaluated policy. */
struct PolicySpec
{
    std::string name;

    /**
     * Machine-readable identity: the registry base name ("GSPZTC"
     * for "GSPZTC(t=4)+UCD") and the explicit threshold parameter
     * (0 when the name carries none), so harnesses never have to
     * parse the display name.
     */
    std::string baseName;
    unsigned threshold = 0;

    /** Creates one per-bank ReplacementPolicy instance. */
    PolicyFactory factory;

    /** Requires the Belady next-use oracle. */
    bool needsOracle = false;

    /** Display stream bypasses the LLC (UCD). */
    bool uncachedDisplay = false;
};

/**
 * Look up a policy by name.  Recognized base names: NRU, LRU,
 * Random, SRRIP, DRRIP, DRRIP-4, GS-DRRIP, GS-DRRIP-4, SHiP-mem,
 * Belady, GSPZTC, GSPZTC+TSE, GSPC, and GSPZTC(t=N) for threshold
 * sweeps.  Any name may carry a "+UCD" suffix.  Unknown names are
 * fatal.
 */
PolicySpec policySpec(const std::string &name);

/**
 * Non-fatal lookup: InvalidArgument for unknown names.  The sweep
 * service validates client-submitted job specs through this so a bad
 * request is rejected instead of killing the daemon.
 */
[[nodiscard]] Result<PolicySpec>
tryPolicySpec(const std::string &name);

/** All registered base policy names (no UCD variants). */
std::vector<std::string> allPolicyNames();

/**
 * Every evaluated policy variant: each base name, its "+UCD"
 * configuration, and the GSPZTC(t=N) threshold-sweep points (with
 * and without UCD), as full PolicySpec values whose baseName /
 * threshold / uncachedDisplay metadata identify the variant.
 */
std::vector<PolicySpec> allPolicySpecs();

/** The threshold-sweep points enumerated by allPolicySpecs(). */
const std::vector<unsigned> &gspztcSweepThresholds();

} // namespace gllc

#endif // GLLC_ANALYSIS_POLICY_TABLE_HH
