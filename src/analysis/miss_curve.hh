/**
 * @file
 * Mattson-style LRU miss-ratio curves.
 *
 * A fully associative LRU cache of capacity C misses exactly the
 * accesses whose stack distance is >= C (plus the cold misses), so
 * one stack-distance pass yields the entire miss-ratio curve
 * [Mattson+, 1970 — the paper's reference for Belady/stack
 * analysis].  Used to place the paper's 8/16 MB design points on
 * each workload's curve (examples/miss_curves).
 */

#ifndef GLLC_ANALYSIS_MISS_CURVE_HH
#define GLLC_ANALYSIS_MISS_CURVE_HH

#include <cstdint>
#include <vector>

#include "analysis/reuse_distance.hh"

namespace gllc
{

/** One point of a miss-ratio curve. */
struct MissCurvePoint
{
    /** Cache capacity in 64 B blocks. */
    std::uint64_t blocks = 0;

    /** LRU miss ratio at that capacity (including cold misses). */
    double missRatio = 0.0;
};

/**
 * LRU miss-ratio curve of @p trace at power-of-two capacities from
 * @p min_blocks to @p max_blocks (fully associative idealization).
 */
std::vector<MissCurvePoint>
lruMissCurve(const std::vector<MemAccess> &trace,
             std::uint64_t min_blocks, std::uint64_t max_blocks);

/** LRU miss ratio of a precomputed unified histogram at capacity. */
double lruMissRatioAt(const ReuseDistanceHistogram &unified,
                      std::uint64_t capacity_blocks);

/** Merge the per-stream histograms into one unified histogram. */
ReuseDistanceHistogram
unifyHistograms(const StreamReuseDistances &per_stream);

} // namespace gllc

#endif // GLLC_ANALYSIS_MISS_CURVE_HH
