/**
 * @file
 * Offline LLC simulator: replay one frame trace through a policy.
 *
 * The paper's characterization and miss-count results come from "an
 * offline cache simulator, which ... digests the LLC load/store
 * access trace collected from the detailed simulator for each
 * frame" (Section 2).  OfflineLlcSim is that component.
 */

#ifndef GLLC_ANALYSIS_OFFLINE_SIM_HH
#define GLLC_ANALYSIS_OFFLINE_SIM_HH

#include <cstdint>
#include <vector>

#include "analysis/characterizer.hh"
#include "analysis/policy_table.hh"
#include "cache/banked_llc.hh"
#include "trace/frame_trace.hh"

namespace gllc
{

/** Result of replaying one frame under one policy. */
struct RunResult
{
    LlcStats stats;
    Characterization characterization;
    FillHistogram fills;

    /**
     * DRAM-bound traffic in trace order (only when requested): miss
     * fill reads, bypassed accesses, and dirty writebacks.  Cycle
     * stamps are inherited from the triggering access.
     */
    std::vector<MemAccess> dramTrace;
};

/** Options for a replay. */
struct RunOptions
{
    /** Collect RunResult::dramTrace (needed for timing runs). */
    bool collectDramTrace = false;

    /**
     * Force the generic (virtual-observer) access path even when the
     * specialized fast path is eligible.  The two paths are
     * bit-identical; this exists for A/B tests and as an escape
     * hatch (also reachable process-wide via GLLC_NO_FASTPATH=1).
     */
    bool forceGenericPath = false;
};

/**
 * Replay @p trace through an LLC of the given configuration managed
 * by @p spec (building the Belady oracle when the policy needs it).
 */
RunResult runTrace(const FrameTrace &trace, const PolicySpec &spec,
                   const LlcConfig &llc_config,
                   const RunOptions &options = {});

/** LLC configuration scaled from the paper's (capacity / scale^2). */
LlcConfig scaledLlcConfig(std::uint64_t full_capacity_bytes,
                          std::uint32_t pixel_scale);

} // namespace gllc

#endif // GLLC_ANALYSIS_OFFLINE_SIM_HH
