/**
 * @file
 * LLC stream-occupancy tracking.
 *
 * Section 5.1 explains GSPZTC's Z hit-rate drop by "unnecessarily
 * high LLC occupancy of some of the render target blocks".  This
 * tool makes such occupancy effects visible: it replays a trace
 * under a policy and samples, at regular intervals, how many LLC
 * blocks each stream owns (ownership = the stream that last touched
 * the block, so a consumed render target counts as texture).
 */

#ifndef GLLC_ANALYSIS_OCCUPANCY_HH
#define GLLC_ANALYSIS_OCCUPANCY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/policy_table.hh"
#include "cache/banked_llc.hh"
#include "trace/frame_trace.hh"

namespace gllc
{

/** One occupancy snapshot. */
struct OccupancySample
{
    /** Trace position the snapshot was taken at. */
    std::uint64_t accessIndex = 0;

    /** Resident blocks owned per stream. */
    std::array<std::uint32_t, kNumStreams> blocks{};

    std::uint32_t
    total() const
    {
        std::uint32_t t = 0;
        for (const auto b : blocks)
            t += b;
        return t;
    }
};

/**
 * Replay @p trace under @p spec and take @p sample_count evenly
 * spaced occupancy snapshots.
 */
std::vector<OccupancySample>
trackOccupancy(const FrameTrace &trace, const PolicySpec &spec,
               const LlcConfig &llc_config,
               std::uint32_t sample_count = 32);

} // namespace gllc

#endif // GLLC_ANALYSIS_OCCUPANCY_HH
