#include "analysis/policy_table.hh"

#include <cstdio>

#include "cache/policy/belady.hh"
#include "cache/policy/dip.hh"
#include "cache/policy/drrip.hh"
#include "cache/policy/gs_drrip.hh"
#include "cache/policy/lru.hh"
#include "cache/policy/nru.hh"
#include "cache/policy/pelifo.hh"
#include "cache/policy/random.hh"
#include "cache/policy/ship_mem.hh"
#include "cache/policy/srrip.hh"
#include "cache/policy/ucp_stream.hh"
#include "common/logging.hh"
#include "core/gspc_family.hh"

namespace gllc
{

namespace
{

bool
stripSuffix(std::string &name, const std::string &suffix)
{
    if (name.size() >= suffix.size()
        && name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0) {
        name.erase(name.size() - suffix.size());
        return true;
    }
    return false;
}

/** Fill @p spec for a base name; false when the name is unknown. */
bool
baseSpec(const std::string &name, PolicySpec &spec)
{
    spec.name = name;
    spec.baseName = name;

    if (name == "NRU") {
        spec.factory = NruPolicy::factory();
    } else if (name == "LRU") {
        spec.factory = LruPolicy::factory();
    } else if (name == "Random") {
        spec.factory = RandomPolicy::factory();
    } else if (name == "SRRIP") {
        spec.factory = SrripPolicy::factory(2);
    } else if (name == "DRRIP") {
        spec.factory = DrripPolicy::factory(2);
    } else if (name == "DRRIP-4") {
        spec.factory = DrripPolicy::factory(4);
    } else if (name == "GS-DRRIP") {
        spec.factory = GsDrripPolicy::factory(2);
    } else if (name == "GS-DRRIP-4") {
        spec.factory = GsDrripPolicy::factory(4);
    } else if (name == "SHiP-mem") {
        spec.factory = ShipMemPolicy::factory(2);
    } else if (name == "DIP") {
        spec.factory = DipPolicy::factory();
    } else if (name == "UCP-stream") {
        spec.factory = UcpStreamPolicy::factory();
    } else if (name == "peLIFO") {
        spec.factory = PeLifoPolicy::factory();
    } else if (name == "Belady") {
        spec.factory = BeladyPolicy::factory();
        spec.needsOracle = true;
    } else if (name == "GSPZTC") {
        spec.factory = GspcFamilyPolicy::factory(GspcVariant::Gspztc);
    } else if (name == "GSPZTC+TSE") {
        spec.factory =
            GspcFamilyPolicy::factory(GspcVariant::GspztcTse);
    } else if (name == "GSPC") {
        spec.factory = GspcFamilyPolicy::factory(GspcVariant::Gspc);
    } else if (name == "GSPC+B") {
        GspcParams params;
        params.bypassDeadFills = true;
        spec.factory =
            GspcFamilyPolicy::factory(GspcVariant::Gspc, params);
    } else {
        // GSPZTC(t=N) threshold-sweep form (Figure 11).
        unsigned t = 0;
        if (std::sscanf(name.c_str(), "GSPZTC(t=%u)", &t) == 1
            && t >= 1) {
            spec.baseName = "GSPZTC";
            spec.threshold = t;
            spec.factory =
                GspcFamilyPolicy::factory(GspcVariant::Gspztc, t);
        } else {
            return false;
        }
    }
    return true;
}

} // namespace

Result<PolicySpec>
tryPolicySpec(const std::string &name)
{
    std::string base = name;
    const bool ucd = stripSuffix(base, "+UCD");
    PolicySpec spec;
    if (!baseSpec(base, spec))
        return Error::format(ErrorCode::InvalidArgument,
                             "unknown policy \"%s\"", name.c_str());
    spec.name = name;
    spec.uncachedDisplay = ucd;
    return spec;
}

PolicySpec
policySpec(const std::string &name)
{
    return tryPolicySpec(name).takeOrFatal();
}

const std::vector<unsigned> &
gspztcSweepThresholds()
{
    static const std::vector<unsigned> thresholds{2, 4, 8, 16};
    return thresholds;
}

std::vector<std::string>
allPolicyNames()
{
    return {
        "NRU", "LRU", "Random", "SRRIP", "DRRIP", "DRRIP-4",
        "GS-DRRIP", "GS-DRRIP-4", "SHiP-mem", "DIP", "UCP-stream",
        "peLIFO",
        "Belady", "GSPZTC", "GSPZTC+TSE", "GSPC", "GSPC+B",
    };
}

std::vector<PolicySpec>
allPolicySpecs()
{
    std::vector<std::string> names;
    for (const std::string &base : allPolicyNames()) {
        names.push_back(base);
        names.push_back(base + "+UCD");
    }
    for (const unsigned t : gspztcSweepThresholds()) {
        const std::string name =
            "GSPZTC(t=" + std::to_string(t) + ")";
        names.push_back(name);
        names.push_back(name + "+UCD");
    }

    std::vector<PolicySpec> specs;
    specs.reserve(names.size());
    for (const std::string &name : names)
        specs.push_back(policySpec(name));
    return specs;
}

} // namespace gllc
