/**
 * @file
 * Exact LRU stack-distance (reuse-distance) measurement.
 *
 * The characterization of Section 2 is epoch-based; reuse distances
 * are the complementary view: how many *distinct* blocks separate an
 * access from the previous access to the same block.  Distances
 * below the cache's block capacity are capturable by LRU-like
 * policies; the far-flung graphics reuses the paper targets show up
 * as a heavy tail beyond it.  Used by examples/reuse_distances and
 * the workload validation tests.
 */

#ifndef GLLC_ANALYSIS_REUSE_DISTANCE_HH
#define GLLC_ANALYSIS_REUSE_DISTANCE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "trace/access.hh"

namespace gllc
{

/** Log2-binned histogram of reuse distances. */
struct ReuseDistanceHistogram
{
    static constexpr unsigned kBins = 32;

    /** bins[i] counts distances in [2^(i-1), 2^i), bins[0] is 0. */
    std::array<std::uint64_t, kBins> bins{};

    /** First-ever accesses (no reuse distance). */
    std::uint64_t cold = 0;

    /** Bin index for a distance. */
    static unsigned binOf(std::uint64_t distance);

    void
    record(std::uint64_t distance)
    {
        ++bins[binOf(distance)];
    }

    std::uint64_t accesses() const;

    /** Fraction of reused accesses with distance < limit blocks. */
    double fractionBelow(std::uint64_t limit_blocks) const;

    void merge(const ReuseDistanceHistogram &other);
};

/** Per-stream reuse-distance histograms over a unified stack. */
using StreamReuseDistances =
    std::array<ReuseDistanceHistogram, kNumStreams>;

/**
 * Measure exact LRU stack distances for every access of @p trace
 * over one unified stack (the LLC's view), attributing each access's
 * distance to its stream.  O(n log n) via a Fenwick tree.
 */
StreamReuseDistances
measureReuseDistances(const std::vector<MemAccess> &trace);

} // namespace gllc

#endif // GLLC_ANALYSIS_REUSE_DISTANCE_HH
