#include "analysis/miss_curve.hh"

#include "common/logging.hh"

namespace gllc
{

ReuseDistanceHistogram
unifyHistograms(const StreamReuseDistances &per_stream)
{
    ReuseDistanceHistogram unified;
    for (const auto &h : per_stream)
        unified.merge(h);
    return unified;
}

double
lruMissRatioAt(const ReuseDistanceHistogram &unified,
               std::uint64_t capacity_blocks)
{
    const std::uint64_t total = unified.accesses();
    if (total == 0)
        return 0.0;
    // Hits are the reused accesses whose distance fits the capacity;
    // everything else (cold + far reuse) misses.
    const std::uint64_t reused = total - unified.cold;
    const double hit_fraction =
        unified.fractionBelow(capacity_blocks);
    const double hits = hit_fraction * static_cast<double>(reused);
    return 1.0 - hits / static_cast<double>(total);
}

std::vector<MissCurvePoint>
lruMissCurve(const std::vector<MemAccess> &trace,
             std::uint64_t min_blocks, std::uint64_t max_blocks)
{
    GLLC_ASSERT(min_blocks >= 1 && min_blocks <= max_blocks);
    const ReuseDistanceHistogram unified =
        unifyHistograms(measureReuseDistances(trace));

    std::vector<MissCurvePoint> curve;
    for (std::uint64_t c = min_blocks; c <= max_blocks; c *= 2) {
        curve.push_back(MissCurvePoint{c, lruMissRatioAt(unified, c)});
        if (c > max_blocks / 2)
            break;
    }
    return curve;
}

} // namespace gllc
