#include "analysis/job_spec.hh"

#include <cstdint>
#include <set>

#include "analysis/policy_table.hh"
#include "common/hash.hh"
#include "common/json.hh"
#include "workload/app_profile.hh"

namespace gllc
{

namespace
{

void
appendFrames(std::string &out,
             const std::vector<SweepJobFrame> &frames)
{
    out += "\"frames\":[";
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (i)
            out += ',';
        out += "{\"app\":\"";
        out += jsonEscape(frames[i].app);
        out += "\",\"frame\":";
        out += std::to_string(frames[i].frameIndex);
        out += '}';
    }
    out += ']';
}

void
appendScale(std::string &out, std::uint32_t linear, bool scatter)
{
    out += "\"scale\":{\"linear\":";
    out += std::to_string(linear);
    out += ",\"scatter_pages\":";
    out += scatter ? "true" : "false";
    out += '}';
}

const char *
boolWord(bool v)
{
    return v ? "true" : "false";
}

/**
 * A u64 JSON field narrowed into u32 range.  Rejecting overflow
 * instead of truncating matters for identity: frame 4294967296 must
 * not silently become frame 0 and alias a different cell.
 */
Result<std::uint32_t>
asU32(const JsonValue &value, const char *key)
{
    Result<std::uint64_t> v = value.asU64(key);
    if (!v.ok())
        return v.error();
    if (v.value() > UINT32_MAX)
        return Error::format(
            ErrorCode::InvalidArgument, "%s out of range: %llu", key,
            static_cast<unsigned long long>(v.value()));
    return static_cast<std::uint32_t>(v.value());
}

} // namespace

bool
SweepJobSpec::operator==(const SweepJobSpec &other) const
{
    return policies == other.policies && frames == other.frames
        && scaleLinear == other.scaleLinear
        && scatterPages == other.scatterPages
        && llcBytes == other.llcBytes
        && collectDramTrace == other.collectDramTrace
        && threads == other.threads
        && frameWindow == other.frameWindow
        && progress == other.progress && retries == other.retries
        && backoffMs == other.backoffMs
        && cellTimeoutMs == other.cellTimeoutMs
        && checkpoint == other.checkpoint && resume == other.resume;
}

std::string
SweepJobSpec::identityJson() const
{
    std::string out = "{\"gllc_sweep_job\":";
    out += std::to_string(kVersion);
    out += ",\"policies\":[";
    for (std::size_t i = 0; i < policies.size(); ++i) {
        if (i)
            out += ',';
        out += '"';
        out += jsonEscape(policies[i]);
        out += '"';
    }
    out += "],";
    appendFrames(out, frames);
    out += ',';
    appendScale(out, scaleLinear, scatterPages);
    out += ",\"llc_bytes\":";
    out += std::to_string(llcBytes);
    out += '}';
    return out;
}

std::string
SweepJobSpec::toJson() const
{
    std::string out = identityJson();
    // Splice the execution knobs into the identity object: drop the
    // closing brace and continue the canonical field order.
    out.pop_back();
    out += ",\"collect_dram_trace\":";
    out += boolWord(collectDramTrace);
    out += ",\"threads\":";
    out += std::to_string(threads);
    out += ",\"frame_window\":";
    out += std::to_string(frameWindow);
    out += ",\"progress\":";
    out += boolWord(progress);
    out += ",\"retries\":";
    out += std::to_string(retries);
    out += ",\"backoff_ms\":";
    out += std::to_string(backoffMs);
    out += ",\"cell_timeout_ms\":";
    out += std::to_string(cellTimeoutMs);
    out += ",\"checkpoint\":\"";
    out += jsonEscape(checkpoint);
    out += "\",\"resume\":";
    out += boolWord(resume);
    out += '}';
    return out;
}

std::uint64_t
SweepJobSpec::contentHash() const
{
    return fnv1a64(identityJson());
}

std::uint64_t
SweepJobSpec::traceHash() const
{
    std::string out = "{\"gllc_sweep_traces\":";
    out += std::to_string(kVersion);
    out += ',';
    appendFrames(out, frames);
    out += ',';
    appendScale(out, scaleLinear, scatterPages);
    out += '}';
    return fnv1a64(out);
}

Result<Unit>
SweepJobSpec::validate() const
{
    if (policies.empty())
        return Error(ErrorCode::InvalidArgument,
                     "job spec has no policies");
    if (frames.empty())
        return Error(ErrorCode::InvalidArgument,
                     "job spec has no frames");
    if (scaleLinear == 0)
        return Error(ErrorCode::InvalidArgument,
                     "job spec scale must be >= 1");
    if (llcBytes == 0)
        return Error(ErrorCode::InvalidArgument,
                     "job spec llc_bytes must be > 0");
    for (const std::string &name : policies) {
        Result<PolicySpec> spec = tryPolicySpec(name);
        if (!spec.ok())
            return spec.error();
    }
    std::set<std::string> known;
    for (const AppProfile &app : paperApps())
        known.insert(app.name);
    for (const SweepJobFrame &frame : frames) {
        if (known.count(frame.app) == 0)
            return Error::format(ErrorCode::InvalidArgument,
                                 "unknown application \"%s\"",
                                 frame.app.c_str());
    }
    return Unit{};
}

Result<SweepJobSpec>
parseSweepJobSpec(const std::string &json)
{
    Result<JsonValue> parsed = parseJson(json);
    if (!parsed.ok())
        return parsed.error();
    const JsonValue doc = parsed.take();
    if (!doc.isObject())
        return Error(ErrorCode::InvalidArgument,
                     "job spec must be a JSON object");

    SweepJobSpec spec;
    bool saw_version = false;
    bool saw_policies = false;
    bool saw_frames = false;
    bool saw_scale = false;
    bool saw_llc = false;
    std::set<std::string> seen_keys;

    for (const auto &[key, value] : doc.members()) {
        // Duplicates are never benign here: a repeated "policies"
        // would concatenate both arrays and a repeated scalar would
        // be last-wins, so two textually different documents could
        // both parse yet mean something unintended.
        if (!seen_keys.insert(key).second)
            return Error::format(ErrorCode::InvalidArgument,
                                 "duplicate job spec key \"%s\"",
                                 key.c_str());
        if (key == "gllc_sweep_job") {
            Result<std::uint64_t> v = value.asU64(key.c_str());
            if (!v.ok())
                return v.error();
            if (v.value() != SweepJobSpec::kVersion)
                return Error::format(
                    ErrorCode::BadVersion,
                    "job spec version %llu unsupported",
                    static_cast<unsigned long long>(v.value()));
            saw_version = true;
        } else if (key == "policies") {
            if (!value.isArray())
                return Error(ErrorCode::InvalidArgument,
                             "policies: expected an array");
            for (const JsonValue &item : value.items()) {
                Result<std::string> name = item.asString("policy");
                if (!name.ok())
                    return name.error();
                spec.policies.push_back(name.take());
            }
            saw_policies = true;
        } else if (key == "frames") {
            if (!value.isArray())
                return Error(ErrorCode::InvalidArgument,
                             "frames: expected an array");
            for (const JsonValue &item : value.items()) {
                if (!item.isObject())
                    return Error(ErrorCode::InvalidArgument,
                                 "frames: expected objects");
                const JsonValue *app = item.find("app");
                const JsonValue *frame = item.find("frame");
                if (app == nullptr || frame == nullptr)
                    return Error(ErrorCode::InvalidArgument,
                                 "frame entry needs app and frame");
                SweepJobFrame ref;
                Result<std::string> name = app->asString("app");
                if (!name.ok())
                    return name.error();
                ref.app = name.take();
                Result<std::uint32_t> index =
                    asU32(*frame, "frame");
                if (!index.ok())
                    return index.error();
                ref.frameIndex = index.value();
                spec.frames.push_back(std::move(ref));
            }
            saw_frames = true;
        } else if (key == "scale") {
            if (!value.isObject())
                return Error(ErrorCode::InvalidArgument,
                             "scale: expected an object");
            const JsonValue *linear = value.find("linear");
            const JsonValue *scatter =
                value.find("scatter_pages");
            if (linear == nullptr || scatter == nullptr)
                return Error(ErrorCode::InvalidArgument,
                             "scale needs linear and scatter_pages");
            Result<std::uint32_t> lin = asU32(*linear, "linear");
            if (!lin.ok())
                return lin.error();
            spec.scaleLinear = lin.value();
            Result<bool> sc = scatter->asBool("scatter_pages");
            if (!sc.ok())
                return sc.error();
            spec.scatterPages = sc.value();
            saw_scale = true;
        } else if (key == "llc_bytes") {
            Result<std::uint64_t> v = value.asU64(key.c_str());
            if (!v.ok())
                return v.error();
            spec.llcBytes = v.value();
            saw_llc = true;
        } else if (key == "collect_dram_trace") {
            Result<bool> v = value.asBool(key.c_str());
            if (!v.ok())
                return v.error();
            spec.collectDramTrace = v.value();
        } else if (key == "threads" || key == "frame_window"
                   || key == "retries" || key == "backoff_ms"
                   || key == "cell_timeout_ms") {
            Result<std::uint32_t> v = asU32(value, key.c_str());
            if (!v.ok())
                return v.error();
            const std::uint32_t u = v.value();
            if (key == "threads")
                spec.threads = u;
            else if (key == "frame_window")
                spec.frameWindow = u;
            else if (key == "retries")
                spec.retries = u;
            else if (key == "backoff_ms")
                spec.backoffMs = u;
            else
                spec.cellTimeoutMs = u;
        } else if (key == "progress" || key == "resume") {
            Result<bool> v = value.asBool(key.c_str());
            if (!v.ok())
                return v.error();
            if (key == "progress")
                spec.progress = v.value();
            else
                spec.resume = v.value();
        } else if (key == "checkpoint") {
            Result<std::string> v = value.asString(key.c_str());
            if (!v.ok())
                return v.error();
            spec.checkpoint = v.take();
        } else {
            return Error::format(ErrorCode::InvalidArgument,
                                 "unknown job spec key \"%s\"",
                                 key.c_str());
        }
    }

    if (!saw_version)
        return Error(ErrorCode::BadMagic,
                     "not a job spec: missing gllc_sweep_job");
    if (!saw_policies || !saw_frames || !saw_scale || !saw_llc)
        return Error(ErrorCode::InvalidArgument,
                     "job spec missing identity fields (policies, "
                     "frames, scale, llc_bytes)");
    return spec;
}

} // namespace gllc
