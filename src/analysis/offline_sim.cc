#include "analysis/offline_sim.hh"

#include <algorithm>
#include <optional>

#include "cache/policy/belady.hh"
#include "common/audit.hh"
#include "common/fault.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace gllc
{

RunResult
runTrace(const FrameTrace &trace, const PolicySpec &spec,
         const LlcConfig &llc_config, const RunOptions &options)
{
    // Name the policy in any audit report from this replay.
    std::optional<AuditScope> audit_scope;
    if (auditActive()) {
        audit_scope.emplace();
        auditContext().policy = spec.name;
    }
    LlcConfig config = llc_config;
    if (spec.uncachedDisplay)
        config.bypass = displayBypass();

    BankedLlc llc(config, spec.factory);

    Characterizer characterizer;
    llc.setObserver(&characterizer);

    std::vector<std::uint64_t> oracle;
    if (spec.needsOracle)
        oracle = buildNextUseOracle(trace.accesses);

    // sim.access fault site: one keyed draw per replay decides
    // whether this replay dies, the payload picks where in the
    // access stream it does — exercising the sweep's recovery from
    // partially-built simulator state at any depth.
    std::size_t inject_at = trace.accesses.size();
    if (faultsActive()
        && faultFires(FaultSite::SimAccess,
                      fnv1a64(spec.name,
                              mix64(trace.accesses.size())))) {
        if (trace.accesses.empty())
            throwInjectedFault(FaultSite::SimAccess);
        inject_at = static_cast<std::size_t>(
            faultPayload(FaultSite::SimAccess)
            % trace.accesses.size());
    }

    RunResult result;
    for (std::size_t i = 0; i < trace.accesses.size(); ++i) {
        if (i == inject_at)
            throwInjectedFault(FaultSite::SimAccess);
        const MemAccess &a = trace.accesses[i];
        const std::uint64_t next_use =
            spec.needsOracle ? oracle[i] : kNever;
        const LlcAccessResult r = llc.access(a, i, next_use);

        if (options.collectDramTrace) {
            if (!r.hit) {
                // Fill read or bypassed access goes to DRAM.  Write
                // allocations without fetch (store misses) still
                // appear as writes.
                result.dramTrace.emplace_back(a.addr, a.stream,
                                              a.isWrite, a.cycle);
            }
            if (r.writeback) {
                result.dramTrace.emplace_back(r.writebackAddr,
                                              StreamType::Other, true,
                                              a.cycle);
            }
        }
    }

    result.stats = llc.stats();
    result.characterization = characterizer.result();
    result.fills = llc.mergedFillHistogram();

    if (metricsActive()) {
        // Flush once per replay: aggregate LLC view plus a per-policy
        // view.  Both prefixes see identical deltas, and counters sum
        // commutatively, so the snapshot is deterministic regardless
        // of replay order or thread count.
        llc.flushMetrics("llc.");
        llc.flushMetrics("policy." + spec.name + ".");
        MetricsRegistry::instance().addCounter("sim.replays");
    }
    return result;
}

LlcConfig
scaledLlcConfig(std::uint64_t full_capacity_bytes,
                std::uint32_t pixel_scale)
{
    LlcConfig config;
    config.capacityBytes =
        std::max<std::uint64_t>(full_capacity_bytes / pixel_scale,
                                64 * 1024);
    config.ways = 16;
    config.banks = 4;
    return config;
}

} // namespace gllc
