#include "analysis/offline_sim.hh"

#include <algorithm>
#include <optional>

#include "cache/policy/belady.hh"
#include "common/audit.hh"
#include "common/env.hh"
#include "common/fault.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace gllc
{

namespace
{

/** GLLC_NO_FASTPATH=1 disables the specialized path process-wide. */
bool
fastPathDisabledByEnv()
{
    static const bool disabled = envInt("GLLC_NO_FASTPATH", 0) != 0;
    return disabled;
}

/**
 * Accesses per inner-loop chunk on the fast path.  Fault-site and
 * collection bookkeeping happen at chunk boundaries; the inner loop
 * is pure access servicing.
 */
constexpr std::size_t kReplayChunk = 4096;

/**
 * The specialized replay loop.  All per-replay mode flags are
 * template parameters, so each instantiation's inner loop carries no
 * disabled-feature branches and calls the Characterizer hooks
 * directly (devirtualized: the class is final).
 *
 * @tparam kUcd     uncached-displayable-color bypass configured
 * @tparam kOracle  policy consumes Belady next-use indices
 * @tparam kDram    collect the DRAM-bound access trace
 */
template <bool kUcd, bool kOracle, bool kDram>
void
replayHot(BankedLlc &llc, const FrameTrace &trace,
          const std::vector<std::uint64_t> &oracle,
          Characterizer &characterizer, std::size_t stop_at,
          RunResult &result)
{
    characterizer.bindFrames(llc.geometry().totalBlocks());
    const MemAccess *accesses = trace.accesses.data();
    const std::size_t limit =
        std::min(stop_at, trace.accesses.size());
    for (std::size_t begin = 0; begin < limit;
         begin += kReplayChunk) {
        const std::size_t end =
            std::min(begin + kReplayChunk, limit);
        for (std::size_t i = begin; i < end; ++i) {
            const MemAccess &a = accesses[i];
            const std::uint64_t next_use =
                kOracle ? oracle[i] : kNever;
            const LlcAccessResult r =
                llc.accessHot<kUcd>(a, i, next_use, characterizer);
            if (kDram) {
                if (!r.hit) {
                    result.dramTrace.emplace_back(a.addr, a.stream,
                                                  a.isWrite,
                                                  a.cycle);
                }
                if (r.writeback) {
                    result.dramTrace.emplace_back(r.writebackAddr,
                                                  StreamType::Other,
                                                  true, a.cycle);
                }
            }
        }
    }
    if (stop_at < trace.accesses.size())
        throwInjectedFault(FaultSite::SimAccess);
}

/** Resolve the three runtime mode flags into one instantiation. */
void
replayHotDispatch(BankedLlc &llc, const FrameTrace &trace,
                  const std::vector<std::uint64_t> &oracle,
                  Characterizer &characterizer, std::size_t stop_at,
                  bool ucd, bool use_oracle, bool dram,
                  RunResult &result)
{
    const unsigned mode = (ucd ? 4u : 0u) | (use_oracle ? 2u : 0u)
        | (dram ? 1u : 0u);
    switch (mode) {
      case 0:
        replayHot<false, false, false>(llc, trace, oracle,
                                       characterizer, stop_at,
                                       result);
        break;
      case 1:
        replayHot<false, false, true>(llc, trace, oracle,
                                      characterizer, stop_at,
                                      result);
        break;
      case 2:
        replayHot<false, true, false>(llc, trace, oracle,
                                      characterizer, stop_at,
                                      result);
        break;
      case 3:
        replayHot<false, true, true>(llc, trace, oracle,
                                     characterizer, stop_at, result);
        break;
      case 4:
        replayHot<true, false, false>(llc, trace, oracle,
                                      characterizer, stop_at,
                                      result);
        break;
      case 5:
        replayHot<true, false, true>(llc, trace, oracle,
                                     characterizer, stop_at, result);
        break;
      case 6:
        replayHot<true, true, false>(llc, trace, oracle,
                                     characterizer, stop_at, result);
        break;
      default:
        replayHot<true, true, true>(llc, trace, oracle,
                                    characterizer, stop_at, result);
        break;
    }
}

/** The generic replay loop (virtual observer dispatch, audit, log). */
void
replayGeneric(BankedLlc &llc, const FrameTrace &trace,
              const std::vector<std::uint64_t> &oracle,
              bool use_oracle, std::size_t inject_at,
              const RunOptions &options, RunResult &result)
{
    for (std::size_t i = 0; i < trace.accesses.size(); ++i) {
        if (i == inject_at)
            throwInjectedFault(FaultSite::SimAccess);
        const MemAccess &a = trace.accesses[i];
        const std::uint64_t next_use = use_oracle ? oracle[i] : kNever;
        const LlcAccessResult r = llc.access(a, i, next_use);

        if (options.collectDramTrace) {
            if (!r.hit) {
                // Fill read or bypassed access goes to DRAM.  Write
                // allocations without fetch (store misses) still
                // appear as writes.
                result.dramTrace.emplace_back(a.addr, a.stream,
                                              a.isWrite, a.cycle);
            }
            if (r.writeback) {
                result.dramTrace.emplace_back(r.writebackAddr,
                                              StreamType::Other, true,
                                              a.cycle);
            }
        }
    }
}

} // namespace

RunResult
runTrace(const FrameTrace &trace, const PolicySpec &spec,
         const LlcConfig &llc_config, const RunOptions &options)
{
    // Name the policy in any audit report from this replay.
    std::optional<AuditScope> audit_scope;
    if (auditActive()) {
        audit_scope.emplace();
        auditContext().policy = spec.name;
    }
    LlcConfig config = llc_config;
    if (spec.uncachedDisplay)
        config.uncachedDisplay = true;

    BankedLlc llc(config, spec.factory);

    Characterizer characterizer;

    std::vector<std::uint64_t> oracle;
    if (spec.needsOracle)
        oracle = buildNextUseOracle(trace.accesses);

    // sim.access fault site: one keyed draw per replay decides
    // whether this replay dies, the payload picks where in the
    // access stream it does — exercising the sweep's recovery from
    // partially-built simulator state at any depth.  Sampled once,
    // before the loop: the loops only compare against the
    // precomputed injection index.
    std::size_t inject_at = trace.accesses.size();
    if (faultsActive()
        && faultFires(FaultSite::SimAccess,
                      fnv1a64(spec.name,
                              mix64(trace.accesses.size())))) {
        if (trace.accesses.empty())
            throwInjectedFault(FaultSite::SimAccess);
        inject_at = static_cast<std::size_t>(
            faultPayload(FaultSite::SimAccess)
            % trace.accesses.size());
    }

    RunResult result;
    const bool fast = llc.fastPathEligible()
        && !options.forceGenericPath && !fastPathDisabledByEnv();
    if (fast) {
        // Specialized loop: the Characterizer is passed by concrete
        // type, not attached as a virtual observer.
        replayHotDispatch(llc, trace, oracle, characterizer,
                          inject_at, config.uncachedDisplay,
                          spec.needsOracle, options.collectDramTrace,
                          result);
    } else {
        llc.setObserver(&characterizer);
        replayGeneric(llc, trace, oracle, spec.needsOracle, inject_at,
                      options, result);
    }

    result.stats = llc.stats();
    result.characterization = characterizer.result();
    result.fills = llc.mergedFillHistogram();

    if (metricsActive()) {
        // Flush once per replay: aggregate LLC view plus a per-policy
        // view.  Both prefixes see identical deltas, and counters sum
        // commutatively, so the snapshot is deterministic regardless
        // of replay order or thread count.
        llc.flushMetrics("llc.");
        llc.flushMetrics("policy." + spec.name + ".");
        MetricsRegistry::instance().addCounter("sim.replays");
    }
    return result;
}

LlcConfig
scaledLlcConfig(std::uint64_t full_capacity_bytes,
                std::uint32_t pixel_scale)
{
    LlcConfig config;
    config.capacityBytes =
        std::max<std::uint64_t>(full_capacity_bytes / pixel_scale,
                                64 * 1024);
    config.ways = 16;
    config.banks = 4;
    return config;
}

} // namespace gllc
