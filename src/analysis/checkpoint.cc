#include "analysis/checkpoint.hh"

#include <array>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "analysis/sweep.hh"
#include "common/hash.hh"
#include "common/logging.hh"

namespace gllc
{

namespace
{

/** Escape the two characters our JSON strings need escaped. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void
appendU64(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
}

template <typename Array>
void
appendU64Array(std::string &out, const Array &values)
{
    out += '[';
    bool first = true;
    for (const auto v : values) {
        if (!first)
            out += ',';
        appendU64(out, static_cast<std::uint64_t>(v));
        first = false;
    }
    out += ']';
}

std::string
headerLine(const CheckpointMeta &meta)
{
    std::string line = "{\"gllc_checkpoint\":1,\"scale\":";
    appendU64(line, meta.scaleLinear);
    line += ",\"llc_bytes\":";
    appendU64(line, meta.llcBytes);
    line += ",\"llc_ways\":";
    appendU64(line, meta.llcWays);
    line += ",\"llc_banks\":";
    appendU64(line, meta.llcBanks);
    line += ",\"policies\":[";
    for (std::size_t i = 0; i < meta.policies.size(); ++i) {
        if (i)
            line += ',';
        line += '"';
        line += jsonEscape(meta.policies[i]);
        line += '"';
    }
    line += ']';
    return sealJournalLine(std::move(line));
}

} // namespace

std::string
sealJournalLine(std::string line)
{
    char hash[24];
    std::snprintf(hash, sizeof(hash), "%016" PRIx64,
                  fnv1a64(line.data(), line.size()));
    line += ",\"line_hash\":\"";
    line += hash;
    line += "\"}\n";
    return line;
}

bool
unsealJournalLine(std::string &line)
{
    const std::string marker = ",\"line_hash\":\"";
    const std::size_t pos = line.rfind(marker);
    if (pos == std::string::npos)
        return false;
    const std::size_t hex = pos + marker.size();
    if (line.size() < hex + 17 || line.compare(hex + 16, 2, "\"}") != 0)
        return false;
    std::uint64_t stored = 0;
    for (std::size_t k = 0; k < 16; ++k) {
        const char c = line[hex + k];
        std::uint64_t digit = 0;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a') + 10;
        else
            return false;
        stored = (stored << 4) | digit;
    }
    if (fnv1a64(line.data(), pos) != stored)
        return false;
    line.resize(pos);
    return true;
}

std::string
checkpointCellLine(const SweepCell &cell)
{
    const LlcStats &s = cell.result.stats;
    const Characterization &ch = cell.result.characterization;

    std::string line = "{\"app\":\"";
    line += jsonEscape(cell.key.app);
    line += "\",\"frame\":";
    appendU64(line, cell.key.frameIndex);
    line += ",\"policy\":\"";
    line += jsonEscape(cell.key.policy);
    line += "\",\"attempts\":";
    appendU64(line, cell.attempts);
    line += ",\"streams\":[";
    for (std::size_t i = 0; i < kNumStreams; ++i) {
        if (i)
            line += ',';
        appendU64Array(line,
                       std::array<std::uint64_t, 4>{
                           s.stream[i].accesses, s.stream[i].hits,
                           s.stream[i].misses, s.stream[i].bypasses});
    }
    line += "],\"writebacks\":";
    appendU64(line, s.writebacks);
    line += ",\"evictions\":";
    appendU64(line, s.evictions);
    line += ",\"chz\":";
    appendU64Array(line,
                   std::array<std::uint64_t, 4>{
                       ch.interTexHits, ch.intraTexHits,
                       ch.rtProductions, ch.rtConsumptions});
    line += ",\"tex_epoch\":";
    appendU64Array(line, ch.texEpochHits);
    line += ",\"tex_reach\":";
    appendU64Array(line, ch.texReach);
    line += ",\"z_reach\":";
    appendU64Array(line, ch.zReach);
    line += ",\"fills\":[";
    for (std::size_t p = 0; p < kNumPolicyStreams; ++p) {
        if (p)
            line += ',';
        appendU64Array(line, cell.result.fills.counts[p]);
    }
    line += ']';
    return sealJournalLine(std::move(line));
}

namespace
{

/**
 * Strict sequential parser for the exact shape the emitters above
 * produce.  Any deviation fails the line, which the loader treats
 * as torn (skipped), never as fatal.
 */
struct Cursor
{
    const std::string &s;
    std::size_t i = 0;

    bool
    lit(const char *text)
    {
        const std::size_t n = std::strlen(text);
        if (s.compare(i, n, text) != 0)
            return false;
        i += n;
        return true;
    }

    bool
    u64(std::uint64_t &out)
    {
        if (i >= s.size() || s[i] < '0' || s[i] > '9')
            return false;
        std::uint64_t v = 0;
        while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
            if (v > (~0ull - 9) / 10)
                return false;
            v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
            ++i;
        }
        out = v;
        return true;
    }

    bool
    str(std::string &out)
    {
        if (!lit("\""))
            return false;
        out.clear();
        while (i < s.size()) {
            const char c = s[i];
            if (c == '"') {
                ++i;
                return true;
            }
            if (c == '\\') {
                if (i + 1 >= s.size())
                    return false;
                out.push_back(s[i + 1]);
                i += 2;
                continue;
            }
            out.push_back(c);
            ++i;
        }
        return false;
    }

    template <typename Array>
    bool
    u64Array(Array &values)
    {
        if (!lit("["))
            return false;
        for (std::size_t k = 0; k < values.size(); ++k) {
            if (k > 0 && !lit(","))
                return false;
            std::uint64_t v = 0;
            if (!u64(v))
                return false;
            values[k] =
                static_cast<typename Array::value_type>(v);
        }
        return lit("]");
    }
};

bool
parseHeaderLine(std::string line, CheckpointMeta &meta)
{
    if (!unsealJournalLine(line))
        return false;
    Cursor c{line};
    std::uint64_t v = 0;
    if (!c.lit("{\"gllc_checkpoint\":1,\"scale\":") || !c.u64(v))
        return false;
    meta.scaleLinear = static_cast<std::uint32_t>(v);
    if (!c.lit(",\"llc_bytes\":") || !c.u64(meta.llcBytes))
        return false;
    if (!c.lit(",\"llc_ways\":") || !c.u64(v))
        return false;
    meta.llcWays = static_cast<std::uint32_t>(v);
    if (!c.lit(",\"llc_banks\":") || !c.u64(v))
        return false;
    meta.llcBanks = static_cast<std::uint32_t>(v);
    if (!c.lit(",\"policies\":["))
        return false;
    meta.policies.clear();
    if (!c.lit("]")) {
        while (true) {
            std::string policy;
            if (!c.str(policy))
                return false;
            meta.policies.push_back(std::move(policy));
            if (c.lit("]"))
                break;
            if (!c.lit(","))
                return false;
        }
    }
    return c.i == line.size();
}

} // namespace

bool
parseCheckpointCellLine(std::string line, SweepCell &cell)
{
    if (!unsealJournalLine(line))
        return false;
    Cursor c{line};
    std::uint64_t v = 0;
    if (!c.lit("{\"app\":") || !c.str(cell.key.app))
        return false;
    if (!c.lit(",\"frame\":") || !c.u64(v))
        return false;
    cell.key.frameIndex = static_cast<std::uint32_t>(v);
    if (!c.lit(",\"policy\":"))
        return false;
    if (!c.str(cell.key.policy))
        return false;
    if (!c.lit(",\"attempts\":") || !c.u64(v))
        return false;
    cell.attempts = static_cast<unsigned>(v);

    LlcStats &s = cell.result.stats;
    if (!c.lit(",\"streams\":["))
        return false;
    for (std::size_t i = 0; i < kNumStreams; ++i) {
        if (i > 0 && !c.lit(","))
            return false;
        std::array<std::uint64_t, 4> per{};
        if (!c.u64Array(per))
            return false;
        s.stream[i].accesses = per[0];
        s.stream[i].hits = per[1];
        s.stream[i].misses = per[2];
        s.stream[i].bypasses = per[3];
    }
    if (!c.lit("],\"writebacks\":") || !c.u64(s.writebacks))
        return false;
    if (!c.lit(",\"evictions\":") || !c.u64(s.evictions))
        return false;

    Characterization &ch = cell.result.characterization;
    std::array<std::uint64_t, 4> chz{};
    if (!c.lit(",\"chz\":") || !c.u64Array(chz))
        return false;
    ch.interTexHits = chz[0];
    ch.intraTexHits = chz[1];
    ch.rtProductions = chz[2];
    ch.rtConsumptions = chz[3];
    if (!c.lit(",\"tex_epoch\":") || !c.u64Array(ch.texEpochHits))
        return false;
    if (!c.lit(",\"tex_reach\":") || !c.u64Array(ch.texReach))
        return false;
    if (!c.lit(",\"z_reach\":") || !c.u64Array(ch.zReach))
        return false;

    if (!c.lit(",\"fills\":["))
        return false;
    for (std::size_t p = 0; p < kNumPolicyStreams; ++p) {
        if (p > 0 && !c.lit(","))
            return false;
        if (!c.u64Array(cell.result.fills.counts[p]))
            return false;
    }
    return c.lit("]") && c.i == line.size();
}

bool
CheckpointMeta::operator==(const CheckpointMeta &other) const
{
    return scaleLinear == other.scaleLinear
        && llcBytes == other.llcBytes && llcWays == other.llcWays
        && llcBanks == other.llcBanks && policies == other.policies;
}

Result<CheckpointContents>
loadCheckpoint(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return Error::format(ErrorCode::Io,
                             "cannot open checkpoint \"%s\"",
                             path.c_str());

    CheckpointContents contents;
    std::string line;
    if (!std::getline(is, line)
        || !parseHeaderLine(line, contents.meta))
        return Error::format(
            ErrorCode::Corrupt,
            "checkpoint \"%s\" has no valid header line",
            path.c_str());

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        SweepCell cell;
        if (!parseCheckpointCellLine(line, cell)) {
            // The torn tail of a killed run lands here; its work is
            // simply re-done.
            ++contents.skippedLines;
            continue;
        }
        const CellKey key = cell.key;
        contents.cells[key] = std::move(cell);
    }
    return contents;
}

CheckpointWriter::CheckpointWriter(const std::string &path,
                                   const CheckpointMeta &meta,
                                   bool append)
    : path_(path)
{
    bool write_header = true;
    if (append) {
        // Appending to a journal that already has content: the
        // header was validated by the resume load.  A kill during a
        // write can leave a torn final line; drop it (the load
        // skipped it anyway) so the next cell starts on a clean
        // line boundary instead of gluing onto the fragment.
        std::string bytes;
        {
            std::ifstream probe(path, std::ios::binary);
            std::ostringstream ss;
            ss << probe.rdbuf();
            bytes = ss.str();
        }
        if (!bytes.empty() && bytes.back() != '\n') {
            const std::size_t keep = bytes.rfind('\n') + 1;
            if (::truncate(path.c_str(),
                           static_cast<off_t>(keep)) != 0) {
                warn("cannot trim torn tail of checkpoint \"%s\"",
                     path.c_str());
            }
            bytes.resize(keep);
        }
        write_header = bytes.empty();
    }
    MutexLock lock(mutex_);
    file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
    if (file_ == nullptr)
        fatal("cannot open checkpoint \"%s\" for writing",
              path.c_str());
    if (write_header) {
        const std::string header = headerLine(meta);
        std::fwrite(header.data(), 1, header.size(), file_);
        syncLocked();
    }
}

CheckpointWriter::~CheckpointWriter()
{
    MutexLock lock(mutex_);
    if (file_ == nullptr)
        return;
    syncLocked();
    std::fclose(file_);
}

void
CheckpointWriter::append(const SweepCell &cell)
{
    // Serialize the cell outside the lock; only the write below
    // needs to exclude concurrent appenders.
    const std::string line = checkpointCellLine(cell);
    MutexLock lock(mutex_);
    if (file_ == nullptr)
        return;
    if (std::fwrite(line.data(), 1, line.size(), file_)
        != line.size()) {
        warn("checkpoint write to \"%s\" failed; journal disabled "
             "for the rest of this run", path_.c_str());
        std::fclose(file_);
        file_ = nullptr;
        return;
    }
    if (++pendingLines_ >= kSyncBatch)
        syncLocked();
}

void
CheckpointWriter::sync()
{
    MutexLock lock(mutex_);
    syncLocked();
}

void
CheckpointWriter::syncLocked()
{
    if (file_ == nullptr)
        return;
    std::fflush(file_);
    // Stable storage, not just the page cache: a crash after this
    // point cannot lose the batch.
    ::fsync(::fileno(file_));
    pendingLines_ = 0;
}

} // namespace gllc
