/**
 * @file
 * Sweep checkpoint journal: JSON-lines persistence of completed
 * (app, frame, policy) cells.
 *
 * A production-scale sweep runs for hours; losing every completed
 * cell to a mid-run crash (or a deliberate kill) is the failure
 * mode this module removes.  The sweep engine appends one
 * self-checksummed JSON line per completed cell (GLLC_CHECKPOINT=
 * <path>), fsync'ing in small batches so at most a batch of work is
 * re-done after a crash; `--resume` replays the journal, restores
 * the recorded cells bit-for-bit (every journaled field is an
 * integer, so the round trip is exact) and re-executes only what is
 * missing.  A resumed run therefore merges to a SweepResult that is
 * byte-identical to an uninterrupted one.
 *
 * Journal layout: line 1 is a header describing the sweep
 * configuration (scale, LLC geometry, policy list) so a stale
 * journal cannot silently contaminate a different sweep; every
 * following line is one cell.  Each line ends with a "line_hash"
 * field — fnv1a64 of the bytes before it — so the torn final line
 * of a killed run (or any rotted line) is detected and skipped, not
 * trusted and not fatal.
 */

#ifndef GLLC_ANALYSIS_CHECKPOINT_HH
#define GLLC_ANALYSIS_CHECKPOINT_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/cell_key.hh"
#include "common/result.hh"
#include "common/thread_annotations.hh"

namespace gllc
{

struct SweepCell;

/**
 * Close a journal line: append the fnv1a64 self-checksum of
 * everything so far as a trailing "line_hash" field plus "}\n".
 * The checkpoint journal, the worker wire protocol, and the gllcd
 * job journal all seal their lines with this one helper so a line
 * survives a socket, a pipe, and a crash identically.
 */
std::string sealJournalLine(std::string line);

/**
 * Verify and strip a sealed line's trailing "line_hash"; on success
 * @p line is the checksummed prefix (note: WITHOUT its closing '}' —
 * re-append one before handing the prefix to a JSON parser).  False
 * on a torn, rotted, or unsealed line.
 */
bool unsealJournalLine(std::string &line);

/** The sweep configuration a journal belongs to. */
struct CheckpointMeta
{
    std::uint32_t scaleLinear = 0;
    std::uint64_t llcBytes = 0;
    std::uint32_t llcWays = 0;
    std::uint32_t llcBanks = 0;
    std::vector<std::string> policies;

    bool operator==(const CheckpointMeta &other) const;
    bool operator!=(const CheckpointMeta &other) const
    {
        return !(*this == other);
    }
};

/** Everything a journal held that survived validation. */
struct CheckpointContents
{
    CheckpointMeta meta;

    /**
     * Restored cells by typed key.  (Old journals parse into the
     * same map: the on-disk line format names the key fields
     * explicitly, so nothing about this container is persisted.)
     */
    std::map<CellKey, SweepCell> cells;

    /** Torn/corrupt lines that were skipped (telemetry). */
    std::size_t skippedLines = 0;
};

/**
 * Serialize one completed cell as a sealed journal line (trailing
 * "line_hash" checksum and newline included).  The sweep service's
 * worker protocol reuses these exact bytes as its result frames, so
 * a cell survives a socket the same way it survives a crash.
 */
std::string checkpointCellLine(const SweepCell &cell);

/**
 * Parse and verify one sealed cell line; false on any deviation
 * (torn tail, bit rot, wrong shape) — the caller skips, never
 * trusts, a bad line.
 */
bool parseCheckpointCellLine(std::string line, SweepCell &cell);

/**
 * Parse a journal.  Io/Corrupt errors cover an unreadable file or
 * an unusable header; individually bad cell lines are skipped and
 * counted, because a torn tail is the expected shape of a journal
 * whose writer was killed.
 */
[[nodiscard]] Result<CheckpointContents>
loadCheckpoint(const std::string &path);

/**
 * Appending journal writer.  fatal() on I/O failure at open (an
 * unusable checkpoint path is a configuration error; silently not
 * checkpointing would be worse).
 *
 * Thread-safe: append()/sync() serialize on an internal mutex, so
 * concurrent writers (the sharded service path, future multi-merge
 * engines) interleave whole sealed lines, never torn ones.  The
 * in-process sweep engine appends from its single merge thread and
 * pays one uncontended lock per cell.
 */
class CheckpointWriter
{
  public:
    /**
     * Open @p path and write the header when starting fresh.
     * @param append  keep existing contents (resume) instead of
     *                truncating.
     */
    CheckpointWriter(const std::string &path,
                     const CheckpointMeta &meta, bool append);

    /** Flushes and syncs the tail batch. */
    ~CheckpointWriter();

    CheckpointWriter(const CheckpointWriter &) = delete;
    CheckpointWriter &operator=(const CheckpointWriter &) = delete;

    /** Journal one completed cell; syncs every kSyncBatch lines. */
    void append(const SweepCell &cell) GLLC_EXCLUDES(mutex_);

    /** Flush user-space buffers and fsync to stable storage. */
    void sync() GLLC_EXCLUDES(mutex_);

    /** Lines fsync'd per batch; small so a crash loses little. */
    static constexpr unsigned kSyncBatch = 16;

  private:
    void syncLocked() GLLC_REQUIRES(mutex_);

    Mutex mutex_;
    std::FILE *file_ GLLC_GUARDED_BY(mutex_) = nullptr;
    std::string path_;
    unsigned pendingLines_ GLLC_GUARDED_BY(mutex_) = 0;
};

} // namespace gllc

#endif // GLLC_ANALYSIS_CHECKPOINT_HH
