/**
 * @file
 * Frame-set sweep engine shared by the benchmark harnesses.
 *
 * Each benchmark regenerates one of the paper's figures: it walks
 * the 52-frame set, replays every frame under a list of policies,
 * and prints per-application rows plus the cross-frame mean, which
 * is how the paper aggregates (per-frame values averaged over all
 * 52 frames; per-app bars average that title's frames).
 *
 * Execution model.  A sweep is a matrix of independent
 * (frame, policy) cells: every replay owns its OfflineSim, policy
 * instances and per-bank counters, so cells are embarrassingly
 * parallel.  The engine renders each frame trace once (traces are
 * immutable after build and shared read-only by the replays of that
 * frame), fans the cells of a window of frames out over a
 * ThreadPool, and merges the finished cells into deterministic
 * Table-1 order regardless of completion order.  Results are
 * bit-identical to a serial run: trace generation is seeded per
 * (app, frame) and each replay is deterministic in isolation.
 *
 * Fault model.  A multi-hour batch sweep must not die because one
 * cell does: every cell attempt runs under an exception boundary
 * with bounded retry and exponential backoff, and a cell that
 * exhausts its budget is quarantined — recorded with its error and
 * attempt count in SweepResult::quarantined() and in the CSV/JSON
 * artifacts — while every other cell still completes.  A soft
 * watchdog warns about cells exceeding a wall-clock budget without
 * killing them.  With GLLC_CHECKPOINT set, completed cells are
 * journaled (JSON lines, fsync'd batches; see analysis/checkpoint);
 * resume() — the benches' --resume flag — replays the journal and
 * re-executes only missing cells, merging to a byte-identical
 * SweepResult.  Restored cells do not re-fire the CellObserver (the
 * journal does not retain bulky DRAM traces), so observer-driven
 * timing runs should resume with that in mind.
 *
 * Knobs (environment, overridable per SweepConfig):
 *   GLLC_THREADS         worker count (1 = serial in-thread
 *                        fallback; default: hardware concurrency)
 *   GLLC_FRAME_WINDOW    frames whose traces may be cached in
 *                        memory at once (default 2x threads)
 *   GLLC_PROGRESS        1/0 forces cells/s + ETA reporting
 *   GLLC_CELL_RETRIES    re-attempts after a cell's first failure
 *                        (default 2)
 *   GLLC_CELL_BACKOFF_MS first retry delay, doubled per attempt
 *                        (default 25)
 *   GLLC_CELL_TIMEOUT_MS soft per-cell watchdog budget (default 0
 *                        = disabled)
 *   GLLC_CHECKPOINT      journal path for checkpoint/resume
 *   GLLC_RESUME          1 resumes from GLLC_CHECKPOINT (the
 *                        benches' --resume flag does the same)
 */

#ifndef GLLC_ANALYSIS_SWEEP_HH
#define GLLC_ANALYSIS_SWEEP_HH

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "analysis/cell_key.hh"
#include "analysis/job_spec.hh"
#include "analysis/offline_sim.hh"
#include "workload/frame_set.hh"

namespace gllc
{

/** Results of one (frame, policy) replay. */
struct SweepCell
{
    /** Logical coordinates: (app, frame, policy). */
    CellKey key;

    RunResult result;

    /** Attempts the cell took (1 = first try; >1 = retries won). */
    unsigned attempts = 1;
};

/** A cell that exhausted its retry budget. */
struct QuarantinedCell
{
    CellKey key;
    std::string error;
    unsigned attempts = 0;
};

/**
 * Completed sweep: the surviving cells in deterministic Table-1
 * order (frames in frame-set order, policies in configured order
 * within each frame), the quarantined cells, plus the aggregation
 * and export methods every harness shares.
 */
class SweepResult
{
  public:
    /** Per-cell scalar metric, e.g. missMetric. */
    using Metric = std::function<double(const RunResult &)>;

    const std::vector<SweepCell> &cells() const { return cells_; }
    const std::vector<std::string> &policies() const
    {
        return policies_;
    }
    const RenderScale &scale() const { return scale_; }
    const LlcConfig &llcConfig() const { return llcConfig_; }

    /** Cells that failed permanently (empty on a clean sweep). */
    const std::vector<QuarantinedCell> &quarantined() const
    {
        return quarantined_;
    }

    /** Cells restored from a checkpoint journal instead of re-run. */
    std::size_t restoredCells() const { return restoredCells_; }

    /** Wall-clock seconds spent executing the sweep. */
    double wallSeconds() const { return wallSeconds_; }

    /** Worker threads the sweep actually used. */
    unsigned threadsUsed() const { return threadsUsed_; }

    /** Application names in Table 1 order (only those swept). */
    std::vector<std::string> appOrder() const;

    /**
     * Sum @p metric per (app, policy); rows ordered like Table 1.
     */
    std::map<std::string, std::map<std::string, double>>
    totalsByApp(const Metric &metric) const;

    /**
     * Mean over frames of (metric / baseline metric) per policy.
     * Frames whose baseline cell is quarantined contribute no
     * ratios (partial results stay comparable, never silently
     * wrong).
     */
    std::map<std::string, double>
    meanNormalized(const Metric &metric,
                   const std::string &baseline) const;

    /**
     * Print a table of per-app values of @p metric for every policy
     * normalized to @p baseline (the paper's usual presentation),
     * with a final MEAN row averaging the per-frame ratios.
     */
    void printNormalizedTable(std::ostream &os,
                              const std::string &title,
                              const Metric &metric,
                              const std::string &baseline) const;

    /** Machine-readable export (the writers live in report.cc). */
    void writeCsv(std::ostream &os) const;
    void writeJson(std::ostream &os) const;

    /**
     * Assemble a result from externally-computed parts — the sweep
     * service reassembles worker-shard cells through this.  Cells
     * and quarantined entries must already be in deterministic
     * sweep order; run() produces results through its own path.
     */
    static SweepResult
    fromParts(std::vector<std::string> policies,
              const RenderScale &scale, const LlcConfig &llc_config,
              std::vector<SweepCell> cells,
              std::vector<QuarantinedCell> quarantined,
              std::size_t restored_cells, double wall_seconds,
              unsigned threads_used);

  private:
    friend class SweepConfig;

    std::vector<std::string> policies_;
    RenderScale scale_;
    LlcConfig llcConfig_;
    std::vector<SweepCell> cells_;
    std::vector<QuarantinedCell> quarantined_;
    std::size_t restoredCells_ = 0;
    double wallSeconds_ = 0.0;
    unsigned threadsUsed_ = 1;
};

/**
 * Builder describing a frames x policies sweep.
 *
 * Defaults come from the environment (GLLC_SCALE, GLLC_FRAMES,
 * GLLC_THREADS, GLLC_FRAME_WINDOW, GLLC_CELL_RETRIES,
 * GLLC_CELL_BACKOFF_MS, GLLC_CELL_TIMEOUT_MS, GLLC_CHECKPOINT,
 * GLLC_RESUME); every knob can be overridden:
 *
 *   SweepResult r = SweepConfig()
 *                       .policies({"DRRIP", "GSPC"})
 *                       .llcBytes(16ull << 20)
 *                       .threads(8)
 *                       .run();
 */
class SweepConfig
{
  public:
    SweepConfig();

    /** Policies to evaluate, by policySpec registry name. */
    SweepConfig &policies(std::vector<std::string> names);

    /** Policies as explicit specs (registry-free custom policies). */
    SweepConfig &policySpecs(std::vector<PolicySpec> specs);

    /** Unscaled LLC capacity (8 MB baseline by default). */
    SweepConfig &llcBytes(std::uint64_t full_llc_bytes);

    /** Frame subset (default: frameSetFromEnv()). */
    SweepConfig &frames(std::vector<FrameSpec> frames);

    /** Render scale override (default: scaleFromEnv()). */
    SweepConfig &scale(const RenderScale &scale);

    /** Collect the DRAM trace of every replay (timing benches). */
    SweepConfig &collectDramTrace(bool collect);

    /** Worker threads; 0 = GLLC_THREADS / hardware concurrency. */
    SweepConfig &threads(unsigned count);

    /**
     * Max frames whose traces are held in memory at once; 0 =
     * GLLC_FRAME_WINDOW / 2x threads.  DRAM-trace collection
     * narrows the effective window to the thread count, because
     * each in-flight cell then retains a bulky trace.
     */
    SweepConfig &frameWindow(unsigned frames);

    /** Force progress reporting on or off (default: tty autodetect). */
    SweepConfig &progress(bool enabled);

    /** Retry budget after a cell's first failure; -1 = env default. */
    SweepConfig &retries(int count);

    /** First retry delay in ms (doubled per attempt); -1 = env. */
    SweepConfig &backoffMs(int ms);

    /** Soft per-cell watchdog budget in ms; 0 off, -1 = env. */
    SweepConfig &cellTimeoutMs(int ms);

    /** Checkpoint journal path ("" = GLLC_CHECKPOINT / none). */
    SweepConfig &checkpoint(std::string path);

    /** Restore completed cells from the checkpoint journal. */
    SweepConfig &resume(bool enabled);

    /**
     * Apply the shared command-line options every bench accepts:
     * "--resume" and "--checkpoint <path>".  Unrelated arguments
     * are left for the caller.
     */
    SweepConfig &cliArgs(int argc, char **argv);

    /**
     * Observes each completed cell in deterministic sweep order,
     * e.g. to feed a timing model; the cell's dramTrace and the
     * frame trace are valid during the callback only.  Not invoked
     * for cells restored from a checkpoint.
     */
    using CellObserver = std::function<void(const SweepCell &,
                                            const FrameTrace &)>;

    /** Execute the sweep. */
    SweepResult run(const CellObserver &observer = nullptr) const;

    /** The LLC configuration the sweep will replay against. */
    const LlcConfig &llcConfig() const { return llcConfig_; }
    const RenderScale &scale() const { return scale_; }
    const std::vector<FrameSpec> &frames() const { return frames_; }

    /** Policy display names in configured order. */
    std::vector<std::string> policyNames() const;

    /**
     * Resolve the config into a fully-defaulted SweepJobSpec: every
     * environment fallback applied, every knob explicit.  This is
     * the one place builder state meets the environment — run()
     * consumes the resolved spec, and fromSpec(resolve()).run() is
     * bit-identical to run().  Replaces the seven ad-hoc
     * resolved*() getters (kept below as deprecated wrappers).
     */
    SweepJobSpec resolve() const;

    /**
     * Rebuild a runnable config from a spec.  Every knob is set
     * explicitly, so the environment is not consulted again.
     * Unknown policy or application names are fatal; services
     * validate() the spec first and reject bad jobs gracefully.
     */
    static SweepConfig fromSpec(const SweepJobSpec &spec);

    // Deprecated pre-SweepJobSpec accessors.  Each resolves the
    // whole spec and projects one field; migrate to resolve().
    [[deprecated("use resolve().threads")]]
    unsigned resolvedThreads() const { return resolve().threads; }
    [[deprecated("use resolve().retries")]]
    unsigned resolvedRetries() const { return resolve().retries; }
    [[deprecated("use resolve().backoffMs")]]
    unsigned resolvedBackoffMs() const
    {
        return resolve().backoffMs;
    }
    [[deprecated("use resolve().cellTimeoutMs")]]
    unsigned resolvedCellTimeoutMs() const
    {
        return resolve().cellTimeoutMs;
    }
    [[deprecated("use resolve().checkpoint")]]
    std::string resolvedCheckpoint() const
    {
        return resolve().checkpoint;
    }
    [[deprecated("use resolve().resume")]]
    bool resolvedResume() const { return resolve().resume; }

  private:
    std::vector<PolicySpec> specs_;
    RenderScale scale_;
    std::vector<FrameSpec> frames_;
    LlcConfig llcConfig_;
    std::uint64_t fullLlcBytes_ = 8ull << 20;
    bool collectDram_ = false;
    unsigned threads_ = 0;
    unsigned frameWindow_ = 0;
    int progress_ = -1;      ///< -1 auto, 0 off, 1 on
    int retries_ = -1;       ///< -1 = GLLC_CELL_RETRIES
    int backoffMs_ = -1;     ///< -1 = GLLC_CELL_BACKOFF_MS
    int cellTimeoutMs_ = -1; ///< -1 = GLLC_CELL_TIMEOUT_MS
    std::string checkpoint_; ///< "" = GLLC_CHECKPOINT
    int resume_ = -1;        ///< -1 = GLLC_RESUME, else 0/1
};

/**
 * Resolve a requested worker count: 0 falls back to GLLC_THREADS,
 * then to the hardware concurrency.  Shared with the perf harnesses
 * that parallelize outside the sweep engine.
 */
unsigned sweepThreads(unsigned requested = 0);

/** Common metric: total LLC misses (including bypasses). */
double missMetric(const RunResult &r);

} // namespace gllc

#endif // GLLC_ANALYSIS_SWEEP_HH
