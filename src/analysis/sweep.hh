/**
 * @file
 * Frame-set sweep engine shared by the benchmark harnesses.
 *
 * Each benchmark regenerates one of the paper's figures: it walks
 * the 52-frame set, replays every frame under a list of policies,
 * and prints per-application rows plus the cross-frame mean, which
 * is how the paper aggregates (per-frame values averaged over all
 * 52 frames; per-app bars average that title's frames).
 *
 * Frames are expensive to generate, so the sweep generates each
 * frame trace once and replays it under every policy before moving
 * on.
 */

#ifndef GLLC_ANALYSIS_SWEEP_HH
#define GLLC_ANALYSIS_SWEEP_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "analysis/offline_sim.hh"
#include "workload/frame_set.hh"

namespace gllc
{

/** Results of one (frame, policy) replay. */
struct SweepCell
{
    std::string app;
    std::uint32_t frameIndex = 0;
    std::string policy;
    RunResult result;
};

/** Environment-configured sweep over frames x policies. */
class PolicySweep
{
  public:
    /**
     * @param policy_names policies to evaluate (policySpec names)
     * @param full_llc_bytes unscaled LLC capacity (8 MB baseline)
     */
    PolicySweep(std::vector<std::string> policy_names,
                std::uint64_t full_llc_bytes = 8ull << 20);

    /** Collect the DRAM trace of every replay (timing benches). */
    void setCollectDramTrace(bool collect) { collectDram_ = collect; }

    /**
     * Run the sweep.  @p per_frame (optional) observes each cell as
     * it completes, e.g. to feed a timing model; the cell's
     * dramTrace is valid during the callback only if enabled.
     */
    void run(const std::function<void(const SweepCell &,
                                      const FrameTrace &)> &per_frame
             = nullptr);

    /** Per-app total of a per-cell metric, plus "MEAN" of ratios. */
    using Metric = std::function<double(const RunResult &)>;

    /**
     * Sum @p metric per (app, policy); rows ordered like Table 1.
     */
    std::map<std::string, std::map<std::string, double>>
    totalsByApp(const Metric &metric) const;

    /**
     * Print a table of per-app values of @p metric for every policy
     * normalized to @p baseline (the paper's usual presentation),
     * with a final MEAN row averaging the per-frame ratios.
     */
    void printNormalizedTable(std::ostream &os, const std::string &title,
                              const Metric &metric,
                              const std::string &baseline) const;

    /** Mean over frames of (metric / baseline metric) per policy. */
    std::map<std::string, double>
    meanNormalized(const Metric &metric,
                   const std::string &baseline) const;

    const std::vector<SweepCell> &cells() const { return cells_; }
    const std::vector<std::string> &policies() const { return policies_; }
    const RenderScale &scale() const { return scale_; }
    const LlcConfig &llcConfig() const { return llcConfig_; }

    /** Application names in Table 1 order (only those swept). */
    std::vector<std::string> appOrder() const;

  private:
    std::vector<std::string> policies_;
    RenderScale scale_;
    std::vector<FrameSpec> frames_;
    LlcConfig llcConfig_;
    bool collectDram_ = false;
    std::vector<SweepCell> cells_;
};

/** Common metric: total LLC misses (including bypasses). */
double missMetric(const RunResult &r);

} // namespace gllc

#endif // GLLC_ANALYSIS_SWEEP_HH
