/**
 * @file
 * Machine-readable result export.
 *
 * The benchmark harnesses print human-readable tables; for plotting
 * or regression tracking, the same sweep results can be dumped as
 * CSV (one row per (application, frame, policy) cell with the
 * common metrics, ready for any dataframe tool) or as JSON (the
 * sweep configuration plus the same per-cell records).  These two
 * functions are the only writers; every harness exports through
 * them (SweepResult::writeCsv / writeJson forward here).
 */

#ifndef GLLC_ANALYSIS_REPORT_HH
#define GLLC_ANALYSIS_REPORT_HH

#include <iosfwd>

#include "analysis/sweep.hh"

namespace gllc
{

/**
 * Write every sweep cell as a CSV row:
 *   app,frame,policy,accesses,hits,misses,writebacks,
 *   tex_hit_rate,rt_hit_rate,z_hit_rate,
 *   rt_productions,rt_consumptions,inter_tex_hits,intra_tex_hits
 */
void writeSweepCsv(const SweepResult &result, std::ostream &os);

/**
 * Write the sweep as one JSON object: {"scale", "llc", "policies",
 * "cells"} where cells carry the same fields as the CSV rows.
 */
void writeSweepJson(const SweepResult &result, std::ostream &os);

} // namespace gllc

#endif // GLLC_ANALYSIS_REPORT_HH
