#include "analysis/cell_key.hh"

#include "common/hash.hh"
#include "workload/app_profile.hh"

namespace gllc
{

std::string
CellKey::toString() const
{
    return app + " frame " + std::to_string(frameIndex) + " "
        + policy;
}

std::uint64_t
CellKey::hash() const
{
    // Chain the fields through one fnv stream with separators so
    // ("ab", "c") and ("a", "bc") cannot collide.
    std::uint64_t h = fnv1a64(app);
    h = fnv1a64("\x1f", 1, h);
    const std::uint32_t frame = frameIndex;
    h = fnv1a64(&frame, sizeof(frame), h);
    h = fnv1a64("\x1f", 1, h);
    return fnv1a64(policy, h);
}

std::size_t
appTableRank(const std::string &app)
{
    const std::vector<AppProfile> &apps = paperApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        if (apps[i].name == app)
            return i;
    }
    return apps.size();
}

bool
operator<(const CellKey &a, const CellKey &b)
{
    const std::size_t rank_a = appTableRank(a.app);
    const std::size_t rank_b = appTableRank(b.app);
    if (rank_a != rank_b)
        return rank_a < rank_b;
    // Two unknown applications share the sentinel rank; fall back to
    // their names so the order stays total.
    if (a.app != b.app)
        return a.app < b.app;
    if (a.frameIndex != b.frameIndex)
        return a.frameIndex < b.frameIndex;
    return a.policy < b.policy;
}

} // namespace gllc
