/**
 * @file
 * Policy-independent reuse characterization (Section 2.3).
 *
 * Attached to a BankedLlc as an observer, the Characterizer follows
 * block lifetimes to reproduce the paper's analysis figures under
 * any replacement policy:
 *
 *  - the RT-bit protocol: every render-target block is tagged; a
 *    texture-sampler hit to a tagged block is an inter-stream reuse
 *    and a "consumption" (Figure 6); the tag drops on consumption
 *    and eviction.
 *  - texture/Z epochs: a block's lifetime is split into epochs E_k
 *    demarcated by its LLC hits; death ratio of E_k is the fraction
 *    of lifetimes that reach E_k but not E_{k+1} (Figures 7 and 9).
 */

#ifndef GLLC_ANALYSIS_CHARACTERIZER_HH
#define GLLC_ANALYSIS_CHARACTERIZER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cache/banked_llc.hh"
#include "common/hash.hh"

namespace gllc
{

/** Aggregated characterization counters for one simulation run. */
struct Characterization
{
    static constexpr unsigned kEpochs = 4;  ///< E0..E2, E>=3

    /** Texture-sampler LLC hits that consumed a render target. */
    std::uint64_t interTexHits = 0;

    /** Texture-sampler LLC hits within the texture stream. */
    std::uint64_t intraTexHits = 0;

    /** RT-bit set events (distinct productions, Figure 6 lower). */
    std::uint64_t rtProductions = 0;

    /** RT blocks consumed by the sampler from the LLC. */
    std::uint64_t rtConsumptions = 0;

    /** Intra-stream texture hits per epoch (Figure 7 upper). */
    std::array<std::uint64_t, kEpochs> texEpochHits{};

    /** Texture lifetimes that attained epoch k (Figure 7 lower). */
    std::array<std::uint64_t, kEpochs> texReach{};

    /** Z lifetimes that attained epoch k (Figure 9). */
    std::array<std::uint64_t, kEpochs> zReach{};

    /** Death ratio of texture epoch k: 1 - reach[k+1]/reach[k]. */
    double texDeathRatio(unsigned k) const;

    /** Death ratio of Z epoch k. */
    double zDeathRatio(unsigned k) const;

    /** Fraction of produced RT blocks consumed by the sampler. */
    double rtConsumptionRate() const;

    void merge(const Characterization &other);
};

/**
 * The observer that produces a Characterization.  Declared final so
 * the replay fast path (BankedLlc::accessHot specialized on this
 * type) can devirtualize the hook calls; the algorithm is identical
 * on both paths.
 */
class Characterizer final : public LlcObserver
{
  public:
    void onHit(const MemAccess &access) override;
    void onMiss(const MemAccess &access) override;
    void onEvict(Addr block_addr) override;

    /**
     * Switch to frame-indexed metadata for a BankedLlc::accessHot
     * replay: block metadata lives in a flat array indexed by the
     * global frame index the hot path passes to the *At hooks, so no
     * per-access hashing happens at all.  Bind once per replay with
     * the cache's totalBlocks(); the produced Characterization is
     * identical to the hashed observer path.
     */
    void bindFrames(std::size_t frames);

    /** Frame-indexed hooks for accessHot<> (see NullLlcObserver). */
    void
    onHitAt(const MemAccess &access, std::size_t frame)
    {
        hitBlock(frameMeta_[frame], policyStream(access.stream));
    }

    void
    onMissAt(const MemAccess &access, std::size_t frame)
    {
        installInto(frameMeta_[frame], access);
    }

    void
    onEvictAt(Addr, std::size_t)
    {
        // The frame's metadata is reset by the fill that always
        // follows (onMissAt -> installInto), so eviction itself has
        // nothing to record.
    }

    const Characterization &result() const { return stats_; }

  private:
    enum class Kind : std::uint8_t { None, Texture, Z };

    struct BlockMeta
    {
        Kind kind = Kind::None;
        bool rtBit = false;
        std::uint8_t hits = 0;  ///< epoch index within the lifetime
    };

    /**
     * Flat linear-probing map from block number to BlockMeta.  The
     * table only ever holds the LLC's resident blocks (installed on
     * fill, erased on evict), so it stays small and every lookup is
     * one or two contiguous probes — the node-per-entry map this
     * replaces dominated replay time.  Deletion uses tombstones,
     * reclaimed on growth; the accumulated Characterization is
     * independent of table layout, so results are unchanged.
     */
    class BlockMetaTable
    {
      public:
        BlockMetaTable() { rebuild(kMinSlots); }

        /** Find-or-default-insert, as unordered_map::operator[]. */
        BlockMeta &
        operator[](Addr key)
        {
            maybeGrow();
            std::size_t i = indexOf(key);
            std::size_t first_tomb = kNoSlot;
            while (true) {
                Slot &slot = slots_[i];
                if (slot.state == State::Full && slot.key == key)
                    return slot.meta;
                if (slot.state == State::Empty) {
                    Slot &dest = first_tomb == kNoSlot
                        ? slot
                        : slots_[first_tomb];
                    if (first_tomb != kNoSlot)
                        --tombstones_;
                    dest.key = key;
                    dest.meta = BlockMeta{};
                    dest.state = State::Full;
                    ++size_;
                    return dest.meta;
                }
                if (slot.state == State::Tombstone
                    && first_tomb == kNoSlot)
                    first_tomb = i;
                i = (i + 1) & mask_;
            }
        }

        void
        erase(Addr key)
        {
            std::size_t i = indexOf(key);
            while (true) {
                Slot &slot = slots_[i];
                if (slot.state == State::Full && slot.key == key) {
                    slot.state = State::Tombstone;
                    --size_;
                    ++tombstones_;
                    return;
                }
                if (slot.state == State::Empty)
                    return;
                i = (i + 1) & mask_;
            }
        }

      private:
        enum class State : std::uint8_t { Empty, Full, Tombstone };

        struct Slot
        {
            Addr key = 0;
            BlockMeta meta;
            State state = State::Empty;
        };

        static constexpr std::size_t kMinSlots = 1024;
        static constexpr std::size_t kNoSlot =
            ~static_cast<std::size_t>(0);

        std::size_t indexOf(Addr key) const
        {
            return static_cast<std::size_t>(mix64(key)) & mask_;
        }

        void
        maybeGrow()
        {
            // Keep live + tombstone occupancy under 70% so probe
            // chains stay short; growing rehashes tombstones away.
            if ((size_ + tombstones_) * 10 < slots_.size() * 7)
                return;
            rebuild(size_ * 10 >= slots_.size() * 5
                        ? slots_.size() * 2
                        : slots_.size());
        }

        void
        rebuild(std::size_t new_slots)
        {
            std::vector<Slot> old = std::move(slots_);
            slots_.assign(new_slots, Slot{});
            mask_ = new_slots - 1;
            tombstones_ = 0;
            for (const Slot &slot : old) {
                if (slot.state != State::Full)
                    continue;
                std::size_t i = indexOf(slot.key);
                while (slots_[i].state == State::Full)
                    i = (i + 1) & mask_;
                slots_[i] = slot;
            }
        }

        std::vector<Slot> slots_;
        std::size_t mask_ = 0;
        std::size_t size_ = 0;
        std::size_t tombstones_ = 0;
    };

    /** Begin a texture lifetime for @p meta (enters E0). */
    void startTexLifetime(BlockMeta &meta);

    /** Begin a Z lifetime. */
    void startZLifetime(BlockMeta &meta);

    /** Lifetime bookkeeping for a hit to the block behind @p meta. */
    void hitBlock(BlockMeta &meta, PolicyStream ps);

    /** Reset @p meta for the lifetime the filling @p access starts. */
    void installInto(BlockMeta &meta, const MemAccess &access);

    /** Per-resident-block metadata, keyed by block number. */
    BlockMetaTable meta_;

    /** Frame-indexed metadata for accessHot replays (bindFrames). */
    std::vector<BlockMeta> frameMeta_;

    Characterization stats_;
};

} // namespace gllc

#endif // GLLC_ANALYSIS_CHARACTERIZER_HH
