/**
 * @file
 * Policy-independent reuse characterization (Section 2.3).
 *
 * Attached to a BankedLlc as an observer, the Characterizer follows
 * block lifetimes to reproduce the paper's analysis figures under
 * any replacement policy:
 *
 *  - the RT-bit protocol: every render-target block is tagged; a
 *    texture-sampler hit to a tagged block is an inter-stream reuse
 *    and a "consumption" (Figure 6); the tag drops on consumption
 *    and eviction.
 *  - texture/Z epochs: a block's lifetime is split into epochs E_k
 *    demarcated by its LLC hits; death ratio of E_k is the fraction
 *    of lifetimes that reach E_k but not E_{k+1} (Figures 7 and 9).
 */

#ifndef GLLC_ANALYSIS_CHARACTERIZER_HH
#define GLLC_ANALYSIS_CHARACTERIZER_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "cache/banked_llc.hh"

namespace gllc
{

/** Aggregated characterization counters for one simulation run. */
struct Characterization
{
    static constexpr unsigned kEpochs = 4;  ///< E0..E2, E>=3

    /** Texture-sampler LLC hits that consumed a render target. */
    std::uint64_t interTexHits = 0;

    /** Texture-sampler LLC hits within the texture stream. */
    std::uint64_t intraTexHits = 0;

    /** RT-bit set events (distinct productions, Figure 6 lower). */
    std::uint64_t rtProductions = 0;

    /** RT blocks consumed by the sampler from the LLC. */
    std::uint64_t rtConsumptions = 0;

    /** Intra-stream texture hits per epoch (Figure 7 upper). */
    std::array<std::uint64_t, kEpochs> texEpochHits{};

    /** Texture lifetimes that attained epoch k (Figure 7 lower). */
    std::array<std::uint64_t, kEpochs> texReach{};

    /** Z lifetimes that attained epoch k (Figure 9). */
    std::array<std::uint64_t, kEpochs> zReach{};

    /** Death ratio of texture epoch k: 1 - reach[k+1]/reach[k]. */
    double texDeathRatio(unsigned k) const;

    /** Death ratio of Z epoch k. */
    double zDeathRatio(unsigned k) const;

    /** Fraction of produced RT blocks consumed by the sampler. */
    double rtConsumptionRate() const;

    void merge(const Characterization &other);
};

/** The observer that produces a Characterization. */
class Characterizer : public LlcObserver
{
  public:
    void onHit(const MemAccess &access) override;
    void onMiss(const MemAccess &access) override;
    void onEvict(Addr block_addr) override;

    const Characterization &result() const { return stats_; }

  private:
    enum class Kind : std::uint8_t { None, Texture, Z };

    struct BlockMeta
    {
        Kind kind = Kind::None;
        bool rtBit = false;
        std::uint8_t hits = 0;  ///< epoch index within the lifetime
    };

    /** Begin a texture lifetime for @p meta (enters E0). */
    void startTexLifetime(BlockMeta &meta);

    /** Begin a Z lifetime. */
    void startZLifetime(BlockMeta &meta);

    /** The fill portion of servicing a miss (keyed by block). */
    void installMeta(const MemAccess &access);

    std::unordered_map<Addr, BlockMeta> meta_;
    /** The block address whose fill follows the pending miss. */
    Characterization stats_;
};

} // namespace gllc

#endif // GLLC_ANALYSIS_CHARACTERIZER_HH
