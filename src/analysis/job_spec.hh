/**
 * @file
 * SweepJobSpec: the serializable, plain-data description of a sweep.
 *
 * A sweep used to exist only as a SweepConfig builder captured
 * in-process — fine for a bench binary, useless for a service that
 * must receive work over a socket, deduplicate identical requests
 * across tenants, and key a result store.  SweepJobSpec is the job
 * API those flows share:
 *
 *  - plain data (policy names, frame references, scalar knobs): no
 *    factories, no pointers, nothing that cannot round-trip;
 *  - canonical JSON: toJson() emits one fixed field order with no
 *    whitespace variance, so equal specs serialize byte-identically
 *    and parseSweepJobSpec(toJson()) is the identity;
 *  - stable hashes: contentHash() covers exactly the fields that
 *    determine replay results (policies, frames, scale, LLC size) —
 *    execution knobs like thread counts or retry budgets are
 *    excluded because results are bit-identical across them — and
 *    traceHash() covers the subset that determines the rendered
 *    frame traces.  (trace hash, content hash) is the key of the
 *    service's content-addressed result store.
 *
 * SweepConfig::resolve() produces a fully-defaulted spec (every
 * environment fallback applied); SweepConfig::fromSpec() rebuilds a
 * runnable config, so `fromSpec(cfg.resolve()).run()` is
 * bit-identical to `cfg.run()`.  Serializable jobs are limited to
 * registry policies (policySpec() names); in-process sweeps with
 * custom policy factories still run, they just cannot be shipped to
 * the service.
 */

#ifndef GLLC_ANALYSIS_JOB_SPEC_HH
#define GLLC_ANALYSIS_JOB_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hh"

namespace gllc
{

/** One frame of a job, by application name (serializable). */
struct SweepJobFrame
{
    std::string app;
    std::uint32_t frameIndex = 0;

    bool
    operator==(const SweepJobFrame &other) const
    {
        return frameIndex == other.frameIndex && app == other.app;
    }
};

/** The plain-data description of one sweep job. */
struct SweepJobSpec
{
    /** Format version pinned into the canonical JSON and hashes. */
    static constexpr std::uint32_t kVersion = 1;

    // --- identity: these determine the replay results -----------

    /** Policies in evaluation order, by policySpec registry name. */
    std::vector<std::string> policies;

    /** Frames in sweep order. */
    std::vector<SweepJobFrame> frames;

    /** Linear render-scale divisor (RenderScale::linear). */
    std::uint32_t scaleLinear = 4;

    /** Page-scatter model switch (RenderScale::scatterPages). */
    bool scatterPages = true;

    /** Unscaled LLC capacity in bytes (8 MB paper baseline). */
    std::uint64_t llcBytes = 8ull << 20;

    // --- execution knobs: change how, never what, is computed ---

    bool collectDramTrace = false;
    std::uint32_t threads = 1;      ///< resolved, >= 1
    std::uint32_t frameWindow = 0;  ///< 0 = 2x threads
    bool progress = false;
    std::uint32_t retries = 2;
    std::uint32_t backoffMs = 25;
    std::uint32_t cellTimeoutMs = 0;
    std::string checkpoint;         ///< journal path; "" = off
    bool resume = false;

    bool operator==(const SweepJobSpec &other) const;
    bool operator!=(const SweepJobSpec &other) const
    {
        return !(*this == other);
    }

    /** Canonical JSON of the whole spec (fixed field order). */
    std::string toJson() const;

    /** Canonical JSON of the identity fields only (hash input). */
    std::string identityJson() const;

    /**
     * Stable content hash over identityJson().  Pinned by golden
     * tests: changing a serialized key or the field order is a
     * format break and must fail loudly there.
     */
    std::uint64_t contentHash() const;

    /**
     * Stable hash of the trace-determining subset (frames + scale):
     * two specs with equal traceHash() replay the same rendered
     * traces, whatever their policies or LLC size.
     */
    std::uint64_t traceHash() const;

    /**
     * Check that the spec can run: nonempty policies and frames,
     * every application and policy name known to the registries.
     * InvalidArgument with a precise context otherwise — the service
     * rejects the job instead of fatal()ing the daemon.
     */
    [[nodiscard]] Result<Unit> validate() const;
};

/**
 * Parse a spec from JSON (any field order).  Identity fields are
 * required; execution knobs default as the struct does.  Unknown
 * keys are rejected (InvalidArgument) so a misspelled knob cannot
 * silently fall back to a default, and structurally broken JSON
 * surfaces as Corrupt.
 */
[[nodiscard]] Result<SweepJobSpec>
parseSweepJobSpec(const std::string &json);

} // namespace gllc

#endif // GLLC_ANALYSIS_JOB_SPEC_HH
