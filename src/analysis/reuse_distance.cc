#include "analysis/reuse_distance.hh"

#include <unordered_map>

#include "common/logging.hh"
#include "common/types.hh"

namespace gllc
{

unsigned
ReuseDistanceHistogram::binOf(std::uint64_t distance)
{
    if (distance == 0)
        return 0;
    unsigned bin = 1;
    while (bin + 1 < kBins && (distance >> bin) != 0)
        ++bin;
    return bin;
}

std::uint64_t
ReuseDistanceHistogram::accesses() const
{
    std::uint64_t total = cold;
    for (const auto b : bins)
        total += b;
    return total;
}

double
ReuseDistanceHistogram::fractionBelow(std::uint64_t limit_blocks) const
{
    std::uint64_t reused = 0, below = 0;
    std::uint64_t bin_lo = 0;
    for (unsigned i = 0; i < kBins; ++i) {
        reused += bins[i];
        // Bin i covers [2^(i-1), 2^i); count it as below the limit
        // when its upper edge fits.
        const std::uint64_t bin_hi =
            (i == 0) ? 1 : (std::uint64_t{1} << i);
        if (bin_hi <= limit_blocks)
            below += bins[i];
        bin_lo = bin_hi;
    }
    (void)bin_lo;
    return reused == 0
        ? 0.0
        : static_cast<double>(below) / static_cast<double>(reused);
}

void
ReuseDistanceHistogram::merge(const ReuseDistanceHistogram &other)
{
    cold += other.cold;
    for (unsigned i = 0; i < kBins; ++i)
        bins[i] += other.bins[i];
}

namespace
{

/** Fenwick tree over access positions (1s at last-access slots). */
class Fenwick
{
  public:
    explicit Fenwick(std::size_t n)
        : tree_(n + 1, 0)
    {
    }

    void
    add(std::size_t i, int delta)
    {
        for (++i; i < tree_.size(); i += i & (~i + 1))
            tree_[i] += delta;
    }

    /** Sum of [0, i). */
    std::int64_t
    prefix(std::size_t i) const
    {
        std::int64_t s = 0;
        for (; i > 0; i -= i & (~i + 1))
            s += tree_[i];
        return s;
    }

    std::int64_t
    total() const
    {
        return prefix(tree_.size() - 1);
    }

  private:
    std::vector<std::int64_t> tree_;
};

} // namespace

StreamReuseDistances
measureReuseDistances(const std::vector<MemAccess> &trace)
{
    StreamReuseDistances result{};
    Fenwick fen(trace.size());
    std::unordered_map<Addr, std::size_t> last_seen;
    last_seen.reserve(trace.size() / 4 + 1);

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Addr block = blockNumber(trace[i].addr);
        auto &hist =
            result[static_cast<std::size_t>(trace[i].stream)];
        const auto it = last_seen.find(block);
        if (it == last_seen.end()) {
            ++hist.cold;
        } else {
            // Distinct blocks touched since the previous access =
            // number of last-access markers after that position.
            const std::int64_t after =
                fen.total() - fen.prefix(it->second + 1);
            hist.record(static_cast<std::uint64_t>(after));
            fen.add(it->second, -1);
        }
        fen.add(i, +1);
        last_seen[block] = i;
    }
    return result;
}

} // namespace gllc
