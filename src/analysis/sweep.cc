#include "analysis/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <ostream>
#include <thread>

#include "analysis/checkpoint.hh"
#include "common/audit.hh"
#include "common/env.hh"
#include "common/fault.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/progress.hh"
#include "common/stats.hh"
#include "common/thread_annotations.hh"
#include "common/thread_pool.hh"
#include "common/trace_event.hh"
#include "workload/trace_cache.hh"

namespace gllc
{

namespace
{

/** Stall injected by the cell.delay fault site (watchdog fodder). */
constexpr unsigned kInjectedDelayMs = 100;

/** Render one frame trace, with an optional timeline span. */
FrameTrace
renderFrame(const FrameSpec &frame, const RenderScale &scale)
{
    TraceSpan span("render",
                   frame.app->name + " frame "
                       + std::to_string(frame.frameIndex),
                   {{"app", frame.app->name},
                    {"frame", std::to_string(frame.frameIndex)}});
    FrameTrace trace =
        cachedRenderFrame(*frame.app, frame.frameIndex, scale);
    if (metricsActive())
        MetricsRegistry::instance().addCounter(
            "sweep.frames_rendered");
    return trace;
}

/**
 * The exception boundary of everything a sweep runs on a worker:
 * returns "" on success, else a description of what was thrown.
 * Nothing may propagate into the ThreadPool, where it would take
 * the whole process (and every completed cell) down with it.
 */
template <typename F>
std::string
guarded(F &&fn)
{
    try {
        fn();
        return {};
    } catch (const std::exception &e) {
        return e.what()[0] != '\0' ? e.what() : "unnamed exception";
    } catch (...) {
        return "non-standard exception";
    }
}

/** Exponential backoff before re-attempt @p attempt (1-based). */
void
backoffSleep(unsigned first_delay_ms, unsigned attempt)
{
    if (first_delay_ms == 0)
        return;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<std::uint64_t>(first_delay_ms)
        << (attempt - 1)));
}

/**
 * Soft per-cell timeout watchdog.  A background thread scans the
 * in-flight cells and warns (once per attempt) about any running
 * longer than the budget.  Deliberately soft: a slow cell is
 * reported and counted (sweep.cell_timeouts), never killed — the
 * replay owns no cancellable state, and a partial kill would trade
 * a slow result for a corrupt one.
 */
class CellWatchdog
{
  public:
    using Namer = std::function<std::string(std::size_t)>;

    CellWatchdog(unsigned timeout_ms, std::size_t slots, Namer namer)
        : timeoutMs_(timeout_ms), slots_(slots),
          namer_(std::move(namer))
    {
        if (timeoutMs_ == 0)
            return;
        starts_ =
            std::make_unique<std::atomic<std::int64_t>[]>(slots_);
        warned_ = std::make_unique<std::atomic<bool>[]>(slots_);
        for (std::size_t i = 0; i < slots_; ++i) {
            starts_[i].store(-1, std::memory_order_relaxed);
            warned_[i].store(false, std::memory_order_relaxed);
        }
        thread_ = std::thread([this] { loop(); });
    }

    ~CellWatchdog()
    {
        if (!thread_.joinable())
            return;
        {
            MutexLock lock(mutex_);
            stopping_ = true;
        }
        cv_.notifyAll();
        thread_.join();
    }

    CellWatchdog(const CellWatchdog &) = delete;
    CellWatchdog &operator=(const CellWatchdog &) = delete;

    void
    begin(std::size_t k)
    {
        if (timeoutMs_ == 0)
            return;
        warned_[k].store(false, std::memory_order_relaxed);
        starts_[k].store(nowMs(), std::memory_order_relaxed);
    }

    void
    end(std::size_t k)
    {
        if (timeoutMs_ == 0)
            return;
        starts_[k].store(-1, std::memory_order_relaxed);
    }

  private:
    static std::int64_t
    nowMs()
    {
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
            .count();
    }

    void
    loop() GLLC_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        const auto poll = std::chrono::milliseconds(
            std::max<unsigned>(timeoutMs_ / 4, 10));
        for (;;) {
            // A spurious wakeup before the poll interval elapses
            // only scans early; scanning is idempotent.
            (void)cv_.waitFor(mutex_, poll);
            if (stopping_)
                return;
            const std::int64_t now = nowMs();
            for (std::size_t k = 0; k < slots_; ++k) {
                const std::int64_t start =
                    starts_[k].load(std::memory_order_relaxed);
                if (start < 0 || now - start <= timeoutMs_)
                    continue;
                if (warned_[k].exchange(true,
                                        std::memory_order_relaxed))
                    continue;
                warn("sweep cell %s has run %lld ms (soft timeout "
                     "%u ms); letting it finish",
                     namer_(k).c_str(),
                     static_cast<long long>(now - start),
                     timeoutMs_);
                if (metricsActive())
                    MetricsRegistry::instance().addCounter(
                        "sweep.cell_timeouts");
            }
        }
    }

    unsigned timeoutMs_;
    std::size_t slots_;
    Namer namer_;
    std::unique_ptr<std::atomic<std::int64_t>[]> starts_;
    std::unique_ptr<std::atomic<bool>[]> warned_;
    std::thread thread_;
    Mutex mutex_;
    CondVar cv_;
    bool stopping_ GLLC_GUARDED_BY(mutex_) = false;
};

/** RAII in-flight marker for one cell attempt. */
class WatchdogScope
{
  public:
    WatchdogScope(CellWatchdog &watchdog, std::size_t k)
        : watchdog_(watchdog), k_(k)
    {
        watchdog_.begin(k_);
    }
    ~WatchdogScope() { watchdog_.end(k_); }
    WatchdogScope(const WatchdogScope &) = delete;
    WatchdogScope &operator=(const WatchdogScope &) = delete;

  private:
    CellWatchdog &watchdog_;
    std::size_t k_;
};

/**
 * Keyed fault-injection draws for one cell attempt.  The key hashes
 * the cell's logical coordinates (not any execution index), so the
 * set of injected failures is identical at any thread count, and a
 * later attempt of the same cell draws independently — which is what
 * makes retry-then-succeed paths reproducible.
 */
void
injectCellFaults(const SweepCell &cell, unsigned attempt)
{
    if (!faultsActive())
        return;
    const std::uint64_t key =
        fnv1a64(cell.key.policy, fnv1a64(cell.key.app))
        ^ mix64(
            (static_cast<std::uint64_t>(cell.key.frameIndex) << 8)
            | attempt);
    if (faultFires(FaultSite::CellDelay, key))
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kInjectedDelayMs));
    if (faultFires(FaultSite::CellThrow, key))
        throwInjectedFault(FaultSite::CellThrow);
}

} // namespace

double
missMetric(const RunResult &r)
{
    return static_cast<double>(r.stats.totalMisses());
}

unsigned
sweepThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    const std::int64_t env = envInt("GLLC_THREADS", 0);
    if (env > 0)
        return static_cast<unsigned>(env);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

// ---------------------------------------------------------------
// SweepConfig
// ---------------------------------------------------------------

SweepConfig::SweepConfig()
    : scale_(scaleFromEnv()),
      frames_(frameSetFromEnv()),
      llcConfig_(scaledLlcConfig(8ull << 20, scale_.pixelScale())),
      fullLlcBytes_(8ull << 20)
{
}

SweepConfig &
SweepConfig::policies(std::vector<std::string> names)
{
    specs_.clear();
    specs_.reserve(names.size());
    for (const std::string &name : names)
        specs_.push_back(policySpec(name));
    return *this;
}

SweepConfig &
SweepConfig::policySpecs(std::vector<PolicySpec> specs)
{
    specs_ = std::move(specs);
    return *this;
}

SweepConfig &
SweepConfig::llcBytes(std::uint64_t full_llc_bytes)
{
    fullLlcBytes_ = full_llc_bytes;
    llcConfig_ = scaledLlcConfig(fullLlcBytes_, scale_.pixelScale());
    return *this;
}

SweepConfig &
SweepConfig::frames(std::vector<FrameSpec> frames)
{
    frames_ = std::move(frames);
    return *this;
}

SweepConfig &
SweepConfig::scale(const RenderScale &scale)
{
    scale_ = scale;
    llcConfig_ = scaledLlcConfig(fullLlcBytes_, scale_.pixelScale());
    return *this;
}

SweepConfig &
SweepConfig::collectDramTrace(bool collect)
{
    collectDram_ = collect;
    return *this;
}

SweepConfig &
SweepConfig::threads(unsigned count)
{
    threads_ = count;
    return *this;
}

SweepConfig &
SweepConfig::frameWindow(unsigned frames)
{
    frameWindow_ = frames;
    return *this;
}

SweepConfig &
SweepConfig::progress(bool enabled)
{
    progress_ = enabled ? 1 : 0;
    return *this;
}

SweepConfig &
SweepConfig::retries(int count)
{
    retries_ = count;
    return *this;
}

SweepConfig &
SweepConfig::backoffMs(int ms)
{
    backoffMs_ = ms;
    return *this;
}

SweepConfig &
SweepConfig::cellTimeoutMs(int ms)
{
    cellTimeoutMs_ = ms;
    return *this;
}

SweepConfig &
SweepConfig::checkpoint(std::string path)
{
    checkpoint_ = std::move(path);
    return *this;
}

SweepConfig &
SweepConfig::resume(bool enabled)
{
    resume_ = enabled ? 1 : 0;
    return *this;
}

SweepConfig &
SweepConfig::cliArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--resume") {
            resume(true);
        } else if (flag == "--checkpoint") {
            if (i + 1 >= argc)
                fatal("--checkpoint requires a file path");
            checkpoint(argv[++i]);
        }
    }
    return *this;
}

std::vector<std::string>
SweepConfig::policyNames() const
{
    std::vector<std::string> names;
    names.reserve(specs_.size());
    for (const PolicySpec &spec : specs_)
        names.push_back(spec.name);
    return names;
}

SweepJobSpec
SweepConfig::resolve() const
{
    SweepJobSpec spec;
    spec.policies = policyNames();
    spec.frames.reserve(frames_.size());
    for (const FrameSpec &frame : frames_)
        spec.frames.push_back(
            {frame.app->name, frame.frameIndex});
    spec.scaleLinear = scale_.linear;
    spec.scatterPages = scale_.scatterPages;
    spec.llcBytes = fullLlcBytes_;

    spec.collectDramTrace = collectDram_;
    spec.threads = sweepThreads(threads_);
    if (frameWindow_ > 0) {
        spec.frameWindow = frameWindow_;
    } else {
        const std::int64_t env = envInt("GLLC_FRAME_WINDOW", 0);
        // 0 stays 0: "2x threads", applied by run() once the
        // frame count is known.
        spec.frameWindow =
            env > 0 ? static_cast<std::uint32_t>(env) : 0;
    }
    spec.progress = progressEnabled(progress_);
    if (retries_ >= 0) {
        spec.retries = static_cast<unsigned>(retries_);
    } else {
        const std::int64_t env = envInt("GLLC_CELL_RETRIES", 2);
        spec.retries = env >= 0 ? static_cast<unsigned>(env) : 0;
    }
    if (backoffMs_ >= 0) {
        spec.backoffMs = static_cast<unsigned>(backoffMs_);
    } else {
        const std::int64_t env = envInt("GLLC_CELL_BACKOFF_MS", 25);
        spec.backoffMs = env >= 0 ? static_cast<unsigned>(env) : 0;
    }
    if (cellTimeoutMs_ >= 0) {
        spec.cellTimeoutMs = static_cast<unsigned>(cellTimeoutMs_);
    } else {
        const std::int64_t env = envInt("GLLC_CELL_TIMEOUT_MS", 0);
        spec.cellTimeoutMs =
            env > 0 ? static_cast<unsigned>(env) : 0;
    }
    spec.checkpoint = !checkpoint_.empty()
                          ? checkpoint_
                          : envString("GLLC_CHECKPOINT", "");
    spec.resume = resume_ >= 0 ? resume_ != 0
                               : envInt("GLLC_RESUME", 0) != 0;
    return spec;
}

SweepConfig
SweepConfig::fromSpec(const SweepJobSpec &spec)
{
    SweepConfig cfg;
    cfg.policies(spec.policies);

    std::vector<FrameSpec> frames;
    frames.reserve(spec.frames.size());
    for (const SweepJobFrame &frame : spec.frames) {
        const AppProfile *app = nullptr;
        for (const AppProfile &candidate : paperApps()) {
            if (candidate.name == frame.app) {
                app = &candidate;
                break;
            }
        }
        if (app == nullptr)
            fatal("job spec names unknown application \"%s\"",
                  frame.app.c_str());
        frames.push_back({app, frame.frameIndex});
    }
    cfg.frames(std::move(frames));

    RenderScale scale;
    scale.linear = spec.scaleLinear;
    scale.scatterPages = spec.scatterPages;
    cfg.scale(scale);
    cfg.llcBytes(spec.llcBytes);

    cfg.collectDramTrace(spec.collectDramTrace);
    cfg.threads(spec.threads > 0 ? spec.threads : 1);
    cfg.frameWindow(spec.frameWindow);
    cfg.progress(spec.progress);
    cfg.retries(static_cast<int>(spec.retries));
    cfg.backoffMs(static_cast<int>(spec.backoffMs));
    cfg.cellTimeoutMs(static_cast<int>(spec.cellTimeoutMs));
    cfg.checkpoint(spec.checkpoint);
    cfg.resume(spec.resume);
    return cfg;
}

SweepResult
SweepConfig::run(const CellObserver &observer) const
{
    GLLC_ASSERT(!specs_.empty());

    // One resolution point: every knob below comes from the spec,
    // never from a second look at the environment.
    const SweepJobSpec job = resolve();

    const std::size_t num_policies = specs_.size();
    const std::size_t num_frames = frames_.size();
    const std::size_t num_cells = num_frames * num_policies;
    const unsigned nthreads = job.threads;
    const unsigned max_attempts = job.retries + 1;
    const unsigned backoff_ms = job.backoffMs;
    const unsigned timeout_ms = job.cellTimeoutMs;
    const std::string &checkpoint_path = job.checkpoint;
    const bool resuming = job.resume && !checkpoint_path.empty();

    SweepResult result;
    result.policies_ = policyNames();
    result.scale_ = scale_;
    result.llcConfig_ = llcConfig_;
    result.threadsUsed_ = nthreads;

    // Working state, one slot per (frame, policy) cell; the slots
    // are compacted into cells_ / quarantined_ at the end.
    enum class CellState : std::uint8_t
    {
        Pending,
        Ok,
        Restored,
        Quarantined,
    };
    std::vector<SweepCell> cells(num_cells);
    std::vector<CellState> states(num_cells, CellState::Pending);
    std::vector<std::string> errors(num_cells);

    CheckpointMeta meta;
    meta.scaleLinear = scale_.linear;
    meta.llcBytes = llcConfig_.capacityBytes;
    meta.llcWays = llcConfig_.ways;
    meta.llcBanks = llcConfig_.banks;
    meta.policies = result.policies_;

    bool journal_append = false;
    if (resuming) {
        Result<CheckpointContents> loaded =
            loadCheckpoint(checkpoint_path);
        if (!loaded.ok()) {
            // The journal itself is unusable, so start it over: an
            // appended cell behind an invalid header would be
            // unreadable on the next resume too.
            warn("cannot resume from \"%s\" (%s); running the full "
                 "sweep", checkpoint_path.c_str(),
                 loaded.error().toString().c_str());
        } else {
            // Refuse to mix cells from a different sweep: silently
            // merging them would corrupt results, the opposite of
            // what a checkpoint is for.
            if (loaded.value().meta != meta)
                fatal("checkpoint \"%s\" was written by a different "
                      "sweep configuration; delete it or match the "
                      "configuration", checkpoint_path.c_str());
            CheckpointContents contents = loaded.take();
            journal_append = true;
            if (contents.skippedLines > 0)
                warn("checkpoint \"%s\": skipped %zu torn/corrupt "
                     "line(s)", checkpoint_path.c_str(),
                     contents.skippedLines);
            for (std::size_t f = 0; f < num_frames; ++f) {
                for (std::size_t p = 0; p < num_policies; ++p) {
                    const auto it = contents.cells.find(
                        CellKey{frames_[f].app->name,
                                frames_[f].frameIndex,
                                specs_[p].name});
                    if (it == contents.cells.end())
                        continue;
                    const std::size_t k = f * num_policies + p;
                    cells[k] = std::move(it->second);
                    states[k] = CellState::Restored;
                }
            }
        }
        if (observer && collectDram_)
            warn("resuming a DRAM-trace sweep: restored cells do "
                 "not re-fire the observer");
    }

    std::unique_ptr<CheckpointWriter> journal;
    if (!checkpoint_path.empty())
        journal = std::make_unique<CheckpointWriter>(
            checkpoint_path, meta, journal_append);

    // Window of frames whose traces live in memory concurrently.
    std::size_t window = job.frameWindow;
    if (window == 0)
        window = 2 * static_cast<std::size_t>(nthreads);
    // Each in-flight cell of a DRAM-trace run retains a bulky
    // trace until observed, so keep fewer frames open.
    if (collectDram_)
        window = std::min<std::size_t>(window, nthreads);
    window = std::max<std::size_t>(1,
                                   std::min(window, num_frames));

    ProgressMeter progress(job.progress, num_cells);
    const auto start = std::chrono::steady_clock::now();

    CellWatchdog watchdog(
        timeout_ms, num_cells,
        [this, num_policies](std::size_t k) {
            const FrameSpec &frame = frames_[k / num_policies];
            return frame.app->name + " frame "
                + std::to_string(frame.frameIndex) + " "
                + specs_[k % num_policies].name;
        });

    // Replay one cell.  Everything it touches is private to the
    // call (the trace is shared immutable), so cells run on any
    // thread with bit-identical results.
    const auto replay_cell = [this](SweepCell &cell,
                                    const FrameTrace &trace,
                                    const PolicySpec &spec) {
        TraceSpan span(
            "cell", cell.key.toString(),
            {{"app", cell.key.app},
             {"frame", std::to_string(cell.key.frameIndex)},
             {"policy", cell.key.policy}});
        RunOptions options;
        options.collectDramTrace = collectDram_;
        if (auditActive()) {
            // Name the cell in any audit report, so a violation in a
            // concurrent sweep aborts with its exact coordinates.
            AuditScope scope;
            auditContext().app = cell.key.app;
            auditContext().frame = cell.key.frameIndex;
            cell.result = runTrace(trace, spec, llcConfig_, options);
        } else {
            cell.result = runTrace(trace, spec, llcConfig_, options);
        }
    };

    // Sampled once per sweep; the per-cell bookkeeping below never
    // re-reads the metrics switch.
    const bool metrics_on = metricsActive();

    // One cell under the full fault boundary: bounded retries with
    // exponential backoff, then quarantine.
    const auto attempt_cell = [&](std::size_t k,
                                  const FrameSpec &frame,
                                  const FrameTrace &trace) {
        const PolicySpec &spec = specs_[k % num_policies];
        SweepCell &cell = cells[k];
        cell.key = {frame.app->name, frame.frameIndex, spec.name};
        for (unsigned attempt = 1; attempt <= max_attempts;
             ++attempt) {
            cell.attempts = attempt;
            const std::string error = guarded([&] {
                injectCellFaults(cell, attempt);
                WatchdogScope in_flight(watchdog, k);
                replay_cell(cell, trace, spec);
            });
            if (error.empty()) {
                states[k] = CellState::Ok;
                return;
            }
            errors[k] = error;
            if (attempt < max_attempts) {
                if (metrics_on)
                    MetricsRegistry::instance().addCounter(
                        "sweep.retries");
                backoffSleep(backoff_ms, attempt);
            }
        }
        states[k] = CellState::Quarantined;
        warn("quarantined cell %s after %u attempt(s): %s",
             cell.key.toString().c_str(), cell.attempts,
             errors[k].c_str());
        if (metrics_on)
            MetricsRegistry::instance().addCounter(
                "sweep.quarantined");
    };

    // Frame rendering under the same retry discipline; a frame that
    // cannot be produced quarantines its pending cells.
    struct RenderedFrame
    {
        FrameTrace trace;
        bool ok = false;
        std::string error;
        unsigned attempts = 0;
    };

    const auto render_checked = [&](const FrameSpec &frame) {
        RenderedFrame out;
        for (unsigned attempt = 1; attempt <= max_attempts;
             ++attempt) {
            out.attempts = attempt;
            const std::string error = guarded(
                [&] { out.trace = renderFrame(frame, scale_); });
            if (error.empty()) {
                out.ok = true;
                return out;
            }
            out.error = error;
            if (attempt < max_attempts) {
                if (metrics_on)
                    MetricsRegistry::instance().addCounter(
                        "sweep.retries");
                backoffSleep(backoff_ms, attempt);
            }
        }
        warn("frame %s %u failed to render after %u attempt(s): %s",
             frame.app->name.c_str(), frame.frameIndex,
             out.attempts, out.error.c_str());
        return out;
    };

    const auto mark_render_failed = [&](std::size_t k,
                                        const FrameSpec &frame,
                                        const RenderedFrame &r) {
        SweepCell &cell = cells[k];
        cell.key = {frame.app->name, frame.frameIndex,
                    specs_[k % num_policies].name};
        cell.attempts = r.attempts;
        errors[k] = "frame render failed: " + r.error;
        states[k] = CellState::Quarantined;
        if (metrics_on)
            MetricsRegistry::instance().addCounter(
                "sweep.quarantined");
    };

    /** Does any cell of global frame @p f still need its trace? */
    const auto frame_pending = [&](std::size_t f) {
        for (std::size_t p = 0; p < num_policies; ++p) {
            if (states[f * num_policies + p] == CellState::Pending)
                return true;
        }
        return false;
    };

    // Merge step, deterministic sweep order: observers fire,
    // fresh cells are journaled, bulky traces are dropped.
    std::size_t done = 0;
    const auto finish_cell = [&](std::size_t k,
                                 const FrameTrace *trace) {
        SweepCell &cell = cells[k];
        switch (states[k]) {
          case CellState::Ok:
            if (observer && trace != nullptr)
                observer(cell, *trace);
            if (journal)
                journal->append(cell);
            if (metrics_on)
                MetricsRegistry::instance().addCounter(
                    "sweep.cells_done");
            cell.result.dramTrace.clear();
            cell.result.dramTrace.shrink_to_fit();
            break;
          case CellState::Restored:
            if (metrics_on)
                MetricsRegistry::instance().addCounter(
                    "sweep.cells_restored");
            break;
          case CellState::Quarantined:
            break;
          case CellState::Pending:
            panic("sweep cell %zu was never executed", k);
        }
        progress.update(++done);
    };

    if (nthreads == 1) {
        // Serial fallback (GLLC_THREADS=1): no pool, no extra
        // trace buffering.
        for (std::size_t f = 0; f < num_frames; ++f) {
            const FrameSpec &frame = frames_[f];
            RenderedFrame rendered;
            if (frame_pending(f))
                rendered = render_checked(frame);
            for (std::size_t p = 0; p < num_policies; ++p) {
                const std::size_t k = f * num_policies + p;
                if (states[k] == CellState::Pending) {
                    if (rendered.ok)
                        attempt_cell(k, frame, rendered.trace);
                    else
                        mark_render_failed(k, frame, rendered);
                }
                finish_cell(k,
                            rendered.ok ? &rendered.trace : nullptr);
            }
        }
    } else {
        ThreadPool pool(nthreads);
        for (std::size_t base = 0; base < num_frames;
             base += window) {
            const std::size_t block =
                std::min(window, num_frames - base);

            const std::string window_tag =
                "frames " + std::to_string(base) + ".."
                + std::to_string(base + block - 1);

            // Produce the block's still-needed traces once, in
            // parallel; immutable from here on.
            std::vector<RenderedFrame> rendered(block);
            {
                TraceSpan phase("phase", "render " + window_tag);
                pool.parallelFor(block, [&](std::size_t i) {
                    if (frame_pending(base + i))
                        rendered[i] =
                            render_checked(frames_[base + i]);
                });
            }

            // Replay every pending (frame, policy) cell of the
            // block concurrently into its preallocated slot.
            {
                TraceSpan phase("phase", "replay " + window_tag);
                pool.parallelFor(
                    block * num_policies, [&](std::size_t idx) {
                        const std::size_t f = idx / num_policies;
                        const std::size_t p = idx % num_policies;
                        const std::size_t k =
                            (base + f) * num_policies + p;
                        if (states[k] != CellState::Pending)
                            return;
                        if (rendered[f].ok)
                            attempt_cell(k, frames_[base + f],
                                         rendered[f].trace);
                        else
                            mark_render_failed(k, frames_[base + f],
                                               rendered[f]);
                    });
            }

            // Merge: observers fire in sweep order regardless of
            // completion order.
            TraceSpan phase("phase", "merge " + window_tag);
            for (std::size_t f = 0; f < block; ++f) {
                for (std::size_t p = 0; p < num_policies; ++p) {
                    finish_cell((base + f) * num_policies + p,
                                rendered[f].ok ? &rendered[f].trace
                                               : nullptr);
                }
            }
        }
    }

    // Compact the slots: surviving cells keep deterministic sweep
    // order, failures move to the quarantine manifest.
    result.cells_.reserve(num_cells);
    for (std::size_t k = 0; k < num_cells; ++k) {
        if (states[k] == CellState::Quarantined) {
            result.quarantined_.push_back(
                {cells[k].key, errors[k], cells[k].attempts});
            continue;
        }
        if (states[k] == CellState::Restored)
            ++result.restoredCells_;
        result.cells_.push_back(std::move(cells[k]));
    }

    result.wallSeconds_ = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    return result;
}

// ---------------------------------------------------------------
// SweepResult
// ---------------------------------------------------------------

SweepResult
SweepResult::fromParts(std::vector<std::string> policies,
                       const RenderScale &scale,
                       const LlcConfig &llc_config,
                       std::vector<SweepCell> cells,
                       std::vector<QuarantinedCell> quarantined,
                       std::size_t restored_cells,
                       double wall_seconds, unsigned threads_used)
{
    SweepResult result;
    result.policies_ = std::move(policies);
    result.scale_ = scale;
    result.llcConfig_ = llc_config;
    result.cells_ = std::move(cells);
    result.quarantined_ = std::move(quarantined);
    result.restoredCells_ = restored_cells;
    result.wallSeconds_ = wall_seconds;
    result.threadsUsed_ = threads_used;
    return result;
}

std::vector<std::string>
SweepResult::appOrder() const
{
    std::vector<std::string> order;
    for (const AppProfile &app : paperApps()) {
        for (const SweepCell &cell : cells_) {
            if (cell.key.app == app.name) {
                order.push_back(app.name);
                break;
            }
        }
    }
    return order;
}

std::map<std::string, std::map<std::string, double>>
SweepResult::totalsByApp(const Metric &metric) const
{
    std::map<std::string, std::map<std::string, double>> totals;
    for (const SweepCell &cell : cells_)
        totals[cell.key.app][cell.key.policy] +=
            metric(cell.result);
    return totals;
}

std::map<std::string, double>
SweepResult::meanNormalized(const Metric &metric,
                            const std::string &baseline) const
{
    GLLC_ASSERT_MSG(std::find(policies_.begin(), policies_.end(),
                              baseline)
                        != policies_.end(),
                    "baseline policy \"%s\" not swept",
                    baseline.c_str());

    // Collect per-frame baseline values.
    std::map<std::pair<std::string, std::uint32_t>, double> base;
    for (const SweepCell &cell : cells_) {
        if (cell.key.policy == baseline)
            base[{cell.key.app, cell.key.frameIndex}] =
                metric(cell.result);
    }

    std::map<std::string, std::vector<double>> ratios;
    for (const SweepCell &cell : cells_) {
        const auto it =
            base.find({cell.key.app, cell.key.frameIndex});
        // A frame whose baseline cell was quarantined contributes
        // no ratios: partial results stay comparable.
        if (it == base.end())
            continue;
        if (it->second > 0.0)
            ratios[cell.key.policy].push_back(metric(cell.result)
                                              / it->second);
    }

    std::map<std::string, double> means;
    for (const auto &[policy, values] : ratios)
        means[policy] = mean(values);
    return means;
}

void
SweepResult::printNormalizedTable(std::ostream &os,
                                  const std::string &title,
                                  const Metric &metric,
                                  const std::string &baseline) const
{
    const auto totals = totalsByApp(metric);

    std::vector<std::string> header{"app"};
    for (const std::string &p : policies_) {
        if (p != baseline)
            header.push_back(p);
    }
    TablePrinter tp(header);

    for (const std::string &app : appOrder()) {
        const auto &row = totals.at(app);
        const auto base_it = row.find(baseline);
        const double base =
            base_it != row.end() ? base_it->second : 0.0;
        std::vector<std::string> row_cells{app};
        for (const std::string &p : policies_) {
            if (p == baseline)
                continue;
            const auto it = row.find(p);
            row_cells.push_back(it != row.end() && base > 0.0
                                    ? fmt(it->second / base, 3)
                                    : "n/a");
        }
        tp.addRow(std::move(row_cells));
    }

    const auto means = meanNormalized(metric, baseline);
    std::vector<std::string> mean_row{"MEAN"};
    for (const std::string &p : policies_) {
        if (p == baseline)
            continue;
        const auto it = means.find(p);
        mean_row.push_back(it != means.end() ? fmt(it->second, 3)
                                             : "n/a");
    }
    tp.addRow(std::move(mean_row));

    os << title << " (normalized to " << baseline << ")\n";
    tp.print(os);
    if (!quarantined_.empty())
        os << "(" << quarantined_.size()
           << " quarantined cell(s) excluded)\n";
    os << '\n';
}

} // namespace gllc
