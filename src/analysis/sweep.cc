#include "analysis/sweep.hh"

#include <ostream>

#include "common/logging.hh"
#include "workload/trace_cache.hh"
#include "common/stats.hh"

namespace gllc
{

double
missMetric(const RunResult &r)
{
    return static_cast<double>(r.stats.totalMisses());
}

PolicySweep::PolicySweep(std::vector<std::string> policy_names,
                         std::uint64_t full_llc_bytes)
    : policies_(std::move(policy_names)),
      scale_(scaleFromEnv()),
      frames_(frameSetFromEnv()),
      llcConfig_(scaledLlcConfig(full_llc_bytes, scale_.pixelScale()))
{
    GLLC_ASSERT(!policies_.empty());
}

void
PolicySweep::run(const std::function<void(const SweepCell &,
                                          const FrameTrace &)> &per_frame)
{
    cells_.clear();
    cells_.reserve(frames_.size() * policies_.size());

    for (const FrameSpec &spec : frames_) {
        const FrameTrace trace =
            cachedRenderFrame(*spec.app, spec.frameIndex, scale_);

        for (const std::string &policy : policies_) {
            SweepCell cell;
            cell.app = spec.app->name;
            cell.frameIndex = spec.frameIndex;
            cell.policy = policy;

            RunOptions options;
            options.collectDramTrace = collectDram_;
            cell.result = runTrace(trace, policySpec(policy),
                                   llcConfig_, options);

            if (per_frame)
                per_frame(cell, trace);

            // DRAM traces are large; do not retain them.
            cell.result.dramTrace.clear();
            cell.result.dramTrace.shrink_to_fit();
            cells_.push_back(std::move(cell));
        }
    }
}

std::vector<std::string>
PolicySweep::appOrder() const
{
    std::vector<std::string> order;
    for (const AppProfile &app : paperApps()) {
        for (const SweepCell &cell : cells_) {
            if (cell.app == app.name) {
                order.push_back(app.name);
                break;
            }
        }
    }
    return order;
}

std::map<std::string, std::map<std::string, double>>
PolicySweep::totalsByApp(const Metric &metric) const
{
    std::map<std::string, std::map<std::string, double>> totals;
    for (const SweepCell &cell : cells_)
        totals[cell.app][cell.policy] += metric(cell.result);
    return totals;
}

std::map<std::string, double>
PolicySweep::meanNormalized(const Metric &metric,
                            const std::string &baseline) const
{
    // Collect per-frame baseline values.
    std::map<std::pair<std::string, std::uint32_t>, double> base;
    for (const SweepCell &cell : cells_) {
        if (cell.policy == baseline)
            base[{cell.app, cell.frameIndex}] = metric(cell.result);
    }
    GLLC_ASSERT_MSG(!base.empty(), "baseline policy \"%s\" not swept",
                    baseline.c_str());

    std::map<std::string, std::vector<double>> ratios;
    for (const SweepCell &cell : cells_) {
        const auto it = base.find({cell.app, cell.frameIndex});
        GLLC_ASSERT(it != base.end());
        if (it->second > 0.0)
            ratios[cell.policy].push_back(metric(cell.result)
                                          / it->second);
    }

    std::map<std::string, double> means;
    for (const auto &[policy, values] : ratios)
        means[policy] = mean(values);
    return means;
}

void
PolicySweep::printNormalizedTable(std::ostream &os,
                                  const std::string &title,
                                  const Metric &metric,
                                  const std::string &baseline) const
{
    const auto totals = totalsByApp(metric);

    std::vector<std::string> header{"app"};
    for (const std::string &p : policies_) {
        if (p != baseline)
            header.push_back(p);
    }
    TablePrinter tp(header);

    for (const std::string &app : appOrder()) {
        const auto &row = totals.at(app);
        const double base = row.at(baseline);
        std::vector<std::string> cells{app};
        for (const std::string &p : policies_) {
            if (p == baseline)
                continue;
            cells.push_back(base > 0.0 ? fmt(row.at(p) / base, 3)
                                       : "n/a");
        }
        tp.addRow(std::move(cells));
    }

    const auto means = meanNormalized(metric, baseline);
    std::vector<std::string> mean_row{"MEAN"};
    for (const std::string &p : policies_) {
        if (p != baseline)
            mean_row.push_back(fmt(means.at(p), 3));
    }
    tp.addRow(std::move(mean_row));

    os << title << " (normalized to " << baseline << ")\n";
    tp.print(os);
    os << '\n';
}

} // namespace gllc
