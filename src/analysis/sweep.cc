#include "analysis/sweep.hh"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <thread>

#include "common/audit.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/progress.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "common/trace_event.hh"
#include "workload/trace_cache.hh"

namespace gllc
{

namespace
{

/** Render one frame trace, with an optional timeline span. */
FrameTrace
renderFrame(const FrameSpec &frame, const RenderScale &scale)
{
    TraceSpan span("render",
                   frame.app->name + " frame "
                       + std::to_string(frame.frameIndex),
                   {{"app", frame.app->name},
                    {"frame", std::to_string(frame.frameIndex)}});
    FrameTrace trace =
        cachedRenderFrame(*frame.app, frame.frameIndex, scale);
    if (metricsActive())
        MetricsRegistry::instance().addCounter(
            "sweep.frames_rendered");
    return trace;
}

} // namespace

double
missMetric(const RunResult &r)
{
    return static_cast<double>(r.stats.totalMisses());
}

unsigned
sweepThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    const std::int64_t env = envInt("GLLC_THREADS", 0);
    if (env > 0)
        return static_cast<unsigned>(env);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

// ---------------------------------------------------------------
// SweepConfig
// ---------------------------------------------------------------

SweepConfig::SweepConfig()
    : scale_(scaleFromEnv()),
      frames_(frameSetFromEnv()),
      llcConfig_(scaledLlcConfig(8ull << 20, scale_.pixelScale())),
      fullLlcBytes_(8ull << 20)
{
}

SweepConfig &
SweepConfig::policies(std::vector<std::string> names)
{
    specs_.clear();
    specs_.reserve(names.size());
    for (const std::string &name : names)
        specs_.push_back(policySpec(name));
    return *this;
}

SweepConfig &
SweepConfig::policySpecs(std::vector<PolicySpec> specs)
{
    specs_ = std::move(specs);
    return *this;
}

SweepConfig &
SweepConfig::llcBytes(std::uint64_t full_llc_bytes)
{
    fullLlcBytes_ = full_llc_bytes;
    llcConfig_ = scaledLlcConfig(fullLlcBytes_, scale_.pixelScale());
    return *this;
}

SweepConfig &
SweepConfig::frames(std::vector<FrameSpec> frames)
{
    frames_ = std::move(frames);
    return *this;
}

SweepConfig &
SweepConfig::scale(const RenderScale &scale)
{
    scale_ = scale;
    llcConfig_ = scaledLlcConfig(fullLlcBytes_, scale_.pixelScale());
    return *this;
}

SweepConfig &
SweepConfig::collectDramTrace(bool collect)
{
    collectDram_ = collect;
    return *this;
}

SweepConfig &
SweepConfig::threads(unsigned count)
{
    threads_ = count;
    return *this;
}

SweepConfig &
SweepConfig::frameWindow(unsigned frames)
{
    frameWindow_ = frames;
    return *this;
}

SweepConfig &
SweepConfig::progress(bool enabled)
{
    progress_ = enabled ? 1 : 0;
    return *this;
}

std::vector<std::string>
SweepConfig::policyNames() const
{
    std::vector<std::string> names;
    names.reserve(specs_.size());
    for (const PolicySpec &spec : specs_)
        names.push_back(spec.name);
    return names;
}

unsigned
SweepConfig::resolvedThreads() const
{
    return sweepThreads(threads_);
}

SweepResult
SweepConfig::run(const CellObserver &observer) const
{
    GLLC_ASSERT(!specs_.empty());

    const std::size_t num_policies = specs_.size();
    const std::size_t num_frames = frames_.size();
    const std::size_t num_cells = num_frames * num_policies;
    const unsigned nthreads = resolvedThreads();

    SweepResult result;
    result.policies_ = policyNames();
    result.scale_ = scale_;
    result.llcConfig_ = llcConfig_;
    result.threadsUsed_ = nthreads;
    result.cells_.resize(num_cells);

    // Window of frames whose traces live in memory concurrently.
    std::size_t window = frameWindow_;
    if (window == 0)
        window = static_cast<std::size_t>(
            envInt("GLLC_FRAME_WINDOW", 0));
    if (window == 0)
        window = 2 * static_cast<std::size_t>(nthreads);
    // Each in-flight cell of a DRAM-trace run retains a bulky
    // trace until observed, so keep fewer frames open.
    if (collectDram_)
        window = std::min<std::size_t>(window, nthreads);
    window = std::max<std::size_t>(1,
                                   std::min(window, num_frames));

    ProgressMeter progress(progressEnabled(progress_), num_cells);
    const auto start = std::chrono::steady_clock::now();

    // Replay one cell.  Everything it touches is private to the
    // call (the trace is shared immutable), so cells run on any
    // thread with bit-identical results.
    const auto run_cell = [this](const FrameSpec &frame,
                                 const FrameTrace &trace,
                                 const PolicySpec &spec) {
        SweepCell cell;
        cell.app = frame.app->name;
        cell.frameIndex = frame.frameIndex;
        cell.policy = spec.name;
        TraceSpan span("cell",
                       cell.app + " frame "
                           + std::to_string(cell.frameIndex) + " "
                           + cell.policy,
                       {{"app", cell.app},
                        {"frame", std::to_string(cell.frameIndex)},
                        {"policy", cell.policy}});
        RunOptions options;
        options.collectDramTrace = collectDram_;
        if (auditActive()) {
            // Name the cell in any audit report, so a violation in a
            // concurrent sweep aborts with its exact coordinates.
            AuditScope scope;
            auditContext().app = cell.app;
            auditContext().frame = cell.frameIndex;
            cell.result = runTrace(trace, spec, llcConfig_, options);
        } else {
            cell.result = runTrace(trace, spec, llcConfig_, options);
        }
        return cell;
    };

    // Observe in deterministic order, then drop the bulky trace.
    const auto finish_cell = [&observer](SweepCell &cell,
                                         const FrameTrace &trace) {
        if (observer)
            observer(cell, trace);
        if (metricsActive())
            MetricsRegistry::instance().addCounter(
                "sweep.cells_done");
        cell.result.dramTrace.clear();
        cell.result.dramTrace.shrink_to_fit();
    };

    if (nthreads == 1) {
        // Serial fallback (GLLC_THREADS=1): no pool, no extra
        // trace buffering.
        std::size_t done = 0;
        for (std::size_t f = 0; f < num_frames; ++f) {
            const FrameSpec &frame = frames_[f];
            const FrameTrace trace = renderFrame(frame, scale_);
            for (std::size_t p = 0; p < num_policies; ++p) {
                SweepCell &cell =
                    result.cells_[f * num_policies + p];
                cell = run_cell(frame, trace, specs_[p]);
                finish_cell(cell, trace);
                progress.update(++done);
            }
        }
    } else {
        ThreadPool pool(nthreads);
        std::size_t done = 0;
        for (std::size_t base = 0; base < num_frames;
             base += window) {
            const std::size_t block =
                std::min(window, num_frames - base);

            const std::string window_tag =
                "frames " + std::to_string(base) + ".."
                + std::to_string(base + block - 1);

            // Produce the block's traces once, in parallel;
            // immutable from here on.
            std::vector<FrameTrace> traces(block);
            {
                TraceSpan phase("phase", "render " + window_tag);
                pool.parallelFor(block, [&](std::size_t i) {
                    traces[i] = renderFrame(frames_[base + i],
                                            scale_);
                });
            }

            // Replay every (frame, policy) cell of the block
            // concurrently into its preallocated slot.
            {
                TraceSpan phase("phase", "replay " + window_tag);
                pool.parallelFor(
                    block * num_policies, [&](std::size_t k) {
                        const std::size_t f = k / num_policies;
                        const std::size_t p = k % num_policies;
                        result.cells_[(base + f) * num_policies + p]
                            = run_cell(frames_[base + f], traces[f],
                                       specs_[p]);
                    });
            }

            // Merge: observers fire in sweep order regardless of
            // completion order.
            TraceSpan phase("phase", "merge " + window_tag);
            for (std::size_t f = 0; f < block; ++f) {
                for (std::size_t p = 0; p < num_policies; ++p) {
                    finish_cell(
                        result.cells_[(base + f) * num_policies + p],
                        traces[f]);
                    progress.update(++done);
                }
            }
        }
    }

    result.wallSeconds_ = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    return result;
}

// ---------------------------------------------------------------
// SweepResult
// ---------------------------------------------------------------

std::vector<std::string>
SweepResult::appOrder() const
{
    std::vector<std::string> order;
    for (const AppProfile &app : paperApps()) {
        for (const SweepCell &cell : cells_) {
            if (cell.app == app.name) {
                order.push_back(app.name);
                break;
            }
        }
    }
    return order;
}

std::map<std::string, std::map<std::string, double>>
SweepResult::totalsByApp(const Metric &metric) const
{
    std::map<std::string, std::map<std::string, double>> totals;
    for (const SweepCell &cell : cells_)
        totals[cell.app][cell.policy] += metric(cell.result);
    return totals;
}

std::map<std::string, double>
SweepResult::meanNormalized(const Metric &metric,
                            const std::string &baseline) const
{
    // Collect per-frame baseline values.
    std::map<std::pair<std::string, std::uint32_t>, double> base;
    for (const SweepCell &cell : cells_) {
        if (cell.policy == baseline)
            base[{cell.app, cell.frameIndex}] = metric(cell.result);
    }
    GLLC_ASSERT_MSG(!base.empty(), "baseline policy \"%s\" not swept",
                    baseline.c_str());

    std::map<std::string, std::vector<double>> ratios;
    for (const SweepCell &cell : cells_) {
        const auto it = base.find({cell.app, cell.frameIndex});
        GLLC_ASSERT(it != base.end());
        if (it->second > 0.0)
            ratios[cell.policy].push_back(metric(cell.result)
                                          / it->second);
    }

    std::map<std::string, double> means;
    for (const auto &[policy, values] : ratios)
        means[policy] = mean(values);
    return means;
}

void
SweepResult::printNormalizedTable(std::ostream &os,
                                  const std::string &title,
                                  const Metric &metric,
                                  const std::string &baseline) const
{
    const auto totals = totalsByApp(metric);

    std::vector<std::string> header{"app"};
    for (const std::string &p : policies_) {
        if (p != baseline)
            header.push_back(p);
    }
    TablePrinter tp(header);

    for (const std::string &app : appOrder()) {
        const auto &row = totals.at(app);
        const double base = row.at(baseline);
        std::vector<std::string> cells{app};
        for (const std::string &p : policies_) {
            if (p == baseline)
                continue;
            cells.push_back(base > 0.0 ? fmt(row.at(p) / base, 3)
                                       : "n/a");
        }
        tp.addRow(std::move(cells));
    }

    const auto means = meanNormalized(metric, baseline);
    std::vector<std::string> mean_row{"MEAN"};
    for (const std::string &p : policies_) {
        if (p != baseline)
            mean_row.push_back(fmt(means.at(p), 3));
    }
    tp.addRow(std::move(mean_row));

    os << title << " (normalized to " << baseline << ")\n";
    tp.print(os);
    os << '\n';
}

} // namespace gllc
