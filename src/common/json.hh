/**
 * @file
 * Minimal JSON document parser for the serializable job API.
 *
 * The checkpoint journal deliberately parses its own exact emitter
 * output with a strict sequential cursor; the sweep-service protocol
 * cannot afford that, because job requests arrive from external
 * clients whose field order and whitespace are not ours to dictate.
 * This parser accepts any syntactically valid JSON document (objects,
 * arrays, strings, numbers, booleans, null) and returns a typed tree;
 * malformed input surfaces as a typed Error (never a crash), which is
 * what lets the daemon treat garbage frames as a client problem
 * instead of a process problem.
 *
 * Scope: this is a deserializer only.  Writers in this codebase emit
 * canonical JSON by string concatenation (checkpoint, report,
 * job_spec) so that serialized artifacts are reproducible
 * byte-for-byte; a general-purpose writer would obscure that
 * guarantee.  Numbers are held as doubles (exact for the unsigned
 * integers the job API uses, up to 2^53) plus the raw literal for
 * callers that need to reject non-integers.
 */

#ifndef GLLC_COMMON_JSON_HH
#define GLLC_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hh"

namespace gllc
{

/** One node of a parsed JSON document. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return boolean_; }
    double number() const { return number_; }
    const std::string &string() const { return string_; }

    /** Array elements (valid when isArray()). */
    const std::vector<JsonValue> &items() const { return items_; }

    /** Object members in document order (valid when isObject()). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** First member of @p key, or nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /**
     * The value as an unsigned integer.  Errors (InvalidArgument)
     * when the node is not a number, is negative, has a fractional
     * part, or exceeds 2^53 (where doubles stop being exact).
     */
    [[nodiscard]] Result<std::uint64_t>
    asU64(const char *what) const;

    /** The value as a string; InvalidArgument otherwise. */
    [[nodiscard]] Result<std::string>
    asString(const char *what) const;

    /** The value as a bool; InvalidArgument otherwise. */
    [[nodiscard]] Result<bool> asBool(const char *what) const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool boolean_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse one complete JSON document.  Trailing non-whitespace bytes,
 * nesting beyond 64 levels, and every syntax violation produce an
 * Error of code Corrupt with the byte offset in the context string.
 */
[[nodiscard]] Result<JsonValue> parseJson(const std::string &text);

/**
 * Escape a string for embedding in a JSON emitter ("\\", '"',
 * control characters).  The inverse of the parser's unescaping; the
 * canonical writers (job_spec, protocol) share it.
 */
std::string jsonEscape(const std::string &s);

} // namespace gllc

#endif // GLLC_COMMON_JSON_HH
