#include "common/result.hh"

#include <cstdarg>
#include <cstdio>

namespace gllc
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Io:
        return "io";
      case ErrorCode::BadMagic:
        return "bad-magic";
      case ErrorCode::BadVersion:
        return "bad-version";
      case ErrorCode::Truncated:
        return "truncated";
      case ErrorCode::Corrupt:
        return "corrupt";
      case ErrorCode::ChecksumMismatch:
        return "checksum-mismatch";
      case ErrorCode::LimitExceeded:
        return "limit-exceeded";
      case ErrorCode::InvalidArgument:
        return "invalid-argument";
      case ErrorCode::Injected:
        return "injected";
      case ErrorCode::CellFailed:
        return "cell-failed";
      case ErrorCode::Timeout:
        return "timeout";
      case ErrorCode::Overloaded:
        return "overloaded";
    }
    return "unknown";
}

Error
Error::format(ErrorCode code, const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return Error(code, buf);
}

std::string
Error::toString() const
{
    return std::string(errorCodeName(code)) + ": " + context;
}

} // namespace gllc
