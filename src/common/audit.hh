/**
 * @file
 * Debug-time invariant-audit framework.
 *
 * The GSPC-family policies are small state machines (Tables 3-5 and
 * the Figure-10 block FSM); a silent corruption of an epoch bit or a
 * sampler counter shifts hit rates without any visible fault, which
 * is exactly the failure mode the parallel sweep engine can scale
 * into plausible-but-wrong Table-1 numbers.  The audit layer re-checks
 * the structural invariants of every component after each simulated
 * access and aborts with a structured report naming the policy,
 * stream, set and access index when one is violated.
 *
 * Activation (auditActive()):
 *   - configure with -DGLLC_AUDIT=ON: audited in every run, or
 *   - set GLLC_AUDIT=1 in the environment of any build, or
 *   - call setAuditActive(true) from a test.
 *
 * Auditors are read-only: an audited run produces bit-identical
 * results to an unaudited one, it is merely slower.  Components
 * expose their auditors as auditInvariants() overrides (policies),
 * auditSet() (RripState) or per-access checks guarded by
 * auditActive(); all of them report through GLLC_AUDIT_CHECK /
 * auditFail() so every failure carries the same context block.
 */

#ifndef GLLC_COMMON_AUDIT_HH
#define GLLC_COMMON_AUDIT_HH

#include <cstdint>
#include <string>

namespace gllc
{

/** True when the per-access invariant audit is enabled. */
bool auditActive();

/**
 * Force auditing on or off for this process (tests).  Overrides both
 * the GLLC_AUDIT build option and the GLLC_AUDIT environment switch.
 */
void setAuditActive(bool active);

/**
 * Where in the simulation the audit currently is.  The sweep engine
 * fills the cell fields (app, frame, policy); BankedLlc::access()
 * fills the per-access fields.  Thread-local, so concurrent sweep
 * cells report their own coordinates.  Negative integers and empty
 * strings mean "unknown" and are omitted from reports.
 */
struct AuditContext
{
    std::string app;
    std::int64_t frame = -1;
    std::string policy;
    std::string stream;
    std::int64_t accessIndex = -1;
    std::int64_t bank = -1;
    std::int64_t set = -1;
    std::int64_t way = -1;
};

/** The calling thread's audit context (mutable). */
AuditContext &auditContext();

/**
 * RAII save/restore of the thread's audit context, for scopes that
 * annotate it (one sweep cell, one trace replay).
 */
class AuditScope
{
  public:
    AuditScope();
    ~AuditScope();
    AuditScope(const AuditScope &) = delete;
    AuditScope &operator=(const AuditScope &) = delete;

  private:
    AuditContext saved_;
};

/**
 * Print a structured audit report (component, failed check, the
 * thread's AuditContext and a formatted detail line) and abort.
 */
[[noreturn]] void auditFail(const char *component, const char *check,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Invariant check for auditor implementations: when @p cond is
 * false, fail the audit of @p component naming @p check with a
 * printf-formatted detail message.
 */
#define GLLC_AUDIT_CHECK(component, check, cond, ...)                   \
    do {                                                                \
        if (!(cond))                                                    \
            ::gllc::auditFail(component, check, __VA_ARGS__);           \
    } while (0)

} // namespace gllc

#endif // GLLC_COMMON_AUDIT_HH
