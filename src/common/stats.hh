/**
 * @file
 * Small statistics and reporting helpers.
 *
 * The benchmark harnesses print the same rows the paper's figures
 * plot; TablePrinter produces those fixed-width tables, and the mean
 * helpers compute the cross-frame aggregates the paper reports
 * (arithmetic means of ratios, geometric means for speedups).
 */

#ifndef GLLC_COMMON_STATS_HH
#define GLLC_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gllc
{

/** Arithmetic mean; returns 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Geometric mean; all samples must be positive. */
double geomean(const std::vector<double> &xs);

/** Ratio a/b guarding against a zero denominator. */
double safeRatio(double a, double b);

/**
 * Fixed-width text table writer.
 *
 * Usage:
 *   TablePrinter tp({"app", "NRU", "Belady"});
 *   tp.addRow({"BioShock", "1.07", "0.63"});
 *   tp.print(std::cout);
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header);

    /** Append a data row; must have as many cells as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render the table to a stream with aligned columns. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string fmt(double v, int decimals = 3);

/** Format a percentage (0.123 -> "12.3%"). */
std::string fmtPct(double fraction, int decimals = 1);

} // namespace gllc

#endif // GLLC_COMMON_STATS_HH
