/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in the library (workload generation, BIP
 * throttling, page scattering) flow through Rng so that every
 * experiment is reproducible from a seed.  The generator is
 * xoroshiro128++, which is fast, has a 2^128-1 period and passes the
 * usual statistical batteries; quality far beyond what trace
 * generation needs.
 */

#ifndef GLLC_COMMON_RNG_HH
#define GLLC_COMMON_RNG_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace gllc
{

/** xoroshiro128++ deterministic random number generator. */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        s0 = splitmix(x);
        s1 = splitmix(x);
        if (s0 == 0 && s1 == 0)
            s1 = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t a = s0, b0 = s1;
        const std::uint64_t result = rotl(a + b0, 17) + a;
        const std::uint64_t b = b0 ^ a;
        s0 = rotl(a, 49) ^ b ^ (b << 21);
        s1 = rotl(b, 28);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        GLLC_ASSERT(bound != 0);
        // Lemire multiply-shift; bias is negligible for the bounds
        // used here (< 2^40).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        GLLC_ASSERT(lo <= hi);
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Approximately normal variate (Irwin-Hall sum of 4 uniforms),
     * mean 0, stddev 1.  Good enough for jittering scene parameters.
     */
    double
    gaussian()
    {
        double s = 0.0;
        for (int i = 0; i < 4; ++i)
            s += uniform();
        // Sum of 4 U(0,1): mean 2, variance 4/12 -> stddev 1/sqrt(3).
        return (s - 2.0) / 0.5773502691896258;
    }

    /** Fork an independent generator for a named sub-task. */
    Rng
    fork(std::uint64_t salt)
    {
        return Rng(next() ^ (salt * 0xbf58476d1ce4e5b9ULL));
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t s0;
    std::uint64_t s1;
};

/**
 * Zipf-distributed integer sampler over [0, n).
 *
 * Used to pick which texture a draw call binds: a few popular
 * textures take most of the draws, matching how game assets are
 * reused across a frame.
 */
class ZipfSampler
{
  public:
    /** @param n population size; @param theta skew (0 = uniform). */
    ZipfSampler(std::uint32_t n, double theta)
        : n_(n)
    {
        GLLC_ASSERT(n > 0);
        cdf_.resize(n);
        double sum = 0.0;
        for (std::uint32_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
            cdf_[i] = sum;
        }
        for (std::uint32_t i = 0; i < n; ++i)
            cdf_[i] /= sum;
    }

    /** Draw one sample in [0, n). */
    std::uint32_t
    sample(Rng &rng) const
    {
        const double u = rng.uniform();
        std::uint32_t lo = 0, hi = n_ - 1;
        while (lo < hi) {
            const std::uint32_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    std::uint32_t population() const { return n_; }

  private:
    std::uint32_t n_;
    /** Cumulative probability table for inverse-transform sampling. */
    std::vector<double> cdf_;
};

} // namespace gllc

#endif // GLLC_COMMON_RNG_HH
