#include "common/metrics.hh"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "common/env.hh"
#include "common/logging.hh"

namespace gllc
{

namespace
{

/** -1 = undecided (read the environment), 0 = off, 1 = on. */
std::atomic<int> metricsState{-1};

/**
 * Write the snapshot to the GLLC_STATS_JSON path.  Registered as an
 * atexit handler when that variable requests a dump; also invoked
 * directly via flushConfiguredStatsJson() by long-lived daemons.
 */
void
writeStatsJsonNow()
{
    const std::string path = envString("GLLC_STATS_JSON", "");
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os) {
        warn("GLLC_STATS_JSON: cannot write %s", path.c_str());
        return;
    }
    MetricsRegistry::instance().snapshot().writeJson(os);
}

void
scheduleStatsExportOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        // Touch the registry first so its (leaked) storage outlives
        // any static destruction interleaved with atexit handlers.
        MetricsRegistry::instance();
        std::atexit(writeStatsJsonNow);
    });
}

/** Deterministic double rendering for gauges. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Registry names are plain ASCII, but stay valid JSON regardless. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/**
 * Prometheus metric-name form of a dotted registry name: every
 * character outside [a-zA-Z0-9_] becomes '_', and a leading digit
 * gains a '_' prefix.
 */
std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    if (!name.empty() && name[0] >= '0' && name[0] <= '9')
        out.push_back('_');
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z')
                        || (c >= 'A' && c <= 'Z')
                        || (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

} // namespace

bool
metricsActive()
{
    int v = metricsState.load(std::memory_order_relaxed);
    if (v < 0) {
        const bool json = !envString("GLLC_STATS_JSON", "").empty();
        const bool flag = envString("GLLC_METRICS", "0") != "0";
        v = (json || flag) ? 1 : 0;
        metricsState.store(v, std::memory_order_relaxed);
        if (json)
            scheduleStatsExportOnce();
    }
    return v != 0;
}

void
setMetricsActive(bool active)
{
    metricsState.store(active ? 1 : 0, std::memory_order_relaxed);
    // Honour a pending GLLC_STATS_JSON dump even when a test or the
    // --stats flag was what turned collection on.
    if (active && !envString("GLLC_STATS_JSON", "").empty())
        scheduleStatsExportOnce();
}

const std::int64_t kLatencyBucketBoundsMs[15] = {
    1,    2,    5,     10,    25,    50,    100,  250,
    500,  1000, 2500,  5000,  10000, 30000, 60000,
};

std::int64_t
latencyBucketMs(double ms)
{
    for (const std::int64_t bound : kLatencyBucketBoundsMs) {
        if (ms <= static_cast<double>(bound))
            return bound;
    }
    return kLatencyBucketBoundsMs[14];
}

void
recordLatencyMs(const std::string &name, double ms)
{
    if (!metricsActive())
        return;
    MetricsRegistry::instance().recordValue(name, latencyBucketMs(ms));
}

std::int64_t
histogramQuantile(const MetricValue &hist, double q)
{
    const std::uint64_t total = hist.samples();
    if (total == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    std::uint64_t cumulative = 0;
    for (const auto &[value, count] : hist.buckets) {
        cumulative += count;
        if (cumulative >= rank)
            return value;
    }
    return hist.buckets.rbegin()->first;
}

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "invalid";
}

std::uint64_t
MetricValue::samples() const
{
    std::uint64_t total = 0;
    for (const auto &[value, count] : buckets)
        total += count;
    return total;
}

void
MetricValue::merge(const MetricValue &other, const std::string &name)
{
    if (kind != other.kind) {
        panic("metric \"%s\" merged as %s and %s", name.c_str(),
              metricKindName(kind), metricKindName(other.kind));
    }
    switch (kind) {
      case MetricKind::Counter:
        count += other.count;
        break;
      case MetricKind::Gauge:
        gauge = (other.gauge > gauge) ? other.gauge : gauge;
        break;
      case MetricKind::Histogram:
        for (const auto &[value, n] : other.buckets)
            buckets[value] += n;
        break;
    }
}

// ---------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------

const MetricValue *
MetricsSnapshot::find(const std::string &name) const
{
    const auto it = values_.find(name);
    return it == values_.end() ? nullptr : &it->second;
}

std::uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    const MetricValue *v = find(name);
    return (v != nullptr && v->kind == MetricKind::Counter) ? v->count
                                                            : 0;
}

MetricsSnapshot
MetricsSnapshot::withPrefix(const std::string &prefix) const
{
    MetricsSnapshot out;
    for (const auto &[name, value] : values_) {
        if (name.compare(0, prefix.size(), prefix) == 0)
            out.values_.emplace(name, value);
    }
    return out;
}

void
MetricsSnapshot::writeJson(std::ostream &os) const
{
    os << "{\n  \"schema\": \"gllc-stats-v1\",\n  \"metrics\": [\n";
    std::size_t i = 0;
    for (const auto &[name, v] : values_) {
        os << "    {\"name\": \"" << jsonEscape(name)
           << "\", \"type\": \"" << metricKindName(v.kind) << "\"";
        switch (v.kind) {
          case MetricKind::Counter:
            os << ", \"value\": " << v.count;
            break;
          case MetricKind::Gauge:
            os << ", \"value\": " << fmtDouble(v.gauge);
            break;
          case MetricKind::Histogram: {
            os << ", \"total\": " << v.samples()
               << ", \"buckets\": [";
            std::size_t b = 0;
            for (const auto &[value, count] : v.buckets) {
                os << (b++ ? ", " : "") << "[" << value << ", "
                   << count << "]";
            }
            os << "]";
            break;
          }
        }
        os << "}" << (++i < values_.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

void
MetricsSnapshot::writeCsv(std::ostream &os) const
{
    os << "name,type,key,value\n";
    for (const auto &[name, v] : values_) {
        switch (v.kind) {
          case MetricKind::Counter:
            os << name << ",counter,," << v.count << '\n';
            break;
          case MetricKind::Gauge:
            os << name << ",gauge,," << fmtDouble(v.gauge) << '\n';
            break;
          case MetricKind::Histogram:
            for (const auto &[value, count] : v.buckets) {
                os << name << ",histogram," << value << ',' << count
                   << '\n';
            }
            break;
        }
    }
}

void
MetricsSnapshot::writePrometheus(std::ostream &os) const
{
    for (const auto &[name, v] : values_) {
        std::string base = promName(name);
        switch (v.kind) {
          case MetricKind::Counter:
            // Counters gain the conventional `_total` suffix unless
            // the source name already carries it (gllcd.shed_total
            // must not become gllcd_shed_total_total).
            if (base.size() < 6
                || base.compare(base.size() - 6, 6, "_total") != 0)
                base += "_total";
            os << "# TYPE " << base << " counter\n"
               << base << ' ' << v.count << '\n';
            break;
          case MetricKind::Gauge:
            os << "# TYPE " << base << " gauge\n"
               << base << ' ' << fmtDouble(v.gauge) << '\n';
            break;
          case MetricKind::Histogram: {
            os << "# TYPE " << base << " histogram\n";
            std::uint64_t cumulative = 0;
            std::int64_t weighted = 0;
            for (const auto &[value, count] : v.buckets) {
                cumulative += count;
                weighted += value * static_cast<std::int64_t>(count);
                os << base << "_bucket{le=\"" << value << "\"} "
                   << cumulative << '\n';
            }
            os << base << "_bucket{le=\"+Inf\"} " << cumulative
               << '\n'
               << base << "_sum " << weighted << '\n'
               << base << "_count " << cumulative << '\n';
            break;
          }
        }
    }
}

// ---------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------

MetricsRegistry &
MetricsRegistry::instance()
{
    // Leaked on purpose: atexit exporters and worker threads may
    // outlive ordinary static destruction.
    static auto *registry = new MetricsRegistry;
    return *registry;
}

MetricsRegistry::Shard &
MetricsRegistry::localShard()
{
    // The calling thread's shard of the singleton registry.
    thread_local Shard *tlsShard = nullptr;
    if (tlsShard == nullptr) {
        MutexLock lock(mutex_);
        shards_.push_back(std::make_unique<Shard>());
        tlsShard = shards_.back().get();
    }
    return *tlsShard;
}

MetricValue &
MetricsRegistry::slotLocked(Shard &shard, const std::string &name,
                            MetricKind kind)
{
    auto [it, inserted] = shard.values.try_emplace(name);
    if (inserted) {
        it->second.kind = kind;
    } else if (it->second.kind != kind) {
        panic("metric \"%s\" already registered as %s, not %s",
              name.c_str(), metricKindName(it->second.kind),
              metricKindName(kind));
    }
    return it->second;
}

void
MetricsRegistry::addCounter(const std::string &name,
                            std::uint64_t delta)
{
    Shard &shard = localShard();
    MutexLock lock(shard.mutex);
    slotLocked(shard, name, MetricKind::Counter).count += delta;
}

void
MetricsRegistry::maxGauge(const std::string &name, double value)
{
    Shard &shard = localShard();
    MutexLock lock(shard.mutex);
    MetricValue &v = slotLocked(shard, name, MetricKind::Gauge);
    v.gauge = (value > v.gauge) ? value : v.gauge;
}

void
MetricsRegistry::recordValue(const std::string &name,
                             std::int64_t value, std::uint64_t count)
{
    Shard &shard = localShard();
    MutexLock lock(shard.mutex);
    slotLocked(shard, name, MetricKind::Histogram).buckets[value] +=
        count;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    MutexLock lock(mutex_);
    for (const auto &shard : shards_) {
        MutexLock shard_lock(shard->mutex);
        for (const auto &[name, value] : shard->values) {
            auto [it, inserted] =
                snap.values_.try_emplace(name, value);
            if (!inserted)
                it->second.merge(value, name);
        }
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    MutexLock lock(mutex_);
    // Shards stay allocated: thread-local pointers into shards_ must
    // remain valid for the lifetime of their threads.
    for (const auto &shard : shards_) {
        MutexLock shard_lock(shard->mutex);
        shard->values.clear();
    }
}

void
MetricsRegistry::rearmGauge(const std::string &name)
{
    MutexLock lock(mutex_);
    for (const auto &shard : shards_) {
        MutexLock shard_lock(shard->mutex);
        const auto it = shard->values.find(name);
        if (it != shard->values.end()
            && it->second.kind == MetricKind::Gauge) {
            shard->values.erase(it);
        }
    }
}

void
flushConfiguredStatsJson()
{
    writeStatsJsonNow();
}

} // namespace gllc
