/**
 * @file
 * Typed recoverable errors: gllc::Error and gllc::Result<T>.
 *
 * fatal()/panic() (logging.hh) are the right tools for unusable
 * configurations and internal bugs, but a production-scale batch
 * sweep cannot afford to die because one cached trace file on disk
 * rotted: layers that consume external input (trace deserialization,
 * checkpoint journals) report malformed data as a typed Error that
 * callers inspect, quarantine or degrade around.  Result<T> is the
 * carrier: either a value or an Error with a machine-readable code
 * plus a human-readable context string.
 *
 * Convention: a function named tryFoo() returns Result<T>; its
 * foo() sibling (when kept) is the legacy wrapper that fatal()s on
 * error for callers that genuinely cannot proceed.
 */

#ifndef GLLC_COMMON_RESULT_HH
#define GLLC_COMMON_RESULT_HH

#include <string>
#include <utility>
#include <variant>

#include "common/logging.hh"

namespace gllc
{

/** What went wrong, machine-readably. */
enum class ErrorCode : std::uint8_t
{
    Io,                ///< open/read/write on the OS level failed
    BadMagic,          ///< input is not in the expected format at all
    BadVersion,        ///< recognized format, unsupported version
    Truncated,         ///< input ended before the declared payload
    Corrupt,           ///< structurally invalid payload (bad bounds)
    ChecksumMismatch,  ///< section checksum did not verify
    LimitExceeded,     ///< a declared size is beyond sanity caps
    InvalidArgument,   ///< caller-supplied parameter is unusable
    Injected,          ///< deterministic fault-injection harness fired
    CellFailed,        ///< a sweep cell exhausted its retry budget
    Timeout,           ///< an IO deadline expired
    Overloaded,        ///< admission control shed the request
};

/** Stable lower-case name of @p code ("checksum-mismatch", ...). */
const char *errorCodeName(ErrorCode code);

/** Payload for Result-returning operations that yield no value. */
struct Unit
{
};

/** A recoverable failure: typed code + formatted context. */
struct [[nodiscard]] Error
{
    ErrorCode code = ErrorCode::Io;
    std::string context;

    Error() = default;
    Error(ErrorCode c, std::string ctx)
        : code(c), context(std::move(ctx))
    {}

    /** Build with a printf-formatted context string. */
    static Error format(ErrorCode code, const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /** "<code-name>: <context>" for logs and quarantine reports. */
    std::string toString() const;
};

/**
 * Either a T or an Error.  Accessors assert on misuse: calling
 * value() on an error result is a bug in the caller, not a
 * recoverable condition.
 *
 * [[nodiscard]]: a dropped Result is a swallowed failure, so every
 * producer's return value must be inspected (or discarded loudly
 * with a (void) cast and a comment saying why).
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /* implicit */ Result(T value) : state_(std::move(value)) {}
    /* implicit */ Result(Error error) : state_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return ok(); }

    const T &
    value() const
    {
        GLLC_ASSERT_MSG(ok(), "Result::value() on error: %s",
                        std::get<Error>(state_).toString().c_str());
        return std::get<T>(state_);
    }

    /** Move the value out (consumes the result). */
    T
    take()
    {
        GLLC_ASSERT_MSG(ok(), "Result::take() on error: %s",
                        std::get<Error>(state_).toString().c_str());
        return std::move(std::get<T>(state_));
    }

    const Error &
    error() const
    {
        GLLC_ASSERT(!ok());
        return std::get<Error>(state_);
    }

    /** The value, or fatal() with the error (legacy-wrapper helper). */
    T
    takeOrFatal()
    {
        if (!ok())
            fatal("%s", error().toString().c_str());
        return take();
    }

  private:
    std::variant<T, Error> state_;
};

} // namespace gllc

#endif // GLLC_COMMON_RESULT_HH
