#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gllc
{

namespace
{

constexpr int kMaxDepth = 64;

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

Result<std::uint64_t>
JsonValue::asU64(const char *what) const
{
    if (kind_ != Kind::Number)
        return Error::format(ErrorCode::InvalidArgument,
                             "%s: expected a number", what);
    if (number_ < 0.0 || number_ != std::floor(number_)
        || number_ > 9007199254740992.0)
        return Error::format(ErrorCode::InvalidArgument,
                             "%s: expected an unsigned integer",
                             what);
    return static_cast<std::uint64_t>(number_);
}

Result<std::string>
JsonValue::asString(const char *what) const
{
    if (kind_ != Kind::String)
        return Error::format(ErrorCode::InvalidArgument,
                             "%s: expected a string", what);
    return string_;
}

Result<bool>
JsonValue::asBool(const char *what) const
{
    if (kind_ != Kind::Bool)
        return Error::format(ErrorCode::InvalidArgument,
                             "%s: expected a boolean", what);
    return boolean_;
}

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Result<JsonValue>
    parse()
    {
        JsonValue root;
        if (Error *e = value(root, 0))
            return std::move(*e);
        skipWs();
        if (pos_ != text_.size())
            return std::move(*fail("trailing bytes after document"));
        return root;
    }

  private:
    /**
     * Errors propagate as an owned Error the call chain bubbles up;
     * nullptr means the production succeeded.
     */
    Error *
    fail(const char *what)
    {
        error_ = Error::format(ErrorCode::Corrupt,
                               "json: %s at byte %zu", what, pos_);
        return &error_;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Error *
    value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return object(out, depth);
          case '[':
            return array(out, depth);
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return string(out.string_);
          case 't':
            return literal("true", out, JsonValue::Kind::Bool, true);
          case 'f':
            return literal("false", out, JsonValue::Kind::Bool,
                           false);
          case 'n':
            return literal("null", out, JsonValue::Kind::Null,
                           false);
          default:
            return number(out);
        }
    }

    Error *
    literal(const char *text, JsonValue &out, JsonValue::Kind kind,
            bool boolean)
    {
        for (const char *p = text; *p != '\0'; ++p) {
            if (!consume(*p))
                return fail("invalid literal");
        }
        out.kind_ = kind;
        out.boolean_ = boolean;
        return nullptr;
    }

    Error *
    number(JsonValue &out)
    {
        const std::size_t start = pos_;
        consume('-');
        if (pos_ >= text_.size()
            || text_[pos_] < '0' || text_[pos_] > '9')
            return fail("invalid number");
        while (pos_ < text_.size() && text_[pos_] >= '0'
               && text_[pos_] <= '9')
            ++pos_;
        if (consume('.')) {
            if (pos_ >= text_.size() || text_[pos_] < '0'
                || text_[pos_] > '9')
                return fail("invalid number fraction");
            while (pos_ < text_.size() && text_[pos_] >= '0'
                   && text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size()
            && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size()
                && (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || text_[pos_] < '0'
                || text_[pos_] > '9')
                return fail("invalid number exponent");
            while (pos_ < text_.size() && text_[pos_] >= '0'
                   && text_[pos_] <= '9')
                ++pos_;
        }
        const std::string literal =
            text_.substr(start, pos_ - start);
        char *end = nullptr;
        out.kind_ = JsonValue::Kind::Number;
        out.number_ = std::strtod(literal.c_str(), &end);
        if (end != literal.c_str() + literal.size())
            return fail("invalid number");
        return nullptr;
    }

    Error *
    string(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return nullptr;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                return fail("truncated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out.push_back(esc);
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                std::uint32_t code = 0;
                for (int k = 0; k < 4; ++k) {
                    if (pos_ >= text_.size())
                        return fail("truncated \\u escape");
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<std::uint32_t>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<std::uint32_t>(h - 'a')
                            + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<std::uint32_t>(h - 'A')
                            + 10;
                    else
                        return fail("invalid \\u escape");
                }
                // UTF-8 encode the BMP code point; surrogate pairs
                // are beyond what the job API needs and rejected.
                if (code >= 0xd800 && code <= 0xdfff)
                    return fail("surrogate \\u escape unsupported");
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    Error *
    array(JsonValue &out, int depth)
    {
        consume('[');
        out.kind_ = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return nullptr;
        while (true) {
            JsonValue item;
            if (Error *e = value(item, depth + 1))
                return e;
            out.items_.push_back(std::move(item));
            skipWs();
            if (consume(']'))
                return nullptr;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    Error *
    object(JsonValue &out, int depth)
    {
        consume('{');
        out.kind_ = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return nullptr;
        while (true) {
            skipWs();
            std::string key;
            if (Error *e = string(key))
                return e;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            JsonValue member;
            if (Error *e = value(member, depth + 1))
                return e;
            out.members_.emplace_back(std::move(key),
                                      std::move(member));
            skipWs();
            if (consume('}'))
                return nullptr;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    Error error_;
};

Result<JsonValue>
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace gllc
