#include "common/audit.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/env.hh"

namespace gllc
{

namespace
{

/** -1 = undecided (read build flag / environment), 0 = off, 1 = on. */
std::atomic<int> auditState{-1};

thread_local AuditContext auditCtx;

} // namespace

bool
auditActive()
{
    int v = auditState.load(std::memory_order_relaxed);
    if (v < 0) {
#ifdef GLLC_AUDIT_BUILD
        v = 1;
#else
        v = (envString("GLLC_AUDIT", "0") != "0") ? 1 : 0;
#endif
        auditState.store(v, std::memory_order_relaxed);
    }
    return v != 0;
}

void
setAuditActive(bool active)
{
    auditState.store(active ? 1 : 0, std::memory_order_relaxed);
}

AuditContext &
auditContext()
{
    return auditCtx;
}

AuditScope::AuditScope() : saved_(auditCtx)
{
}

AuditScope::~AuditScope()
{
    auditCtx = saved_;
}

void
auditFail(const char *component, const char *check, const char *fmt, ...)
{
    const AuditContext &c = auditCtx;
    std::fprintf(stderr, "=== GLLC AUDIT FAILURE ===\n");
    std::fprintf(stderr, "component: %s  check: %s\n", component, check);
    if (!c.app.empty() || c.frame >= 0 || !c.policy.empty()) {
        std::fprintf(stderr, "cell: app=%s frame=%lld policy=%s\n",
                     c.app.empty() ? "?" : c.app.c_str(),
                     static_cast<long long>(c.frame),
                     c.policy.empty() ? "?" : c.policy.c_str());
    }
    std::fprintf(stderr,
                 "access: index=%lld stream=%s bank=%lld set=%lld "
                 "way=%lld\n",
                 static_cast<long long>(c.accessIndex),
                 c.stream.empty() ? "?" : c.stream.c_str(),
                 static_cast<long long>(c.bank),
                 static_cast<long long>(c.set),
                 static_cast<long long>(c.way));
    std::fprintf(stderr, "detail: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n==========================\n");
    std::fflush(stderr);
    std::abort();
}

} // namespace gllc
