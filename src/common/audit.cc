#include "common/audit.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/decision_log.hh"
#include "common/env.hh"
#include "common/logging.hh"

namespace gllc
{

namespace
{

/** -1 = undecided (read build flag / environment), 0 = off, 1 = on. */
std::atomic<int> auditState{-1};

thread_local AuditContext auditCtx;

} // namespace

bool
auditActive()
{
    int v = auditState.load(std::memory_order_relaxed);
    if (v < 0) {
#ifdef GLLC_AUDIT_BUILD
        v = 1;
#else
        v = (envString("GLLC_AUDIT", "0") != "0") ? 1 : 0;
#endif
        auditState.store(v, std::memory_order_relaxed);
    }
    return v != 0;
}

void
setAuditActive(bool active)
{
    auditState.store(active ? 1 : 0, std::memory_order_relaxed);
}

AuditContext &
auditContext()
{
    return auditCtx;
}

AuditScope::AuditScope() : saved_(auditCtx)
{
}

AuditScope::~AuditScope()
{
    auditCtx = saved_;
}

void
auditFail(const char *component, const char *check, const char *fmt, ...)
{
    const AuditContext &c = auditCtx;
    note("=== GLLC AUDIT FAILURE ===");
    note("component: %s  check: %s", component, check);
    if (!c.app.empty() || c.frame >= 0 || !c.policy.empty()) {
        note("cell: app=%s frame=%lld policy=%s",
             c.app.empty() ? "?" : c.app.c_str(),
             static_cast<long long>(c.frame),
             c.policy.empty() ? "?" : c.policy.c_str());
    }
    note("access: index=%lld stream=%s bank=%lld set=%lld way=%lld",
         static_cast<long long>(c.accessIndex),
         c.stream.empty() ? "?" : c.stream.c_str(),
         static_cast<long long>(c.bank),
         static_cast<long long>(c.set),
         static_cast<long long>(c.way));
    char detail[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(detail, sizeof(detail), fmt, args);
    va_end(args);
    note("detail: %s", detail);
    // The failing thread's ring of recent LLC decisions, when
    // GLLC_DECISION_TRACE is live: the history that led here.
    dumpLocalDecisionLog();
    note("==========================");
    std::fflush(stderr);
    std::abort();
}

} // namespace gllc
