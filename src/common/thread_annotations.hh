/**
 * @file
 * Clang thread-safety capability wrappers and annotation macros.
 *
 * The repo's correctness story is thread-count invariance: a sweep
 * must produce byte-identical results at any GLLC_THREADS, and the
 * gllcd service multiplies the concurrency surface with connection
 * threads, a dispatcher and worker-shard threads.  TSan catches the
 * races a test happens to provoke; Clang's thread-safety analysis
 * (-Wthread-safety) catches the whole bug class at compile time —
 * but only where lock relationships are declared.  This header is
 * that declaration vocabulary:
 *
 *   gllc::Mutex       std::mutex wrapped as a CAPABILITY so the
 *                     analysis can track what it protects
 *   gllc::MutexLock   scoped lock (lock_guard replacement)
 *   gllc::CondVar     condition variable waiting on a gllc::Mutex;
 *                     wait() REQUIRES the mutex, so a wait outside
 *                     the lock is a compile error
 *
 *   GLLC_GUARDED_BY(mu)   field only touched with mu held
 *   GLLC_REQUIRES(mu)     function must be called with mu held
 *                         (the *Locked() helper convention)
 *   GLLC_ACQUIRE/RELEASE  lock-management functions
 *   GLLC_EXCLUDES(mu)     function must NOT be called with mu held
 *                         (self-deadlock prevention)
 *
 * All macros expand to nothing outside Clang, so GCC builds are
 * unaffected; the CI thread-safety job compiles with Clang and
 * -DGLLC_THREAD_SAFETY=ON (-Wthread-safety -Werror=thread-safety)
 * to make violations build failures.  Convention notes live in
 * DESIGN.md section 11.
 */

#ifndef GLLC_COMMON_THREAD_ANNOTATIONS_HH
#define GLLC_COMMON_THREAD_ANNOTATIONS_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define GLLC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GLLC_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define GLLC_CAPABILITY(x) GLLC_THREAD_ANNOTATION(capability(x))
#define GLLC_SCOPED_CAPABILITY GLLC_THREAD_ANNOTATION(scoped_lockable)
#define GLLC_GUARDED_BY(x) GLLC_THREAD_ANNOTATION(guarded_by(x))
#define GLLC_PT_GUARDED_BY(x) GLLC_THREAD_ANNOTATION(pt_guarded_by(x))
#define GLLC_REQUIRES(...) \
    GLLC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GLLC_ACQUIRE(...) \
    GLLC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GLLC_RELEASE(...) \
    GLLC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GLLC_TRY_ACQUIRE(...) \
    GLLC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GLLC_EXCLUDES(...) \
    GLLC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GLLC_ACQUIRED_BEFORE(...) \
    GLLC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define GLLC_ACQUIRED_AFTER(...) \
    GLLC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define GLLC_RETURN_CAPABILITY(x) \
    GLLC_THREAD_ANNOTATION(lock_returned(x))
#define GLLC_NO_THREAD_SAFETY_ANALYSIS \
    GLLC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gllc
{

/**
 * std::mutex as a Clang capability.  Locking functions carry
 * ACQUIRE/RELEASE so the analysis tracks the lock state; fields
 * protected by a Mutex declare it with GLLC_GUARDED_BY.
 */
class GLLC_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() GLLC_ACQUIRE() { mutex_.lock(); }
    void unlock() GLLC_RELEASE() { mutex_.unlock(); }
    bool tryLock() GLLC_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex mutex_;
};

/**
 * Scoped lock of a gllc::Mutex (the lock_guard idiom).  Declared as
 * a SCOPED_CAPABILITY so the analysis knows the mutex is held from
 * construction to end of scope.
 */
class GLLC_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) GLLC_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() GLLC_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable that waits on a gllc::Mutex.  Every wait
 * REQUIRES the mutex, which turns the classic wait-without-lock bug
 * into a compile error under the analysis.  Predicate re-checking is
 * the caller's loop:
 *
 *     MutexLock lock(mutex_);
 *     while (!ready_)          // ready_ is GUARDED_BY(mutex_)
 *         cv_.wait(mutex_);
 *
 * (A while loop instead of a predicate lambda keeps the guarded
 * reads inside the analyzed function body; lambdas are opaque to the
 * analysis.)
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mutex, sleep, reacquire before return. */
    void
    wait(Mutex &mutex) GLLC_REQUIRES(mutex)
    {
        // Adopt the already-held native mutex for the wait, then
        // release ownership so the unique_lock's destructor leaves
        // it held, exactly as the annotation promises the caller.
        std::unique_lock<std::mutex> native(mutex.mutex_,
                                            std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    /**
     * wait() with a timeout; std::cv_status::timeout when @p d
     * elapsed.  Spurious wakeups happen — loop on the condition.
     */
    template <typename Rep, typename Period>
    std::cv_status
    waitFor(Mutex &mutex, const std::chrono::duration<Rep, Period> &d)
        GLLC_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> native(mutex.mutex_,
                                            std::adopt_lock);
        const std::cv_status status = cv_.wait_for(native, d);
        native.release();
        return status;
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace gllc

#endif // GLLC_COMMON_THREAD_ANNOTATIONS_HH
