#include "common/thread_pool.hh"

namespace gllc
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    cv_.notifyAll();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        MutexLock lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    cv_.notifyOne();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!stopping_ && tasks_.empty())
                cv_.wait(mutex_);
            if (tasks_.empty())
                return;  // stopping_ with a drained queue
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(submit([&fn, i] { fn(i); }));

    // Wait for everything first so that a throwing task cannot leave
    // siblings running against destroyed captures, then rethrow the
    // lowest-index failure.
    std::exception_ptr first;
    for (std::future<void> &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace gllc
