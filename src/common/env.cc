#include "common/env.hh"

#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace gllc
{

std::int64_t
envInt(const std::string &name, std::int64_t fallback)
{
    const char *raw = std::getenv(name.c_str());
    if (raw == nullptr || raw[0] == '\0')
        return fallback;
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(raw, &end, 0);
    if (end == raw || *end != '\0')
        fatal("environment variable %s=\"%s\" is not an integer",
              name.c_str(), raw);
    if (errno == ERANGE)
        fatal("environment variable %s=\"%s\" is out of range",
              name.c_str(), raw);
    return v;
}

std::string
envString(const std::string &name, const std::string &fallback)
{
    const char *raw = std::getenv(name.c_str());
    return (raw == nullptr) ? fallback : std::string(raw);
}

} // namespace gllc
