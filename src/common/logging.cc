#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace gllc
{

namespace
{

void
vreport(const char *tag, const char *fmt, std::va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
note(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
}

} // namespace gllc
