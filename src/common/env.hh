/**
 * @file
 * Helpers for reading experiment knobs from the environment.
 *
 * Benchmarks honour a handful of environment variables so that the
 * full-scale paper configuration and quick smoke configurations can
 * be selected without recompiling:
 *
 *   GLLC_SCALE   linear resolution divisor (default 4; 1 = paper size)
 *   GLLC_FRAMES  cap on the number of frames simulated (default: all)
 */

#ifndef GLLC_COMMON_ENV_HH
#define GLLC_COMMON_ENV_HH

#include <cstdint>
#include <string>

namespace gllc
{

/** Read an integer environment variable, with fallback. */
std::int64_t envInt(const std::string &name, std::int64_t fallback);

/** Read a string environment variable, with fallback. */
std::string envString(const std::string &name, const std::string &fallback);

} // namespace gllc

#endif // GLLC_COMMON_ENV_HH
