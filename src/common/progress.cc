#include "common/progress.hh"

#include <unistd.h>

#include <cstdio>

#include "common/env.hh"

namespace gllc
{

bool
progressEnabled(int override_flag)
{
    if (override_flag >= 0)
        return override_flag != 0;
    const std::string env = envString("GLLC_PROGRESS", "");
    if (!env.empty())
        return env != "0";
    return isatty(2) != 0;
}

ProgressMeter::ProgressMeter(bool enabled, std::size_t total_cells,
                             const char *label)
    : enabled_(enabled), total_(total_cells), label_(label),
      start_(std::chrono::steady_clock::now()), lastPrint_(start_)
{
}

void
ProgressMeter::update(std::size_t done)
{
    if (!enabled_ || done == 0)
        return;
    const auto now = std::chrono::steady_clock::now();
    if (done < total_
        && now - lastPrint_ < std::chrono::milliseconds(250))
        return;
    lastPrint_ = now;
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
    const double eta =
        rate > 0.0 ? static_cast<double>(total_ - done) / rate : 0.0;
    std::fprintf(stderr,
                 "\r%s: %zu/%zu cells  %.1f cells/s  ETA %.0fs   ",
                 label_, done, total_, rate, eta);
    if (done >= total_)
        std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace gllc
