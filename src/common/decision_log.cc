#include "common/decision_log.hh"

#include <atomic>

#include "common/env.hh"
#include "common/logging.hh"

namespace gllc
{

namespace
{

/** Hard ceiling on the ring depth (bounds memory: ~48 B/record). */
constexpr int kMaxDepth = 1 << 22;

/** Default depth when GLLC_DECISION_TRACE=1 is used as an on-switch. */
constexpr int kDefaultDepth = 256;

/** -1 = undecided (read the environment), otherwise the depth. */
std::atomic<int> configuredState{-1};

int
clampDepth(int depth)
{
    if (depth < 0)
        return 0;
    return depth > kMaxDepth ? kMaxDepth : depth;
}

} // namespace

const char *
decisionOutcomeName(DecisionOutcome outcome)
{
    switch (outcome) {
      case DecisionOutcome::Hit:
        return "hit";
      case DecisionOutcome::Fill:
        return "fill";
      case DecisionOutcome::Bypass:
        return "bypass";
    }
    return "invalid";
}

DecisionLog &
DecisionLog::local()
{
    thread_local DecisionLog log;
    return log;
}

int
DecisionLog::configuredDepth()
{
    int v = configuredState.load(std::memory_order_relaxed);
    if (v < 0) {
        const int env =
            static_cast<int>(envInt("GLLC_DECISION_TRACE", 0));
        v = clampDepth(env == 1 ? kDefaultDepth : env);
        configuredState.store(v, std::memory_order_relaxed);
    }
    return v;
}

void
DecisionLog::setDepth(int depth)
{
    configuredState.store(clampDepth(depth),
                          std::memory_order_relaxed);
    // Keep the calling thread's ring live immediately; other threads
    // pick the change up when their next BankedLlc is constructed.
    local().syncDepth();
}

void
DecisionLog::syncDepth()
{
    const int depth = configuredDepth();
    if (depth == depth_)
        return;
    depth_ = depth;
    head_ = 0;
    buffer_.clear();
    buffer_.reserve(static_cast<std::size_t>(depth_));
}

void
DecisionLog::record(const LlcDecision &decision)
{
    if (depth_ <= 0)
        return;
    if (buffer_.size() < static_cast<std::size_t>(depth_)) {
        buffer_.push_back(decision);
        return;
    }
    buffer_[head_] = decision;
    head_ = (head_ + 1) % buffer_.size();
}

const LlcDecision &
DecisionLog::at(std::size_t i) const
{
    GLLC_ASSERT(i < buffer_.size());
    if (buffer_.size() < static_cast<std::size_t>(depth_))
        return buffer_[i];
    return buffer_[(head_ + i) % buffer_.size()];
}

void
DecisionLog::clear()
{
    head_ = 0;
    buffer_.clear();
}

void
DecisionLog::dump() const
{
    if (buffer_.empty())
        return;
    note("decision log (last %zu accesses, oldest first):",
         buffer_.size());
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
        const LlcDecision &d = at(i);
        note("  [%zu] #%llu addr=0x%llx %s%s %s bank=%u set=%u "
             "way=%d rrpv=%d%s%s",
             i, static_cast<unsigned long long>(d.index),
             static_cast<unsigned long long>(d.addr), d.stream,
             d.isWrite ? " write" : " read",
             decisionOutcomeName(d.outcome), d.bank, d.set, d.way,
             d.rrpv, d.state != nullptr ? " state=" : "",
             d.state != nullptr ? d.state : "");
    }
}

void
dumpLocalDecisionLog()
{
    if (!DecisionLog::active())
        return;
    DecisionLog::local().dump();
}

} // namespace gllc
