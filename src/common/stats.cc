#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/logging.hh"

namespace gllc
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        GLLC_ASSERT(x > 0.0);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

double
safeRatio(double a, double b)
{
    return (b == 0.0) ? 0.0 : a / b;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
    GLLC_ASSERT(!header_.empty());
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    GLLC_ASSERT_MSG(cells.size() == header_.size(),
                    "row width %zu vs header %zu",
                    cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + ((c + 1 < width.size()) ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtPct(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

} // namespace gllc
