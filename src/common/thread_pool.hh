/**
 * @file
 * Fixed-size worker-thread pool.
 *
 * The sweep engine and the performance harnesses fan independent
 * (frame, policy) replays out over a pool of workers.  The pool is
 * deliberately minimal: a FIFO task queue, std::future-based result
 * and exception propagation, and a destructor that drains every
 * queued task before joining, so results written by tasks are
 * visible once the pool is gone.
 *
 * Determinism note: the pool makes no ordering promise between
 * tasks beyond FIFO dispatch; callers that need reproducible output
 * (the sweep engine) write each task's result into a preallocated
 * slot and merge the slots in task-submission order afterwards.
 */

#ifndef GLLC_COMMON_THREAD_POOL_HH
#define GLLC_COMMON_THREAD_POOL_HH

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.hh"

namespace gllc
{

/** Fixed-size FIFO thread pool. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 is clamped to 1. */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue: every submitted task runs before return. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue @p fn; the returned future yields its result, or
     * rethrows the exception it raised.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Run fn(0) .. fn(n-1) across the pool and wait for all of
     * them.  If any invocation throws, the exception of the lowest
     * failing index is rethrown (after every task has finished).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void enqueue(std::function<void()> task) GLLC_EXCLUDES(mutex_);
    void workerLoop() GLLC_EXCLUDES(mutex_);

    /** Immutable after construction (joined by the destructor). */
    std::vector<std::thread> workers_;

    Mutex mutex_;
    CondVar cv_;
    std::deque<std::function<void()>> tasks_ GLLC_GUARDED_BY(mutex_);
    bool stopping_ GLLC_GUARDED_BY(mutex_) = false;
};

} // namespace gllc

#endif // GLLC_COMMON_THREAD_POOL_HH
