/**
 * @file
 * Fundamental scalar types used throughout the gllc library.
 */

#ifndef GLLC_COMMON_TYPES_HH
#define GLLC_COMMON_TYPES_HH

#include <cstdint>

namespace gllc
{

/** Byte address in the simulated GPU physical address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count (GPU clock domain unless noted). */
using Cycle = std::uint64_t;

/** Event/statistic counter. */
using Counter = std::uint64_t;

/** Cache block (line) size used by every cache level in the model. */
constexpr std::uint32_t kBlockBytes = 64;

/** log2 of the cache block size. */
constexpr std::uint32_t kBlockShift = 6;

/** Convert a byte address to the containing block number. */
constexpr Addr
blockNumber(Addr addr)
{
    return addr >> kBlockShift;
}

/** Convert a byte address to the aligned address of its block. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kBlockBytes - 1);
}

} // namespace gllc

#endif // GLLC_COMMON_TYPES_HH
