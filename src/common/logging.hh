/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  -- internal invariant violated (a gllc bug); aborts.
 * fatal()  -- unusable user configuration; exits with status 1.
 * warn()   -- something questionable but survivable.
 */

#ifndef GLLC_COMMON_LOGGING_HH
#define GLLC_COMMON_LOGGING_HH

#include <cstdarg>

namespace gllc
{

/** Abort with a formatted message; use for internal invariant failures. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for bad user configuration. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert-like check that stays active in release builds.
 * Use for invariants whose violation would silently corrupt results.
 */
#define GLLC_ASSERT(cond)                                               \
    do {                                                                \
        if (!(cond))                                                    \
            ::gllc::panic("assertion failed: %s (%s:%d)",               \
                          #cond, __FILE__, __LINE__);                   \
    } while (0)

/** GLLC_ASSERT with an extra printf-style explanation. */
#define GLLC_ASSERT_MSG(cond, ...)                                      \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::gllc::warn(__VA_ARGS__);                                  \
            ::gllc::panic("assertion failed: %s (%s:%d)",               \
                          #cond, __FILE__, __LINE__);                   \
        }                                                               \
    } while (0)

} // namespace gllc

#endif // GLLC_COMMON_LOGGING_HH
