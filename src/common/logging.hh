/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  -- internal invariant violated (a gllc bug); aborts.
 * fatal()  -- unusable user configuration; exits with status 1.
 * warn()   -- something questionable but survivable.
 * note()   -- untagged diagnostic line (multi-line reports).
 */

#ifndef GLLC_COMMON_LOGGING_HH
#define GLLC_COMMON_LOGGING_HH

#include <cstdarg>

namespace gllc
{

/** Abort with a formatted message; use for internal invariant failures. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for bad user configuration. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Print one untagged line to stderr.  For the bodies of structured
 * multi-line reports (audit aborts, decision-log dumps) where a
 * "warn:" prefix on every line would be noise; tools/lint.py bans
 * raw fprintf(stderr, ...) outside the logging/progress layers, so
 * this is the sanctioned way to emit such lines.
 */
void note(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert-like check for invariants whose violation would silently
 * corrupt results.  Active by default in every build type (the
 * repo's bare-assert replacement: tools/lint.py rejects <cassert>'s
 * assert()); configuring with -DGLLC_ASSERTS=OFF compiles both
 * macros to a no-op that still odr-uses its operands inside a dead
 * branch, so release builds raise no -Wunused-* warnings for
 * variables referenced only by assertions and the conditions keep
 * compiling.
 */
#ifdef GLLC_DISABLE_ASSERTS

#define GLLC_ASSERT(cond)                                               \
    do {                                                                \
        if (false && !(cond))                                           \
            ::gllc::panic("unreachable");                               \
    } while (0)

/** GLLC_ASSERT with an extra printf-style explanation. */
#define GLLC_ASSERT_MSG(cond, ...)                                      \
    do {                                                                \
        if (false && !(cond))                                           \
            ::gllc::warn(__VA_ARGS__);                                  \
    } while (0)

#else

#define GLLC_ASSERT(cond)                                               \
    do {                                                                \
        if (!(cond))                                                    \
            ::gllc::panic("assertion failed: %s (%s:%d)",               \
                          #cond, __FILE__, __LINE__);                   \
    } while (0)

/** GLLC_ASSERT with an extra printf-style explanation. */
#define GLLC_ASSERT_MSG(cond, ...)                                      \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::gllc::warn(__VA_ARGS__);                                  \
            ::gllc::panic("assertion failed: %s (%s:%d)",               \
                          #cond, __FILE__, __LINE__);                   \
        }                                                               \
    } while (0)

#endif // GLLC_DISABLE_ASSERTS

} // namespace gllc

#endif // GLLC_COMMON_LOGGING_HH
