#include "common/trace_event.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "common/env.hh"
#include "common/logging.hh"

namespace gllc
{

namespace
{

/** -1 = undecided (read the environment), 0 = off, 1 = on. */
std::atomic<int> traceState{-1};

/** The calling thread's span-clock thread id; 0 = unassigned. */
thread_local std::uint32_t tlsTraceTid = 0;

/**
 * Write the collected spans to the GLLC_TRACE_OUT path.  Registered
 * as an atexit handler; also invoked directly via
 * flushConfiguredTraceJson() by long-lived daemons.
 */
void
writeTraceJsonNow()
{
    const std::string path = envString("GLLC_TRACE_OUT", "");
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os) {
        warn("GLLC_TRACE_OUT: cannot write %s", path.c_str());
        return;
    }
    TraceCollector::instance().write(os);
}

void
scheduleTraceExportOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        TraceCollector::instance();  // leaked: outlives atexit
        std::atexit(writeTraceJsonNow);
    });
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Fixed-point microseconds: deterministic, no locale surprises. */
std::string
fmtUs(double us)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

} // namespace

bool
traceEventsActive()
{
    int v = traceState.load(std::memory_order_relaxed);
    if (v < 0) {
        const bool out = !envString("GLLC_TRACE_OUT", "").empty();
        v = out ? 1 : 0;
        traceState.store(v, std::memory_order_relaxed);
        if (out)
            scheduleTraceExportOnce();
    }
    return v != 0;
}

void
setTraceEventsActive(bool active)
{
    traceState.store(active ? 1 : 0, std::memory_order_relaxed);
    if (active && !envString("GLLC_TRACE_OUT", "").empty())
        scheduleTraceExportOnce();
}

TraceCollector &
TraceCollector::instance()
{
    static auto *collector = new TraceCollector;
    return *collector;
}

TraceCollector::TraceCollector()
    : epoch_(std::chrono::steady_clock::now())
{
}

double
TraceCollector::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

double
TraceCollector::epochSinceBootUs() const
{
    return std::chrono::duration<double, std::micro>(
               epoch_.time_since_epoch())
        .count();
}

std::uint32_t
TraceCollector::threadId()
{
    if (tlsTraceTid == 0) {
        MutexLock lock(mutex_);
        tlsTraceTid = ++nextTid_;
    }
    return tlsTraceTid;
}

void
TraceCollector::complete(std::string name, const char *category,
                         double start_us, double end_us,
                         TraceArgs args)
{
    const std::uint32_t tid = threadId();
    MutexLock lock(mutex_);
    events_.push_back(Event{std::move(name), category, start_us,
                            end_us - start_us, tid,
                            std::move(args)});
}

std::size_t
TraceCollector::size() const
{
    MutexLock lock(mutex_);
    return events_.size();
}

namespace
{

/** One trace-event object (no trailing separator). */
void
writeEventObject(std::ostream &os, const std::string &name,
                 const char *category, double start_us, double dur_us,
                 std::uint32_t pid, std::uint32_t tid,
                 const TraceArgs &args)
{
    os << "{\"name\": \"" << jsonEscape(name) << "\", \"cat\": \""
       << category << "\", \"ph\": \"X\", \"ts\": " << fmtUs(start_us)
       << ", \"dur\": " << fmtUs(dur_us) << ", \"pid\": " << pid
       << ", \"tid\": " << tid;
    if (!args.empty()) {
        os << ", \"args\": {";
        for (std::size_t a = 0; a < args.size(); ++a) {
            os << (a ? ", " : "") << "\"" << jsonEscape(args[a].first)
               << "\": \"" << jsonEscape(args[a].second) << "\"";
        }
        os << "}";
    }
    os << "}";
}

} // namespace

void
TraceCollector::write(std::ostream &os) const
{
    MutexLock lock(mutex_);
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const Event &e = events_[i];
        os << "  ";
        writeEventObject(os, e.name, e.category, e.startUs, e.durUs,
                         1, e.tid, e.args);
        os << (i + 1 < events_.size() ? "," : "") << '\n';
    }
    os << "]}\n";
}

void
TraceCollector::writeJsonl(std::ostream &os, double shift_us,
                           std::uint32_t pid) const
{
    MutexLock lock(mutex_);
    for (const Event &e : events_) {
        writeEventObject(os, e.name, e.category, e.startUs + shift_us,
                         e.durUs, pid, e.tid, e.args);
        os << '\n';
    }
}

void
TraceCollector::reset()
{
    MutexLock lock(mutex_);
    events_.clear();
}

TraceSpan::TraceSpan(const char *category, std::string name,
                     TraceArgs args)
    : active_(traceEventsActive())
{
    if (!active_)
        return;
    category_ = category;
    name_ = std::move(name);
    args_ = std::move(args);
    startUs_ = TraceCollector::instance().nowUs();
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    TraceCollector &collector = TraceCollector::instance();
    collector.complete(std::move(name_), category_, startUs_,
                       collector.nowUs(), std::move(args_));
}

void
flushConfiguredTraceJson()
{
    writeTraceJsonNow();
}

} // namespace gllc
