#include "common/trace_event.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "common/env.hh"
#include "common/logging.hh"

namespace gllc
{

namespace
{

/** -1 = undecided (read the environment), 0 = off, 1 = on. */
std::atomic<int> traceState{-1};

/** The calling thread's span-clock thread id; 0 = unassigned. */
thread_local std::uint32_t tlsTraceTid = 0;

void
writeTraceJsonAtExit()
{
    const std::string path = envString("GLLC_TRACE_OUT", "");
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os) {
        warn("GLLC_TRACE_OUT: cannot write %s", path.c_str());
        return;
    }
    TraceCollector::instance().write(os);
}

void
scheduleTraceExportOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        TraceCollector::instance();  // leaked: outlives atexit
        std::atexit(writeTraceJsonAtExit);
    });
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Fixed-point microseconds: deterministic, no locale surprises. */
std::string
fmtUs(double us)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

} // namespace

bool
traceEventsActive()
{
    int v = traceState.load(std::memory_order_relaxed);
    if (v < 0) {
        const bool out = !envString("GLLC_TRACE_OUT", "").empty();
        v = out ? 1 : 0;
        traceState.store(v, std::memory_order_relaxed);
        if (out)
            scheduleTraceExportOnce();
    }
    return v != 0;
}

void
setTraceEventsActive(bool active)
{
    traceState.store(active ? 1 : 0, std::memory_order_relaxed);
    if (active && !envString("GLLC_TRACE_OUT", "").empty())
        scheduleTraceExportOnce();
}

TraceCollector &
TraceCollector::instance()
{
    static auto *collector = new TraceCollector;
    return *collector;
}

TraceCollector::TraceCollector()
    : epoch_(std::chrono::steady_clock::now())
{
}

double
TraceCollector::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

std::uint32_t
TraceCollector::threadId()
{
    if (tlsTraceTid == 0) {
        MutexLock lock(mutex_);
        tlsTraceTid = ++nextTid_;
    }
    return tlsTraceTid;
}

void
TraceCollector::complete(std::string name, const char *category,
                         double start_us, double end_us,
                         TraceArgs args)
{
    const std::uint32_t tid = threadId();
    MutexLock lock(mutex_);
    events_.push_back(Event{std::move(name), category, start_us,
                            end_us - start_us, tid,
                            std::move(args)});
}

std::size_t
TraceCollector::size() const
{
    MutexLock lock(mutex_);
    return events_.size();
}

void
TraceCollector::write(std::ostream &os) const
{
    MutexLock lock(mutex_);
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const Event &e = events_[i];
        os << "  {\"name\": \"" << jsonEscape(e.name)
           << "\", \"cat\": \"" << e.category
           << "\", \"ph\": \"X\", \"ts\": " << fmtUs(e.startUs)
           << ", \"dur\": " << fmtUs(e.durUs)
           << ", \"pid\": 1, \"tid\": " << e.tid;
        if (!e.args.empty()) {
            os << ", \"args\": {";
            for (std::size_t a = 0; a < e.args.size(); ++a) {
                os << (a ? ", " : "") << "\""
                   << jsonEscape(e.args[a].first) << "\": \""
                   << jsonEscape(e.args[a].second) << "\"";
            }
            os << "}";
        }
        os << "}" << (i + 1 < events_.size() ? "," : "") << '\n';
    }
    os << "]}\n";
}

void
TraceCollector::reset()
{
    MutexLock lock(mutex_);
    events_.clear();
}

TraceSpan::TraceSpan(const char *category, std::string name,
                     TraceArgs args)
    : active_(traceEventsActive())
{
    if (!active_)
        return;
    category_ = category;
    name_ = std::move(name);
    args_ = std::move(args);
    startUs_ = TraceCollector::instance().nowUs();
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    TraceCollector &collector = TraceCollector::instance();
    collector.complete(std::move(name_), category_, startUs_,
                       collector.nowUs(), std::move(args_));
}

} // namespace gllc
