/**
 * @file
 * Saturating hardware-style counters.
 *
 * The GSPC policies (Section 3 of the paper) are built around small
 * saturating event counters: 8-bit FILL/HIT/PROD/CONS counters per
 * LLC bank and a 7-bit ACC(ALL) counter whose saturation triggers a
 * halving of the others.  SatCounter models exactly that behaviour.
 */

#ifndef GLLC_COMMON_SAT_COUNTER_HH
#define GLLC_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace gllc
{

/** An n-bit unsigned saturating counter (n <= 32). */
class SatCounter
{
  public:
    explicit SatCounter(unsigned bits = 8, std::uint32_t initial = 0)
        : max_((bits >= 32) ? 0xffffffffu
                            : ((1u << bits) - 1)),
          value_(initial)
    {
        GLLC_ASSERT(bits >= 1 && bits <= 32);
        GLLC_ASSERT(initial <= max_);
    }

    /** Increment, clamping at the maximum representable value. */
    void
    increment(std::uint32_t by = 1)
    {
        value_ = (value_ + by >= max_ || value_ + by < value_)
            ? max_ : value_ + by;
    }

    /** Decrement, clamping at zero. */
    void
    decrement(std::uint32_t by = 1)
    {
        value_ = (by >= value_) ? 0 : value_ - by;
    }

    /** Halve the counter (used on ACC(ALL) saturation). */
    void halve() { value_ >>= 1; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    std::uint32_t value() const { return value_; }
    std::uint32_t max() const { return max_; }
    bool saturated() const { return value_ == max_; }

    /** Audit predicate: the stored value is representable in n bits. */
    bool inRange() const { return value_ <= max_; }

    /**
     * Test-only: overwrite the raw value, bypassing the clamps, so
     * the audit layer's range checks can be exercised.
     */
    void debugForceValue(std::uint32_t value) { value_ = value; }

  private:
    std::uint32_t max_;
    std::uint32_t value_;
};

/**
 * An n-bit up/down counter biased around its midpoint, as used for
 * DRRIP set-dueling PSEL counters.
 */
class DuelCounter
{
  public:
    explicit DuelCounter(unsigned bits = 10)
        : max_((1u << bits) - 1), value_(1u << (bits - 1))
    {
        GLLC_ASSERT(bits >= 2 && bits <= 31);
    }

    void up() { if (value_ < max_) ++value_; }
    void down() { if (value_ > 0) --value_; }

    /** True when the counter sits strictly above its midpoint. */
    bool upperHalf() const { return value_ > (max_ + 1) / 2; }

    std::uint32_t value() const { return value_; }
    std::uint32_t max() const { return max_; }

    /** Audit predicate: the stored value is representable in n bits. */
    bool inRange() const { return value_ <= max_; }

    /** Test-only: overwrite the raw value, bypassing saturation. */
    void debugForceValue(std::uint32_t value) { value_ = value; }

  private:
    std::uint32_t max_;
    std::uint32_t value_;
};

} // namespace gllc

#endif // GLLC_COMMON_SAT_COUNTER_HH
