/**
 * @file
 * Chrome-trace / Perfetto timeline tracing.
 *
 * Spans recorded here serialize as trace-event JSON ("X" complete
 * events) loadable in Perfetto or chrome://tracing.  The sweep
 * engine emits one span per (app, frame, policy) cell and one per
 * pipeline phase (trace render, replay, merge), each tagged with the
 * worker thread that executed it, so ThreadPool utilization and
 * straggler cells are visible on a timeline.
 *
 * All spans share one clock: microseconds on std::chrono's steady
 * clock since the collector was created (the same clock the metrics
 * and progress layers use for wall time), so spans from different
 * threads line up.
 *
 * Activation (traceEventsActive()):
 *   - set GLLC_TRACE_OUT=<path>: spans are collected and the JSON is
 *     written there at process exit, or
 *   - call setTraceEventsActive(true) from a test and serialize with
 *     TraceCollector::instance().write().
 *
 * When inactive, TraceSpan construction is one boolean load and no
 * allocation.
 */

#ifndef GLLC_COMMON_TRACE_EVENT_HH
#define GLLC_COMMON_TRACE_EVENT_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.hh"

namespace gllc
{

/** True when timeline span collection is enabled. */
bool traceEventsActive();

/** Force span collection on or off (tests, harness flags). */
void setTraceEventsActive(bool active);

/** Span metadata: ("app", "BioShock"), ("frame", "17"), ... */
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

/** Process-wide span collector. */
class TraceCollector
{
  public:
    /** The singleton (never destroyed, safe in atexit handlers). */
    static TraceCollector &instance();

    /** Microseconds on the shared span clock. */
    double nowUs() const;

    /**
     * The collector's clock zero expressed as microseconds on the
     * raw steady clock (CLOCK_MONOTONIC, i.e. since boot).  Two
     * processes on the same machine share that raw clock, so a
     * worker can shift its span timestamps by
     * (its epochSinceBootUs() - the daemon's) and land them on the
     * daemon's timeline — the basis of the merged per-job traces.
     */
    double epochSinceBootUs() const;

    /** Stable small id of the calling thread (assigned on first use). */
    std::uint32_t threadId();

    /** Record one complete ("X") span. */
    void complete(std::string name, const char *category,
                  double start_us, double end_us, TraceArgs args);

    /** Spans recorded so far (tests). */
    std::size_t size() const;

    /** Serialize as trace-event JSON ({"traceEvents": [...]}). */
    void write(std::ostream &os) const;

    /**
     * Serialize as bare trace-event objects, one per line (no
     * enclosing array), with every timestamp shifted by @p shift_us
     * and @p pid stamped as the process id.  Worker subprocesses use
     * this to stream their spans into per-job files the daemon can
     * splice verbatim into one merged timeline.
     */
    void writeJsonl(std::ostream &os, double shift_us,
                    std::uint32_t pid) const;

    /** Drop all recorded spans (tests). */
    void reset();

  private:
    TraceCollector();

    struct Event
    {
        std::string name;
        const char *category;
        double startUs;
        double durUs;
        std::uint32_t tid;
        TraceArgs args;
    };

    mutable Mutex mutex_;

    /** Immutable after construction: the shared span clock's zero. */
    std::chrono::steady_clock::time_point epoch_;

    std::vector<Event> events_ GLLC_GUARDED_BY(mutex_);
    std::uint32_t nextTid_ GLLC_GUARDED_BY(mutex_) = 0;
};

/**
 * RAII span: records [construction, destruction) on the calling
 * thread when span collection is active.
 *
 *   TraceSpan span("cell", app + "#" + frame + " " + policy,
 *                  {{"app", app}, {"policy", policy}});
 */
class TraceSpan
{
  public:
    TraceSpan(const char *category, std::string name,
              TraceArgs args = {});
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    bool active_;
    const char *category_ = nullptr;
    std::string name_;
    TraceArgs args_;
    double startUs_ = 0.0;
};

/**
 * Write the collected spans to the GLLC_TRACE_OUT path right now
 * (no-op when the variable is unset).  The same writer runs from the
 * atexit hook; daemons call this explicitly after a SIGTERM-initiated
 * stop so a drained gllcd leaves a complete timeline.
 */
void flushConfiguredTraceJson();

} // namespace gllc

#endif // GLLC_COMMON_TRACE_EVENT_HH
