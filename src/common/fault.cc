#include "common/fault.hh"

#include <atomic>
#include <mutex>

#include "common/env.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace gllc
{

namespace
{

/** Per-site arming state; counters live outside so reconfiguration
 *  (tests) can reset them together. */
struct SiteConfig
{
    bool armed = false;
    double probability = 0.0;
    std::uint64_t seed = 1;
    std::uint64_t maxFires = 0;  ///< 0 = unlimited
};

struct SiteState
{
    SiteConfig config;
    std::atomic<std::uint64_t> drawn{0};
    std::atomic<std::uint64_t> fired{0};
};

SiteState g_sites[kNumFaultSites];
std::atomic<bool> g_any_armed{false};
std::once_flag g_env_once;

SiteState &
stateOf(FaultSite site)
{
    return g_sites[static_cast<std::size_t>(site)];
}

/** Parse a site name; fatal on an unknown one. */
FaultSite
siteFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        if (name == faultSiteName(static_cast<FaultSite>(i)))
            return static_cast<FaultSite>(i);
    }
    fatal("GLLC_FAULT: unknown injection site \"%s\"", name.c_str());
}

/** Apply one "site:p=...,seed=...,n=..." entry. */
void
applyEntry(const std::string &entry)
{
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos)
        fatal("GLLC_FAULT entry \"%s\" lacks a ':p=...' part",
              entry.c_str());

    SiteConfig config;
    config.armed = true;
    bool have_p = false;

    std::size_t pos = colon + 1;
    while (pos < entry.size()) {
        std::size_t comma = entry.find(',', pos);
        if (comma == std::string::npos)
            comma = entry.size();
        const std::string kv = entry.substr(pos, comma - pos);
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
            fatal("GLLC_FAULT: malformed option \"%s\" in \"%s\"",
                  kv.c_str(), entry.c_str());
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        char *end = nullptr;
        if (key == "p") {
            config.probability = std::strtod(val.c_str(), &end);
            if (end == val.c_str() || *end != '\0'
                || config.probability < 0.0
                || config.probability > 1.0)
                fatal("GLLC_FAULT: p=\"%s\" is not a probability",
                      val.c_str());
            have_p = true;
        } else if (key == "seed") {
            config.seed = std::strtoull(val.c_str(), &end, 0);
            if (end == val.c_str() || *end != '\0')
                fatal("GLLC_FAULT: seed=\"%s\" is not an integer",
                      val.c_str());
        } else if (key == "n") {
            config.maxFires = std::strtoull(val.c_str(), &end, 0);
            if (end == val.c_str() || *end != '\0')
                fatal("GLLC_FAULT: n=\"%s\" is not an integer",
                      val.c_str());
        } else {
            fatal("GLLC_FAULT: unknown option \"%s\" in \"%s\"",
                  key.c_str(), entry.c_str());
        }
        pos = comma + 1;
    }
    if (!have_p)
        fatal("GLLC_FAULT entry \"%s\" lacks p=<prob>", entry.c_str());

    SiteState &state = stateOf(siteFromName(entry.substr(0, colon)));
    state.config = config;
    state.drawn.store(0, std::memory_order_relaxed);
    state.fired.store(0, std::memory_order_relaxed);
}

/** Lazily pick up GLLC_FAULT before the first query. */
void
initFromEnv()
{
    std::call_once(g_env_once, [] {
        if (!g_any_armed.load(std::memory_order_relaxed)) {
            const std::string spec = envString("GLLC_FAULT", "");
            if (!spec.empty())
                configureFaults(spec);
        }
    });
}

/** Uniform [0,1) from hashed bits. */
double
unitFromBits(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Per-site salt so sites with equal seeds draw unrelated streams. */
std::uint64_t
siteSalt(FaultSite site)
{
    return fnv1a64(faultSiteName(site));
}

/**
 * Consume one fire slot, honouring the n= cap without overshoot
 * under concurrency.
 */
bool
consumeFire(SiteState &state, FaultSite site)
{
    std::uint64_t fired = state.fired.load(std::memory_order_relaxed);
    const std::uint64_t cap = state.config.maxFires;
    do {
        if (cap != 0 && fired >= cap)
            return false;
    } while (!state.fired.compare_exchange_weak(
        fired, fired + 1, std::memory_order_relaxed));
    if (metricsActive())
        MetricsRegistry::instance().addCounter(
            std::string("fault.") + faultSiteName(site) + ".fired");
    return true;
}

/** Decide from pre-mixed bits; the caller counted the draw. */
bool
drawAt(FaultSite site, std::uint64_t mixed)
{
    SiteState &state = stateOf(site);
    if (unitFromBits(mixed) >= state.config.probability)
        return false;
    return consumeFire(state, site);
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::TraceBitflip:
        return "trace.bitflip";
      case FaultSite::TraceTruncate:
        return "trace.truncate";
      case FaultSite::CellThrow:
        return "cell.throw";
      case FaultSite::CellDelay:
        return "cell.delay";
      case FaultSite::SimAccess:
        return "sim.access";
      case FaultSite::DramSimulate:
        return "dram.simulate";
      case FaultSite::WorkerCrash:
        return "worker.crash";
      case FaultSite::ConnStall:
        return "conn.stall";
      case FaultSite::ConnDrop:
        return "conn.drop";
      case FaultSite::DaemonCrash:
        return "daemon.crash";
      case FaultSite::kCount:
        break;
    }
    return "unknown";
}

bool
faultsActive()
{
    initFromEnv();
    return g_any_armed.load(std::memory_order_relaxed);
}

void
configureFaults(const std::string &spec)
{
    for (SiteState &state : g_sites) {
        state.config = SiteConfig{};
        state.drawn.store(0, std::memory_order_relaxed);
        state.fired.store(0, std::memory_order_relaxed);
    }
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t semi = spec.find(';', pos);
        if (semi == std::string::npos)
            semi = spec.size();
        const std::string entry = spec.substr(pos, semi - pos);
        if (!entry.empty())
            applyEntry(entry);
        pos = semi + 1;
    }
    bool any = false;
    for (const SiteState &state : g_sites)
        any |= state.config.armed;
    g_any_armed.store(any, std::memory_order_relaxed);
}

FaultInjectedError::FaultInjectedError(FaultSite site)
    : std::runtime_error(std::string("injected fault at site ")
                         + faultSiteName(site)),
      site_(site)
{
}

bool
faultFires(FaultSite site)
{
    if (!faultsActive())
        return false;
    SiteState &state = stateOf(site);
    if (!state.config.armed)
        return false;
    // The draw index keys the decision, so a serial run replays the
    // exact fire pattern from the seed.
    const std::uint64_t idx =
        state.drawn.fetch_add(1, std::memory_order_relaxed);
    return drawAt(site,
                  mix64(state.config.seed ^ siteSalt(site)
                        ^ (idx * 0x9e3779b97f4a7c15ULL)));
}

bool
faultFires(FaultSite site, std::uint64_t key)
{
    if (!faultsActive())
        return false;
    SiteState &state = stateOf(site);
    if (!state.config.armed)
        return false;
    state.drawn.fetch_add(1, std::memory_order_relaxed);
    return drawAt(site,
                  mix64(state.config.seed ^ siteSalt(site)
                        ^ mix64(key)));
}

std::uint64_t
faultPayload(FaultSite site)
{
    SiteState &state = stateOf(site);
    return mix64(state.config.seed ^ ~siteSalt(site)
                 ^ state.fired.load(std::memory_order_relaxed));
}

std::uint64_t
faultFired(FaultSite site)
{
    return stateOf(site).fired.load(std::memory_order_relaxed);
}

std::uint64_t
faultDrawn(FaultSite site)
{
    return stateOf(site).drawn.load(std::memory_order_relaxed);
}

void
throwInjectedFault(FaultSite site)
{
    throw FaultInjectedError(site);
}

} // namespace gllc
