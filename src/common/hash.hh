/**
 * @file
 * Small non-cryptographic hashing helpers.
 *
 * fnv1a64() is the section checksum of the trace file format
 * (trace_io) and the line checksum of sweep checkpoint journals;
 * mix64() (splitmix64 finalizer) turns structured keys into the
 * uniform bits the fault injector draws its Bernoulli trials from.
 * Both are fixed forever: serialized artifacts depend on them.
 */

#ifndef GLLC_COMMON_HASH_HH
#define GLLC_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gllc
{

/** FNV-1a offset basis; pass as @p seed to chain sections. */
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/** 64-bit FNV-1a over @p len bytes, continuing from @p seed. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t len,
        std::uint64_t seed = kFnvOffset)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** fnv1a64 over a string's bytes. */
inline std::uint64_t
fnv1a64(std::string_view s, std::uint64_t seed = kFnvOffset)
{
    return fnv1a64(s.data(), s.size(), seed);
}

/** splitmix64 finalizer: avalanche @p x into uniform bits. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace gllc

#endif // GLLC_COMMON_HASH_HH
