/**
 * @file
 * Hierarchical low-overhead metrics registry (gem5-style stats).
 *
 * Components publish counters, gauges and histograms under dotted
 * names ("llc.bank0.stream.TEX.hits", "dram.ch0.row_conflicts",
 * "sweep.cells_done").  Accumulation is thread-local: every thread
 * that touches the registry owns a private shard, so hot paths never
 * contend on a shared lock; snapshot() merges all shards into one
 * name-sorted view.  Every merge operation is commutative (counters
 * sum, gauges take the maximum, histogram buckets sum), so a
 * snapshot of the same work is byte-identical whether it ran on one
 * thread or on many — the property the CI determinism check pins.
 *
 * Cost model: components keep their existing plain counters on the
 * access path and flush them here once per replay (or once per
 * simulate() call), so the per-access overhead of an instrumented
 * run is a handful of local array increments; registry map lookups
 * happen only at flush/snapshot granularity.
 *
 * Activation (metricsActive()):
 *   - set GLLC_STATS_JSON=<path> (snapshot written there at process
 *     exit), or
 *   - set GLLC_METRICS=1 (collect without the exit dump), or
 *   - call setMetricsActive(true) (tests, the --stats bench flag).
 *
 * Collection is observation-only by design: an instrumented replay
 * produces bit-identical RunResults to an uninstrumented one
 * (mirroring the audit layer's read-only guarantee).
 */

#ifndef GLLC_COMMON_METRICS_HH
#define GLLC_COMMON_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"

namespace gllc
{

/** True when metrics collection is enabled for this process. */
bool metricsActive();

/**
 * Force metrics collection on or off (tests, --stats).  Overrides
 * the GLLC_STATS_JSON / GLLC_METRICS environment switches.
 */
void setMetricsActive(bool active);

/** What a registry name holds; a name's kind never changes. */
enum class MetricKind : std::uint8_t
{
    Counter,    ///< monotonically accumulated uint64 (merge: sum)
    Gauge,      ///< double watermark (merge: max)
    Histogram,  ///< sparse value -> count buckets (merge: sum)
};

/** Human-readable kind name ("counter", "gauge", "histogram"). */
const char *metricKindName(MetricKind kind);

/**
 * Explicit latency bucket bounds (milliseconds) for the service
 * latency histograms.  recordLatencyMs() maps a measured duration to
 * the smallest bound that contains it, so sharded histograms stay
 * sparse, mergeable, and byte-identical across thread counts; the
 * Prometheus exposition renders the bounds as cumulative `le` edges.
 */
extern const std::int64_t kLatencyBucketBoundsMs[15];

/**
 * The histogram bucket (one of kLatencyBucketBoundsMs) that @p ms
 * falls into: the smallest bound >= ms, clamped to the largest bound
 * for longer durations.  Negative durations clamp to the first bound.
 */
std::int64_t latencyBucketMs(double ms);

/**
 * Record @p ms into the explicit-bucket latency histogram @p name.
 * No-op when metricsActive() is false, so hot paths may call it
 * unconditionally.
 */
void recordLatencyMs(const std::string &name, double ms);

/** One merged metric in a snapshot. */
struct MetricValue
{
    MetricKind kind = MetricKind::Counter;
    std::uint64_t count = 0;  ///< Counter value

    /** Gauge watermark; starts at -inf so any first value wins. */
    double gauge = -std::numeric_limits<double>::infinity();

    /** Histogram buckets: sample value -> occurrence count. */
    std::map<std::int64_t, std::uint64_t> buckets;

    /** Total histogram samples across buckets. */
    std::uint64_t samples() const;

    /** Merge another observation of the same metric (commutative). */
    void merge(const MetricValue &other, const std::string &name);
};

/**
 * The @p q quantile (0 <= q <= 1) of a histogram metric: the
 * smallest bucket key whose cumulative count reaches rank
 * ceil(q * samples).  Returns 0 for an empty histogram.  For the
 * explicit latency buckets this is the usual Prometheus-style upper
 * bound estimate (p95 reads as "95% of samples took at most this
 * many ms").
 */
std::int64_t histogramQuantile(const MetricValue &hist, double q);

/**
 * A merged, name-sorted view of the registry at one instant.  The
 * map order (lexicographic by dotted name) is the export order, so
 * two snapshots of the same values serialize identically.
 */
class MetricsSnapshot
{
  public:
    const std::map<std::string, MetricValue> &values() const
    {
        return values_;
    }

    /** The metric of that exact name, or nullptr. */
    const MetricValue *find(const std::string &name) const;

    /** Counter value by name (0 when absent). */
    std::uint64_t counter(const std::string &name) const;

    /** The subtree under a dotted prefix ("llc.bank0."). */
    MetricsSnapshot withPrefix(const std::string &prefix) const;

    /**
     * JSON export (schema "gllc-stats-v1"): a name-sorted array of
     * {"name", "type", ...} records; tools/check_observability.py
     * validates the shape.
     */
    void writeJson(std::ostream &os) const;

    /** CSV export: name,type,key,value (one row per bucket). */
    void writeCsv(std::ostream &os) const;

    /**
     * Prometheus text exposition (format version 0.0.4).  Dotted
     * names sanitize to underscore form; counters gain the `_total`
     * suffix (unless the name already ends in it); histograms
     * render their sparse buckets as cumulative
     * `_bucket{le="..."}` samples plus `_sum` / `_count` (the sum is
     * computed from bucket keys, i.e. bucketed durations for the
     * latency histograms).  Output is name-sorted and deterministic.
     */
    void writePrometheus(std::ostream &os) const;

  private:
    friend class MetricsRegistry;
    std::map<std::string, MetricValue> values_;
};

/** The process-wide metrics registry. */
class MetricsRegistry
{
  public:
    /** The singleton (never destroyed, safe in atexit handlers). */
    static MetricsRegistry &instance();

    /** Add @p delta to the counter @p name. */
    void addCounter(const std::string &name, std::uint64_t delta = 1);

    /** Raise the gauge @p name to @p value if it is higher. */
    void maxGauge(const std::string &name, double value);

    /** Record @p count occurrences of @p value in histogram @p name. */
    void recordValue(const std::string &name, std::int64_t value,
                     std::uint64_t count = 1);

    /**
     * Merge every thread's shard into one deterministic view.  A
     * name used with two different kinds panics here (and already at
     * accumulation time when the collision happens within a thread).
     */
    MetricsSnapshot snapshot() const;

    /** Drop all accumulated values (tests). */
    void reset();

    /**
     * Erase the gauge @p name from every shard so the next
     * observation starts a fresh max watermark.  This turns a
     * watermark gauge into a windowed gauge: the /metrics handler
     * rearms queue-depth gauges after each scrape, so every scrape
     * window reports the peak depth since the previous scrape rather
     * than the all-time peak.  No-op for counters and histograms.
     */
    void rearmGauge(const std::string &name);

  private:
    MetricsRegistry() = default;

    struct Shard
    {
        Mutex mutex;  ///< uncontended except during snapshot
        std::map<std::string, MetricValue> values
            GLLC_GUARDED_BY(mutex);
    };

    Shard &localShard() GLLC_EXCLUDES(mutex_);
    static MetricValue &slotLocked(Shard &shard,
                                   const std::string &name,
                                   MetricKind kind)
        GLLC_REQUIRES(shard.mutex);

    mutable Mutex mutex_;  ///< guards shards_ growth
    std::vector<std::unique_ptr<Shard>> shards_
        GLLC_GUARDED_BY(mutex_);
};

/**
 * Write the registry snapshot to the GLLC_STATS_JSON path right now
 * (no-op when the variable is unset).  The same writer runs from the
 * atexit hook; long-lived daemons call this explicitly after a
 * SIGTERM-initiated stop so a terminated process still leaves a
 * complete, valid stats artifact even if exit handlers are skipped.
 */
void flushConfiguredStatsJson();

} // namespace gllc

#endif // GLLC_COMMON_METRICS_HH
