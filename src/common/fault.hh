/**
 * @file
 * Deterministic fault-injection harness.
 *
 * Every degradation path the fault-tolerant sweep promises to
 * survive (corrupt trace bytes, throwing cells, slow cells, memory
 * system failures) must be testable on demand, so the library
 * carries its own chaos source: named injection sites that fire
 * pseudo-randomly but reproducibly from a seed.
 *
 * Activation: set
 *
 *   GLLC_FAULT=<site>:p=<prob>[,seed=<u64>][,n=<max-fires>][;<site>:...]
 *
 * e.g. GLLC_FAULT="trace.bitflip:p=0.001,seed=42;cell.throw:p=1,n=3"
 * arms the trace bit-flipper at one fire per ~1000 draws and makes
 * the first three sweep-cell attempts throw.  Sites:
 *
 *   trace.bitflip   flip one bit of a deserialized trace payload
 *                   (the v2 section checksum must catch it)
 *   trace.truncate  make trace deserialization see early EOF
 *   cell.throw      throw out of a sweep (frame, policy) cell
 *   cell.delay      stall a sweep cell (exercises the watchdog)
 *   sim.access      throw out of the offline LLC replay loop
 *   dram.simulate   throw out of DramModel::simulate()
 *   worker.crash    hard-exit a gllcd sweep worker mid-cell (the
 *                   daemon must respawn and quarantine, never die)
 *   conn.stall      stall a gllcd connection thread before it
 *                   handles a frame (exercises IO deadlines)
 *   conn.drop       abruptly close a gllcd client connection
 *                   mid-conversation
 *   daemon.crash    hard-exit the gllcd daemon mid-job (recovery
 *                   via --recover must complete the job)
 *
 * Determinism: each draw hashes (site seed, draw index) — or a
 * caller-provided key for the keyed overload, which the sweep uses
 * with (app, frame, policy, attempt) so the set of failing cells is
 * identical at any thread count.  `n=` caps total fires per site,
 * which makes retry-then-succeed paths deterministically testable.
 *
 * Injection sites are observation points, not new control flow: an
 * unarmed site costs one relaxed atomic bool load.  Fired counts
 * surface as fault.<site>.fired metrics when collection is active.
 */

#ifndef GLLC_COMMON_FAULT_HH
#define GLLC_COMMON_FAULT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace gllc
{

/** The named injection points. */
enum class FaultSite : std::uint8_t
{
    TraceBitflip,
    TraceTruncate,
    CellThrow,
    CellDelay,
    SimAccess,
    DramSimulate,
    WorkerCrash,
    ConnStall,
    ConnDrop,
    DaemonCrash,
    kCount
};

constexpr std::size_t kNumFaultSites =
    static_cast<std::size_t>(FaultSite::kCount);

/** Spec/metric name of a site ("trace.bitflip", ...). */
const char *faultSiteName(FaultSite site);

/** True when any injection site is armed (cheap hot-path gate). */
bool faultsActive();

/**
 * (Re)configure the injector from a spec string; "" disarms every
 * site.  fatal() on a malformed spec.  Overrides the GLLC_FAULT
 * environment configuration (tests call this directly).
 */
void configureFaults(const std::string &spec);

/** Thrown by sites that inject failures into exception boundaries. */
class FaultInjectedError : public std::runtime_error
{
  public:
    explicit FaultInjectedError(FaultSite site);
    FaultSite site() const { return site_; }

  private:
    FaultSite site_;
};

/**
 * One Bernoulli draw at @p site: true when the fault fires.  The
 * decision for the k-th draw is a pure function of (seed, k), so a
 * serial run reproduces exactly from the seed.
 */
bool faultFires(FaultSite site);

/**
 * Keyed draw: the decision is a pure function of (seed, key), so it
 * reproduces regardless of call order across threads.  Build @p key
 * by hashing the logical coordinates of the operation (the sweep
 * hashes app/frame/policy/attempt).
 */
bool faultFires(FaultSite site, std::uint64_t key);

/**
 * Deterministic auxiliary bits for a site that just fired (e.g. the
 * bit position trace.bitflip corrupts); a pure function of the
 * site's seed and fired count.
 */
std::uint64_t faultPayload(FaultSite site);

/** Total fires of @p site since configuration (telemetry, tests). */
std::uint64_t faultFired(FaultSite site);

/** Total draws at @p site since configuration. */
std::uint64_t faultDrawn(FaultSite site);

/** Throw FaultInjectedError for @p site. */
[[noreturn]] void throwInjectedFault(FaultSite site);

} // namespace gllc

#endif // GLLC_COMMON_FAULT_HH
