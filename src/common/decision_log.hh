/**
 * @file
 * Ring-buffered per-access decision log.
 *
 * When enabled, BankedLlc records one compact record per serviced
 * access — stream, bank/set/way, hit/fill/bypass outcome, the RRPV
 * the policy chose and (for GSPC-family policies) the Figure-10
 * epoch state — into a bounded thread-local ring holding the last N
 * decisions of the replay running on that thread.  The PR-2 audit
 * layer dumps the failing thread's ring automatically in its abort
 * report, so an invariant violation arrives with the exact access
 * history that led up to it instead of requiring printf archaeology.
 *
 * Activation: set GLLC_DECISION_TRACE=<depth> in the environment
 * (GLLC_DECISION_TRACE=1 selects the default depth of 256 records),
 * or call DecisionLog::setDepth() from a test.  BankedLlc samples
 * the switch at construction, so an unlogged replay pays nothing on
 * the access path.
 *
 * The log is observation-only: recording never changes replacement
 * decisions, so logged runs stay bit-identical to unlogged ones.
 */

#ifndef GLLC_COMMON_DECISION_LOG_HH
#define GLLC_COMMON_DECISION_LOG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace gllc
{

/** How BankedLlc resolved one access. */
enum class DecisionOutcome : std::uint8_t
{
    Hit,
    Fill,    ///< miss that allocated
    Bypass,  ///< miss that did not allocate
};

/** Human-readable outcome name ("hit", "fill", "bypass"). */
const char *decisionOutcomeName(DecisionOutcome outcome);

/**
 * One logged access.  The string fields point at static storage
 * (stream and state names), so records are POD-cheap to copy.
 */
struct LlcDecision
{
    std::uint64_t index = 0;  ///< trace position of the access
    Addr addr = 0;
    const char *stream = "?";
    std::uint32_t bank = 0;
    std::uint32_t set = 0;
    std::int32_t way = -1;  ///< touched way, -1 for bypasses
    DecisionOutcome outcome = DecisionOutcome::Hit;
    std::int32_t rrpv = -1;           ///< chosen RRPV, -1 unknown
    const char *state = nullptr;      ///< Figure-10 state, if any
    bool isWrite = false;
};

/** The calling thread's bounded decision ring. */
class DecisionLog
{
  public:
    /** The thread-local instance. */
    static DecisionLog &local();

    /** Configured ring depth; 0 = logging disabled. */
    static int configuredDepth();

    /**
     * Force the ring depth for this process (tests); overrides
     * GLLC_DECISION_TRACE.  0 disables logging.
     */
    static void setDepth(int depth);

    /** True when accesses should be recorded. */
    static bool active() { return configuredDepth() > 0; }

    /**
     * Re-sample the configured depth into this ring, resizing it if
     * the depth changed.  Called once per replay by the BankedLlc
     * constructor (and by setDepth() for the calling thread), never
     * on the access path: record() assumes the depth is current.
     */
    void syncDepth();

    /**
     * Append one decision, evicting the oldest at capacity.  The
     * depth must have been synced on this thread (see syncDepth());
     * a never-synced ring drops records.
     */
    void record(const LlcDecision &decision);

    /** Records currently held (<= depth). */
    std::size_t size() const { return buffer_.size(); }

    /** The i-th record, oldest first. */
    const LlcDecision &at(std::size_t i) const;

    /** Drop all records. */
    void clear();

    /**
     * Print the ring (oldest first) to stderr through the logging
     * layer; called by auditFail() for the aborting thread.
     */
    void dump() const;

  private:
    int depth_ = 0;
    std::size_t head_ = 0;  ///< slot the next record overwrites
    std::vector<LlcDecision> buffer_;
};

/**
 * Dump the calling thread's decision log if logging is active and
 * any records exist (the audit layer's abort hook).
 */
void dumpLocalDecisionLog();

} // namespace gllc

#endif // GLLC_COMMON_DECISION_LOG_HH
