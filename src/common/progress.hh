/**
 * @file
 * Throttled cells/s + ETA progress reporting on stderr.
 *
 * Shared by the sweep engine and the perf-figure harness so every
 * long-running fan-out reports the same way.  Reporting defaults to
 * on only when stderr is a terminal; GLLC_PROGRESS=1/0 forces it.
 */

#ifndef GLLC_COMMON_PROGRESS_HH
#define GLLC_COMMON_PROGRESS_HH

#include <chrono>
#include <cstddef>

namespace gllc
{

/**
 * Resolve whether progress reporting is enabled: an explicit
 * @p override_flag (0/1) wins, then GLLC_PROGRESS, then whether
 * stderr is a tty.  Pass -1 for "no override".
 */
bool progressEnabled(int override_flag = -1);

/**
 * Throttled work/s + ETA reporter on stderr.  Updated from one
 * (merging) thread only, so it needs no locking.
 */
class ProgressMeter
{
  public:
    /**
     * @param label  noun printed before the counters ("sweep",
     *               "perf"); also the units label is "cells".
     */
    ProgressMeter(bool enabled, std::size_t total_cells,
                  const char *label = "sweep");

    /** Report @p done completed cells (rate-limited to ~4 Hz). */
    void update(std::size_t done);

  private:
    bool enabled_;
    std::size_t total_;
    const char *label_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastPrint_;
};

} // namespace gllc

#endif // GLLC_COMMON_PROGRESS_HH
