#include "rcache/texture_hierarchy.hh"

#include "common/logging.hh"

namespace gllc
{

TextureHierarchy::TextureHierarchy(const TextureHierarchyConfig &config)
    : config_(config)
{
    GLLC_ASSERT(config.samplers > 0 && config.samplersPerCluster > 0);
    const std::uint32_t clusters =
        (config.samplers + config.samplersPerCluster - 1)
        / config.samplersPerCluster;

    for (std::uint32_t i = 0; i < config.samplers; ++i) {
        l1_.push_back(std::make_unique<SmallCache>(
            "TEX-L1." + std::to_string(i), config.l1Blocks,
            config.l1Ways, /*write_allocate=*/false));
    }
    for (std::uint32_t i = 0; i < clusters; ++i) {
        l2_.push_back(std::make_unique<SmallCache>(
            "TEX-L2." + std::to_string(i), config.l2Blocks,
            config.l2Ways, /*write_allocate=*/false));
    }
    l3_ = std::make_unique<SmallCache>("TEX-L3", config.l3Blocks,
                                       config.l3Ways,
                                       /*write_allocate=*/false);
}

int
TextureHierarchy::read(Addr addr, std::uint32_t sampler,
                       std::uint32_t cycle, std::vector<MemAccess> &out)
{
    GLLC_ASSERT(sampler < config_.samplers);
    scratch_.clear();

    if (l1_[sampler]->access(addr, false, StreamType::Texture, cycle,
                             scratch_)) {
        return 1;
    }

    const std::uint32_t cluster = sampler / config_.samplersPerCluster;
    scratch_.clear();
    if (l2_[cluster]->access(addr, false, StreamType::Texture, cycle,
                             scratch_)) {
        return 2;
    }

    scratch_.clear();
    if (l3_->access(addr, false, StreamType::Texture, cycle, scratch_))
        return 3;

    out.emplace_back(blockAlign(addr), StreamType::Texture, false,
                     cycle);
    return 4;
}

void
TextureHierarchy::invalidate()
{
    // Read-only levels hold no dirty data, so a flush discards
    // everything without traffic.
    std::vector<MemAccess> sink;
    for (auto &c : l1_)
        c->flush(0, sink);
    for (auto &c : l2_)
        c->flush(0, sink);
    l3_->flush(0, sink);
    GLLC_ASSERT(sink.empty());
}

const SmallCacheStats &
TextureHierarchy::l1Stats(std::uint32_t sampler) const
{
    GLLC_ASSERT(sampler < l1_.size());
    return l1_[sampler]->stats();
}

const SmallCacheStats &
TextureHierarchy::l2Stats(std::uint32_t cluster) const
{
    GLLC_ASSERT(cluster < l2_.size());
    return l2_[cluster]->stats();
}

} // namespace gllc
