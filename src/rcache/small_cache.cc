#include "rcache/small_cache.hh"

#include "common/logging.hh"

namespace gllc
{

namespace
{

std::uint32_t
floorPow2(std::uint32_t x)
{
    GLLC_ASSERT(x > 0);
    while ((x & (x - 1)) != 0)
        x &= x - 1;
    return x;
}

} // namespace

SmallCache::SmallCache(std::string name, std::uint32_t blocks,
                       std::uint32_t ways, bool write_allocate)
    : name_(std::move(name)), writeAllocate_(write_allocate)
{
    GLLC_ASSERT(blocks > 0 && ways > 0);
    blocks = floorPow2(blocks);
    ways_ = std::min(ways, blocks);
    sets_ = blocks / floorPow2(ways_);
    ways_ = blocks / sets_;
    entries_.assign(static_cast<std::size_t>(sets_) * ways_, Entry{});
}

bool
SmallCache::access(Addr addr, bool is_write, StreamType stream,
                   std::uint32_t cycle, std::vector<MemAccess> &out)
{
    ++stats_.accesses;
    const std::uint32_t set = setOf(addr);
    const Addr tag = blockNumber(addr);
    const std::size_t base = static_cast<std::size_t>(set) * ways_;

    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.tag == tag) {
            ++stats_.hits;
            e.stamp = ++clock_;
            e.dirty = e.dirty || is_write;
            return true;
        }
    }

    // Miss.  Read-only caches forward writes without allocating.
    if (is_write && !writeAllocate_) {
        out.emplace_back(blockAlign(addr), stream, true, cycle);
        return false;
    }

    const bool emit_fill = !is_write;

    // Victim: invalid frame first, else LRU.
    std::uint32_t victim = 0;
    bool found_invalid = false;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!entries_[base + w].valid) {
            victim = w;
            found_invalid = true;
            break;
        }
        if (entries_[base + w].stamp < entries_[base + victim].stamp)
            victim = w;
    }

    Entry &e = entries_[base + victim];
    if (!found_invalid && e.valid && e.dirty) {
        ++stats_.writebacks;
        out.emplace_back(e.tag << kBlockShift, e.stream, true, cycle);
    }

    // Read misses fetch the block from the LLC.  Store misses
    // allocate silently: render-target/depth tiles are written
    // whole, so nothing is fetched and the LLC sees the data only
    // when the dirty block is written back.
    if (emit_fill)
        out.emplace_back(blockAlign(addr), stream, false, cycle);

    e.tag = tag;
    e.valid = true;
    e.dirty = is_write;
    e.stream = stream;
    e.stamp = ++clock_;
    return false;
}

void
SmallCache::flush(std::uint32_t cycle, std::vector<MemAccess> &out)
{
    std::uint32_t drained = 0;
    for (Entry &e : entries_) {
        if (e.valid && e.dirty) {
            ++stats_.writebacks;
            // Flushes drain at a finite rate; spreading the stamps
            // keeps the DRAM arrival process realistic.
            out.emplace_back(e.tag << kBlockShift, e.stream, true,
                             cycle + drained / 2);
            ++drained;
        }
        e.valid = false;
        e.dirty = false;
    }
}

} // namespace gllc
