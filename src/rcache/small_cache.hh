/**
 * @file
 * Small single-bank LRU cache used for the per-stream render caches.
 *
 * Section 1: "a single level of vertex and vertex index cache, Z
 * cache, render target cache, stencil cache, HiZ cache ... can be
 * found in any typical GPU."  These caches filter near-term temporal
 * locality; their misses and dirty writebacks form the LLC access
 * streams.  Each resident block remembers the LLC stream tag it was
 * brought in with so writebacks are attributed correctly (the render
 * target cache holds both RT and displayable-color blocks).
 */

#ifndef GLLC_RCACHE_SMALL_CACHE_HH
#define GLLC_RCACHE_SMALL_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/access.hh"

namespace gllc
{

/** Statistics for one render cache. */
struct SmallCacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t writebacks = 0;

    std::uint64_t misses() const { return accesses - hits; }
};

class SmallCache
{
  public:
    /**
     * @param name for reporting
     * @param blocks total 64 B block frames (power of two)
     * @param ways associativity (clamped to the block count)
     * @param write_allocate false for read-only caches (texture,
     *        vertex) that can never hold dirty data
     */
    SmallCache(std::string name, std::uint32_t blocks, std::uint32_t ways,
               bool write_allocate = true);

    /**
     * Service one access.  On a miss, appends the LLC fill request
     * (and a writeback, if a dirty block was displaced) to @p out.
     *
     * @param addr byte address
     * @param is_write store?
     * @param stream LLC stream tag for traffic caused by this access
     * @param cycle issue cycle stamped onto emitted LLC accesses
     * @param out receives the LLC-bound accesses
     * @return true on hit
     */
    bool access(Addr addr, bool is_write, StreamType stream,
                std::uint32_t cycle, std::vector<MemAccess> &out);

    /**
     * Write back every dirty block (pass/frame boundary flush) and
     * invalidate the cache contents.
     */
    void flush(std::uint32_t cycle, std::vector<MemAccess> &out);

    const SmallCacheStats &stats() const { return stats_; }
    const std::string &name() const { return name_; }
    std::uint32_t ways() const { return ways_; }
    std::uint32_t sets() const { return sets_; }

  private:
    struct Entry
    {
        Addr tag = 0;
        std::uint64_t stamp = 0;
        StreamType stream = StreamType::Other;
        bool valid = false;
        bool dirty = false;
    };

    std::uint32_t setOf(Addr addr) const
    {
        return static_cast<std::uint32_t>(blockNumber(addr)
                                          & (sets_ - 1));
    }

    std::string name_;
    std::uint32_t sets_;
    std::uint32_t ways_;
    bool writeAllocate_;
    std::uint64_t clock_ = 0;
    std::vector<Entry> entries_;
    SmallCacheStats stats_;
};

} // namespace gllc

#endif // GLLC_RCACHE_SMALL_CACHE_HH
