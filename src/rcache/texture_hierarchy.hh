/**
 * @file
 * Three-level texture cache hierarchy (Section 4).
 *
 * Twelve fixed-function samplers each own a small L1; clusters of
 * four samplers share an L2; all samplers share the 384 KB 48-way
 * L3.  The hierarchy is read-only: texture data (and render targets
 * consumed as textures) are never written through the samplers.
 * Only L3 misses reach the LLC, forming the texture sampler stream.
 */

#ifndef GLLC_RCACHE_TEXTURE_HIERARCHY_HH
#define GLLC_RCACHE_TEXTURE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "rcache/small_cache.hh"

namespace gllc
{

/** Configuration of the texture hierarchy (block counts per level). */
struct TextureHierarchyConfig
{
    std::uint32_t samplers = 12;
    std::uint32_t samplersPerCluster = 4;

    std::uint32_t l1Blocks = 64;    ///< 4 KB per sampler
    std::uint32_t l1Ways = 16;
    std::uint32_t l2Blocks = 512;   ///< 32 KB per cluster
    std::uint32_t l2Ways = 16;
    std::uint32_t l3Blocks = 6144;  ///< 384 KB shared
    std::uint32_t l3Ways = 48;
};

class TextureHierarchy
{
  public:
    explicit TextureHierarchy(const TextureHierarchyConfig &config);

    /**
     * Read one texel block through the given sampler's path.
     * Appends the LLC-bound access to @p out when all levels miss.
     * @return the level that hit (1..3), or 4 for an LLC-bound miss.
     */
    int read(Addr addr, std::uint32_t sampler, std::uint32_t cycle,
             std::vector<MemAccess> &out);

    /** Invalidate all levels (frame boundary). */
    void invalidate();

    const SmallCacheStats &l1Stats(std::uint32_t sampler) const;
    const SmallCacheStats &l2Stats(std::uint32_t cluster) const;
    const SmallCacheStats &l3Stats() const { return l3_->stats(); }
    std::uint32_t samplers() const { return config_.samplers; }

  private:
    TextureHierarchyConfig config_;
    std::vector<std::unique_ptr<SmallCache>> l1_;
    std::vector<std::unique_ptr<SmallCache>> l2_;
    std::unique_ptr<SmallCache> l3_;
    /** Scratch vector: L1/L2 misses are consumed internally. */
    std::vector<MemAccess> scratch_;
};

} // namespace gllc

#endif // GLLC_RCACHE_TEXTURE_HIERARCHY_HH
