/**
 * @file
 * The render-cache complex: every first-level GPU cache in front of
 * the LLC (Section 4's configuration), producing the LLC access
 * streams as its misses and writebacks.
 */

#ifndef GLLC_RCACHE_RENDER_CACHES_HH
#define GLLC_RCACHE_RENDER_CACHES_HH

#include <cstdint>
#include <vector>

#include "rcache/small_cache.hh"
#include "rcache/texture_hierarchy.hh"

namespace gllc
{

/**
 * Block counts / ways of every render cache.  Defaults follow
 * Section 4: 1 KB 16-way vertex index, 16 KB 128-way vertex, 12 KB
 * 24-way HiZ, 16 KB 16-way stencil, 24 KB 24-way render target,
 * 32 KB 32-way Z, and the texture hierarchy.
 */
struct RenderCacheConfig
{
    std::uint32_t vtxIndexBlocks = 16;   ///< 1 KB
    std::uint32_t vtxIndexWays = 16;
    std::uint32_t vertexBlocks = 256;    ///< 16 KB
    std::uint32_t vertexWays = 128;
    std::uint32_t hizBlocks = 192;       ///< 12 KB
    std::uint32_t hizWays = 24;
    std::uint32_t stencilBlocks = 256;   ///< 16 KB
    std::uint32_t stencilWays = 16;
    std::uint32_t rtBlocks = 384;        ///< 24 KB
    std::uint32_t rtWays = 24;
    std::uint32_t zBlocks = 512;         ///< 32 KB
    std::uint32_t zWays = 32;

    TextureHierarchyConfig texture;

    /**
     * Divide every capacity by @p pixel_scale (resolution ratio),
     * with a floor of four blocks per cache, so scaled-down frames
     * see proportionate filtering.
     */
    RenderCacheConfig scaled(std::uint32_t pixel_scale) const;
};

/** All render caches, sharing one output trace vector per frame. */
class RenderCacheComplex
{
  public:
    explicit RenderCacheComplex(const RenderCacheConfig &config);

    /// @name Pipeline-stage access entry points
    /// Each appends any generated LLC traffic to @p out.
    /// @{
    void vertexIndexRead(Addr addr, std::uint32_t cycle,
                         std::vector<MemAccess> &out);
    void vertexRead(Addr addr, std::uint32_t cycle,
                    std::vector<MemAccess> &out);
    void hizAccess(Addr addr, bool is_write, std::uint32_t cycle,
                   std::vector<MemAccess> &out);
    void zAccess(Addr addr, bool is_write, std::uint32_t cycle,
                 std::vector<MemAccess> &out);
    void stencilAccess(Addr addr, bool is_write, std::uint32_t cycle,
                       std::vector<MemAccess> &out);

    /**
     * Color-buffer access through the RT cache.  @p stream selects
     * RenderTarget for ordinary render targets and Display for the
     * final back-buffer resolve.
     */
    void colorAccess(Addr addr, bool is_write, StreamType stream,
                     std::uint32_t cycle, std::vector<MemAccess> &out);

    /** Texture read through the sampler hierarchy. */
    void textureRead(Addr addr, std::uint32_t sampler,
                     std::uint32_t cycle, std::vector<MemAccess> &out);

    /** Uncached access (shader code, constants): straight to LLC. */
    void otherRead(Addr addr, std::uint32_t cycle,
                   std::vector<MemAccess> &out);
    /// @}

    /**
     * Render-pass boundary: write back and invalidate the color and
     * depth caches so a following pass that samples this pass's
     * output observes it through the LLC (render-to-texture).
     */
    void passBoundary(std::uint32_t cycle, std::vector<MemAccess> &out);

    /** Frame boundary: passBoundary plus texture/vertex invalidate. */
    void frameBoundary(std::uint32_t cycle, std::vector<MemAccess> &out);

    /// @name Statistics
    /// @{
    const SmallCacheStats &vtxIndexStats() const;
    const SmallCacheStats &vertexStats() const;
    const SmallCacheStats &hizStats() const;
    const SmallCacheStats &zStats() const;
    const SmallCacheStats &stencilStats() const;
    const SmallCacheStats &rtStats() const;
    const TextureHierarchy &texture() const { return tex_; }
    /// @}

  private:
    SmallCache vtxIndex_;
    SmallCache vertex_;
    SmallCache hiz_;
    SmallCache z_;
    SmallCache stencil_;
    SmallCache rt_;
    TextureHierarchy tex_;
};

} // namespace gllc

#endif // GLLC_RCACHE_RENDER_CACHES_HH
