#include "rcache/render_caches.hh"

#include <algorithm>

namespace gllc
{

namespace
{

std::uint32_t
scaleBlocks(std::uint32_t blocks, std::uint32_t pixel_scale,
            std::uint32_t floor_blocks)
{
    return std::max(floor_blocks, blocks / pixel_scale);
}

} // namespace

RenderCacheConfig
RenderCacheConfig::scaled(std::uint32_t pixel_scale) const
{
    RenderCacheConfig s = *this;
    if (pixel_scale <= 1)
        return s;
    // Floors keep each cache large enough to capture one draw's
    // working set, which is what the full-size caches achieve at
    // full resolution; without them the scaled caches stop
    // filtering near-term reuse and the LLC stream mix distorts.
    s.vtxIndexBlocks = scaleBlocks(vtxIndexBlocks, pixel_scale, 4);
    s.vertexBlocks = scaleBlocks(vertexBlocks, pixel_scale, 24);
    s.hizBlocks = scaleBlocks(hizBlocks, pixel_scale, 8);
    s.stencilBlocks = scaleBlocks(stencilBlocks, pixel_scale, 8);
    s.rtBlocks = scaleBlocks(rtBlocks, pixel_scale, 24);
    s.zBlocks = scaleBlocks(zBlocks, pixel_scale, 48);
    s.texture.l1Blocks = scaleBlocks(texture.l1Blocks, pixel_scale, 8);
    s.texture.l2Blocks = scaleBlocks(texture.l2Blocks, pixel_scale, 16);
    s.texture.l3Blocks =
        scaleBlocks(texture.l3Blocks, pixel_scale, 96);
    return s;
}

RenderCacheComplex::RenderCacheComplex(const RenderCacheConfig &config)
    : vtxIndex_("VTXIDX", config.vtxIndexBlocks, config.vtxIndexWays,
                /*write_allocate=*/false),
      vertex_("VTX", config.vertexBlocks, config.vertexWays,
              /*write_allocate=*/false),
      hiz_("HiZ", config.hizBlocks, config.hizWays),
      z_("Z", config.zBlocks, config.zWays),
      stencil_("STC", config.stencilBlocks, config.stencilWays),
      rt_("RT", config.rtBlocks, config.rtWays),
      tex_(config.texture)
{
}

void
RenderCacheComplex::vertexIndexRead(Addr addr, std::uint32_t cycle,
                                    std::vector<MemAccess> &out)
{
    vtxIndex_.access(addr, false, StreamType::Vertex, cycle, out);
}

void
RenderCacheComplex::vertexRead(Addr addr, std::uint32_t cycle,
                               std::vector<MemAccess> &out)
{
    vertex_.access(addr, false, StreamType::Vertex, cycle, out);
}

void
RenderCacheComplex::hizAccess(Addr addr, bool is_write,
                              std::uint32_t cycle,
                              std::vector<MemAccess> &out)
{
    hiz_.access(addr, is_write, StreamType::HiZ, cycle, out);
}

void
RenderCacheComplex::zAccess(Addr addr, bool is_write, std::uint32_t cycle,
                            std::vector<MemAccess> &out)
{
    z_.access(addr, is_write, StreamType::Z, cycle, out);
}

void
RenderCacheComplex::stencilAccess(Addr addr, bool is_write,
                                  std::uint32_t cycle,
                                  std::vector<MemAccess> &out)
{
    stencil_.access(addr, is_write, StreamType::Stencil, cycle, out);
}

void
RenderCacheComplex::colorAccess(Addr addr, bool is_write,
                                StreamType stream, std::uint32_t cycle,
                                std::vector<MemAccess> &out)
{
    rt_.access(addr, is_write, stream, cycle, out);
}

void
RenderCacheComplex::textureRead(Addr addr, std::uint32_t sampler,
                                std::uint32_t cycle,
                                std::vector<MemAccess> &out)
{
    tex_.read(addr, sampler, cycle, out);
}

void
RenderCacheComplex::otherRead(Addr addr, std::uint32_t cycle,
                              std::vector<MemAccess> &out)
{
    out.emplace_back(blockAlign(addr), StreamType::Other, false, cycle);
}

void
RenderCacheComplex::passBoundary(std::uint32_t cycle,
                                 std::vector<MemAccess> &out)
{
    rt_.flush(cycle, out);
    z_.flush(cycle, out);
    hiz_.flush(cycle, out);
    stencil_.flush(cycle, out);
}

void
RenderCacheComplex::frameBoundary(std::uint32_t cycle,
                                  std::vector<MemAccess> &out)
{
    passBoundary(cycle, out);
    std::vector<MemAccess> sink;
    vtxIndex_.flush(cycle, sink);
    vertex_.flush(cycle, sink);
    tex_.invalidate();
}

const SmallCacheStats &
RenderCacheComplex::vtxIndexStats() const
{
    return vtxIndex_.stats();
}

const SmallCacheStats &
RenderCacheComplex::vertexStats() const
{
    return vertex_.stats();
}

const SmallCacheStats &
RenderCacheComplex::hizStats() const
{
    return hiz_.stats();
}

const SmallCacheStats &
RenderCacheComplex::zStats() const
{
    return z_.stats();
}

const SmallCacheStats &
RenderCacheComplex::stencilStats() const
{
    return stencil_.stats();
}

const SmallCacheStats &
RenderCacheComplex::rtStats() const
{
    return rt_.stats();
}

} // namespace gllc
