#include "cache/banked_llc.hh"

#include "common/audit.hh"
#include "common/decision_log.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace gllc
{

std::uint64_t
LlcStats::totalAccesses() const
{
    std::uint64_t n = 0;
    for (const auto &s : stream)
        n += s.accesses;
    return n;
}

std::uint64_t
LlcStats::totalHits() const
{
    std::uint64_t n = 0;
    for (const auto &s : stream)
        n += s.hits;
    return n;
}

std::uint64_t
LlcStats::totalMisses() const
{
    std::uint64_t n = 0;
    for (const auto &s : stream)
        n += s.misses + s.bypasses;
    return n;
}

double
LlcStats::hitRate(StreamType s) const
{
    const PerStream &ps = of(s);
    return (ps.accesses == 0)
        ? 0.0
        : static_cast<double>(ps.hits) / static_cast<double>(ps.accesses);
}

void
LlcStats::merge(const LlcStats &other)
{
    for (std::size_t i = 0; i < stream.size(); ++i) {
        stream[i].accesses += other.stream[i].accesses;
        stream[i].hits += other.stream[i].hits;
        stream[i].misses += other.stream[i].misses;
        stream[i].bypasses += other.stream[i].bypasses;
    }
    writebacks += other.writebacks;
    evictions += other.evictions;
}

std::function<bool(const MemAccess &)>
displayBypass()
{
    return [](const MemAccess &a) {
        return a.stream == StreamType::Display;
    };
}

BankedLlc::BankedLlc(const LlcConfig &config, const PolicyFactory &factory)
    : geom_(config.capacityBytes, config.ways, config.banks),
      config_(config),
      logDecisions_(DecisionLog::active())
{
    // The access path never re-reads environment state: the
    // decision-log depth is synced here, once, and logDecisions_ /
    // policyMayBypass are sampled into plain bools.
    if (logDecisions_)
        DecisionLog::local().syncDepth();
    const std::size_t frames =
        static_cast<std::size_t>(geom_.setsPerBank()) * geom_.ways();
    banks_.resize(geom_.banks());
    for (auto &bank : banks_) {
        bank.tags.assign(frames, kInvalidTag);
        bank.dirty.assign(frames, 0);
        bank.liveWays.assign(geom_.setsPerBank(), 0);
        bank.policy = factory();
        GLLC_ASSERT(bank.policy != nullptr);
        bank.policy->configure(geom_.setsPerBank(), geom_.ways());
        bank.policyMayBypass = bank.policy->mayBypass();
    }
}

bool
BankedLlc::fastPathEligible() const
{
    return !logDecisions_ && !config_.bypass && !auditActive();
}

std::uint32_t
BankedLlc::findWay(const Bank &bank, std::uint32_t set, Addr tag) const
{
    const std::size_t base =
        static_cast<std::size_t>(set) * geom_.ways();
    for (std::uint32_t w = 0; w < geom_.ways(); ++w) {
        if (bank.tags[base + w] == tag)
            return w;
    }
    return geom_.ways();
}

bool
BankedLlc::isResident(Addr addr) const
{
    const Bank &bank = banks_[geom_.bankOf(addr)];
    return findWay(bank, geom_.setOf(addr), geom_.tagOf(addr))
        != geom_.ways();
}

LlcAccessResult
BankedLlc::access(const MemAccess &access, std::uint64_t index,
                  std::uint64_t next_use)
{
    LlcAccessResult result;
    const std::uint32_t bank_id = geom_.bankOf(access.addr);
    Bank &bank = banks_[bank_id];
    const std::uint32_t set = geom_.setOf(access.addr);
    const Addr tag = geom_.tagOf(access.addr);
    const std::size_t base = static_cast<std::size_t>(set) * geom_.ways();

    const bool audit = auditActive();
    if (audit) {
        AuditContext &ctx = auditContext();
        ctx.stream = streamName(access.stream);
        ctx.accessIndex = static_cast<std::int64_t>(index);
        ctx.bank = bank_id;
        ctx.set = set;
        ctx.way = -1;
    }

    auto &sstats =
        bank.stats.stream[static_cast<std::size_t>(access.stream)];
    ++sstats.accesses;

    // Filled in lazily: only when decision logging is live.
    LlcDecision decision;
    if (logDecisions_) {
        decision.index = index;
        decision.addr = access.addr;
        decision.stream = streamName(access.stream).c_str();
        decision.bank = bank_id;
        decision.set = set;
        decision.isWrite = access.isWrite;
    }

    const AccessInfo info{&access, index, next_use};
    const std::uint32_t way = findWay(bank, set, tag);
    if (audit)
        auditContext().way = (way != geom_.ways()) ? way : -1;

    if (way != geom_.ways()) {
        // Hit (bypassed streams can still hit blocks another stream
        // allocated; the data is resident either way).
        ++sstats.hits;
        result.hit = true;
        bank.dirty[base + way] |=
            static_cast<std::uint8_t>(access.isWrite);
        bank.policy->onHit(set, way, info);
        if (logDecisions_) {
            decision.way = static_cast<std::int32_t>(way);
            decision.outcome = DecisionOutcome::Hit;
            decision.rrpv = bank.policy->decisionRrpv(set, way);
            decision.state = bank.policy->decisionState(set, way);
            DecisionLog::local().record(decision);
        }
        if (observer_ != nullptr)
            observer_->onHit(access);
        if (audit)
            auditSet(bank_id, set);
        return result;
    }

    if ((config_.uncachedDisplay
         && access.stream == StreamType::Display)
        || (config_.bypass && config_.bypass(access))
        || bank.policy->shouldBypass(set, info)) {
        ++sstats.bypasses;
        result.bypassed = true;
        if (logDecisions_) {
            decision.outcome = DecisionOutcome::Bypass;
            DecisionLog::local().record(decision);
        }
        if (observer_ != nullptr)
            observer_->onBypass(access);
        if (audit)
            auditSet(bank_id, set);
        return result;
    }

    // Miss: always fill (Section 2: "A miss in the LLC always fills
    // the requested block into the LLC").
    ++sstats.misses;

    // Prefer the lowest invalid frame; otherwise ask the policy for a
    // victim.
    std::uint32_t fill_way = geom_.ways();
    if (bank.liveWays[set] < geom_.ways()) {
        for (std::uint32_t w = 0; w < geom_.ways(); ++w) {
            if (bank.tags[base + w] == kInvalidTag) {
                fill_way = w;
                break;
            }
        }
        GLLC_ASSERT(fill_way < geom_.ways());
        ++bank.liveWays[set];
    }

    if (fill_way == geom_.ways()) {
        fill_way = bank.policy->selectVictim(set);
        GLLC_ASSERT(fill_way < geom_.ways());
        const Addr victim_tag = bank.tags[base + fill_way];
        GLLC_ASSERT(victim_tag != kInvalidTag);
        ++bank.stats.evictions;
        if (bank.dirty[base + fill_way] != 0) {
            ++bank.stats.writebacks;
            result.writeback = true;
            result.writebackAddr = victim_tag << kBlockShift;
        }
        bank.policy->onEvict(set, fill_way);
        if (observer_ != nullptr)
            observer_->onEvict(victim_tag << kBlockShift);
    }

    if (observer_ != nullptr)
        observer_->onMiss(access);

    bank.tags[base + fill_way] = tag;
    bank.dirty[base + fill_way] =
        static_cast<std::uint8_t>(access.isWrite);
    bank.policy->onFill(set, fill_way, info);
    if (logDecisions_) {
        decision.way = static_cast<std::int32_t>(fill_way);
        decision.outcome = DecisionOutcome::Fill;
        decision.rrpv = bank.policy->decisionRrpv(set, fill_way);
        decision.state = bank.policy->decisionState(set, fill_way);
        DecisionLog::local().record(decision);
    }
    if (audit) {
        auditContext().way = fill_way;
        auditSet(bank_id, set);
    }
    return result;
}

void
BankedLlc::auditSet(std::uint32_t bank_id, std::uint32_t set) const
{
    if (!auditActive())
        return;
    const Bank &bank = banks_[bank_id];
    const std::size_t base = static_cast<std::size_t>(set) * geom_.ways();
    std::uint32_t live = 0;
    for (std::uint32_t w = 0; w < geom_.ways(); ++w) {
        const Addr tag = bank.tags[base + w];
        if (tag == kInvalidTag)
            continue;
        ++live;
        const Addr addr = tag << kBlockShift;
        GLLC_AUDIT_CHECK("BankedLlc", "tag-geometry",
                         geom_.bankOf(addr) == bank_id
                             && geom_.setOf(addr) == set,
                         "resident tag 0x%llx maps to bank %u set %u, "
                         "not bank %u set %u",
                         static_cast<unsigned long long>(tag),
                         geom_.bankOf(addr), geom_.setOf(addr),
                         bank_id, set);
        for (std::uint32_t o = w + 1; o < geom_.ways(); ++o) {
            const Addr other = bank.tags[base + o];
            GLLC_AUDIT_CHECK("BankedLlc", "duplicate-tag",
                             other == kInvalidTag || other != tag,
                             "tag 0x%llx resident in ways %u and %u "
                             "of set %u",
                             static_cast<unsigned long long>(tag),
                             w, o, set);
        }
    }
    GLLC_AUDIT_CHECK("BankedLlc", "occupancy-count",
                     bank.liveWays[set] == live,
                     "set %u occupancy counter %u disagrees with %u "
                     "valid tags",
                     set, static_cast<unsigned>(bank.liveWays[set]),
                     live);
    bank.policy->auditInvariants(set);
}

void
BankedLlc::auditAll() const
{
    if (!auditActive())
        return;
    for (std::uint32_t b = 0; b < geom_.banks(); ++b)
        for (std::uint32_t s = 0; s < geom_.setsPerBank(); ++s)
            auditSet(b, s);
}

void
BankedLlc::debugCorruptEntry(std::uint32_t bank_id, std::uint32_t set,
                             std::uint32_t way, Addr tag, bool valid)
{
    GLLC_ASSERT(bank_id < banks_.size());
    Bank &bank = banks_[bank_id];
    const std::size_t idx =
        static_cast<std::size_t>(set) * geom_.ways() + way;
    GLLC_ASSERT(idx < bank.tags.size());
    const bool was_valid = bank.tags[idx] != kInvalidTag;
    bank.tags[idx] = valid ? tag : kInvalidTag;
    // Keep the occupancy counter coherent so only the injected
    // corruption (not a stale count) trips the audit.
    if (valid && !was_valid)
        ++bank.liveWays[set];
    else if (!valid && was_valid)
        --bank.liveWays[set];
}

FillHistogram
BankedLlc::mergedFillHistogram() const
{
    FillHistogram merged;
    for (const auto &bank : banks_) {
        const FillHistogram *h = bank.policy->fillHistogram();
        if (h != nullptr)
            merged.merge(*h);
    }
    return merged;
}

ReplacementPolicy &
BankedLlc::bankPolicy(std::uint32_t bank)
{
    GLLC_ASSERT(bank < banks_.size());
    return *banks_[bank].policy;
}

const LlcStats &
BankedLlc::bankStats(std::uint32_t bank) const
{
    GLLC_ASSERT(bank < banks_.size());
    return banks_[bank].stats;
}

LlcStats
BankedLlc::stats() const
{
    LlcStats merged;
    for (const auto &bank : banks_)
        merged.merge(bank.stats);
    return merged;
}

namespace
{

/** Publish one LlcStats block; zero-valued names are skipped. */
void
flushLlcStats(MetricsRegistry &reg, const std::string &prefix,
              const LlcStats &stats)
{
    for (std::size_t i = 0; i < kNumStreams; ++i) {
        const LlcStats::PerStream &s = stats.stream[i];
        if (s.accesses == 0)
            continue;
        const std::string base =
            prefix + "stream."
            + streamName(static_cast<StreamType>(i)) + ".";
        reg.addCounter(base + "accesses", s.accesses);
        if (s.hits > 0)
            reg.addCounter(base + "hits", s.hits);
        if (s.misses > 0)
            reg.addCounter(base + "misses", s.misses);
        if (s.bypasses > 0)
            reg.addCounter(base + "bypasses", s.bypasses);
    }
    if (stats.writebacks > 0)
        reg.addCounter(prefix + "writebacks", stats.writebacks);
    if (stats.evictions > 0)
        reg.addCounter(prefix + "evictions", stats.evictions);
}

/** Publish one insertion-RRPV histogram under prefix + "fill_rrpv.". */
void
flushFillHistogram(MetricsRegistry &reg, const std::string &prefix,
                   const FillHistogram &h)
{
    for (std::size_t s = 0; s < kNumPolicyStreams; ++s) {
        const std::string name =
            prefix + "fill_rrpv."
            + policyStreamName(static_cast<PolicyStream>(s));
        for (unsigned r = 0; r < FillHistogram::kMaxRrpv; ++r) {
            const std::uint64_t n =
                h.fillsAt(static_cast<PolicyStream>(s), r);
            if (n > 0)
                reg.recordValue(name, static_cast<std::int64_t>(r),
                                n);
        }
    }
}

} // namespace

void
BankedLlc::flushMetrics(const std::string &prefix) const
{
    if (!metricsActive())
        return;
    MetricsRegistry &reg = MetricsRegistry::instance();

    flushLlcStats(reg, prefix, stats());
    flushFillHistogram(reg, prefix, mergedFillHistogram());

    for (std::uint32_t b = 0; b < geom_.banks(); ++b) {
        const Bank &bank = banks_[b];
        const std::string bank_prefix =
            prefix + "bank" + std::to_string(b) + ".";
        flushLlcStats(reg, bank_prefix, bank.stats);
        const FillHistogram *h = bank.policy->fillHistogram();
        if (h != nullptr)
            flushFillHistogram(reg, bank_prefix, *h);
        bank.policy->flushMetrics(bank_prefix);
    }
}

} // namespace gllc
