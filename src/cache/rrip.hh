/**
 * @file
 * Shared RRIP replacement machinery.
 *
 * Every RRIP-family policy (SRRIP, DRRIP, GS-DRRIP, SHiP-mem and the
 * GSPC family) shares the same victim-selection rule: evict the
 * lowest-numbered way whose RRPV equals 2^n - 1, aging the whole set
 * in unit steps when no such way exists (Section 1, baseline
 * description).  RripState centralizes the RRPV array, the victim
 * scan and the insertion-RRPV bookkeeping for Figure 8.
 */

#ifndef GLLC_CACHE_RRIP_HH
#define GLLC_CACHE_RRIP_HH

#include <cstdint>
#include <vector>

#include "cache/replacement.hh"

namespace gllc
{

/** Per-bank array of n-bit re-reference prediction values. */
class RripState
{
  public:
    /** @param bits RRPV width; the paper uses 2 (and 4 in Fig 14). */
    explicit RripState(unsigned bits);

    void configure(std::uint32_t sets, std::uint32_t ways);

    /** Maximum RRPV (2^n - 1): "no near-future reuse", the victim. */
    std::uint8_t maxRrpv() const { return max_; }

    /** "Long re-reference interval" insertion value (2^n - 2). */
    std::uint8_t distantRrpv() const { return max_ - 1; }

    /**
     * RRIP victim selection: first way at maxRrpv, aging all ways in
     * unit steps until one qualifies.  Ties break toward the minimum
     * physical way id (Section 1).
     */
    std::uint32_t selectVictim(std::uint32_t set);

    /** Install a block with the given RRPV, recording the fill. */
    void
    fill(std::uint32_t set, std::uint32_t way, std::uint8_t rrpv,
         PolicyStream stream)
    {
        at(set, way) = rrpv;
        hist_.record(stream, rrpv);
    }

    /** Update the RRPV of a resident block (promotion/demotion). */
    void
    set(std::uint32_t set, std::uint32_t way, std::uint8_t rrpv)
    {
        at(set, way) = rrpv;
    }

    std::uint8_t
    get(std::uint32_t set, std::uint32_t way) const
    {
        return rrpv_[static_cast<std::size_t>(set) * ways_ + way];
    }

    const FillHistogram &histogram() const { return hist_; }

    /**
     * Audit one set: every stored RRPV must be representable in the
     * configured width.  @p component names the owning policy in the
     * failure report.  No-op unless auditActive().
     */
    void auditSet(std::uint32_t set, const char *component) const;

    /** Audit every set (tests, end-of-replay sweeps). */
    void auditAll(const char *component) const;

  private:
    std::uint8_t &
    at(std::uint32_t set, std::uint32_t way)
    {
        return rrpv_[static_cast<std::size_t>(set) * ways_ + way];
    }

    std::uint8_t max_;
    std::uint32_t sets_ = 0;
    std::uint32_t ways_ = 0;
    std::vector<std::uint8_t> rrpv_;
    FillHistogram hist_;
};

} // namespace gllc

#endif // GLLC_CACHE_RRIP_HH
