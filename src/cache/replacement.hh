/**
 * @file
 * Replacement-policy interface for the banked LLC model.
 *
 * One policy instance manages one LLC bank (GSPC's learning counters
 * are per bank, Section 3).  The cache owns the tag store; policies
 * own whatever per-block replacement state they need, sized in
 * configure().  Invalid ways are always filled first by the cache,
 * so selectVictim() only runs on full sets.
 */

#ifndef GLLC_CACHE_REPLACEMENT_HH
#define GLLC_CACHE_REPLACEMENT_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "trace/access.hh"

namespace gllc
{

/** Sentinel next-use index meaning "never referenced again". */
constexpr std::uint64_t kNever = ~static_cast<std::uint64_t>(0);

/**
 * Everything a policy may inspect about the access being serviced.
 *
 * nextUse is only populated when the driving simulator was asked to
 * build a future-knowledge oracle (Belady); online policies must not
 * depend on it.
 */
struct AccessInfo
{
    const MemAccess *access = nullptr;

    /** Global position of this access in the frame trace. */
    std::uint64_t index = 0;

    /** Trace index of the next access to the same block, or kNever. */
    std::uint64_t nextUse = kNever;

    StreamType stream() const { return access->stream; }
    PolicyStream pstream() const { return policyStream(access->stream); }
};

/**
 * Histogram of insertion RRPVs per policy stream, exposed by the
 * RRIP-family policies so Figure 8 (fraction of RT/TEX fills at
 * RRPV=3 under DRRIP) can be reproduced for any of them.
 */
struct FillHistogram
{
    static constexpr unsigned kMaxRrpv = 16;

    std::array<std::array<std::uint64_t, kMaxRrpv>, kNumPolicyStreams>
        counts{};

    void
    record(PolicyStream s, unsigned rrpv)
    {
        ++counts[static_cast<std::size_t>(s)][rrpv];
    }

    std::uint64_t
    fills(PolicyStream s) const
    {
        std::uint64_t total = 0;
        for (const auto c : counts[static_cast<std::size_t>(s)])
            total += c;
        return total;
    }

    std::uint64_t
    fillsAt(PolicyStream s, unsigned rrpv) const
    {
        return counts[static_cast<std::size_t>(s)][rrpv];
    }

    void
    merge(const FillHistogram &other)
    {
        for (std::size_t s = 0; s < kNumPolicyStreams; ++s)
            for (unsigned r = 0; r < kMaxRrpv; ++r)
                counts[s][r] += other.counts[s][r];
    }
};

/** Replacement policy for one cache bank. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Size internal state for a bank of the given geometry. */
    virtual void configure(std::uint32_t sets, std::uint32_t ways) = 0;

    /** Choose a victim way in a full set. */
    virtual std::uint32_t selectVictim(std::uint32_t set) = 0;

    /** A block was just installed in (set, way). */
    virtual void onFill(std::uint32_t set, std::uint32_t way,
                        const AccessInfo &info) = 0;

    /** The access hit the valid block in (set, way). */
    virtual void onHit(std::uint32_t set, std::uint32_t way,
                       const AccessInfo &info) = 0;

    /** The valid block in (set, way) is about to be evicted. */
    virtual void
    onEvict(std::uint32_t set, std::uint32_t way)
    {
        (void)set;
        (void)way;
    }

    /** Insertion-RRPV histogram, if this policy keeps one. */
    virtual const FillHistogram *fillHistogram() const { return nullptr; }

    /**
     * Consulted on a miss before allocation: returning true makes
     * the access bypass the cache entirely (serviced by DRAM, no
     * fill, no eviction).  Bypass-capable policies (e.g. GSPC+B)
     * override this; the default always allocates, as the paper's
     * LLC does ("a miss in the LLC always fills the requested
     * block").
     */
    virtual bool
    shouldBypass(std::uint32_t set, const AccessInfo &info) const
    {
        (void)set;
        (void)info;
        return false;
    }

    /**
     * True when shouldBypass() can ever return true for this
     * instance as configured.  BankedLlc samples this once per bank
     * at construction so the miss path skips the shouldBypass()
     * virtual call for the (common) policies that never bypass.
     * Must be conservative: a policy returning false here promises
     * shouldBypass() always returns false.
     */
    virtual bool mayBypass() const { return false; }

    /**
     * Audit-layer hook: re-validate this policy's structural
     * invariants for one set (called by BankedLlc after every access
     * it services when auditActive()).  Implementations report
     * violations through GLLC_AUDIT_CHECK / auditFail() and must not
     * mutate any state: an audited run stays bit-identical to an
     * unaudited one.
     */
    virtual void
    auditInvariants(std::uint32_t set) const
    {
        (void)set;
    }

    /**
     * Metrics hook: publish this policy instance's internal counters
     * (PSEL trajectories, signature-table outcomes, epoch-FSM
     * occupancy, ...) into the MetricsRegistry under names starting
     * with @p prefix (e.g. "policy.GSPC.bank0.").  Called once per
     * replay when metricsActive(); never on the access path.
     */
    virtual void
    flushMetrics(const std::string &prefix) const
    {
        (void)prefix;
    }

    /**
     * Decision-log hook: the current RRPV of (set, way), or -1 when
     * this policy keeps no RRPVs.  Read-only; called right after
     * onFill()/onHit() when GLLC_DECISION_TRACE is live.
     */
    virtual int
    decisionRrpv(std::uint32_t set, std::uint32_t way) const
    {
        (void)set;
        (void)way;
        return -1;
    }

    /**
     * Decision-log hook: static name of the Figure-10 epoch state of
     * (set, way) for GSPC-family policies, nullptr otherwise.
     */
    virtual const char *
    decisionState(std::uint32_t set, std::uint32_t way) const
    {
        (void)set;
        (void)way;
        return nullptr;
    }

    virtual std::string name() const = 0;
};

/** Factory producing one policy instance per LLC bank. */
using PolicyFactory =
    std::function<std::unique_ptr<ReplacementPolicy>()>;

} // namespace gllc

#endif // GLLC_CACHE_REPLACEMENT_HH
