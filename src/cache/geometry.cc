#include "cache/geometry.hh"

#include "common/logging.hh"

namespace gllc
{

namespace
{

bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

std::uint32_t
log2OfPow2(std::uint64_t x)
{
    std::uint32_t shift = 0;
    while ((x >> shift) > 1)
        ++shift;
    return shift;
}

} // namespace

CacheGeometry::CacheGeometry(std::uint64_t capacity_bytes,
                             std::uint32_t ways, std::uint32_t banks)
    : capacity_(capacity_bytes), ways_(ways), banks_(banks)
{
    GLLC_ASSERT(capacity_bytes > 0 && ways > 0 && banks > 0);
    const std::uint64_t blocks = capacity_bytes / kBlockBytes;
    GLLC_ASSERT_MSG(blocks * kBlockBytes == capacity_bytes,
                    "capacity %llu not a multiple of the block size",
                    static_cast<unsigned long long>(capacity_bytes));
    GLLC_ASSERT_MSG(blocks % (static_cast<std::uint64_t>(ways) * banks)
                        == 0,
                    "capacity %llu not divisible into %u ways x %u banks",
                    static_cast<unsigned long long>(capacity_bytes),
                    ways, banks);
    const std::uint64_t sets = blocks / ways / banks;
    GLLC_ASSERT_MSG(isPow2(sets) && isPow2(banks),
                    "sets (%llu) and banks (%u) must be powers of two",
                    static_cast<unsigned long long>(sets), banks);
    setsPerBank_ = static_cast<std::uint32_t>(sets);
    bankShift_ = log2OfPow2(banks);
    bankMask_ = static_cast<std::uint64_t>(banks) - 1;
    setMask_ = sets - 1;
}

} // namespace gllc
