/**
 * @file
 * Banked non-inclusive/non-exclusive LLC model.
 *
 * Models the paper's shared GPU LLC (Section 4): 64 B blocks, block-
 * interleaved banks, write-allocate, fill-on-miss, per-stream
 * statistics.  Replacement is delegated to one ReplacementPolicy
 * instance per bank.  An optional bypass predicate implements the
 * "uncached displayable color" (UCD) configurations: bypassed
 * accesses still probe the tag store (for coherence with blocks a
 * different stream may have cached) but never allocate.
 */

#ifndef GLLC_CACHE_BANKED_LLC_HH
#define GLLC_CACHE_BANKED_LLC_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/geometry.hh"
#include "cache/replacement.hh"

namespace gllc
{

/** Per-stream and aggregate LLC statistics. */
struct LlcStats
{
    struct PerStream
    {
        std::uint64_t accesses = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;    ///< misses that allocated
        std::uint64_t bypasses = 0;  ///< misses that did not allocate
    };

    std::array<PerStream, kNumStreams> stream{};
    std::uint64_t writebacks = 0;  ///< dirty evictions toward DRAM
    std::uint64_t evictions = 0;

    const PerStream &
    of(StreamType s) const
    {
        return stream[static_cast<std::size_t>(s)];
    }

    std::uint64_t totalAccesses() const;
    std::uint64_t totalHits() const;

    /** All accesses that went to DRAM (misses + bypasses). */
    std::uint64_t totalMisses() const;

    /** Hit rate of one stream (0 when it had no accesses). */
    double hitRate(StreamType s) const;

    /** Accumulate another frame's statistics. */
    void merge(const LlcStats &other);
};

/**
 * Observation hooks for characterization layers (epoch tracking,
 * RT-bit inter-stream reuse classification) that must follow block
 * lifetimes without perturbing the policy under test.
 */
class LlcObserver
{
  public:
    virtual ~LlcObserver() = default;

    /** Access hit a resident block. */
    virtual void onHit(const MemAccess &access) { (void)access; }

    /** Access missed and will allocate. */
    virtual void onMiss(const MemAccess &access) { (void)access; }

    /** Access missed and bypassed (no allocation). */
    virtual void onBypass(const MemAccess &access) { (void)access; }

    /** Valid block at block-aligned address was evicted. */
    virtual void onEvict(Addr block_addr) { (void)block_addr; }
};

/** Result of one LLC access, for the timing model. */
struct LlcAccessResult
{
    bool hit = false;
    bool bypassed = false;

    /** A dirty block was written back to DRAM. */
    bool writeback = false;

    /** Block-aligned address of the written-back block. */
    Addr writebackAddr = 0;
};

/** Configuration for a BankedLlc instance. */
struct LlcConfig
{
    std::uint64_t capacityBytes = 8ull << 20;
    std::uint32_t ways = 16;
    std::uint32_t banks = 4;

    /** Accesses for which this returns true never allocate (UCD). */
    std::function<bool(const MemAccess &)> bypass;
};

/** Returns the standard UCD bypass predicate (display stream). */
std::function<bool(const MemAccess &)> displayBypass();

/** The banked LLC. */
class BankedLlc
{
  public:
    BankedLlc(const LlcConfig &config, const PolicyFactory &factory);

    /**
     * Service one access.
     * @param access the load/store
     * @param index global trace position (Belady bookkeeping)
     * @param next_use trace index of the next access to this block,
     *        or kNever; only meaningful under oracle policies
     */
    LlcAccessResult access(const MemAccess &access,
                           std::uint64_t index = 0,
                           std::uint64_t next_use = kNever);

    /** Probe only: true when the block is resident. No side effects. */
    bool isResident(Addr addr) const;

    /** Aggregate statistics, merged over the per-bank counters. */
    LlcStats stats() const;

    const CacheGeometry &geometry() const { return geom_; }

    /** Per-bank statistics (the access path's single accumulator). */
    const LlcStats &bankStats(std::uint32_t bank) const;

    /**
     * Publish this cache's counters into the MetricsRegistry under
     * @p prefix: aggregate and per-bank per-stream hit/miss/bypass
     * counters, per-bank insertion-RRPV histograms, and whatever each
     * bank's policy reports through ReplacementPolicy::flushMetrics.
     * Called once per replay; no-op when metrics are inactive.
     */
    void flushMetrics(const std::string &prefix) const;

    /** Attach an observer (not owned); nullptr detaches. */
    void setObserver(LlcObserver *observer) { observer_ = observer; }

    /** Merged insertion-RRPV histogram across banks, if available. */
    FillHistogram mergedFillHistogram() const;

    /** Per-bank policy access (tests and characterization). */
    ReplacementPolicy &bankPolicy(std::uint32_t bank);

    /**
     * Audit one set of one bank: no duplicate tags, every valid tag
     * maps back to this (bank, set) under the geometry, and the
     * bank's policy invariants hold.  No-op unless auditActive().
     */
    void auditSet(std::uint32_t bank, std::uint32_t set) const;

    /** Audit every set of every bank (tests, end-of-replay checks). */
    void auditAll() const;

    /**
     * Test-only: overwrite one tag-store entry, bypassing the access
     * path, so the audit layer's occupancy checks can be exercised.
     */
    void debugCorruptEntry(std::uint32_t bank, std::uint32_t set,
                           std::uint32_t way, Addr tag, bool valid);

  private:
    struct Entry
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    struct Bank
    {
        std::vector<Entry> entries;
        std::unique_ptr<ReplacementPolicy> policy;

        /**
         * Per-bank counters.  The access path increments these and
         * nothing else; stats() merges them on demand, so enabling
         * metrics adds no per-access work.
         */
        LlcStats stats;
    };

    Entry &
    entryAt(Bank &bank, std::uint32_t set, std::uint32_t way)
    {
        return bank.entries[static_cast<std::size_t>(set) * geom_.ways()
                            + way];
    }

    /** Find the way holding addr in the set, or ways() if absent. */
    std::uint32_t findWay(const Bank &bank, std::uint32_t set,
                          Addr tag) const;

    CacheGeometry geom_;
    LlcConfig config_;
    std::vector<Bank> banks_;
    LlcObserver *observer_ = nullptr;

    /**
     * Decision-log switch, sampled once at construction so the
     * access path pays one branch, not an atomic load, per access.
     */
    bool logDecisions_ = false;
};

} // namespace gllc

#endif // GLLC_CACHE_BANKED_LLC_HH
