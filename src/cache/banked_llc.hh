/**
 * @file
 * Banked non-inclusive/non-exclusive LLC model.
 *
 * Models the paper's shared GPU LLC (Section 4): 64 B blocks, block-
 * interleaved banks, write-allocate, fill-on-miss, per-stream
 * statistics.  Replacement is delegated to one ReplacementPolicy
 * instance per bank.  An optional bypass predicate implements the
 * "uncached displayable color" (UCD) configurations: bypassed
 * accesses still probe the tag store (for coherence with blocks a
 * different stream may have cached) but never allocate.
 *
 * Hot path (DESIGN.md section 9).  The tag store is structure-of-
 * arrays: one contiguous Addr array per bank (kInvalidTag marks an
 * empty frame) plus a parallel dirty byte array, so the tag probe is
 * a tight scan over 8-byte lanes with no flag loads.  Replays that
 * need no audit, no decision log and no custom bypass predicate go
 * through accessHot<>(), a compile-time specialization over the UCD
 * switch and the concrete observer type that pays zero per-access
 * branches for the disabled facilities; everything else (tests,
 * audited runs, custom predicates) uses the generic access(), which
 * is bit-identical in outcome.
 */

#ifndef GLLC_CACHE_BANKED_LLC_HH
#define GLLC_CACHE_BANKED_LLC_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/geometry.hh"
#include "cache/replacement.hh"
#include "common/logging.hh"

namespace gllc
{

/** Per-stream and aggregate LLC statistics. */
struct LlcStats
{
    struct PerStream
    {
        std::uint64_t accesses = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;    ///< misses that allocated
        std::uint64_t bypasses = 0;  ///< misses that did not allocate
    };

    std::array<PerStream, kNumStreams> stream{};
    std::uint64_t writebacks = 0;  ///< dirty evictions toward DRAM
    std::uint64_t evictions = 0;

    const PerStream &
    of(StreamType s) const
    {
        return stream[static_cast<std::size_t>(s)];
    }

    std::uint64_t totalAccesses() const;
    std::uint64_t totalHits() const;

    /** All accesses that went to DRAM (misses + bypasses). */
    std::uint64_t totalMisses() const;

    /** Hit rate of one stream (0 when it had no accesses). */
    double hitRate(StreamType s) const;

    /** Accumulate another frame's statistics. */
    void merge(const LlcStats &other);
};

/**
 * Observation hooks for characterization layers (epoch tracking,
 * RT-bit inter-stream reuse classification) that must follow block
 * lifetimes without perturbing the policy under test.
 */
class LlcObserver
{
  public:
    virtual ~LlcObserver() = default;

    /** Access hit a resident block. */
    virtual void onHit(const MemAccess &access) { (void)access; }

    /** Access missed and will allocate. */
    virtual void onMiss(const MemAccess &access) { (void)access; }

    /** Access missed and bypassed (no allocation). */
    virtual void onBypass(const MemAccess &access) { (void)access; }

    /** Valid block at block-aligned address was evicted. */
    virtual void onEvict(Addr block_addr) { (void)block_addr; }
};

/**
 * No-op observer for accessHot<> replays that observe nothing; the
 * empty inline bodies vanish at compile time.  The hot path passes
 * each event's global frame index (bank-major, then set, then way)
 * so stateful observers can keep per-resident-block metadata in a
 * flat frame-indexed array instead of a hashed map.
 */
struct NullLlcObserver
{
    void onHitAt(const MemAccess &, std::size_t) {}
    void onMissAt(const MemAccess &, std::size_t) {}
    void onBypass(const MemAccess &) {}
    void onEvictAt(Addr, std::size_t) {}
};

/** Result of one LLC access, for the timing model. */
struct LlcAccessResult
{
    bool hit = false;
    bool bypassed = false;

    /** A dirty block was written back to DRAM. */
    bool writeback = false;

    /** Block-aligned address of the written-back block. */
    Addr writebackAddr = 0;
};

/** Configuration for a BankedLlc instance. */
struct LlcConfig
{
    std::uint64_t capacityBytes = 8ull << 20;
    std::uint32_t ways = 16;
    std::uint32_t banks = 4;

    /**
     * Display-stream accesses never allocate (the paper's UCD
     * configurations).  Expressed as a flag, not a predicate, so the
     * hot path can specialize on it at compile time.
     */
    bool uncachedDisplay = false;

    /**
     * Arbitrary bypass predicate for custom experiments; accesses
     * for which this returns true never allocate.  A custom
     * predicate forces the generic access path (fastPathEligible()).
     */
    std::function<bool(const MemAccess &)> bypass;
};

/** Returns the standard UCD bypass predicate (display stream). */
std::function<bool(const MemAccess &)> displayBypass();

/** The banked LLC. */
class BankedLlc
{
  public:
    BankedLlc(const LlcConfig &config, const PolicyFactory &factory);

    /**
     * Service one access (generic path: honours audit, decision log,
     * observers and custom bypass predicates).
     * @param access the load/store
     * @param index global trace position (Belady bookkeeping)
     * @param next_use trace index of the next access to this block,
     *        or kNever; only meaningful under oracle policies
     */
    LlcAccessResult access(const MemAccess &access,
                           std::uint64_t index = 0,
                           std::uint64_t next_use = kNever);

    /**
     * True when replays may use accessHot<>(): no decision logging
     * (sampled at construction), no custom bypass predicate, and no
     * invariant audit.  The specialized and generic paths produce
     * bit-identical results; this only gates which facilities need
     * per-access checks.
     */
    bool fastPathEligible() const;

    /**
     * Specialized access fast path.  @p kUcd bakes in the
     * uncached-displayable-color test; @p Observer is the concrete
     * observer type with the frame-indexed hooks of NullLlcObserver,
     * called directly (devirtualized) — use NullLlcObserver to
     * observe nothing.  The caller must check fastPathEligible()
     * once per replay and pass kUcd matching the configuration.
     */
    template <bool kUcd, typename Observer>
    LlcAccessResult
    accessHot(const MemAccess &access, std::uint64_t index,
              std::uint64_t next_use, Observer &observer)
    {
        LlcAccessResult result;
        const CacheGeometry::Placement where =
            geom_.placementOf(access.addr);
        Bank &bank = banks_[where.bank];
        const std::uint32_t ways = geom_.ways();
        const std::size_t base =
            static_cast<std::size_t>(where.set) * ways;
        Addr *tags = bank.tags.data() + base;

        // Global frame index of way 0 of this set, for the observer's
        // frame-indexed metadata (bank-major, then set, then way).
        const std::size_t frame_base =
            static_cast<std::size_t>(where.bank)
                * geom_.setsPerBank() * ways
            + base;

        auto &sstats =
            bank.stats.stream[static_cast<std::size_t>(access.stream)];
        ++sstats.accesses;

        std::uint32_t way = 0;
        while (way < ways && tags[way] != where.tag)
            ++way;

        const AccessInfo info{&access, index, next_use};
        if (way != ways) {
            ++sstats.hits;
            result.hit = true;
            bank.dirty[base + way] |=
                static_cast<std::uint8_t>(access.isWrite);
            bank.policy->onHit(where.set, way, info);
            observer.onHitAt(access, frame_base + way);
            return result;
        }

        if ((kUcd && access.stream == StreamType::Display)
            || (bank.policyMayBypass
                && bank.policy->shouldBypass(where.set, info))) {
            ++sstats.bypasses;
            result.bypassed = true;
            observer.onBypass(access);
            return result;
        }

        ++sstats.misses;

        std::uint32_t fill_way;
        if (bank.liveWays[where.set] < ways) {
            // Invalid frame available: fill the lowest one, exactly
            // as the generic path's scan does.
            fill_way = 0;
            while (tags[fill_way] != kInvalidTag)
                ++fill_way;
            ++bank.liveWays[where.set];
        } else {
            fill_way = bank.policy->selectVictim(where.set);
            GLLC_ASSERT(fill_way < ways);
            GLLC_ASSERT(tags[fill_way] != kInvalidTag);
            ++bank.stats.evictions;
            if (bank.dirty[base + fill_way] != 0) {
                ++bank.stats.writebacks;
                result.writeback = true;
                result.writebackAddr = tags[fill_way] << kBlockShift;
            }
            bank.policy->onEvict(where.set, fill_way);
            observer.onEvictAt(tags[fill_way] << kBlockShift,
                               frame_base + fill_way);
        }

        observer.onMissAt(access, frame_base + fill_way);

        tags[fill_way] = where.tag;
        bank.dirty[base + fill_way] =
            static_cast<std::uint8_t>(access.isWrite);
        bank.policy->onFill(where.set, fill_way, info);
        return result;
    }

    /** Probe only: true when the block is resident. No side effects. */
    bool isResident(Addr addr) const;

    /** Aggregate statistics, merged over the per-bank counters. */
    LlcStats stats() const;

    const CacheGeometry &geometry() const { return geom_; }

    /** Per-bank statistics (the access path's single accumulator). */
    const LlcStats &bankStats(std::uint32_t bank) const;

    /**
     * Publish this cache's counters into the MetricsRegistry under
     * @p prefix: aggregate and per-bank per-stream hit/miss/bypass
     * counters, per-bank insertion-RRPV histograms, and whatever each
     * bank's policy reports through ReplacementPolicy::flushMetrics.
     * Called once per replay; no-op when metrics are inactive.
     */
    void flushMetrics(const std::string &prefix) const;

    /** Attach an observer (not owned); nullptr detaches. */
    void setObserver(LlcObserver *observer) { observer_ = observer; }

    /** Merged insertion-RRPV histogram across banks, if available. */
    FillHistogram mergedFillHistogram() const;

    /** Per-bank policy access (tests and characterization). */
    ReplacementPolicy &bankPolicy(std::uint32_t bank);

    /**
     * Audit one set of one bank: no duplicate tags, every valid tag
     * maps back to this (bank, set) under the geometry, the per-set
     * occupancy count matches the tag store, and the bank's policy
     * invariants hold.  No-op unless auditActive().
     */
    void auditSet(std::uint32_t bank, std::uint32_t set) const;

    /** Audit every set of every bank (tests, end-of-replay checks). */
    void auditAll() const;

    /**
     * Test-only: overwrite one tag-store entry, bypassing the access
     * path, so the audit layer's occupancy checks can be exercised.
     */
    void debugCorruptEntry(std::uint32_t bank, std::uint32_t set,
                           std::uint32_t way, Addr tag, bool valid);

  private:
    /** Tag value of an empty frame (no real block number is ~0). */
    static constexpr Addr kInvalidTag = ~static_cast<Addr>(0);

    /**
     * One bank's state, structure-of-arrays: the tag probe touches
     * only the contiguous tags array; dirty bytes are touched once
     * per hit-on-write / eviction; liveWays lets the miss path skip
     * the invalid-frame scan entirely once a set is full.
     */
    struct Bank
    {
        std::vector<Addr> tags;            ///< kInvalidTag = empty
        std::vector<std::uint8_t> dirty;   ///< one byte per frame
        std::vector<std::uint16_t> liveWays;  ///< valid frames per set
        std::unique_ptr<ReplacementPolicy> policy;

        /**
         * ReplacementPolicy::mayBypass(), sampled at construction so
         * the miss path skips the shouldBypass() virtual call for
         * the (common) policies that never bypass.
         */
        bool policyMayBypass = false;

        /**
         * Per-bank counters.  The access path increments these and
         * nothing else; stats() merges them on demand, so enabling
         * metrics adds no per-access work.
         */
        LlcStats stats;
    };

    /** Find the way holding addr in the set, or ways() if absent. */
    std::uint32_t findWay(const Bank &bank, std::uint32_t set,
                          Addr tag) const;

    CacheGeometry geom_;
    LlcConfig config_;
    std::vector<Bank> banks_;
    LlcObserver *observer_ = nullptr;

    /**
     * Decision-log switch, sampled once at construction so the
     * access path pays one branch, not an atomic load, per access.
     */
    bool logDecisions_ = false;
};

} // namespace gllc

#endif // GLLC_CACHE_BANKED_LLC_HH
