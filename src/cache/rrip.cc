#include "cache/rrip.hh"

#include "common/audit.hh"
#include "common/logging.hh"

namespace gllc
{

RripState::RripState(unsigned bits)
    : max_(static_cast<std::uint8_t>((1u << bits) - 1))
{
    GLLC_ASSERT(bits >= 1 && bits <= 4);
}

void
RripState::configure(std::uint32_t sets, std::uint32_t ways)
{
    sets_ = sets;
    ways_ = ways;
    rrpv_.assign(static_cast<std::size_t>(sets) * ways, max_);
}

std::uint32_t
RripState::selectVictim(std::uint32_t set)
{
    // A corrupted RRPV above the policy width would make the aging
    // loop spin through a uint8 wrap-around before terminating;
    // audit the set before trusting it.
    auditSet(set, "RripState");

    std::uint8_t *row = &rrpv_[static_cast<std::size_t>(set) * ways_];
    for (;;) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (row[w] == max_) {
                if (auditActive()) {
                    // Exactly-one-way selection: the victim is the
                    // lowest-numbered way at max RRPV (Section 1).
                    for (std::uint32_t lo = 0; lo < w; ++lo) {
                        GLLC_AUDIT_CHECK(
                            "RripState", "victim-tie-break",
                            row[lo] != max_,
                            "way %u at max rrpv below chosen victim "
                            "way %u", lo, w);
                    }
                }
                return w;
            }
        }
        for (std::uint32_t w = 0; w < ways_; ++w)
            ++row[w];
    }
}

void
RripState::auditSet(std::uint32_t set, const char *component) const
{
    if (!auditActive())
        return;
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        GLLC_AUDIT_CHECK(component, "rrpv-range",
                         rrpv_[base + w] <= max_,
                         "set %u way %u holds rrpv %u > max %u",
                         set, w, rrpv_[base + w], max_);
    }
}

void
RripState::auditAll(const char *component) const
{
    if (!auditActive())
        return;
    for (std::uint32_t s = 0; s < sets_; ++s)
        auditSet(s, component);
}

} // namespace gllc
