#include "cache/rrip.hh"

#include "common/logging.hh"

namespace gllc
{

RripState::RripState(unsigned bits)
    : max_(static_cast<std::uint8_t>((1u << bits) - 1))
{
    GLLC_ASSERT(bits >= 1 && bits <= 4);
}

void
RripState::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    rrpv_.assign(static_cast<std::size_t>(sets) * ways, max_);
}

std::uint32_t
RripState::selectVictim(std::uint32_t set)
{
    std::uint8_t *row = &rrpv_[static_cast<std::size_t>(set) * ways_];
    for (;;) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (row[w] == max_)
                return w;
        }
        for (std::uint32_t w = 0; w < ways_; ++w)
            ++row[w];
    }
}

} // namespace gllc
