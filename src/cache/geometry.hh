/**
 * @file
 * Cache geometry: capacity/way/bank arithmetic and address mapping.
 */

#ifndef GLLC_CACHE_GEOMETRY_HH
#define GLLC_CACHE_GEOMETRY_HH

#include <cstdint>

#include "common/types.hh"

namespace gllc
{

/**
 * Geometry of a banked set-associative cache with 64 B blocks.
 *
 * Banks are block-interleaved: bank = blockNumber mod banks, and the
 * remaining block-number bits index the per-bank set array.  The
 * paper's 8 MB 16-way LLC uses 4 banks of 2 MB (Section 4).
 *
 * Banks and sets-per-bank are powers of two (asserted at
 * construction), so the mod/div address decomposition reduces to
 * shift/mask; the shift and masks are precomputed here once so the
 * replay hot path never executes an integer divide.
 */
class CacheGeometry
{
  public:
    /**
     * @param capacity_bytes total capacity across banks
     * @param ways associativity
     * @param banks number of banks (1 for the small render caches)
     */
    CacheGeometry(std::uint64_t capacity_bytes, std::uint32_t ways,
                  std::uint32_t banks = 1);

    std::uint64_t capacityBytes() const { return capacity_; }
    std::uint32_t ways() const { return ways_; }
    std::uint32_t banks() const { return banks_; }

    /** Sets within one bank. */
    std::uint32_t setsPerBank() const { return setsPerBank_; }

    /** Total sets across all banks. */
    std::uint32_t totalSets() const { return setsPerBank_ * banks_; }

    /** Total block frames across all banks. */
    std::uint64_t totalBlocks() const
    {
        return static_cast<std::uint64_t>(totalSets()) * ways_;
    }

    /** Bank servicing the given address. */
    std::uint32_t
    bankOf(Addr addr) const
    {
        return static_cast<std::uint32_t>(blockNumber(addr)
                                          & bankMask_);
    }

    /** Set index within the servicing bank. */
    std::uint32_t
    setOf(Addr addr) const
    {
        return static_cast<std::uint32_t>(
            (blockNumber(addr) >> bankShift_) & setMask_);
    }

    /** Tag stored for the given address (full block number). */
    Addr tagOf(Addr addr) const { return blockNumber(addr); }

    /** (bank, set, tag) of one address, decomposed in one pass. */
    struct Placement
    {
        std::uint32_t bank;
        std::uint32_t set;
        Addr tag;
    };

    Placement
    placementOf(Addr addr) const
    {
        const Addr block = blockNumber(addr);
        return {static_cast<std::uint32_t>(block & bankMask_),
                static_cast<std::uint32_t>((block >> bankShift_)
                                           & setMask_),
                block};
    }

  private:
    std::uint64_t capacity_;
    std::uint32_t ways_;
    std::uint32_t banks_;
    std::uint32_t setsPerBank_;
    std::uint32_t bankShift_;  ///< log2(banks)
    std::uint64_t bankMask_;   ///< banks - 1
    std::uint64_t setMask_;    ///< setsPerBank - 1
};

/**
 * Generalized sample-set predicate: one sample per 2^log2_density
 * sets, identified by a Boolean function of the set-index bits
 * ((set mod D) == (set / D) mod D with D = 2^log2_density), which
 * selects one set per D-set constituency with a shifting offset.
 */
constexpr bool
isSampleSetAt(std::uint32_t set, unsigned log2_density)
{
    const std::uint32_t mask = (1u << log2_density) - 1;
    return (set & mask) == ((set >> log2_density) & mask);
}

/**
 * Sample-set predicate used by the GSPC family (Section 3): sixteen
 * sample sets in every 1024 sets (a 1/64 density at any power-of-two
 * set count).
 */
constexpr bool
isSampleSet(std::uint32_t set)
{
    return isSampleSetAt(set, 6);
}

} // namespace gllc

#endif // GLLC_CACHE_GEOMETRY_HH
