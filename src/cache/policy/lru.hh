/**
 * @file
 * Least-recently-used replacement.
 *
 * Four state bits per block at 16 ways, so LRU is the iso-overhead
 * comparison point for GSPC in Figure 14.  Implemented with per-block
 * monotonically increasing timestamps.
 */

#ifndef GLLC_CACHE_POLICY_LRU_HH
#define GLLC_CACHE_POLICY_LRU_HH

#include <cstdint>
#include <vector>

#include "cache/replacement.hh"

namespace gllc
{

class LruPolicy : public ReplacementPolicy
{
  public:
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    std::uint32_t selectVictim(std::uint32_t set) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::string name() const override { return "LRU"; }

    static PolicyFactory factory();

  private:
    void touch(std::uint32_t set, std::uint32_t way);

    std::uint32_t ways_ = 0;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamp_;
};

} // namespace gllc

#endif // GLLC_CACHE_POLICY_LRU_HH
