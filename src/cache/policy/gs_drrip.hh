/**
 * @file
 * Graphics stream-aware DRRIP (GS-DRRIP), the paper's adaptation of
 * thread-aware DRRIP [Jaleel+, PACT'08] to the four graphics streams.
 *
 * Each policy stream (Z, TEX, RT, Rest) duels independently: it has
 * its own pair of leader-set families and its own PSEL counter, so a
 * stream can choose SRRIP-style insertion while another chooses
 * BRRIP-style.  An access only votes in a leader set of its own
 * stream; in every other set it follows its stream's PSEL.
 */

#ifndef GLLC_CACHE_POLICY_GS_DRRIP_HH
#define GLLC_CACHE_POLICY_GS_DRRIP_HH

#include <array>
#include <cstdint>

#include "cache/policy/drrip.hh"
#include "cache/rrip.hh"

namespace gllc
{

class GsDrripPolicy : public ReplacementPolicy
{
  public:
    explicit GsDrripPolicy(unsigned bits = 2);

    void configure(std::uint32_t sets, std::uint32_t ways) override;
    std::uint32_t selectVictim(std::uint32_t set) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    const FillHistogram *fillHistogram() const override;
    std::string name() const override;

    /** Audit hook: RRPV ranges, per-stream PSEL ranges, throttles. */
    void auditInvariants(std::uint32_t set) const override;

    /** Metrics hook: per-stream duel fills + PSEL trajectories. */
    void flushMetrics(const std::string &prefix) const override;

    int decisionRrpv(std::uint32_t set,
                     std::uint32_t way) const override;

    /** Test-only: one stream's mutable PSEL (corruption tests). */
    DuelCounter &
    debugPsel(PolicyStream stream)
    {
        return psel_[static_cast<std::size_t>(stream)];
    }

    static PolicyFactory factory(unsigned bits = 2);

  private:
    unsigned bits_;
    RripState rrip_;
    std::array<BrripThrottle, kNumPolicyStreams> throttle_;
    std::array<DuelCounter, kNumPolicyStreams> psel_;
    bool metrics_;
    std::array<DuelStats, kNumPolicyStreams> duel_;
};

} // namespace gllc

#endif // GLLC_CACHE_POLICY_GS_DRRIP_HH
