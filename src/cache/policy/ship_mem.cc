#include "cache/policy/ship_mem.hh"

#include <array>

#include "common/audit.hh"
#include "common/metrics.hh"

namespace gllc
{

ShipMemPolicy::ShipMemPolicy(unsigned bits)
    : rrip_(bits), metrics_(metricsActive())
{
}

void
ShipMemPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    rrip_.configure(sets, ways);
    blocks_.assign(static_cast<std::size_t>(sets) * ways, BlockState{});
    // Start counters weakly confident of reuse so cold regions are
    // not immediately condemned.
    table_.assign(kTableEntries, SatCounter(3, 1));
}

std::uint32_t
ShipMemPolicy::selectVictim(std::uint32_t set)
{
    return rrip_.selectVictim(set);
}

void
ShipMemPolicy::onFill(std::uint32_t set, std::uint32_t way,
                      const AccessInfo &info)
{
    const std::uint32_t sig = signatureOf(info.access->addr);
    BlockState &b = block(set, way);
    b.signature = static_cast<std::uint16_t>(sig);
    b.outcome = false;

    const bool dead = (table_[sig].value() == 0);
    const std::uint8_t rrpv =
        dead ? rrip_.maxRrpv() : rrip_.distantRrpv();
    rrip_.fill(set, way, rrpv, info.pstream());
    if (metrics_) {
        if (dead)
            ++fillsDead_;
        else
            ++fillsLive_;
    }
}

void
ShipMemPolicy::onHit(std::uint32_t set, std::uint32_t way,
                     const AccessInfo &)
{
    BlockState &b = block(set, way);
    if (!b.outcome) {
        b.outcome = true;
        table_[b.signature].increment();
    }
    rrip_.set(set, way, 0);
}

void
ShipMemPolicy::onEvict(std::uint32_t set, std::uint32_t way)
{
    BlockState &b = block(set, way);
    if (!b.outcome)
        table_[b.signature].decrement();
    if (metrics_) {
        if (b.outcome)
            ++evictsReused_;
        else
            ++evictsDead_;
    }
}

void
ShipMemPolicy::auditInvariants(std::uint32_t set) const
{
    if (!auditActive())
        return;
    rrip_.auditSet(set, "ShipMemPolicy");
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const BlockState &b = blocks_[base + w];
        GLLC_AUDIT_CHECK("ShipMemPolicy", "signature-range",
                         b.signature < kTableEntries,
                         "set %u way %u holds signature 0x%x outside "
                         "the 14-bit region id",
                         set, w, b.signature);
        GLLC_AUDIT_CHECK("ShipMemPolicy", "counter-range",
                         table_[b.signature].inRange(),
                         "region counter 0x%x holds %u > max %u",
                         b.signature, table_[b.signature].value(),
                         table_[b.signature].max());
    }
}

const FillHistogram *
ShipMemPolicy::fillHistogram() const
{
    return &rrip_.histogram();
}

void
ShipMemPolicy::flushMetrics(const std::string &prefix) const
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    if (fillsDead_ > 0)
        reg.addCounter(prefix + "ship.fills_dead", fillsDead_);
    if (fillsLive_ > 0)
        reg.addCounter(prefix + "ship.fills_live", fillsLive_);
    if (evictsReused_ > 0)
        reg.addCounter(prefix + "ship.evicts_reused", evictsReused_);
    if (evictsDead_ > 0)
        reg.addCounter(prefix + "ship.evicts_dead", evictsDead_);

    // Final distribution of the 3-bit region counters: how confident
    // the table ended up across its 16K regions.
    std::array<std::uint64_t, 8> levels{};
    for (const SatCounter &c : table_)
        ++levels[c.value() & 7u];
    for (std::size_t v = 0; v < levels.size(); ++v) {
        if (levels[v] > 0)
            reg.recordValue(prefix + "ship.table_final",
                            static_cast<std::int64_t>(v), levels[v]);
    }
}

PolicyFactory
ShipMemPolicy::factory(unsigned bits)
{
    return [bits] { return std::make_unique<ShipMemPolicy>(bits); };
}

} // namespace gllc
