#include "cache/policy/ship_mem.hh"

#include "common/audit.hh"

namespace gllc
{

ShipMemPolicy::ShipMemPolicy(unsigned bits)
    : rrip_(bits)
{
}

void
ShipMemPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    rrip_.configure(sets, ways);
    blocks_.assign(static_cast<std::size_t>(sets) * ways, BlockState{});
    // Start counters weakly confident of reuse so cold regions are
    // not immediately condemned.
    table_.assign(kTableEntries, SatCounter(3, 1));
}

std::uint32_t
ShipMemPolicy::selectVictim(std::uint32_t set)
{
    return rrip_.selectVictim(set);
}

void
ShipMemPolicy::onFill(std::uint32_t set, std::uint32_t way,
                      const AccessInfo &info)
{
    const std::uint32_t sig = signatureOf(info.access->addr);
    BlockState &b = block(set, way);
    b.signature = static_cast<std::uint16_t>(sig);
    b.outcome = false;

    const std::uint8_t rrpv = (table_[sig].value() == 0)
        ? rrip_.maxRrpv()
        : rrip_.distantRrpv();
    rrip_.fill(set, way, rrpv, info.pstream());
}

void
ShipMemPolicy::onHit(std::uint32_t set, std::uint32_t way,
                     const AccessInfo &)
{
    BlockState &b = block(set, way);
    if (!b.outcome) {
        b.outcome = true;
        table_[b.signature].increment();
    }
    rrip_.set(set, way, 0);
}

void
ShipMemPolicy::onEvict(std::uint32_t set, std::uint32_t way)
{
    BlockState &b = block(set, way);
    if (!b.outcome)
        table_[b.signature].decrement();
}

void
ShipMemPolicy::auditInvariants(std::uint32_t set) const
{
    if (!auditActive())
        return;
    rrip_.auditSet(set, "ShipMemPolicy");
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const BlockState &b = blocks_[base + w];
        GLLC_AUDIT_CHECK("ShipMemPolicy", "signature-range",
                         b.signature < kTableEntries,
                         "set %u way %u holds signature 0x%x outside "
                         "the 14-bit region id",
                         set, w, b.signature);
        GLLC_AUDIT_CHECK("ShipMemPolicy", "counter-range",
                         table_[b.signature].inRange(),
                         "region counter 0x%x holds %u > max %u",
                         b.signature, table_[b.signature].value(),
                         table_[b.signature].max());
    }
}

const FillHistogram *
ShipMemPolicy::fillHistogram() const
{
    return &rrip_.histogram();
}

PolicyFactory
ShipMemPolicy::factory(unsigned bits)
{
    return [bits] { return std::make_unique<ShipMemPolicy>(bits); };
}

} // namespace gllc
