/**
 * @file
 * Pseudo-LIFO: probabilistic escape LIFO [Chaudhuri, MICRO'09] —
 * the paper's reference [5], "a light-weight dead block prediction
 * technique that ... relies only on the fill order of the cache
 * blocks within a cache set".
 *
 * Simplified implementation (documented approximation): each set is
 * viewed as a fill stack (position 0 = most recently filled).  A
 * global histogram learns at which stack positions hits still occur;
 * the deepest position that still collects a meaningful share of
 * hits is the *escape point*.  Victims are taken from just below
 * the escape point — near the top of the fill stack — so the deep,
 * proven-useful bottom of the stack survives streaming/thrashing
 * traffic (the hallmark LIFO behaviour).
 */

#ifndef GLLC_CACHE_POLICY_PELIFO_HH
#define GLLC_CACHE_POLICY_PELIFO_HH

#include <cstdint>
#include <vector>

#include "cache/replacement.hh"

namespace gllc
{

class PeLifoPolicy : public ReplacementPolicy
{
  public:
    PeLifoPolicy();

    void configure(std::uint32_t sets, std::uint32_t ways) override;
    std::uint32_t selectVictim(std::uint32_t set) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::string name() const override { return "peLIFO"; }

    static PolicyFactory factory();

    /** Current escape point (deepest hit-carrying position). */
    std::uint32_t escapePoint() const;

    /** Fill-stack position of a way: 0 = most recently filled. */
    std::uint32_t stackPosition(std::uint32_t set,
                                std::uint32_t way) const;

  private:
    std::uint32_t ways_ = 0;
    std::uint64_t fillClock_ = 0;

    /** Per-block fill sequence number (higher = newer). */
    std::vector<std::uint64_t> fillSeq_;

    /** Hits observed at each fill-stack position. */
    std::vector<std::uint64_t> positionHits_;
    std::uint64_t totalHits_ = 0;
};

} // namespace gllc

#endif // GLLC_CACHE_POLICY_PELIFO_HH
