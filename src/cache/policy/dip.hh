/**
 * @file
 * Dynamic insertion policy (DIP) [Qureshi+, ISCA'07].
 *
 * Cited in Section 1.1.1: set dueling chooses between MRU insertion
 * (plain LRU) and bimodal insertion (BIP: insert at the LRU position
 * except 1/32 of the time), eliminating single-use blocks early.
 * Included as an extra baseline for the policy lineup.
 */

#ifndef GLLC_CACHE_POLICY_DIP_HH
#define GLLC_CACHE_POLICY_DIP_HH

#include <cstdint>
#include <vector>

#include "cache/policy/drrip.hh"
#include "cache/replacement.hh"
#include "common/sat_counter.hh"

namespace gllc
{

class DipPolicy : public ReplacementPolicy
{
  public:
    DipPolicy();

    void configure(std::uint32_t sets, std::uint32_t ways) override;
    std::uint32_t selectVictim(std::uint32_t set) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::string name() const override { return "DIP"; }

    static PolicyFactory factory();

  private:
    /** Assign the MRU stamp. */
    void touchMru(std::uint32_t set, std::uint32_t way);

    /** Assign a below-LRU stamp (next in line for eviction). */
    void touchLru(std::uint32_t set, std::uint32_t way);

    std::uint32_t ways_ = 0;
    std::uint64_t clock_;
    std::vector<std::uint64_t> stamp_;
    DuelCounter psel_;
    std::uint32_t bipCount_ = 0;
};

} // namespace gllc

#endif // GLLC_CACHE_POLICY_DIP_HH
