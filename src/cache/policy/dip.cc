#include "cache/policy/dip.hh"

#include <algorithm>

namespace gllc
{

DipPolicy::DipPolicy()
    : clock_(1ull << 32), psel_(10)
{
}

void
DipPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    clock_ = 1ull << 32;
    stamp_.assign(static_cast<std::size_t>(sets) * ways, 0);
}

void
DipPolicy::touchMru(std::uint32_t set, std::uint32_t way)
{
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
}

void
DipPolicy::touchLru(std::uint32_t set, std::uint32_t way)
{
    // Below every live stamp in the set: evicted next unless hit.
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint64_t min_stamp = ~0ull;
    for (std::uint32_t w = 0; w < ways_; ++w)
        min_stamp = std::min(min_stamp, stamp_[base + w]);
    stamp_[base + way] = (min_stamp > 0) ? min_stamp - 1 : 0;
}

std::uint32_t
DipPolicy::selectVictim(std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < ways_; ++w) {
        if (stamp_[base + w] < stamp_[base + victim])
            victim = w;
    }
    return victim;
}

void
DipPolicy::onFill(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &)
{
    const DuelRole role = duelRole(set, 0);
    bool use_bip;
    switch (role) {
      case DuelRole::SrripLeader:  // reuse the leader families: LRU
        psel_.up();
        use_bip = false;
        break;
      case DuelRole::BrripLeader:  // BIP leaders
        psel_.down();
        use_bip = true;
        break;
      default:
        use_bip = psel_.upperHalf();
        break;
    }

    if (use_bip && ++bipCount_ % 32 != 0)
        touchLru(set, way);
    else
        touchMru(set, way);
}

void
DipPolicy::onHit(std::uint32_t set, std::uint32_t way,
                 const AccessInfo &)
{
    touchMru(set, way);
}

PolicyFactory
DipPolicy::factory()
{
    return [] { return std::make_unique<DipPolicy>(); };
}

} // namespace gllc
