/**
 * @file
 * SHiP-mem: memory-region signature-based hit prediction
 * [Wu+, MICRO'11], as configured in Section 5.1 of the paper.
 *
 * The physical address space is divided into contiguous 16 KB
 * regions; a 14-bit region id (address bits [27:14]) indexes a
 * 16K-entry table of 3-bit saturating counters per LLC bank.  A hit
 * to a block increments its region counter once per residency; an
 * eviction without reuse decrements it.  Fills insert at RRPV 3 when
 * the region counter is zero, else at RRPV 2.
 */

#ifndef GLLC_CACHE_POLICY_SHIP_MEM_HH
#define GLLC_CACHE_POLICY_SHIP_MEM_HH

#include <cstdint>
#include <vector>

#include "cache/rrip.hh"
#include "common/sat_counter.hh"

namespace gllc
{

class ShipMemPolicy : public ReplacementPolicy
{
  public:
    explicit ShipMemPolicy(unsigned bits = 2);

    void configure(std::uint32_t sets, std::uint32_t ways) override;
    std::uint32_t selectVictim(std::uint32_t set) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    void onEvict(std::uint32_t set, std::uint32_t way) override;
    const FillHistogram *fillHistogram() const override;
    std::string name() const override { return "SHiP-mem"; }

    /**
     * Audit hook: RRPV ranges, per-block signatures within 14 bits,
     * the touched blocks' table counters within 3 bits.
     */
    void auditInvariants(std::uint32_t set) const override;

    /**
     * Metrics hook: dead/live fill split, reused/dead eviction
     * split, and the final signature-table counter distribution.
     */
    void flushMetrics(const std::string &prefix) const override;

    int
    decisionRrpv(std::uint32_t set, std::uint32_t way) const override
    {
        return static_cast<int>(rrip_.get(set, way));
    }

    /**
     * Test-only: overwrite a block's raw region signature, bypassing
     * signatureOf(), so the audit's range checks can be exercised.
     */
    void
    debugForceSignature(std::uint32_t set, std::uint32_t way,
                        std::uint16_t signature)
    {
        block(set, way).signature = signature;
    }

    static PolicyFactory factory(unsigned bits = 2);

    /** Region signature: address bits [27:14]. */
    static std::uint32_t
    signatureOf(Addr addr)
    {
        return static_cast<std::uint32_t>((addr >> 14) & 0x3fffu);
    }

  private:
    static constexpr std::size_t kTableEntries = 16 * 1024;

    struct BlockState
    {
        std::uint16_t signature = 0;
        bool outcome = false;  ///< re-referenced during residency
    };

    BlockState &
    block(std::uint32_t set, std::uint32_t way)
    {
        return blocks_[static_cast<std::size_t>(set) * ways_ + way];
    }

    RripState rrip_;
    std::uint32_t ways_ = 0;
    std::vector<BlockState> blocks_;
    std::vector<SatCounter> table_;

    /** Prediction telemetry, maintained only while metricsActive(). */
    bool metrics_ = false;
    std::uint64_t fillsDead_ = 0;    ///< inserted at maxRrpv
    std::uint64_t fillsLive_ = 0;    ///< inserted at distantRrpv
    std::uint64_t evictsReused_ = 0;
    std::uint64_t evictsDead_ = 0;
};

} // namespace gllc

#endif // GLLC_CACHE_POLICY_SHIP_MEM_HH
