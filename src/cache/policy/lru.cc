#include "cache/policy/lru.hh"

namespace gllc
{

void
LruPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    clock_ = 0;
    stamp_.assign(static_cast<std::size_t>(sets) * ways, 0);
}

void
LruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
}

std::uint32_t
LruPolicy::selectVictim(std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < ways_; ++w) {
        if (stamp_[base + w] < stamp_[base + victim])
            victim = w;
    }
    return victim;
}

void
LruPolicy::onFill(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &)
{
    touch(set, way);
}

void
LruPolicy::onHit(std::uint32_t set, std::uint32_t way, const AccessInfo &)
{
    touch(set, way);
}

PolicyFactory
LruPolicy::factory()
{
    return [] { return std::make_unique<LruPolicy>(); };
}

} // namespace gllc
