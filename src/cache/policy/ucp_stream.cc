#include "cache/policy/ucp_stream.hh"

#include <algorithm>

#include "cache/geometry.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace gllc
{

UcpStreamPolicy::UcpStreamPolicy(std::uint32_t repartition_period)
    : period_(repartition_period)
{
    GLLC_ASSERT(repartition_period >= 1024);
}

void
UcpStreamPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    owner_.assign(static_cast<std::size_t>(sets) * ways,
                  static_cast<std::uint8_t>(PolicyStream::Rest));
    stamp_.assign(static_cast<std::size_t>(sets) * ways, 0);

    sampleIndex_.assign(sets, -1);
    std::int32_t samples = 0;
    for (std::uint32_t s = 0; s < sets; ++s) {
        if (isSampleSet(s))
            sampleIndex_[s] = samples++;
    }
    for (auto &u : umon_) {
        u.sets.assign(static_cast<std::size_t>(std::max(samples, 1)),
                      {});
        u.positionHits.assign(ways, 0);
    }

    // Start with an even split.
    const std::uint32_t share = std::max<std::uint32_t>(
        1, ways / static_cast<std::uint32_t>(kNumPolicyStreams));
    allocation_.fill(share);
    allocation_[0] += ways
        - share * static_cast<std::uint32_t>(kNumPolicyStreams);
}

void
UcpStreamPolicy::Umon::access(std::uint32_t sample_index, Addr tag,
                              std::uint32_t ways)
{
    auto &lru = sets[sample_index];
    for (std::size_t pos = 0; pos < lru.size(); ++pos) {
        if (lru[pos] == tag) {
            ++positionHits[pos];
            lru.erase(lru.begin() + static_cast<std::ptrdiff_t>(pos));
            lru.insert(lru.begin(), tag);
            return;
        }
    }
    lru.insert(lru.begin(), tag);
    if (lru.size() > ways)
        lru.pop_back();
}

void
UcpStreamPolicy::Umon::halve()
{
    for (auto &h : positionHits)
        h >>= 1;
}

std::uint64_t
UcpStreamPolicy::utility(const Umon &umon, std::uint32_t from,
                         std::uint32_t to) const
{
    std::uint64_t sum = 0;
    for (std::uint32_t p = from; p < to && p < ways_; ++p)
        sum += umon.positionHits[p];
    return sum;
}

void
UcpStreamPolicy::repartition()
{
    // Lookahead allocation (Qureshi & Patt): every stream keeps a
    // minimum of one way; repeatedly grant the block of ways with
    // the maximum marginal utility *per way*, looking ahead across
    // block sizes so that all-or-nothing utility curves (e.g. a
    // cyclic working set that only pays off once it fits) are
    // handled.
    std::array<std::uint32_t, kNumPolicyStreams> alloc;
    alloc.fill(1);
    std::uint32_t remaining =
        ways_ - static_cast<std::uint32_t>(kNumPolicyStreams);
    while (remaining > 0) {
        std::size_t best_stream = kNumPolicyStreams;
        std::uint32_t best_k = 1;
        double best_rate = 0.0;
        for (std::size_t s = 0; s < kNumPolicyStreams; ++s) {
            for (std::uint32_t k = 1; k <= remaining; ++k) {
                const double rate =
                    static_cast<double>(
                        utility(umon_[s], alloc[s], alloc[s] + k))
                    / k;
                if (rate > best_rate) {
                    best_stream = s;
                    best_k = k;
                    best_rate = rate;
                }
            }
        }
        if (best_stream == kNumPolicyStreams) {
            // No stream shows any marginal utility: spread the rest
            // evenly.
            for (std::size_t s = 0; remaining > 0;
                 s = (s + 1) % kNumPolicyStreams) {
                ++alloc[s];
                --remaining;
            }
            break;
        }
        alloc[best_stream] += best_k;
        remaining -= best_k;
    }
    allocation_ = alloc;
    for (auto &u : umon_)
        u.halve();
}

std::uint32_t
UcpStreamPolicy::selectVictim(std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;

    // Occupancy per stream in this set.
    std::array<std::uint32_t, kNumPolicyStreams> occupancy{};
    for (std::uint32_t w = 0; w < ways_; ++w)
        ++occupancy[owner_[base + w]];

    // Victimize the LRU block among streams over their allocation;
    // if no stream exceeds its share (allocation drift), fall back
    // to the global LRU block.
    std::uint32_t victim = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (occupancy[owner_[base + w]]
            <= allocation_[owner_[base + w]]) {
            continue;
        }
        if (victim == ways_ || stamp_[base + w] < stamp_[base + victim])
            victim = w;
    }
    if (victim != ways_)
        return victim;

    victim = 0;
    for (std::uint32_t w = 1; w < ways_; ++w) {
        if (stamp_[base + w] < stamp_[base + victim])
            victim = w;
    }
    return victim;
}

void
UcpStreamPolicy::onFill(std::uint32_t set, std::uint32_t way,
                        const AccessInfo &info)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    owner_[idx] = static_cast<std::uint8_t>(info.pstream());
    stamp_[idx] = ++clock_;

    if (sampleIndex_[set] >= 0) {
        umon_[static_cast<std::size_t>(info.pstream())].access(
            static_cast<std::uint32_t>(sampleIndex_[set]),
            blockNumber(info.access->addr), ways_);
    }
    if (++accesses_ % period_ == 0)
        repartition();
}

void
UcpStreamPolicy::onHit(std::uint32_t set, std::uint32_t way,
                       const AccessInfo &info)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    stamp_[idx] = ++clock_;
    // A hit by another stream re-tags the block: the consumer now
    // "owns" it (this is exactly where partitioning fights the
    // inter-stream sharing the paper describes).
    owner_[idx] = static_cast<std::uint8_t>(info.pstream());

    if (sampleIndex_[set] >= 0) {
        umon_[static_cast<std::size_t>(info.pstream())].access(
            static_cast<std::uint32_t>(sampleIndex_[set]),
            blockNumber(info.access->addr), ways_);
    }
    if (++accesses_ % period_ == 0)
        repartition();
}

void
UcpStreamPolicy::onEvict(std::uint32_t set, std::uint32_t way)
{
    owner_[static_cast<std::size_t>(set) * ways_ + way] =
        static_cast<std::uint8_t>(PolicyStream::Rest);
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

PolicyFactory
UcpStreamPolicy::factory()
{
    return [] { return std::make_unique<UcpStreamPolicy>(); };
}

} // namespace gllc
