#include "cache/policy/random.hh"

namespace gllc
{

RandomPolicy::RandomPolicy(std::uint64_t seed)
    : rng_(seed)
{
}

void
RandomPolicy::configure(std::uint32_t, std::uint32_t ways)
{
    ways_ = ways;
}

std::uint32_t
RandomPolicy::selectVictim(std::uint32_t)
{
    return static_cast<std::uint32_t>(rng_.below(ways_));
}

PolicyFactory
RandomPolicy::factory(std::uint64_t seed)
{
    return [seed] { return std::make_unique<RandomPolicy>(seed); };
}

} // namespace gllc
