/**
 * @file
 * Random replacement — a sanity baseline for tests and ablations.
 */

#ifndef GLLC_CACHE_POLICY_RANDOM_HH
#define GLLC_CACHE_POLICY_RANDOM_HH

#include <cstdint>

#include "cache/replacement.hh"
#include "common/rng.hh"

namespace gllc
{

class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 1);

    void configure(std::uint32_t sets, std::uint32_t ways) override;
    std::uint32_t selectVictim(std::uint32_t set) override;
    void onFill(std::uint32_t, std::uint32_t,
                const AccessInfo &) override {}
    void onHit(std::uint32_t, std::uint32_t, const AccessInfo &) override
    {}
    std::string name() const override { return "Random"; }

    static PolicyFactory factory(std::uint64_t seed = 1);

  private:
    std::uint32_t ways_ = 0;
    Rng rng_;
};

} // namespace gllc

#endif // GLLC_CACHE_POLICY_RANDOM_HH
