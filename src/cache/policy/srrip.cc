#include "cache/policy/srrip.hh"

namespace gllc
{

SrripPolicy::SrripPolicy(unsigned bits)
    : bits_(bits), rrip_(bits)
{
}

void
SrripPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    rrip_.configure(sets, ways);
}

std::uint32_t
SrripPolicy::selectVictim(std::uint32_t set)
{
    return rrip_.selectVictim(set);
}

void
SrripPolicy::onFill(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &info)
{
    rrip_.fill(set, way, rrip_.distantRrpv(), info.pstream());
}

void
SrripPolicy::onHit(std::uint32_t set, std::uint32_t way,
                   const AccessInfo &)
{
    rrip_.set(set, way, 0);
}

const FillHistogram *
SrripPolicy::fillHistogram() const
{
    return &rrip_.histogram();
}

std::string
SrripPolicy::name() const
{
    return "SRRIP-" + std::to_string(bits_);
}

PolicyFactory
SrripPolicy::factory(unsigned bits)
{
    return [bits] { return std::make_unique<SrripPolicy>(bits); };
}

} // namespace gllc
