#include "cache/policy/pelifo.hh"

namespace gllc
{

PeLifoPolicy::PeLifoPolicy() = default;

void
PeLifoPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    fillClock_ = 0;
    fillSeq_.assign(static_cast<std::size_t>(sets) * ways, 0);
    positionHits_.assign(ways, 0);
    totalHits_ = 0;
}

std::uint32_t
PeLifoPolicy::stackPosition(std::uint32_t set, std::uint32_t way) const
{
    // Position = number of blocks in the set filled more recently.
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    const std::uint64_t mine = fillSeq_[base + way];
    std::uint32_t pos = 0;
    for (std::uint32_t w = 0; w < ways_; ++w)
        pos += (fillSeq_[base + w] > mine);
    return pos;
}

std::uint32_t
PeLifoPolicy::escapePoint() const
{
    // Deepest position still carrying at least 1/16 of the hits.
    if (totalHits_ == 0)
        return 0;  // no information: assume only the top escapes
    std::uint32_t ep = 0;
    for (std::uint32_t p = 0; p < ways_; ++p) {
        if (positionHits_[p] * 16 >= totalHits_)
            ep = p;
    }
    return ep;
}

std::uint32_t
PeLifoPolicy::selectVictim(std::uint32_t set)
{
    // Victimize the deepest *dead* fill-stack position — one whose
    // share of the observed hits is negligible.  On streaming
    // traffic only the top is dead (hits, if any, come from the
    // pinned bottom), giving LIFO's thrash resistance; on
    // recency-friendly traffic the dead region is the deep end and
    // the policy degrades gracefully toward LRU/FIFO.
    std::uint32_t target;
    if (totalHits_ == 0) {
        target = 0;  // no information: assume everything dies young
    } else {
        target = ways_;  // "none dead" sentinel
        for (std::uint32_t p = 0; p < ways_; ++p) {
            if (positionHits_[p] * 16 < totalHits_)
                target = p;
        }
        if (target == ways_)
            target = ways_ - 1;  // all depths live: fill-FIFO
    }
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (stackPosition(set, w) == target)
            return w;
    }
    // Unreachable (positions are a permutation), but fall back to
    // the oldest fill.
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < ways_; ++w) {
        if (fillSeq_[base + w] < fillSeq_[base + victim])
            victim = w;
    }
    return victim;
}

void
PeLifoPolicy::onFill(std::uint32_t set, std::uint32_t way,
                     const AccessInfo &)
{
    fillSeq_[static_cast<std::size_t>(set) * ways_ + way] =
        ++fillClock_;
}

void
PeLifoPolicy::onHit(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &)
{
    ++positionHits_[stackPosition(set, way)];
    if (++totalHits_ >= (1u << 16)) {
        // Periodic decay keeps the escape point adaptive.
        for (auto &h : positionHits_)
            h >>= 1;
        totalHits_ >>= 1;
    }
}

PolicyFactory
PeLifoPolicy::factory()
{
    return [] { return std::make_unique<PeLifoPolicy>(); };
}

} // namespace gllc
