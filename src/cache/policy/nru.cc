#include "cache/policy/nru.hh"

namespace gllc
{

void
NruPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    referenced_.assign(static_cast<std::size_t>(sets) * ways, 0);
}

std::uint32_t
NruPolicy::selectVictim(std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (referenced_[base + w] == 0)
            return w;
    }
    for (std::uint32_t w = 0; w < ways_; ++w)
        referenced_[base + w] = 0;
    return 0;
}

void
NruPolicy::onFill(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &)
{
    referenced_[static_cast<std::size_t>(set) * ways_ + way] = 1;
}

void
NruPolicy::onHit(std::uint32_t set, std::uint32_t way, const AccessInfo &)
{
    referenced_[static_cast<std::size_t>(set) * ways_ + way] = 1;
}

PolicyFactory
NruPolicy::factory()
{
    return [] { return std::make_unique<NruPolicy>(); };
}

} // namespace gllc
