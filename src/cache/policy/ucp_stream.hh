/**
 * @file
 * Utility-based cache partitioning by graphics stream (UCP)
 * [Qureshi & Patt, MICRO'06], applied to the four policy streams.
 *
 * Section 1.1.1 argues that explicit partitioning "cannot be applied
 * directly to the 3D graphics streams, which have significant
 * inter-stream data sharing"; this implementation exists to test
 * that argument (see bench/ext_partitioning).  Each stream owns a
 * UMON: an auxiliary tag directory over the sample sets recording
 * LRU stack-position hit counts.  Every repartition period, a greedy
 * lookahead allocation assigns ways to streams by marginal utility;
 * replacement is LRU constrained to evict from streams that exceed
 * their allocation.
 */

#ifndef GLLC_CACHE_POLICY_UCP_STREAM_HH
#define GLLC_CACHE_POLICY_UCP_STREAM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cache/replacement.hh"

namespace gllc
{

class UcpStreamPolicy : public ReplacementPolicy
{
  public:
    /** @param repartition_period accesses between reallocations */
    explicit UcpStreamPolicy(std::uint32_t repartition_period = 65536);

    void configure(std::uint32_t sets, std::uint32_t ways) override;
    std::uint32_t selectVictim(std::uint32_t set) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    void onEvict(std::uint32_t set, std::uint32_t way) override;
    std::string name() const override { return "UCP-stream"; }

    static PolicyFactory factory();

    /** Current way allocation per policy stream (introspection). */
    const std::array<std::uint32_t, kNumPolicyStreams> &
    allocation() const
    {
        return allocation_;
    }

  private:
    /** Auxiliary tag directory of one stream over the sample sets. */
    struct Umon
    {
        /** LRU-ordered tags per monitored set (most recent first). */
        std::vector<std::vector<Addr>> sets;

        /** Hits at each stack position. */
        std::vector<std::uint64_t> positionHits;

        /** Record an access; @return true on ATD hit. */
        void access(std::uint32_t sample_index, Addr tag,
                    std::uint32_t ways);

        void halve();
    };

    void repartition();

    /** Marginal utility of giving @p stream ways (a, b]. */
    std::uint64_t utility(const Umon &umon, std::uint32_t from,
                          std::uint32_t to) const;

    std::uint32_t ways_ = 0;
    std::uint32_t period_;
    std::uint64_t accesses_ = 0;

    /** Stream owning each block frame. */
    std::vector<std::uint8_t> owner_;
    std::vector<std::uint64_t> stamp_;
    std::uint64_t clock_ = 0;

    /** sample-set index per set, or -1. */
    std::vector<std::int32_t> sampleIndex_;

    std::array<Umon, kNumPolicyStreams> umon_;
    std::array<std::uint32_t, kNumPolicyStreams> allocation_{};
};

} // namespace gllc

#endif // GLLC_CACHE_POLICY_UCP_STREAM_HH
