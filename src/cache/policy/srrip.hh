/**
 * @file
 * Static re-reference interval prediction (SRRIP) [Jaleel+, ISCA'10].
 *
 * Every fill is inserted at the distant RRPV (2^n - 2); hits promote
 * to zero.  The GSPC sample sets run exactly this policy (Table 2).
 */

#ifndef GLLC_CACHE_POLICY_SRRIP_HH
#define GLLC_CACHE_POLICY_SRRIP_HH

#include <cstdint>

#include "cache/rrip.hh"

namespace gllc
{

class SrripPolicy : public ReplacementPolicy
{
  public:
    /** @param bits RRPV width (2 in the paper's baseline). */
    explicit SrripPolicy(unsigned bits = 2);

    void configure(std::uint32_t sets, std::uint32_t ways) override;
    std::uint32_t selectVictim(std::uint32_t set) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    const FillHistogram *fillHistogram() const override;
    std::string name() const override;

    int
    decisionRrpv(std::uint32_t set, std::uint32_t way) const override
    {
        return static_cast<int>(rrip_.get(set, way));
    }

    static PolicyFactory factory(unsigned bits = 2);

  private:
    unsigned bits_;
    RripState rrip_;
};

} // namespace gllc

#endif // GLLC_CACHE_POLICY_SRRIP_HH
