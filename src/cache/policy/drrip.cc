#include "cache/policy/drrip.hh"

#include "common/audit.hh"
#include "common/metrics.hh"

namespace gllc
{

void
DuelStats::recordFill(DuelRole role, bool used_brrip,
                      const DuelCounter &psel)
{
    switch (role) {
      case DuelRole::SrripLeader:
        ++srripLeaderMisses;
        break;
      case DuelRole::BrripLeader:
        ++brripLeaderMisses;
        break;
      default:
        if (used_brrip)
            ++followerBrripFills;
        else
            ++followerSrripFills;
        break;
    }
    const std::size_t bucket =
        static_cast<std::size_t>(psel.value()) * kTrackBuckets
        / (static_cast<std::size_t>(psel.max()) + 1);
    ++pselTrack[bucket];
}

void
DuelStats::flush(const std::string &prefix,
                 const DuelCounter &psel) const
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    if (srripLeaderMisses > 0)
        reg.addCounter(prefix + "srrip_leader_misses",
                       srripLeaderMisses);
    if (brripLeaderMisses > 0)
        reg.addCounter(prefix + "brrip_leader_misses",
                       brripLeaderMisses);
    if (followerSrripFills > 0)
        reg.addCounter(prefix + "follower_srrip_fills",
                       followerSrripFills);
    if (followerBrripFills > 0)
        reg.addCounter(prefix + "follower_brrip_fills",
                       followerBrripFills);
    for (std::size_t b = 0; b < kTrackBuckets; ++b) {
        if (pselTrack[b] > 0)
            reg.recordValue(prefix + "psel_track",
                            static_cast<std::int64_t>(b),
                            pselTrack[b]);
    }
    reg.recordValue(prefix + "psel_final",
                    static_cast<std::int64_t>(psel.value()));
}

DuelRole
duelRole(std::uint32_t set, unsigned group)
{
    const std::uint32_t offset = set & 63u;
    if (offset == 2u * group)
        return DuelRole::SrripLeader;
    if (offset == (2u * group + 33u) % 64u)
        return DuelRole::BrripLeader;
    return DuelRole::Follower;
}

void
auditDuelFamilies(unsigned groups, const char *component)
{
    if (!auditActive())
        return;
    // owner[offset] = first (group, family) claiming the offset.
    int owner[64];
    for (int &o : owner)
        o = -1;
    for (unsigned g = 0; g < groups; ++g) {
        unsigned srrip = 0;
        unsigned brrip = 0;
        for (std::uint32_t offset = 0; offset < 64; ++offset) {
            const DuelRole role = duelRole(offset, g);
            if (role == DuelRole::Follower)
                continue;
            const int id = static_cast<int>(2 * g)
                + (role == DuelRole::BrripLeader ? 1 : 0);
            GLLC_AUDIT_CHECK(component, "duel-disjoint",
                             owner[offset] < 0,
                             "set offset %u leads for duel id %d and "
                             "duel id %d; leader families overlap",
                             offset, owner[offset], id);
            owner[offset] = id;
            if (role == DuelRole::SrripLeader)
                ++srrip;
            else
                ++brrip;
        }
        GLLC_AUDIT_CHECK(component, "duel-coverage",
                         srrip == 1 && brrip == 1,
                         "group %u owns %u SRRIP and %u BRRIP leader "
                         "offsets per constituency, expected 1 and 1",
                         g, srrip, brrip);
    }
}

DrripPolicy::DrripPolicy(unsigned bits)
    : bits_(bits), rrip_(bits), psel_(10), metrics_(metricsActive())
{
}

void
DrripPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    rrip_.configure(sets, ways);
    auditDuelFamilies(1, "DrripPolicy");
}

std::uint32_t
DrripPolicy::selectVictim(std::uint32_t set)
{
    return rrip_.selectVictim(set);
}

void
DrripPolicy::onFill(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &info)
{
    // A fill is a miss: leader-set misses steer the PSEL duel.  A
    // miss in an SRRIP leader votes against SRRIP (psel up) and vice
    // versa; followers copy whichever family has fewer misses.
    const DuelRole role = duelRole(set, 0);
    bool use_brrip;
    switch (role) {
      case DuelRole::SrripLeader:
        psel_.up();
        use_brrip = false;
        break;
      case DuelRole::BrripLeader:
        psel_.down();
        use_brrip = true;
        break;
      default:
        use_brrip = psel_.upperHalf();
        break;
    }

    const std::uint8_t rrpv = use_brrip
        ? throttle_.insertionRrpv(rrip_)
        : rrip_.distantRrpv();
    rrip_.fill(set, way, rrpv, info.pstream());
    if (metrics_)
        duel_.recordFill(role, use_brrip, psel_);
}

void
DrripPolicy::onHit(std::uint32_t set, std::uint32_t way,
                   const AccessInfo &)
{
    rrip_.set(set, way, 0);
}

void
DrripPolicy::auditInvariants(std::uint32_t set) const
{
    if (!auditActive())
        return;
    rrip_.auditSet(set, "DrripPolicy");
    GLLC_AUDIT_CHECK("DrripPolicy", "psel-range", psel_.inRange(),
                     "PSEL holds %u > max %u", psel_.value(),
                     psel_.max());
    GLLC_AUDIT_CHECK("DrripPolicy", "brrip-throttle",
                     throttle_.count() < 32,
                     "BRRIP throttle count %u escaped its 1/32 period",
                     throttle_.count());
}

const FillHistogram *
DrripPolicy::fillHistogram() const
{
    return &rrip_.histogram();
}

void
DrripPolicy::flushMetrics(const std::string &prefix) const
{
    duel_.flush(prefix + "duel.", psel_);
}

int
DrripPolicy::decisionRrpv(std::uint32_t set, std::uint32_t way) const
{
    return static_cast<int>(rrip_.get(set, way));
}

std::string
DrripPolicy::name() const
{
    return "DRRIP-" + std::to_string(bits_);
}

PolicyFactory
DrripPolicy::factory(unsigned bits)
{
    return [bits] { return std::make_unique<DrripPolicy>(bits); };
}

} // namespace gllc
