#include "cache/policy/drrip.hh"

namespace gllc
{

DuelRole
duelRole(std::uint32_t set, unsigned group)
{
    const std::uint32_t offset = set & 63u;
    if (offset == 2u * group)
        return DuelRole::SrripLeader;
    if (offset == (2u * group + 33u) % 64u)
        return DuelRole::BrripLeader;
    return DuelRole::Follower;
}

DrripPolicy::DrripPolicy(unsigned bits)
    : bits_(bits), rrip_(bits), psel_(10)
{
}

void
DrripPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    rrip_.configure(sets, ways);
}

std::uint32_t
DrripPolicy::selectVictim(std::uint32_t set)
{
    return rrip_.selectVictim(set);
}

void
DrripPolicy::onFill(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &info)
{
    // A fill is a miss: leader-set misses steer the PSEL duel.  A
    // miss in an SRRIP leader votes against SRRIP (psel up) and vice
    // versa; followers copy whichever family has fewer misses.
    const DuelRole role = duelRole(set, 0);
    bool use_brrip;
    switch (role) {
      case DuelRole::SrripLeader:
        psel_.up();
        use_brrip = false;
        break;
      case DuelRole::BrripLeader:
        psel_.down();
        use_brrip = true;
        break;
      default:
        use_brrip = psel_.upperHalf();
        break;
    }

    const std::uint8_t rrpv = use_brrip
        ? throttle_.insertionRrpv(rrip_)
        : rrip_.distantRrpv();
    rrip_.fill(set, way, rrpv, info.pstream());
}

void
DrripPolicy::onHit(std::uint32_t set, std::uint32_t way,
                   const AccessInfo &)
{
    rrip_.set(set, way, 0);
}

const FillHistogram *
DrripPolicy::fillHistogram() const
{
    return &rrip_.histogram();
}

std::string
DrripPolicy::name() const
{
    return "DRRIP-" + std::to_string(bits_);
}

PolicyFactory
DrripPolicy::factory(unsigned bits)
{
    return [bits] { return std::make_unique<DrripPolicy>(bits); };
}

} // namespace gllc
