/**
 * @file
 * Belady's optimal replacement [Belady, 1966; Mattson+, 1970].
 *
 * Used throughout Section 2 of the paper to bound the opportunity:
 * on every replacement, evict the block whose next reference lies
 * farthest in the future (or never comes).  The future knowledge is
 * supplied as a per-access "next use" index, precomputed from the
 * frame trace by buildNextUseOracle().
 */

#ifndef GLLC_CACHE_POLICY_BELADY_HH
#define GLLC_CACHE_POLICY_BELADY_HH

#include <cstdint>
#include <vector>

#include "cache/replacement.hh"

namespace gllc
{

/**
 * For each access i in the trace, compute the index of the next
 * access to the same 64 B block, or kNever.  One backward pass.
 */
std::vector<std::uint64_t>
buildNextUseOracle(const std::vector<MemAccess> &trace);

class BeladyPolicy : public ReplacementPolicy
{
  public:
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    std::uint32_t selectVictim(std::uint32_t set) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::string name() const override { return "Belady"; }

    /**
     * Test-only: overwrite a block's recorded next-use index so the
     * audit's victim checks can be exercised.
     */
    void
    debugForceNextUse(std::uint32_t set, std::uint32_t way,
                      std::uint64_t next_use)
    {
        nextUse_[static_cast<std::size_t>(set) * ways_ + way] = next_use;
    }

    static PolicyFactory factory();

  private:
    std::uint32_t ways_ = 0;
    /** Next-use trace index of the block resident in each frame. */
    std::vector<std::uint64_t> nextUse_;
};

} // namespace gllc

#endif // GLLC_CACHE_POLICY_BELADY_HH
