/**
 * @file
 * Dynamic re-reference interval prediction (DRRIP) [Jaleel+, ISCA'10]
 * — the paper's baseline policy.
 *
 * Set-dueling chooses between SRRIP insertion (RRPV 2^n - 2) and
 * BRRIP insertion (RRPV 2^n - 1, with a 1/32 long-interval throttle).
 * One group of leader sets always inserts SRRIP-style, another always
 * BRRIP-style; a PSEL counter counts their misses and follower sets
 * copy the winner.
 */

#ifndef GLLC_CACHE_POLICY_DRRIP_HH
#define GLLC_CACHE_POLICY_DRRIP_HH

#include <array>
#include <cstdint>

#include "cache/rrip.hh"
#include "common/sat_counter.hh"

namespace gllc
{

/** Leader-set classification shared by DRRIP and GS-DRRIP. */
enum class DuelRole : std::uint8_t
{
    SrripLeader,
    BrripLeader,
    Follower,
};

/**
 * Leader-set mapping: within each 64-set constituency, set offset
 * `2 * group` leads SRRIP and offset `2 * group + 33` leads BRRIP for
 * dueling group `group` (DRRIP uses one group; GS-DRRIP one per
 * stream).  The +33 skew keeps the two leader families apart.
 */
DuelRole duelRole(std::uint32_t set, unsigned group);

/**
 * Audit the leader-set families of @p groups dueling groups: within
 * each 64-set constituency every group must own exactly one SRRIP
 * and one BRRIP leader offset, and no offset may lead for two
 * different (group, family) pairs — the sample families must be
 * disjoint or the duels would vote on each other's fills.  No-op
 * unless auditActive().
 */
void auditDuelFamilies(unsigned groups, const char *component);

/** Shared BRRIP insertion throttle: distant 1 time in 32. */
class BrripThrottle
{
  public:
    /** RRPV to use for the next BRRIP-style insertion. */
    std::uint8_t
    insertionRrpv(const RripState &rrip)
    {
        if (++count_ >= 32) {
            count_ = 0;
            return rrip.distantRrpv();
        }
        return rrip.maxRrpv();
    }

    /** Fills since the last distant insertion (audit: always < 32). */
    std::uint32_t count() const { return count_; }

  private:
    std::uint32_t count_ = 0;
};

/**
 * Set-dueling telemetry shared by DRRIP and GS-DRRIP: per-role fill
 * counters and a 16-bucket trajectory of where the PSEL counter sat
 * at each fill.  Maintained only while metricsActive().
 */
struct DuelStats
{
    static constexpr std::size_t kTrackBuckets = 16;

    std::uint64_t srripLeaderMisses = 0;
    std::uint64_t brripLeaderMisses = 0;
    std::uint64_t followerSrripFills = 0;
    std::uint64_t followerBrripFills = 0;

    /** Fills observed with PSEL in each sixteenth of its range. */
    std::array<std::uint64_t, kTrackBuckets> pselTrack{};

    /** Record one fill made under @p role with PSEL at @p psel. */
    void recordFill(DuelRole role, bool used_brrip,
                    const DuelCounter &psel);

    /** Publish under prefix ("...duel."): counters + trajectory. */
    void flush(const std::string &prefix,
               const DuelCounter &psel) const;
};

class DrripPolicy : public ReplacementPolicy
{
  public:
    /** @param bits RRPV width (2 baseline, 4 in Figure 14). */
    explicit DrripPolicy(unsigned bits = 2);

    void configure(std::uint32_t sets, std::uint32_t ways) override;
    std::uint32_t selectVictim(std::uint32_t set) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    const FillHistogram *fillHistogram() const override;
    std::string name() const override;

    /** Audit hook: RRPV ranges, PSEL range, throttle period. */
    void auditInvariants(std::uint32_t set) const override;

    /** Metrics hook: duel-role fills + PSEL trajectory. */
    void flushMetrics(const std::string &prefix) const override;

    int decisionRrpv(std::uint32_t set,
                     std::uint32_t way) const override;

    /** Test-only: the mutable PSEL counter (corruption tests). */
    DuelCounter &debugPsel() { return psel_; }

    static PolicyFactory factory(unsigned bits = 2);

  private:
    unsigned bits_;
    RripState rrip_;
    BrripThrottle throttle_;
    DuelCounter psel_;
    bool metrics_;
    DuelStats duel_;
};

} // namespace gllc

#endif // GLLC_CACHE_POLICY_DRRIP_HH
