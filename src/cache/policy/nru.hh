/**
 * @file
 * Single-bit not-recently-used replacement (Figure 1 baseline).
 *
 * Each block has one reference bit, set on fill and on hit.  The
 * victim is the lowest-numbered way with a clear bit; when every bit
 * in the set is set, all bits are cleared first.
 */

#ifndef GLLC_CACHE_POLICY_NRU_HH
#define GLLC_CACHE_POLICY_NRU_HH

#include <cstdint>
#include <vector>

#include "cache/replacement.hh"

namespace gllc
{

class NruPolicy : public ReplacementPolicy
{
  public:
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    std::uint32_t selectVictim(std::uint32_t set) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::string name() const override { return "NRU"; }

    static PolicyFactory factory();

  private:
    std::uint32_t ways_ = 0;
    std::vector<std::uint8_t> referenced_;
};

} // namespace gllc

#endif // GLLC_CACHE_POLICY_NRU_HH
