#include "cache/policy/gs_drrip.hh"

#include "common/audit.hh"
#include "common/metrics.hh"

namespace gllc
{

GsDrripPolicy::GsDrripPolicy(unsigned bits)
    : bits_(bits), rrip_(bits),
      psel_{DuelCounter(10), DuelCounter(10), DuelCounter(10),
            DuelCounter(10)},
      metrics_(metricsActive())
{
}

void
GsDrripPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    rrip_.configure(sets, ways);
    auditDuelFamilies(static_cast<unsigned>(kNumPolicyStreams),
                      "GsDrripPolicy");
}

std::uint32_t
GsDrripPolicy::selectVictim(std::uint32_t set)
{
    return rrip_.selectVictim(set);
}

void
GsDrripPolicy::onFill(std::uint32_t set, std::uint32_t way,
                      const AccessInfo &info)
{
    const auto stream = static_cast<std::size_t>(info.pstream());
    const DuelRole role = duelRole(set, static_cast<unsigned>(stream));

    bool use_brrip;
    switch (role) {
      case DuelRole::SrripLeader:
        psel_[stream].up();
        use_brrip = false;
        break;
      case DuelRole::BrripLeader:
        psel_[stream].down();
        use_brrip = true;
        break;
      default:
        use_brrip = psel_[stream].upperHalf();
        break;
    }

    const std::uint8_t rrpv = use_brrip
        ? throttle_[stream].insertionRrpv(rrip_)
        : rrip_.distantRrpv();
    rrip_.fill(set, way, rrpv, info.pstream());
    if (metrics_)
        duel_[stream].recordFill(role, use_brrip, psel_[stream]);
}

void
GsDrripPolicy::onHit(std::uint32_t set, std::uint32_t way,
                     const AccessInfo &)
{
    rrip_.set(set, way, 0);
}

void
GsDrripPolicy::auditInvariants(std::uint32_t set) const
{
    if (!auditActive())
        return;
    rrip_.auditSet(set, "GsDrripPolicy");
    for (std::size_t s = 0; s < kNumPolicyStreams; ++s) {
        GLLC_AUDIT_CHECK(
            "GsDrripPolicy", "psel-range", psel_[s].inRange(),
            "PSEL[%s] holds %u > max %u",
            policyStreamName(static_cast<PolicyStream>(s)).c_str(),
            psel_[s].value(), psel_[s].max());
        GLLC_AUDIT_CHECK(
            "GsDrripPolicy", "brrip-throttle",
            throttle_[s].count() < 32,
            "BRRIP throttle[%s] count %u escaped its 1/32 period",
            policyStreamName(static_cast<PolicyStream>(s)).c_str(),
            throttle_[s].count());
    }
}

const FillHistogram *
GsDrripPolicy::fillHistogram() const
{
    return &rrip_.histogram();
}

void
GsDrripPolicy::flushMetrics(const std::string &prefix) const
{
    for (std::size_t s = 0; s < kNumPolicyStreams; ++s) {
        duel_[s].flush(prefix + "duel."
                           + policyStreamName(
                               static_cast<PolicyStream>(s))
                           + ".",
                       psel_[s]);
    }
}

int
GsDrripPolicy::decisionRrpv(std::uint32_t set,
                            std::uint32_t way) const
{
    return static_cast<int>(rrip_.get(set, way));
}

std::string
GsDrripPolicy::name() const
{
    return "GS-DRRIP-" + std::to_string(bits_);
}

PolicyFactory
GsDrripPolicy::factory(unsigned bits)
{
    return [bits] { return std::make_unique<GsDrripPolicy>(bits); };
}

} // namespace gllc
