#include "cache/policy/belady.hh"

#include <unordered_map>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace gllc
{

namespace
{

/**
 * Future-index monotonicity: the oracle hands each access the index
 * of the NEXT use of its block, so a recorded value in the past
 * (<= the access being serviced) means the oracle or its plumbing
 * mis-indexed the trace.
 */
void
auditFutureIndex(const AccessInfo &info, const char *event)
{
    if (!auditActive())
        return;
    GLLC_AUDIT_CHECK("BeladyPolicy", "future-monotonic",
                     info.nextUse == kNever
                         || info.nextUse > info.index,
                     "%s records next use %llu, not after access "
                     "%llu",
                     event,
                     static_cast<unsigned long long>(info.nextUse),
                     static_cast<unsigned long long>(info.index));
}

} // namespace

std::vector<std::uint64_t>
buildNextUseOracle(const std::vector<MemAccess> &trace)
{
    std::vector<std::uint64_t> next_use(trace.size(), kNever);
    std::unordered_map<Addr, std::uint64_t> last_seen;
    last_seen.reserve(trace.size() / 4 + 1);
    for (std::size_t i = trace.size(); i-- > 0;) {
        const Addr block = blockNumber(trace[i].addr);
        const auto it = last_seen.find(block);
        if (it != last_seen.end())
            next_use[i] = it->second;
        last_seen[block] = i;
    }
    return next_use;
}

void
BeladyPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    nextUse_.assign(static_cast<std::size_t>(sets) * ways, kNever);
}

std::uint32_t
BeladyPolicy::selectVictim(std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t victim = 0;
    std::uint64_t farthest = nextUse_[base];
    for (std::uint32_t w = 1; w < ways_; ++w) {
        if (nextUse_[base + w] > farthest) {
            farthest = nextUse_[base + w];
            victim = w;
        }
    }
    if (auditActive()) {
        // Exactly-one-way selection: the victim is the lowest-
        // numbered way attaining the farthest next use.
        for (std::uint32_t w = 0; w < victim; ++w) {
            GLLC_AUDIT_CHECK(
                "BeladyPolicy", "victim-tie-break",
                nextUse_[base + w] < farthest,
                "way %u (next use %llu) ties or beats chosen victim "
                "way %u (next use %llu)",
                w,
                static_cast<unsigned long long>(nextUse_[base + w]),
                victim, static_cast<unsigned long long>(farthest));
        }
    }
    return victim;
}

void
BeladyPolicy::onFill(std::uint32_t set, std::uint32_t way,
                     const AccessInfo &info)
{
    auditFutureIndex(info, "fill");
    nextUse_[static_cast<std::size_t>(set) * ways_ + way] = info.nextUse;
}

void
BeladyPolicy::onHit(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &info)
{
    auditFutureIndex(info, "hit");
    nextUse_[static_cast<std::size_t>(set) * ways_ + way] = info.nextUse;
}

PolicyFactory
BeladyPolicy::factory()
{
    return [] { return std::make_unique<BeladyPolicy>(); };
}

} // namespace gllc
