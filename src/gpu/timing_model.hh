/**
 * @file
 * Frame-time model.
 *
 * GPUs hide memory latency with massive thread-level parallelism
 * (Section 5.3: "it is necessary to save a significantly large
 * volume of LLC misses to achieve reasonable performance
 * improvements"), so a frame's time is modelled as the maximum of
 * the machine's throughput bounds plus a small exposed-latency term:
 *
 *   frame = max(compute, sampler, LLC occupancy, DRAM schedule)
 *           + sum(miss latency) / (thread contexts * overlap)
 *
 * The DRAM schedule bound comes from the event-driven DDR3 model
 * (dram/) fed with the replay's miss/writeback trace; the arrival
 * process is stretched to the running frame-time estimate and the
 * model iterated to a fixed point.
 */

#ifndef GLLC_GPU_TIMING_MODEL_HH
#define GLLC_GPU_TIMING_MODEL_HH

#include <vector>

#include "cache/banked_llc.hh"
#include "gpu/gpu_config.hh"
#include "trace/frame_trace.hh"

namespace gllc
{

/** Timing breakdown of one frame on one machine configuration. */
struct FrameTiming
{
    /// @name Throughput bounds, in GPU core cycles
    /// @{
    double computeCycles = 0;
    double samplerCycles = 0;
    double llcCycles = 0;
    double dramCycles = 0;
    /// @}

    /** Exposed memory latency after thread overlap. */
    double exposedCycles = 0;

    /** Resulting frame time in GPU core cycles. */
    double frameCycles = 0;

    /** Frames per second at the simulated scale. */
    double fps = 0;

    /** DRAM row-buffer hit rate achieved. */
    double rowHitRate = 0;
};

/**
 * Evaluate the frame-time model.
 *
 * @param work the frame's work counters
 * @param llc_stats replay statistics (access/hit/miss volumes)
 * @param dram_trace DRAM-bound accesses in trace order, cycle-stamped
 * @param config the machine
 */
FrameTiming timeFrame(const FrameWork &work, const LlcStats &llc_stats,
                      const std::vector<MemAccess> &dram_trace,
                      const GpuConfig &config);

} // namespace gllc

#endif // GLLC_GPU_TIMING_MODEL_HH
