#include "gpu/gpu_simulator.hh"

namespace gllc
{

FrameSimResult
simulateFrame(const FrameTrace &trace, const PolicySpec &policy,
              const GpuConfig &config, const RenderScale &scale)
{
    LlcConfig llc =
        scaledLlcConfig(config.llcCapacityBytes, scale.pixelScale());
    llc.ways = config.llcWays;
    llc.banks = config.llcBanks;

    RunOptions options;
    options.collectDramTrace = true;
    const RunResult run = runTrace(trace, policy, llc, options);

    FrameSimResult result;
    result.llcStats = run.stats;
    result.characterization = run.characterization;
    result.timing =
        timeFrame(trace.work, run.stats, run.dramTrace, config);
    return result;
}

} // namespace gllc
