/**
 * @file
 * Full GPU simulation of one frame: workload -> render caches ->
 * LLC(policy) -> DRAM -> frame time.
 */

#ifndef GLLC_GPU_GPU_SIMULATOR_HH
#define GLLC_GPU_GPU_SIMULATOR_HH

#include <string>

#include "analysis/offline_sim.hh"
#include "gpu/timing_model.hh"
#include "workload/frame_renderer.hh"

namespace gllc
{

/** Outcome of simulating one frame end to end. */
struct FrameSimResult
{
    FrameTiming timing;
    LlcStats llcStats;
    Characterization characterization;
};

/**
 * Simulate one already-rendered frame trace under @p policy on
 * @p config.  The LLC geometry is taken from the config, scaled by
 * @p scale to match the trace.
 */
FrameSimResult simulateFrame(const FrameTrace &trace,
                             const PolicySpec &policy,
                             const GpuConfig &config,
                             const RenderScale &scale);

} // namespace gllc

#endif // GLLC_GPU_GPU_SIMULATOR_HH
