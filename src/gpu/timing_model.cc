#include "gpu/timing_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "dram/dram_model.hh"

namespace gllc
{

namespace
{

/** Build the DRAM request stream, stretching arrivals by @p factor. */
std::vector<DramRequest>
buildRequests(const std::vector<MemAccess> &dram_trace,
              double gpu_to_dram_cycles, double stretch)
{
    std::vector<DramRequest> reqs;
    reqs.reserve(dram_trace.size());
    std::uint64_t last = 0;
    for (const MemAccess &a : dram_trace) {
        DramRequest r;
        r.addr = a.addr;
        r.arrival = static_cast<std::uint64_t>(
            static_cast<double>(a.cycle) * stretch
            * gpu_to_dram_cycles);
        // Trace order is service order; keep arrivals monotone even
        // if cycle stamps repeat.
        r.arrival = std::max(r.arrival, last);
        last = r.arrival;
        r.isWrite = a.isWrite;
        reqs.push_back(r);
    }
    return reqs;
}

} // namespace

FrameTiming
timeFrame(const FrameWork &work, const LlcStats &llc_stats,
          const std::vector<MemAccess> &dram_trace,
          const GpuConfig &config)
{
    FrameTiming t;

    // Compute bound: pixel + vertex shading through the ALU pipes at
    // the sustained (not peak) rate.
    const double sustained_ops = static_cast<double>(config.shaderCores)
        * config.opsPerCoreCycle * config.shaderEfficiency;
    const double vertex_ops =
        static_cast<double>(work.verticesShaded) * 24.0;
    t.computeCycles =
        (static_cast<double>(work.shaderOps) + vertex_ops)
        / sustained_ops;

    // Sampler bound: fixed-function texel fill rate.
    t.samplerCycles = static_cast<double>(work.texelRequests)
        / (static_cast<double>(config.samplers)
           * config.texelsPerSamplerCycle);

    // LLC occupancy bound: one access per bank per LLC cycle.
    const double llc_accesses =
        static_cast<double>(llc_stats.totalAccesses());
    t.llcCycles = llc_accesses / config.llcBanks
        * (config.coreClockGhz / config.llcClockGhz);

    // The execution-bound portion of the frame: the shader engine
    // issues memory traffic over this window.
    const double issue_span = std::max<double>(
        1.0, static_cast<double>(work.issueCycles));
    const double base =
        std::max({t.computeCycles, t.samplerCycles, t.llcCycles});

    // DRAM schedule: arrivals spread over the execution window; the
    // schedule length beyond the window is the memory overhang.
    DramModel dram(config.dram);
    const double gpu_to_dram =
        (config.dram.clockMhz / 1000.0) / config.coreClockGhz;
    const double stretch = std::max(1.0, base / issue_span);
    std::vector<DramRequest> requests =
        buildRequests(dram_trace, gpu_to_dram, stretch);

    // Optional display engine: scan-out reads the front buffer at
    // the refresh rate, a constant background load on the memory
    // system (interleaved by arrival time).
    if (config.scanoutHz > 0.0 && config.scanoutBytes > 0
        && !requests.empty()) {
        const double window_dram =
            static_cast<double>(requests.back().arrival) + 1.0;
        const double window_s = window_dram
            / (config.dram.clockMhz * 1e6);
        const std::uint64_t blocks = static_cast<std::uint64_t>(
            window_s * config.scanoutHz
            * static_cast<double>(config.scanoutBytes) / kBlockBytes);
        std::vector<DramRequest> merged;
        merged.reserve(requests.size() + blocks);
        // Front buffer placed beyond the render surfaces.
        const Addr scan_base = 1ull << 40;
        std::size_t r = 0;
        for (std::uint64_t b = 0; b < blocks; ++b) {
            DramRequest s;
            s.addr = scan_base + (b * kBlockBytes)
                % std::max<std::uint64_t>(config.scanoutBytes,
                                          kBlockBytes);
            s.arrival = static_cast<std::uint64_t>(
                static_cast<double>(b) * window_dram
                / static_cast<double>(blocks));
            s.isWrite = false;
            while (r < requests.size()
                   && requests[r].arrival <= s.arrival)
                merged.push_back(requests[r++]);
            merged.push_back(s);
        }
        while (r < requests.size())
            merged.push_back(requests[r++]);
        requests = std::move(merged);
    }

    const DramStats dstats = dram.simulate(requests);
    t.dramCycles =
        static_cast<double>(dstats.finishCycle) / gpu_to_dram;
    t.rowHitRate = dstats.requests == 0
        ? 0.0
        : static_cast<double>(dstats.rowHits)
            / static_cast<double>(dstats.requests);

    const double overhang = std::max(0.0, t.dramCycles - base);

    // Exposed latency: each miss stalls one thread context for the
    // LLC round trip plus an unloaded DRAM access (queueing is
    // already captured by the schedule); T contexts overlap stalls.
    const double llc_latency_core_cycles =
        config.llcLatencyLlcCycles
        * (config.coreClockGhz / config.llcClockGhz);
    const double unloaded_dram =
        (config.dram.tRcd + config.dram.tCas
         + config.dram.burstCycles())
        / gpu_to_dram;
    const double misses =
        static_cast<double>(llc_stats.totalMisses());
    t.exposedCycles = misses * (llc_latency_core_cycles + unloaded_dram)
        / config.totalThreads();

    // Thread switching hides part of the memory overhang (Section
    // 5.3); the rest is exposed frame time.
    t.frameCycles =
        base + config.hidingBeta * overhang + t.exposedCycles;
    t.fps = config.coreClockGhz * 1e9 / std::max(1.0, t.frameCycles);
    return t;
}

} // namespace gllc
