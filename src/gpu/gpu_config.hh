/**
 * @file
 * GPU machine configuration (Section 4).
 *
 * Baseline: 96 shader cores x 8 thread contexts @ 1.6 GHz (two
 * 4-wide SIMD pipes per core => 16 single-precision ops per core per
 * cycle, ~2.5 TFLOPS aggregate), twelve samplers @ 4 texels/cycle
 * (76.8 GTexels/s), 8 MB 16-way 4-bank LLC @ 4 GHz with a 20-cycle
 * load-to-use, dual-channel DDR3-1600 15-15-15.
 *
 * The Figure 17 sensitivity configurations are provided as named
 * constructors.
 */

#ifndef GLLC_GPU_GPU_CONFIG_HH
#define GLLC_GPU_GPU_CONFIG_HH

#include <cstdint>

#include "dram/dram_model.hh"
#include "rcache/render_caches.hh"

namespace gllc
{

struct GpuConfig
{
    /// @name Shader complex
    /// @{
    std::uint32_t shaderCores = 96;
    std::uint32_t threadsPerCore = 8;
    double coreClockGhz = 1.6;
    /** Peak single-precision ops per core per cycle. */
    std::uint32_t opsPerCoreCycle = 16;

    /**
     * Sustained fraction of peak ALU throughput.  Real shader cores
     * lose issue slots to dependencies, register-file conflicts and
     * fixed-function handshakes; 3D workloads typically sustain a
     * small fraction of peak FLOPS.
     */
    double shaderEfficiency = 0.13;

    /**
     * Fraction of the memory-schedule overhang (DRAM time beyond
     * the compute bound) that thread switching fails to hide.
     */
    double hidingBeta = 0.6;
    /// @}

    /// @name Texture samplers
    /// @{
    std::uint32_t samplers = 12;
    std::uint32_t texelsPerSamplerCycle = 4;
    /// @}

    /// @name LLC
    /// @{
    std::uint64_t llcCapacityBytes = 8ull << 20;
    std::uint32_t llcWays = 16;
    std::uint32_t llcBanks = 4;
    double llcClockGhz = 4.0;
    std::uint32_t llcLatencyLlcCycles = 20;
    /// @}

    DramConfig dram = DramConfig::ddr3_1600();
    RenderCacheConfig renderCaches;

    /// @name Display scan-out (extension; 0 disables)
    /// @{
    /**
     * Refresh rate of the display engine.  When nonzero, the
     * scan-out of the front buffer is modelled as a constant DRAM
     * read load competing with rendering for memory bandwidth (the
     * paper's simulator does not model it; see bench/ext_scanout).
     */
    double scanoutHz = 0.0;

    /** Front-buffer size scanned per refresh, in bytes. */
    std::uint64_t scanoutBytes = 0;
    /// @}

    std::uint32_t totalThreads() const
    {
        return shaderCores * threadsPerCore;
    }

    /** The Section 4 baseline machine. */
    static GpuConfig baseline();

    /** Baseline with a 16 MB LLC (Figure 16). */
    static GpuConfig baseline16M();

    /** Baseline with DDR3-1867 10-10-10 (Figure 17 upper). */
    static GpuConfig fastDram();

    /** 64 cores / 512 threads / 8 samplers (Figure 17 lower). */
    static GpuConfig lessAggressive();
};

} // namespace gllc

#endif // GLLC_GPU_GPU_CONFIG_HH
