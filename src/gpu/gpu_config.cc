#include "gpu/gpu_config.hh"

namespace gllc
{

GpuConfig
GpuConfig::baseline()
{
    return GpuConfig{};
}

GpuConfig
GpuConfig::baseline16M()
{
    GpuConfig c;
    c.llcCapacityBytes = 16ull << 20;
    return c;
}

GpuConfig
GpuConfig::fastDram()
{
    GpuConfig c;
    c.dram = DramConfig::ddr3_1867();
    return c;
}

GpuConfig
GpuConfig::lessAggressive()
{
    GpuConfig c;
    c.shaderCores = 64;
    c.samplers = 8;
    return c;
}

} // namespace gllc
