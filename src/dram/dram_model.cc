#include "dram/dram_model.hh"

#include <algorithm>
#include <string>

#include "common/fault.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace gllc
{

DramConfig
DramConfig::ddr3_1600()
{
    DramConfig c;
    c.name = "DDR3-1600 15-15-15";
    c.clockMhz = 800.0;
    c.tCas = c.tRcd = c.tRp = 15;
    return c;
}

DramConfig
DramConfig::ddr3_1867()
{
    DramConfig c;
    c.name = "DDR3-1867 10-10-10";
    c.clockMhz = 933.0;
    c.tCas = c.tRcd = c.tRp = 10;
    c.tWtr = 9;
    c.tRefi = 7277;  // 7.8 us at 933 MHz
    c.tRfc = 243;    // 260 ns at 933 MHz
    return c;
}

DramConfig
DramConfig::gddr5()
{
    DramConfig c;
    c.name = "GDDR5-5000";
    c.channels = 4;
    c.banksPerChannel = 16;
    c.clockMhz = 1250.0;
    c.tCas = 18;
    c.tRcd = 18;
    c.tRp = 18;
    c.rowBytes = 2048;
    c.tWtr = 12;
    c.tRefi = 9750;   // 7.8 us at 1250 MHz
    c.tRfc = 325;     // 260 ns at 1250 MHz
    return c;
}

DramModel::DramModel(const DramConfig &config)
    : config_(config)
{
    GLLC_ASSERT(config.channels > 0 && config.banksPerChannel > 0);
    GLLC_ASSERT((config.channels & (config.channels - 1)) == 0);
    GLLC_ASSERT(
        (config.banksPerChannel & (config.banksPerChannel - 1)) == 0);
}

std::uint32_t
DramModel::channelOf(Addr addr) const
{
    // Block-interleaved channels maximize delivered bandwidth on
    // streaming access patterns.
    return static_cast<std::uint32_t>(blockNumber(addr)
                                      & (config_.channels - 1));
}

std::uint32_t
DramModel::bankOf(Addr addr) const
{
    const std::uint64_t blocks_per_row = config_.rowBytes / kBlockBytes;
    const std::uint64_t row_seq =
        (blockNumber(addr) / config_.channels) / blocks_per_row;
    return static_cast<std::uint32_t>(row_seq
                                      & (config_.banksPerChannel - 1));
}

std::uint64_t
DramModel::rowOf(Addr addr) const
{
    const std::uint64_t blocks_per_row = config_.rowBytes / kBlockBytes;
    return (blockNumber(addr) / config_.channels) / blocks_per_row
        / config_.banksPerChannel;
}

DramStats
DramModel::simulate(const std::vector<DramRequest> &requests)
{
    struct BankState
    {
        std::uint64_t row = ~0ull;
        std::uint64_t ready = 0;
        bool open = false;
    };

    // dram.simulate fault site: keyed on the request-stream shape,
    // so the same batch fails at any thread count.
    if (faultsActive()
        && faultFires(FaultSite::DramSimulate,
                      mix64(requests.size())))
        throwInjectedFault(FaultSite::DramSimulate);

    const std::uint32_t nch = config_.channels;
    const std::uint32_t nbank = config_.banksPerChannel;

    std::vector<BankState> banks(
        static_cast<std::size_t>(nch) * nbank);
    std::vector<std::uint64_t> bus_free(nch, 0);
    std::vector<bool> last_was_write(nch, false);
    std::vector<std::uint64_t> refresh_done(nch, 0);

    // Per-channel stats + per-(channel, bank) request counts (the
    // bank-level-parallelism view), kept only while metrics are on.
    const bool metrics = metricsActive();
    std::vector<DramStats> channel_stats(metrics ? nch : 0);
    std::vector<std::uint64_t> bank_requests(
        metrics ? static_cast<std::size_t>(nch) * nbank : 0, 0);

    DramStats stats;
    std::uint64_t last_arrival = 0;

    for (const DramRequest &req : requests) {
        GLLC_ASSERT(req.arrival >= last_arrival);
        last_arrival = req.arrival;

        const std::uint32_t ch = channelOf(req.addr);
        const std::uint32_t bk = bankOf(req.addr);
        const std::uint64_t row = rowOf(req.addr);
        BankState &bank = banks[static_cast<std::size_t>(ch) * nbank
                                + bk];

        std::uint64_t start = std::max(req.arrival, bank.ready);

        // All-bank refresh: when the schedule crosses a tREFI
        // boundary the channel stalls for tRFC and every row closes.
        if (config_.tRefi != 0) {
            const std::uint64_t window = start / config_.tRefi;
            if (window > refresh_done[ch]) {
                refresh_done[ch] = window;
                ++stats.refreshes;
                start += config_.tRfc;
                for (std::uint32_t b = 0; b < nbank; ++b) {
                    banks[static_cast<std::size_t>(ch) * nbank + b]
                        .open = false;
                }
            }
        }

        // Row misses pay precharge + activate before the CAS; row
        // hits pipeline CAS-to-CAS at the burst rate, so the bank is
        // only occupied for the burst.
        std::uint64_t cas_ready = start;
        if (bank.open && bank.row == row) {
            ++stats.rowHits;
            if (metrics)
                ++channel_stats[ch].rowHits;
        } else {
            ++stats.rowMisses;
            if (bank.open)
                ++stats.rowConflicts;
            if (metrics) {
                ++channel_stats[ch].rowMisses;
                if (bank.open)
                    ++channel_stats[ch].rowConflicts;
            }
            cas_ready += (bank.open ? config_.tRp : 0) + config_.tRcd;
            bank.open = true;
            bank.row = row;
        }

        const std::uint64_t data_ready = cas_ready + config_.tCas;
        std::uint64_t bus_earliest = bus_free[ch];
        if (!req.isWrite && last_was_write[ch]) {
            // Write-to-read turnaround on the shared data bus.
            bus_earliest += config_.tWtr;
            ++stats.turnarounds;
        }
        last_was_write[ch] = req.isWrite;
        const std::uint64_t bus_start =
            std::max(data_ready, bus_earliest);
        const std::uint64_t completion =
            bus_start + config_.burstCycles();

        bus_free[ch] = completion;
        // The bank can accept the next CAS one burst after this one;
        // the data return (tCAS) overlaps with it.
        bank.ready = cas_ready + config_.burstCycles();
        stats.busBusyCycles += config_.burstCycles();

        ++stats.requests;
        if (req.isWrite)
            ++stats.writes;
        else
            ++stats.reads;
        stats.finishCycle = std::max(stats.finishCycle, completion);
        stats.totalLatency += completion - req.arrival;

        if (metrics) {
            DramStats &cs = channel_stats[ch];
            ++cs.requests;
            if (req.isWrite)
                ++cs.writes;
            else
                ++cs.reads;
            ++bank_requests[static_cast<std::size_t>(ch) * nbank + bk];
        }
    }

    if (metrics)
        flushMetrics(stats, channel_stats, bank_requests);

    return stats;
}

void
DramModel::flushMetrics(
    const DramStats &stats,
    const std::vector<DramStats> &channel_stats,
    const std::vector<std::uint64_t> &bank_requests) const
{
    auto &reg = MetricsRegistry::instance();

    auto flushOne = [&reg](const std::string &p, const DramStats &s) {
        if (s.requests)
            reg.addCounter(p + "requests", s.requests);
        if (s.reads)
            reg.addCounter(p + "reads", s.reads);
        if (s.writes)
            reg.addCounter(p + "writes", s.writes);
        if (s.rowHits)
            reg.addCounter(p + "row_hits", s.rowHits);
        if (s.rowMisses)
            reg.addCounter(p + "row_misses", s.rowMisses);
        if (s.rowConflicts)
            reg.addCounter(p + "row_conflicts", s.rowConflicts);
    };

    flushOne("dram.", stats);
    if (stats.refreshes)
        reg.addCounter("dram.refreshes", stats.refreshes);
    if (stats.turnarounds)
        reg.addCounter("dram.turnarounds", stats.turnarounds);
    if (stats.busBusyCycles)
        reg.addCounter("dram.bus_busy_cycles", stats.busBusyCycles);
    reg.maxGauge("dram.max_finish_cycle",
                 static_cast<double>(stats.finishCycle));

    const std::uint32_t nbank = config_.banksPerChannel;
    for (std::uint32_t ch = 0; ch < config_.channels; ++ch) {
        const std::string p = "dram.ch" + std::to_string(ch) + ".";
        flushOne(p, channel_stats[ch]);
        // Bank-level parallelism: request distribution over banks.
        const std::string bname = p + "bank_requests";
        for (std::uint32_t b = 0; b < nbank; ++b) {
            const std::uint64_t n =
                bank_requests[static_cast<std::size_t>(ch) * nbank + b];
            if (n)
                reg.recordValue(bname, static_cast<std::int64_t>(b),
                                n);
        }
    }
}

} // namespace gllc
