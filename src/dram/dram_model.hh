/**
 * @file
 * DDR3 channel/bank timing model.
 *
 * Section 4: "We model a dual channel DDR3-1600 memory system.  The
 * DRAM part is 8-way banked with a burst length of eight and
 * 15-15-15 (tCAS-tRCD-tRP) latency parameters."  The sensitivity
 * study (Figure 17) additionally uses DDR3-1867 10-10-10.
 *
 * The model services LLC misses and writebacks in arrival order per
 * channel, tracking per-bank row buffers and the shared data bus, so
 * both the latency seen by individual requests and the total busy
 * time (the bandwidth bound on a memory-bound frame) fall out.
 */

#ifndef GLLC_DRAM_DRAM_MODEL_HH
#define GLLC_DRAM_DRAM_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace gllc
{

/** Timing/geometry parameters of the DRAM system. */
struct DramConfig
{
    std::string name = "DDR3-1600 15-15-15";

    std::uint32_t channels = 2;
    std::uint32_t banksPerChannel = 8;

    /** Memory clock in MHz (data rate is 2x). */
    double clockMhz = 800.0;

    /** Transfers per burst; 8 x 8 B = one 64 B block. */
    std::uint32_t burstLength = 8;

    std::uint32_t tCas = 15;
    std::uint32_t tRcd = 15;
    std::uint32_t tRp = 15;

    /** Row-buffer (page) size per bank. */
    std::uint32_t rowBytes = 8192;

    /**
     * Write-to-read turnaround penalty on a channel's data bus
     * (tWTR-like): charged when a read follows a write.
     */
    std::uint32_t tWtr = 8;

    /** Refresh interval (0 disables refresh modelling). */
    std::uint32_t tRefi = 6240;  ///< 7.8 us at 800 MHz

    /** All-bank refresh occupancy. */
    std::uint32_t tRfc = 208;    ///< 260 ns at 800 MHz

    /** Dual-channel DDR3-1600 15-15-15 (the baseline). */
    static DramConfig ddr3_1600();

    /** Dual-channel DDR3-1867 10-10-10 (Figure 17 upper panel). */
    static DramConfig ddr3_1867();

    /**
     * GDDR5-class memory (extension): four 64-bit channels at a
     * 1250 MHz command clock — the discrete-GPU memory system the
     * paper's Section 4 contrasts with the LLC's efficiency.
     */
    static DramConfig gddr5();

    /** Bus cycles one burst occupies the data bus. */
    std::uint32_t burstCycles() const { return burstLength / 2; }

    /** Peak bandwidth in bytes per memory-clock cycle (all channels). */
    double
    peakBytesPerCycle() const
    {
        return static_cast<double>(channels) * 16.0;  // 8 B x 2/cycle
    }
};

/** One request presented to the DRAM system. */
struct DramRequest
{
    Addr addr = 0;
    /** Arrival time in DRAM clock cycles. */
    std::uint64_t arrival = 0;
    bool isWrite = false;
};

/** Aggregate results of servicing a request sequence. */
struct DramStats
{
    std::uint64_t requests = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;

    /**
     * Row misses that found a different row open (paid precharge +
     * activate); the remaining misses only paid the activate.
     */
    std::uint64_t rowConflicts = 0;

    /** Refresh windows the schedule crossed. */
    std::uint64_t refreshes = 0;

    /** Write-to-read bus turnarounds charged. */
    std::uint64_t turnarounds = 0;

    /** Cycle the last request completed. */
    std::uint64_t finishCycle = 0;

    /** Sum over requests of (completion - arrival). */
    std::uint64_t totalLatency = 0;

    /** Data-bus busy cycles summed over channels. */
    std::uint64_t busBusyCycles = 0;

    double
    averageLatency() const
    {
        return requests == 0
            ? 0.0
            : static_cast<double>(totalLatency)
                / static_cast<double>(requests);
    }
};

/** The DDR3 timing model. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config);

    /**
     * Service @p requests, which must be sorted by arrival time.
     * The model is reset before servicing.
     */
    DramStats simulate(const std::vector<DramRequest> &requests);

    const DramConfig &config() const { return config_; }

    /// @name Address mapping (exposed for tests)
    /// @{
    std::uint32_t channelOf(Addr addr) const;
    std::uint32_t bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;
    /// @}

  private:
    /**
     * Flush aggregate and per-channel counters plus the per-channel
     * bank-request distribution into the metrics registry under
     * "dram."; called at the end of simulate() when metricsActive().
     */
    void flushMetrics(
        const DramStats &stats,
        const std::vector<DramStats> &channel_stats,
        const std::vector<std::uint64_t> &bank_requests) const;

    DramConfig config_;
};

} // namespace gllc

#endif // GLLC_DRAM_DRAM_MODEL_HH
