#include "workload/frame_renderer.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workload/memmap.hh"
#include "workload/surfaces.hh"

namespace gllc
{

namespace
{

/** Per-frame rendering state shared by the pass routines. */
class FrameContext
{
  public:
    FrameContext(const AppProfile &app, std::uint32_t frame_index,
                 const RenderScale &scale,
                 const RenderCacheConfig &rc_config)
        : app(app),
          rng(app.seed ^ (0x9e3779b97f4a7c15ULL
                          * (frame_index + 1))),
          mem(rng.fork(0x11).next(), scale.scatterPages),
          rcc(rc_config),
          zipf(app.textureCount, app.zipfTheta)
    {
        const std::uint32_t s = std::max<std::uint32_t>(1, scale.linear);
        width = std::max<std::uint32_t>(64, app.width / s);
        height = std::max<std::uint32_t>(64, app.height / s);
        triangles = std::max<std::uint32_t>(
            256, app.triangles / scale.pixelScale());
        textureEdge = std::max<std::uint32_t>(64, app.textureEdge / s);

        allocateSurfaces();

        trace.name = app.name + "/f" + std::to_string(frame_index);
        trace.app = app.name;
        trace.frameIndex = frame_index;
        trace.accesses.reserve(
            static_cast<std::size_t>(triangles) * 8);
    }

    /// @name Workload profile and derived dimensions
    /// @{
    const AppProfile &app;
    std::uint32_t width;
    std::uint32_t height;
    std::uint32_t triangles;
    std::uint32_t textureEdge;
    /// @}

    Rng rng;
    GpuMemory mem;
    RenderCacheComplex rcc;
    ZipfSampler zipf;

    FrameTrace trace;

    /// @name Surfaces
    /// @{
    Surface backBuffer;
    Surface depth;
    Surface hiz;
    Surface stencil;
    Surface vertexBuffer;
    Surface indexBuffer;
    Surface constants;
    /** Static textures as MIP chains (level 0 = full size). */
    std::vector<std::vector<Surface>> staticTextures;
    std::vector<Surface> offscreenTargets;
    std::vector<Surface> chainTargets;  ///< scene RT + post chain
    /// @}

    /** Abstract GPU-cycle work cursor (stamps LLC accesses). */
    double cycleCursor = 0.0;

    std::uint32_t cycle() const
    {
        return static_cast<std::uint32_t>(cycleCursor);
    }

    /** Advance the cursor by shader work (ops across all cores). */
    void
    advance(double shader_ops)
    {
        // 96 cores x 16 single-precision ops per cycle (Section 4);
        // the cursor only shapes DRAM arrival times, so the scale
        // constant matters less than monotonicity.
        cycleCursor += shader_ops / 1536.0 + 0.01;
    }

    /** Translate a virtual surface address and emit through @p fn. */
    Addr phys(Addr vaddr) const { return mem.translate(vaddr); }

  private:
    void allocateSurfaces();
};

void
FrameContext::allocateSurfaces()
{
    // Interleave allocations so physical 16 KB regions mix streams
    // (see memmap.hh).
    backBuffer = Surface::make2D(mem, SurfaceKind::BackBuffer, "back",
                                 width, height, 4);
    depth = Surface::make2D(mem, SurfaceKind::Depth, "depth", width,
                            height, 4);
    hiz = Surface::make2D(mem, SurfaceKind::HiZ, "hiz",
                          std::max(1u, width / 4),
                          std::max(1u, height / 4), 4);
    if (app.usesStencil) {
        stencil = Surface::make2D(mem, SurfaceKind::StencilBuffer,
                                  "stencil", width, height, 1);
    }

    const std::uint64_t vertex_count =
        static_cast<std::uint64_t>(triangles * 0.6) + 16;
    vertexBuffer = Surface::makeLinear(
        mem, SurfaceKind::VertexBuffer, "vb", vertex_count * 32);
    indexBuffer = Surface::makeLinear(
        mem, SurfaceKind::IndexBuffer, "ib",
        static_cast<std::uint64_t>(triangles) * 6);
    constants = Surface::makeLinear(mem, SurfaceKind::Constants,
                                    "const", 64 * 1024);

    for (std::uint32_t i = 0; i < app.textureCount; ++i) {
        // MIP chain down to 32 texels (at most 4 levels); samplers
        // pick the level that brings the texel:pixel ratio near one
        // (Williams' pyramidal parametrics, cited in Section 1.1.2).
        std::vector<Surface> chain;
        std::uint32_t edge = textureEdge;
        while (edge >= 32 && chain.size() < 4) {
            chain.push_back(Surface::make2D(
                mem, SurfaceKind::StaticTexture,
                "tex" + std::to_string(i) + ".l"
                    + std::to_string(chain.size()),
                edge, edge, 4));
            edge /= 2;
        }
        staticTextures.push_back(std::move(chain));
    }

    const auto off_edge = [&](std::uint32_t full) {
        return std::max<std::uint32_t>(
            32, static_cast<std::uint32_t>(full * app.offscreenScale));
    };
    for (std::uint32_t i = 0; i < app.offscreenTargets; ++i) {
        offscreenTargets.push_back(Surface::make2D(
            mem, SurfaceKind::RenderTarget, "off" + std::to_string(i),
            off_edge(width), off_edge(height), 4));
    }

    // Scene target plus one target per post pass (ping-pong chain).
    const std::uint32_t chain = 1 + app.postChainLength;
    for (std::uint32_t i = 0; i < chain; ++i) {
        chainTargets.push_back(Surface::make2D(
            mem, SurfaceKind::RenderTarget, "chain" + std::to_string(i),
            width, height, 4));
    }
}

/**
 * Geometry pass: rasterize triangle draws into a color target with
 * HiZ / early-Z, sampling textures per covered tile.
 */
struct GeometryPassParams
{
    Surface *color = nullptr;            ///< color target
    StreamType colorStream = StreamType::RenderTarget;
    std::uint32_t passTriangles = 0;
    std::uint32_t textureLayers = 0;     ///< static layers per draw
    /** Offscreen targets sampled screen-projectively (shadow-style). */
    std::vector<Surface *> dynamicInputs;
    double consumeFraction = 1.0;
    bool depthWrites = true;
    bool stencilPass = false;
    std::uint32_t viewWidth = 0;
    std::uint32_t viewHeight = 0;
};

class GeometryPass
{
  public:
    GeometryPass(FrameContext &ctx, const GeometryPassParams &p)
        : ctx(ctx), p(p),
          tilesX((p.viewWidth + 3) / 4), tilesY((p.viewHeight + 3) / 4),
          tileDepth(static_cast<std::size_t>(tilesX) * tilesY, 1.0f),
          regionsX((p.viewWidth + 7) / 8),
          regionsY((p.viewHeight + 7) / 8),
          regionMax(static_cast<std::size_t>(regionsX) * regionsY,
                    1.0f),
          regionTouched(
              static_cast<std::size_t>(regionsX) * regionsY, 0),
          colorTouched(static_cast<std::size_t>(tilesX) * tilesY, 0)
    {
    }

    void run();

  private:
    void drawCall(std::uint32_t draw_index, std::uint32_t draw_count,
                  std::uint32_t tris);
    void triangle(std::uint32_t draw_index, std::uint32_t draw_count,
                  double cx, double cy, const Surface &texture,
                  std::uint32_t anchor_u, std::uint32_t anchor_v,
                  double texel_ratio, bool blend_draw);
    void shadeTile(std::uint32_t tx, std::uint32_t ty,
                   const Surface &texture, std::uint32_t anchor_u,
                   std::uint32_t anchor_v, double texel_ratio,
                   bool blend_draw);

    /** Recompute the 8x8-region max depth from its 2x2 tiles. */
    void
    updateRegionMax(std::uint32_t rx, std::uint32_t ry)
    {
        float m = 0.0f;
        for (std::uint32_t dy = 0; dy < 2; ++dy) {
            for (std::uint32_t dx = 0; dx < 2; ++dx) {
                const std::uint32_t tx = std::min(rx * 2 + dx,
                                                  tilesX - 1);
                const std::uint32_t ty = std::min(ry * 2 + dy,
                                                  tilesY - 1);
                m = std::max(
                    m,
                    tileDepth[static_cast<std::size_t>(ty) * tilesX
                              + tx]);
            }
        }
        regionMax[static_cast<std::size_t>(ry) * regionsX + rx] = m;
    }

    FrameContext &ctx;
    const GeometryPassParams &p;
    std::uint32_t tilesX, tilesY;
    std::vector<float> tileDepth;
    std::uint32_t regionsX, regionsY;
    std::vector<float> regionMax;
    std::vector<std::uint8_t> regionTouched;
    std::vector<std::uint8_t> colorTouched;

    std::uint64_t vertexCursor = 0;
    std::uint64_t indexCursor = 0;
    std::uint32_t samplerRR = 0;   ///< round-robin sampler assignment
    std::uint32_t dynamicRR = 0;   ///< dynamic input bound this draw
    std::uint32_t clusterTx0 = 0;  ///< draw cluster origin (tiles)
    std::uint32_t clusterTy0 = 0;
    bool tessellated = false;      ///< current draw uses DX11 stages
    std::uint32_t triParity = 0;   ///< alternates generated triangles
    const std::vector<Surface> *lastTexture = nullptr;  ///< batching
    std::uint32_t lastAnchor = 0;
    const Surface *trilinearNext = nullptr;  ///< coarser MIP level
    float currentDepth = 0.0f;
};

void
GeometryPass::run()
{
    const std::uint32_t draws = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(p.passTriangles
                                      / ctx.app.trisPerDraw));
    const std::uint32_t tris_per_draw =
        std::max<std::uint32_t>(1, p.passTriangles / draws);
    for (std::uint32_t d = 0; d < draws; ++d)
        drawCall(d, draws, tris_per_draw);
}

void
GeometryPass::drawCall(std::uint32_t draw_index,
                       std::uint32_t draw_count, std::uint32_t tris)
{
    auto &out = ctx.trace.accesses;

    // Constants / shader state reads for this draw (Other stream).
    const std::uint32_t const_blocks = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(ctx.app.otherBlocksPerDraw));
    const std::uint64_t const_base =
        ctx.rng.below(ctx.constants.bytes() / kBlockBytes)
        * kBlockBytes;
    for (std::uint32_t i = 0; i < const_blocks; ++i) {
        const Addr va = ctx.constants.linearAddress(
            (const_base + i * kBlockBytes) % ctx.constants.bytes());
        ctx.rcc.otherRead(ctx.phys(va), ctx.cycle(), out);
    }

    // Bind a texture and an anchor window within it.  Engines sort
    // draws by material to minimize state changes, so consecutive
    // draws frequently bind the same texture window (near-term LLC
    // texture reuse that even DRRIP captures).  Otherwise draws pick
    // a Zipf-popular texture; draws sharing an anchor sample
    // overlapping windows, and the per-draw offset keeps the overlap
    // partial, so most blocks of a window pair are touched once or
    // twice and only a small core three or more times (the epoch
    // structure of Figure 7).
    const bool batch_material =
        lastTexture != nullptr && ctx.rng.chance(0.3);
    const std::vector<Surface> &chain = batch_material
        ? *lastTexture
        : ctx.staticTextures[ctx.zipf.sample(ctx.rng)];
    const std::uint32_t anchor_id = batch_material
        ? lastAnchor
        : static_cast<std::uint32_t>(
              ctx.rng.below(ctx.app.anchorsPerTexture));
    lastTexture = &chain;
    lastAnchor = anchor_id;

    // MIP selection: the raw texel:pixel footprint picks the level
    // whose effective ratio lands nearest one.
    const double raw_ratio = 1.0 + 1.0 * ctx.rng.uniform();
    const std::size_t mip_level =
        (raw_ratio >= 1.41 && chain.size() > 1) ? 1 : 0;
    const Surface &texture = chain[mip_level];
    trilinearNext = (mip_level + 1 < chain.size())
        ? &chain[mip_level + 1]
        : nullptr;
    Rng anchor_rng(texture.base() ^ (anchor_id * 0x2545f4914f6cdd1dULL));
    const std::uint32_t window =
        std::max<std::uint32_t>(32, texture.width() / 8);
    const std::uint32_t anchor_u = static_cast<std::uint32_t>(
        anchor_rng.below(std::max(1u, texture.width() - window))
        + ctx.rng.below(window / 3 + 1));
    const std::uint32_t anchor_v = static_cast<std::uint32_t>(
        anchor_rng.below(std::max(1u, texture.height() - window))
        + ctx.rng.below(window / 3 + 1));
    const double texel_ratio =
        raw_ratio / static_cast<double>(std::size_t{1} << mip_level);

    // Screen-space cluster this draw's mesh occupies.  Scenes are
    // not uniform: a focus region (the action) collects most of the
    // geometry and is overdrawn repeatedly, while the periphery
    // (sky, distant terrain) is covered by few draws, so a sizable
    // fraction of Z/RT blocks is touched by a single draw (the high
    // Z E0 death ratio of Figure 9).
    const double cluster_r = std::sqrt(
        static_cast<double>(tris) * ctx.app.triPixels) * 0.9;
    double cx, cy;
    if (ctx.rng.chance(ctx.app.clusterFocus)) {
        cx = (0.3 + 0.4 * ctx.rng.uniform()) * p.viewWidth;
        cy = (0.3 + 0.4 * ctx.rng.uniform()) * p.viewHeight;
    } else {
        cx = ctx.rng.uniform() * p.viewWidth;
        cy = ctx.rng.uniform() * p.viewHeight;
    }

    // Transparent geometry renders after the opaque scene, so blend
    // draws are the pass's final draws; their color reads reach far
    // back to blocks written much earlier in the pass.
    const bool blend_draw =
        static_cast<double>(draw_index)
        >= (1.0 - ctx.app.blendFraction) * draw_count;

    // DirectX 11 tessellation: the patch expands into twice as many
    // half-area triangles; the generated vertices come from the
    // tessellator (no vertex-buffer fetch) and the domain shader
    // samples a displacement map per tile.
    tessellated = ctx.rng.chance(ctx.app.tessellatedDraws);
    if (tessellated)
        tris *= 2;

    ++dynamicRR;

    // Draw-order-correlated depth: frontToBack -> later draws sit
    // behind earlier ones and die in early-Z.
    const double order =
        static_cast<double>(draw_index) / std::max(1u, draw_count - 1);
    currentDepth = static_cast<float>(
        ctx.app.frontToBack * order
        + (1.0 - ctx.app.frontToBack) * ctx.rng.uniform());

    // The draw's texture window maps cluster-relative screen
    // positions to texels, so two draws that share (texture, anchor)
    // sample overlapping windows regardless of where their meshes
    // sit on screen.
    clusterTx0 = static_cast<std::uint32_t>(
        std::max(0.0, cx - cluster_r)) / 4;
    clusterTy0 = static_cast<std::uint32_t>(
        std::max(0.0, cy - cluster_r)) / 4;

    // Meshes rasterize as spatially coherent strips: the triangle
    // centre performs a bounded random walk around the cluster, so
    // consecutive triangles land on adjacent tiles and the small
    // Z/RT caches filter the near-term revisits (far revisits come
    // from other draws and reach the LLC).
    const double step = std::sqrt(ctx.app.triPixels) * 1.1;
    double wx = cx, wy = cy;
    for (std::uint32_t t = 0; t < tris; ++t) {
        wx += ctx.rng.gaussian() * step;
        wy += ctx.rng.gaussian() * step;
        // Soft pull back toward the cluster centre.
        wx += (cx - wx) * (std::abs(wx - cx) > cluster_r ? 0.3 : 0.0);
        wy += (cy - wy) * (std::abs(wy - cy) > cluster_r ? 0.3 : 0.0);
        wx = std::clamp(wx, 0.0, static_cast<double>(p.viewWidth - 1));
        wy = std::clamp(wy, 0.0, static_cast<double>(p.viewHeight - 1));
        triangle(draw_index, draw_count, wx, wy, texture, anchor_u,
                 anchor_v, texel_ratio, blend_draw);
    }

    ctx.advance(static_cast<double>(tris) * 12.0);  // vertex shading
}

void
GeometryPass::triangle(std::uint32_t, std::uint32_t, double cx,
                       double cy, const Surface &texture,
                       std::uint32_t anchor_u, std::uint32_t anchor_v,
                       double texel_ratio, bool blend_draw)
{
    auto &out = ctx.trace.accesses;

    // Input assembly: three indices (6 B) and ~2 new vertices.
    // Tessellator-generated triangles (every second one of a
    // tessellated draw) fetch nothing: their vertices are produced
    // by the fixed-function stage.
    const bool generated = tessellated && (triParity++ & 1);
    if (!generated) {
        ctx.rcc.vertexIndexRead(
            ctx.phys(ctx.indexBuffer.linearAddress(indexCursor)),
            ctx.cycle(), out);
        indexCursor = (indexCursor + 6) % ctx.indexBuffer.bytes();
    }

    const std::uint64_t vstride = 32;
    for (int v = 0; !generated && v < 3; ++v) {
        // Strip-like vertex id pattern: mostly marching forward,
        // occasionally re-touching a recent vertex.
        std::uint64_t vid = vertexCursor + v;
        if (ctx.rng.chance(0.6) && vertexCursor > 8)
            vid = vertexCursor - ctx.rng.below(8);
        const Addr va =
            ctx.vertexBuffer.linearAddress((vid * vstride)
                                           % ctx.vertexBuffer.bytes());
        ctx.rcc.vertexRead(ctx.phys(va), ctx.cycle(), out);
    }
    // Indexed meshes share vertices heavily: ~0.4 new vertices per
    // triangle.  Tessellator-generated triangles never consume the
    // vertex buffer, but their domain-shader vertices are still
    // shading work.
    if (ctx.rng.chance(0.4)) {
        if (!generated)
            vertexCursor += 1;
        ++ctx.trace.work.verticesShaded;
    }

    // Screen bounding box in 4x4 tiles (tessellated patches split
    // into half-area triangles).
    const double area_scale = tessellated ? 0.5 : 1.0;
    const double half = std::sqrt(ctx.app.triPixels * area_scale
                                  * (0.5 + ctx.rng.uniform()))
        * 0.7;
    const std::int64_t x0 = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(cx - half), 0, p.viewWidth - 1);
    const std::int64_t x1 = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(cx + half), 0, p.viewWidth - 1);
    const std::int64_t y0 = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(cy - half), 0, p.viewHeight - 1);
    const std::int64_t y1 = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(cy + half), 0, p.viewHeight - 1);

    const std::uint32_t t0x = static_cast<std::uint32_t>(x0 / 4);
    const std::uint32_t t1x = static_cast<std::uint32_t>(x1 / 4);
    const std::uint32_t t0y = static_cast<std::uint32_t>(y0 / 4);
    const std::uint32_t t1y = static_cast<std::uint32_t>(y1 / 4);

    for (std::uint32_t ty = t0y; ty <= t1y; ++ty) {
        for (std::uint32_t tx = t0x; tx <= t1x; ++tx) {
            // Hierarchical depth test at 8x8-pixel granularity.  The
            // HiZ surface holds one 4 B element per 4x4-pixel tile,
            // so region (rx, ry) covers HiZ elements (2rx.., 2ry..).
            // Depth buffers are fast-cleared: a region that has
            // never been touched this pass needs no HiZ read.
            const std::uint32_t rx = std::min(tx / 2, regionsX - 1);
            const std::uint32_t ry = std::min(ty / 2, regionsY - 1);
            float &rmax =
                regionMax[static_cast<std::size_t>(ry) * regionsX + rx];
            const bool region_clear =
                !regionTouched[static_cast<std::size_t>(ry) * regionsX
                               + rx];
            if (!region_clear) {
                ctx.rcc.hizAccess(
                    ctx.phys(ctx.hiz.tileAddress(tx, ty)), false,
                    ctx.cycle(), out);
                if (!blend_draw && currentDepth > rmax)
                    continue;  // whole 8x8 region occluded
            }

            // Partial triangle coverage of the tile.
            if (ctx.rng.chance(0.3))
                continue;

            // Early depth test at tile granularity (fast-cleared
            // tiles pass without reading the depth buffer).
            if (!blend_draw) {
                float &tdepth =
                    tileDepth[static_cast<std::size_t>(ty) * tilesX
                              + tx];
                if (tdepth != 1.0f) {
                    ctx.rcc.zAccess(
                        ctx.phys(ctx.depth.tileAddress(tx * 4, ty * 4)),
                        false, ctx.cycle(), out);
                    if (currentDepth >= tdepth)
                        continue;  // occluded
                }
                if (p.depthWrites) {
                    tdepth = currentDepth;
                    regionTouched[static_cast<std::size_t>(ry)
                                      * regionsX
                                  + rx] = 1;
                    updateRegionMax(rx, ry);
                    ctx.rcc.zAccess(
                        ctx.phys(ctx.depth.tileAddress(tx * 4, ty * 4)),
                        true, ctx.cycle(), out);
                    ctx.rcc.hizAccess(
                        ctx.phys(ctx.hiz.tileAddress(tx, ty)), true,
                        ctx.cycle(), out);
                }
            }

            shadeTile(tx, ty, texture, anchor_u, anchor_v,
                      texel_ratio, blend_draw);
        }
    }
}

void
GeometryPass::shadeTile(std::uint32_t tx, std::uint32_t ty,
                        const Surface &texture, std::uint32_t anchor_u,
                        std::uint32_t anchor_v, double texel_ratio,
                        bool blend_draw)
{
    auto &out = ctx.trace.accesses;
    const std::uint32_t pixels = 10;  // mean covered pixels per tile

    ctx.trace.work.pixelsShaded += pixels;
    ctx.trace.work.shaderOps += static_cast<std::uint64_t>(
        pixels * ctx.app.shaderOpsPerPixel);
    ctx.advance(pixels * ctx.app.shaderOpsPerPixel);

    // Static texture layers: affine window walk from the anchor.
    for (std::uint32_t layer = 0; layer < p.textureLayers; ++layer) {
        const std::uint32_t rel_tx = tx > clusterTx0 ? tx - clusterTx0
                                                     : 0;
        const std::uint32_t rel_ty = ty > clusterTy0 ? ty - clusterTy0
                                                     : 0;
        const std::uint32_t du = static_cast<std::uint32_t>(
            rel_tx * 4 * texel_ratio)
            + layer * 17;
        const std::uint32_t dv = static_cast<std::uint32_t>(
            rel_ty * 4 * texel_ratio);
        const std::uint32_t u = (anchor_u + du) % texture.width();
        const std::uint32_t v = (anchor_v + dv) % texture.height();
        const std::uint32_t sampler =
            samplerRR++ % ctx.rcc.texture().samplers();
        ctx.rcc.textureRead(ctx.phys(texture.tileAddress(u, v)),
                            sampler, ctx.cycle(), out);
        // Bilinear footprints spill into the neighbour block at tile
        // borders.
        if (ctx.rng.chance(0.45)) {
            ctx.rcc.textureRead(
                ctx.phys(texture.tileAddress(u + 4, v)), sampler,
                ctx.cycle(), out);
        }
        // Trilinear filtering blends in the next-coarser MIP level.
        if (trilinearNext != nullptr && ctx.rng.chance(0.2)) {
            ctx.rcc.textureRead(
                ctx.phys(trilinearNext->tileAddress(u / 2, v / 2)),
                sampler, ctx.cycle(), out);
        }
        // Tessellated draws: the domain shader samples the same
        // window as a displacement map (offset into the texture so
        // the height data does not alias the color data).
        if (tessellated && layer == 0) {
            ctx.rcc.textureRead(
                ctx.phys(texture.tileAddress(
                    (u + texture.width() / 2) % texture.width(), v)),
                sampler, ctx.cycle(), out);
            ctx.trace.work.texelRequests += pixels;
        }
        ctx.trace.work.texelRequests += pixels * 4;
    }

    // Dynamic input (shadow/environment map): each draw samples one
    // of the offscreen targets, at the screen-projected position
    // inside the consumed sub-window.
    if (!p.dynamicInputs.empty()) {
        Surface *dyn = p.dynamicInputs[dynamicRR % p.dynamicInputs
                                                       .size()];
        const double fx = static_cast<double>(tx) / tilesX;
        const double fy = static_cast<double>(ty) / tilesY;
        const double sub = std::sqrt(p.consumeFraction);
        const std::uint32_t u = static_cast<std::uint32_t>(
            fx * sub * dyn->width());
        const std::uint32_t v = static_cast<std::uint32_t>(
            fy * sub * dyn->height());
        const std::uint32_t sampler =
            samplerRR++ % ctx.rcc.texture().samplers();
        ctx.rcc.textureRead(ctx.phys(dyn->tileAddress(u, v)), sampler,
                            ctx.cycle(), out);
        ctx.trace.work.texelRequests += pixels;
    }

    // Stencil test for the passes that use it.
    if (p.stencilPass) {
        ctx.rcc.stencilAccess(
            ctx.phys(ctx.stencil.tileAddress(tx * 4, ty * 4)),
            ctx.rng.chance(0.3), ctx.cycle(), out);
    }

    // Color output through the RT cache.  Blending always reads the
    // destination first; opaque partial-tile writes to a previously
    // written tile also read-modify-write (small triangles rarely
    // cover a whole 4x4 tile).  The first write of a tile in a pass
    // is fast-cleared: no fetch.
    const Addr color_pa =
        ctx.phys(p.color->tileAddress(tx * 4, ty * 4));
    std::uint8_t &touched =
        colorTouched[static_cast<std::size_t>(ty) * tilesX + tx];
    const bool partial = ctx.rng.chance(0.65);
    if (touched && (blend_draw || partial))
        ctx.rcc.colorAccess(color_pa, false, p.colorStream,
                            ctx.cycle(), out);
    ctx.rcc.colorAccess(color_pa, true, p.colorStream, ctx.cycle(),
                        out);
    touched = 1;
}

/** Full-screen pass: sample @p input over the view, write @p output. */
void
fullScreenPass(FrameContext &ctx, Surface &input, Surface &output,
               StreamType out_stream)
{
    auto &out = ctx.trace.accesses;
    const std::uint32_t tiles_x = (output.width() + 3) / 4;
    const std::uint32_t tiles_y = (output.height() + 3) / 4;
    std::uint32_t sampler = 0;

    for (std::uint32_t ty = 0; ty < tiles_y; ++ty) {
        for (std::uint32_t tx = 0; tx < tiles_x; ++tx) {
            const std::uint32_t u = std::min(tx * 4, input.width() - 1);
            const std::uint32_t v = std::min(ty * 4, input.height() - 1);
            ctx.rcc.textureRead(ctx.phys(input.tileAddress(u, v)),
                                sampler++ % ctx.rcc.texture().samplers(),
                                ctx.cycle(), out);
            ctx.rcc.colorAccess(
                ctx.phys(output.tileAddress(tx * 4, ty * 4)), true,
                out_stream, ctx.cycle(), out);
            ctx.trace.work.pixelsShaded += 16;
            ctx.trace.work.texelRequests += 16;
            ctx.trace.work.shaderOps += 16 * 12;
            ctx.advance(16 * 12.0);
        }
    }
}

} // namespace

namespace
{

/** Render one frame's pass sequence through an existing context. */
void
renderPasses(FrameContext &ctx)
{
    const AppProfile &app = ctx.app;
    auto &out = ctx.trace.accesses;

    // 1. Offscreen producer passes (shadow / environment maps).
    for (std::uint32_t i = 0; i < app.offscreenTargets; ++i) {
        Surface &target = ctx.offscreenTargets[i];
        GeometryPassParams p;
        p.color = &target;
        p.passTriangles = std::max<std::uint32_t>(
            64, static_cast<std::uint32_t>(ctx.triangles * 0.18));
        p.textureLayers = 0;      // depth/color-only producer pass
        p.depthWrites = true;
        p.viewWidth = target.width();
        p.viewHeight = target.height();
        GeometryPass(ctx, p).run();
        ctx.rcc.passBoundary(ctx.cycle(), out);
    }

    // 2. Main geometry pass into the scene target.
    {
        GeometryPassParams p;
        p.color = &ctx.chainTargets[0];
        p.passTriangles = ctx.triangles;
        p.textureLayers = app.textureLayers;
        for (auto &t : ctx.offscreenTargets)
            p.dynamicInputs.push_back(&t);
        p.consumeFraction = app.consumeFraction;
        p.depthWrites = true;
        p.stencilPass = app.usesStencil;
        p.viewWidth = ctx.width;
        p.viewHeight = ctx.height;
        GeometryPass(ctx, p).run();
        ctx.rcc.passBoundary(ctx.cycle(), out);
    }

    // 3. Post-processing chain (ping-pong RT consumption).
    for (std::uint32_t i = 0; i < app.postChainLength; ++i) {
        fullScreenPass(ctx, ctx.chainTargets[i], ctx.chainTargets[i + 1],
                       StreamType::RenderTarget);
        ctx.rcc.passBoundary(ctx.cycle(), out);
    }

    // 4. Present: resolve the final target into the back buffer.
    fullScreenPass(ctx, ctx.chainTargets.back(), ctx.backBuffer,
                   StreamType::Display);
    ctx.rcc.frameBoundary(ctx.cycle(), out);
}

/** Fill in the work counters derived from the render caches. */
void
finalizeWork(FrameContext &ctx)
{
    ctx.trace.work.rawMemOps =
        ctx.rcc.vtxIndexStats().accesses + ctx.rcc.vertexStats().accesses
        + ctx.rcc.hizStats().accesses + ctx.rcc.zStats().accesses
        + ctx.rcc.stencilStats().accesses + ctx.rcc.rtStats().accesses;
    ctx.trace.work.issueCycles =
        static_cast<std::uint64_t>(ctx.cycleCursor) + 1;
}

} // namespace

FrameTrace
renderFrame(const AppProfile &app, std::uint32_t frame_index,
            const RenderScale &scale,
            const RenderCacheConfig &rc_config)
{
    FrameContext ctx(app, frame_index, scale, rc_config);
    renderPasses(ctx);
    finalizeWork(ctx);
    return ctx.trace;
}

FrameTrace
renderFrame(const AppProfile &app, std::uint32_t frame_index,
            const RenderScale &scale)
{
    RenderCacheConfig rc;
    return renderFrame(app, frame_index, scale,
                       rc.scaled(scale.pixelScale()));
}

FrameTrace
renderAnimation(const AppProfile &app, std::uint32_t frame_count,
                const RenderScale &scale)
{
    GLLC_ASSERT(frame_count >= 1);
    RenderCacheConfig rc;
    FrameContext ctx(app, 0, scale, rc.scaled(scale.pixelScale()));
    for (std::uint32_t f = 0; f < frame_count; ++f) {
        // Same surfaces, new camera/draw randomness: static
        // textures, depth and render targets persist across frames,
        // exposing the inter-frame reuse a single-frame study
        // cannot see.
        renderPasses(ctx);
    }
    finalizeWork(ctx);
    ctx.trace.name =
        app.name + "/anim" + std::to_string(frame_count);
    return ctx.trace;
}

} // namespace gllc
