/**
 * @file
 * On-disk frame-trace cache.
 *
 * Rendering a frame costs far more than replaying it; when the same
 * frame set is swept repeatedly (bench iteration, calibration), the
 * generated traces can be cached on disk via trace_io.  Opt-in: set
 * GLLC_TRACE_CACHE=<dir> and every harness that renders through
 * cachedRenderFrame() reuses cached traces keyed by application,
 * frame index and scale.
 */

#ifndef GLLC_WORKLOAD_TRACE_CACHE_HH
#define GLLC_WORKLOAD_TRACE_CACHE_HH

#include <string>

#include "workload/frame_renderer.hh"

namespace gllc
{

/**
 * Render a frame, using the trace cache directory if one is
 * configured (GLLC_TRACE_CACHE, or @p cache_dir when nonempty).
 * Falls back to plain rendering when caching is off; a cache miss
 * renders and then populates the cache.
 */
FrameTrace cachedRenderFrame(const AppProfile &app,
                             std::uint32_t frame_index,
                             const RenderScale &scale,
                             const std::string &cache_dir = "");

/** The cache file path a given frame would use ("" if caching off). */
std::string traceCachePath(const AppProfile &app,
                           std::uint32_t frame_index,
                           const RenderScale &scale,
                           const std::string &cache_dir = "");

} // namespace gllc

#endif // GLLC_WORKLOAD_TRACE_CACHE_HH
