/**
 * @file
 * GPU surfaces and their tiled memory layouts.
 *
 * GPUs store 2D surfaces in tiles so that a 64 B cache block holds a
 * small screen-space rectangle rather than part of a scan line
 * (cf. the 4D/6D texture tilings cited in Section 1.1.2).  We use:
 *
 *   color / depth / texture (4 B texels):   4x4-texel 64 B tiles
 *   stencil (1 B):                          8x8-pixel 64 B tiles
 *   HiZ (4 B per 8x8-pixel region):         one block per 32x8 pixels
 */

#ifndef GLLC_WORKLOAD_SURFACES_HH
#define GLLC_WORKLOAD_SURFACES_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "workload/memmap.hh"

namespace gllc
{

/** What a surface is used for (drives the access stream tagging). */
enum class SurfaceKind : std::uint8_t
{
    VertexBuffer,
    IndexBuffer,
    StaticTexture,
    RenderTarget,   ///< offscreen color target (may become a texture)
    BackBuffer,     ///< displayable color
    Depth,
    HiZ,
    StencilBuffer,
    Constants,
};

/** A 2D (or linear) surface bound into GPU memory. */
class Surface
{
  public:
    Surface() = default;

    /** Allocate a 2D surface of w x h elements of the given size. */
    static Surface
    make2D(GpuMemory &mem, SurfaceKind kind, const std::string &name,
           std::uint32_t width, std::uint32_t height,
           std::uint32_t bytes_per_element);

    /** Allocate a linear buffer of the given byte size. */
    static Surface makeLinear(GpuMemory &mem, SurfaceKind kind,
                              const std::string &name,
                              std::uint64_t bytes);

    SurfaceKind kind() const { return kind_; }
    std::uint32_t width() const { return width_; }
    std::uint32_t height() const { return height_; }
    Addr base() const { return base_; }
    std::uint64_t bytes() const { return bytes_; }
    const std::string &name() const { return name_; }

    /**
     * Virtual address of the 64 B tile containing element (x, y).
     * Coordinates are clamped to the surface, so callers can walk
     * slightly past an edge without branching.
     */
    Addr tileAddress(std::uint32_t x, std::uint32_t y) const;

    /** Virtual address of byte @p offset in a linear buffer. */
    Addr
    linearAddress(std::uint64_t offset) const
    {
        return base_ + (offset < bytes_ ? offset : bytes_ - 1);
    }

    /** Number of 64 B blocks the surface spans. */
    std::uint64_t blockCount() const { return bytes_ / kBlockBytes; }

    /** Elements per tile edge (4 for 4 B elements, 8 for 1 B). */
    std::uint32_t tileEdge() const { return tileEdge_; }

  private:
    SurfaceKind kind_ = SurfaceKind::Constants;
    std::string name_;
    Addr base_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint32_t width_ = 0;
    std::uint32_t height_ = 0;
    std::uint32_t tileEdge_ = 4;
    std::uint32_t tilesPerRow_ = 0;
};

} // namespace gllc

#endif // GLLC_WORKLOAD_SURFACES_HH
