/**
 * @file
 * GPU memory allocator with driver-style page scattering.
 *
 * Surfaces are allocated in a flat virtual space and mapped to
 * physical 4 KB pages.  Real drivers allocate physical memory in
 * small runs over time, so physically contiguous 16 KB regions
 * frequently hold pages of different surfaces (and hence different
 * streams).  Section 5.1 of the paper relies on exactly this to
 * explain why SHiP-mem's 16 KB region signatures cannot separate the
 * streams; the allocator reproduces it by handing out physical pages
 * in shuffled runs of 1-4 pages.
 */

#ifndef GLLC_WORKLOAD_MEMMAP_HH
#define GLLC_WORKLOAD_MEMMAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace gllc
{

constexpr std::uint32_t kPageBytes = 4096;
constexpr std::uint32_t kPageShift = 12;

/** Virtual-to-physical GPU memory map for one frame's surfaces. */
class GpuMemory
{
  public:
    /**
     * @param seed randomizes the physical page layout
     * @param scatter false gives an identity mapping (tests,
     *        ablations of the SHiP-mem fragmentation effect)
     */
    explicit GpuMemory(std::uint64_t seed, bool scatter = true);

    /**
     * Allocate a page-aligned virtual range.
     * @return the virtual base address
     */
    Addr allocate(std::uint64_t bytes, const std::string &label);

    /** Translate a virtual address to its physical address. */
    Addr translate(Addr vaddr) const;

    /** Total bytes allocated so far. */
    std::uint64_t allocatedBytes() const { return nextPage_ * kPageBytes; }

  private:
    /** Refill the physical free list with one shuffled arena. */
    void refill();

    bool scatter_;
    Rng rng_;
    std::uint64_t nextPage_ = 0;      ///< next virtual page
    std::uint64_t nextPhysPage_ = 0;  ///< next unscattered phys page
    std::vector<std::uint64_t> pageTable_;
    std::vector<std::uint64_t> freePhys_;
};

} // namespace gllc

#endif // GLLC_WORKLOAD_MEMMAP_HH
