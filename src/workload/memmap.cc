#include "workload/memmap.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gllc
{

GpuMemory::GpuMemory(std::uint64_t seed, bool scatter)
    : scatter_(scatter), rng_(seed)
{
}

void
GpuMemory::refill()
{
    // One arena = 4 MB carved into runs of 1-4 pages; the run order
    // is shuffled so that physically adjacent runs usually belong to
    // allocations made at different times.
    constexpr std::uint64_t kArenaPages = 1024;
    std::vector<std::vector<std::uint64_t>> runs;
    std::uint64_t page = nextPhysPage_;
    const std::uint64_t end = nextPhysPage_ + kArenaPages;
    while (page < end) {
        const std::uint64_t len =
            std::min<std::uint64_t>(1 + rng_.below(4), end - page);
        std::vector<std::uint64_t> run;
        for (std::uint64_t i = 0; i < len; ++i)
            run.push_back(page + i);
        runs.push_back(std::move(run));
        page += len;
    }
    nextPhysPage_ = end;

    // Fisher-Yates on the run order.
    for (std::size_t i = runs.size(); i > 1; --i)
        std::swap(runs[i - 1], runs[rng_.below(i)]);

    // freePhys_ is consumed from the back, so push in reverse.
    for (auto it = runs.rbegin(); it != runs.rend(); ++it)
        for (auto pit = it->rbegin(); pit != it->rend(); ++pit)
            freePhys_.push_back(*pit);
}

Addr
GpuMemory::allocate(std::uint64_t bytes, const std::string &label)
{
    GLLC_ASSERT_MSG(bytes > 0, "zero-byte allocation for %s",
                    label.c_str());
    const std::uint64_t pages = (bytes + kPageBytes - 1) / kPageBytes;
    const Addr vbase = nextPage_ << kPageShift;
    for (std::uint64_t i = 0; i < pages; ++i) {
        std::uint64_t phys;
        if (scatter_) {
            if (freePhys_.empty())
                refill();
            phys = freePhys_.back();
            freePhys_.pop_back();
        } else {
            phys = nextPhysPage_++;
        }
        pageTable_.push_back(phys);
    }
    nextPage_ += pages;
    return vbase;
}

Addr
GpuMemory::translate(Addr vaddr) const
{
    const std::uint64_t vpage = vaddr >> kPageShift;
    GLLC_ASSERT_MSG(vpage < pageTable_.size(),
                    "unmapped virtual address %llx",
                    static_cast<unsigned long long>(vaddr));
    return (pageTable_[vpage] << kPageShift)
        | (vaddr & (kPageBytes - 1));
}

} // namespace gllc
