#include "workload/trace_cache.hh"

#include <fstream>

#include "common/env.hh"
#include "trace/trace_io.hh"

namespace gllc
{

std::string
traceCachePath(const AppProfile &app, std::uint32_t frame_index,
               const RenderScale &scale, const std::string &cache_dir)
{
    const std::string dir =
        cache_dir.empty() ? envString("GLLC_TRACE_CACHE", "")
                          : cache_dir;
    if (dir.empty())
        return "";
    return dir + "/" + app.name + "_f" + std::to_string(frame_index)
        + "_s" + std::to_string(scale.linear)
        + (scale.scatterPages ? "" : "_noscatter") + ".gltrc";
}

FrameTrace
cachedRenderFrame(const AppProfile &app, std::uint32_t frame_index,
                  const RenderScale &scale,
                  const std::string &cache_dir)
{
    const std::string path =
        traceCachePath(app, frame_index, scale, cache_dir);
    if (path.empty())
        return renderFrame(app, frame_index, scale);

    // Probe without going through the fatal()-on-missing reader.
    if (std::ifstream probe(path, std::ios::binary); probe.good())
        return readTraceFile(path);

    FrameTrace trace = renderFrame(app, frame_index, scale);
    writeTraceFile(trace, path);
    return trace;
}

} // namespace gllc
