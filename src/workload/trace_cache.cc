#include "workload/trace_cache.hh"

#include <fstream>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "trace/trace_io.hh"

namespace gllc
{

std::string
traceCachePath(const AppProfile &app, std::uint32_t frame_index,
               const RenderScale &scale, const std::string &cache_dir)
{
    const std::string dir =
        cache_dir.empty() ? envString("GLLC_TRACE_CACHE", "")
                          : cache_dir;
    if (dir.empty())
        return "";
    return dir + "/" + app.name + "_f" + std::to_string(frame_index)
        + "_s" + std::to_string(scale.linear)
        + (scale.scatterPages ? "" : "_noscatter") + ".gltrc";
}

FrameTrace
cachedRenderFrame(const AppProfile &app, std::uint32_t frame_index,
                  const RenderScale &scale,
                  const std::string &cache_dir)
{
    const std::string path =
        traceCachePath(app, frame_index, scale, cache_dir);
    if (path.empty())
        return renderFrame(app, frame_index, scale);

    // A cached trace is an optimization, never a dependency: when
    // the file is missing, truncated, bit-rotten or from an old
    // format, fall back to regenerating (and refreshing the cache)
    // instead of aborting a batch run.
    if (std::ifstream probe(path, std::ios::binary); probe.good()) {
        Result<FrameTrace> cached = tryReadTraceFile(path);
        if (cached.ok())
            return cached.take();
        warn("discarding unusable cached trace: %s",
             cached.error().toString().c_str());
        if (metricsActive())
            MetricsRegistry::instance().addCounter(
                "trace.cache_discarded");
    }

    FrameTrace trace = renderFrame(app, frame_index, scale);
    // Same optimization-not-dependency rule on the write side: a
    // missing cache directory or full disk costs the speedup, not
    // the run.
    if (Result<Unit> written = tryWriteTraceFile(trace, path);
        !written.ok()) {
        warn("cannot refresh trace cache: %s",
             written.error().toString().c_str());
    }
    return trace;
}

} // namespace gllc
