#include "workload/app_profile.hh"

#include "common/logging.hh"

namespace gllc
{

namespace
{

/**
 * Build the twelve profiles.  Resolutions and DirectX versions come
 * from Table 1; the behavioural knobs are calibrated so that the
 * per-application characterization (Figures 4-9) and policy ranking
 * (Figure 12) land near the paper's.  Notable anchors:
 *  - Assassin's Creed: ~90% potential RT->TEX consumption (Fig 6),
 *    the largest GSPC gain.
 *  - Dirt: weak RT->TEX consumption, so static RT protection hurts
 *    and only GSPC's dynamic PROD/CONS management recovers it.
 *  - DMC: texture E1 death ratio above E0 (Fig 7), rewarding the
 *    epoch-aware TSE policy.
 *  - HAWX / Stalker COP: lighter texture load, so the displayable
 *    color stream is a comparatively large fraction and UCD shows
 *    visible gains.
 *  - Heaven: 2560x1600 with a huge texture working set; every
 *    policy is capacity-starved and gains are smallest.
 */
std::vector<AppProfile>
buildApps()
{
    std::vector<AppProfile> apps;

    {
        AppProfile a;
        a.name = "3DMarkVAGT1";
        a.directxVersion = 10;
        a.width = 1920;
        a.height = 1200;
        a.frames = 4;
        a.seed = 0x3d01;
        a.triangles = 700000;
        a.triPixels = 9.0;
        a.frontToBack = 0.55;
        a.textureCount = 72;
        a.textureEdge = 1024;
        a.textureLayers = 2;
        a.anchorsPerTexture = 10;
        a.offscreenTargets = 3;
        a.offscreenScale = 0.85;
        a.consumeFraction = 0.6;
        a.postChainLength = 3;
        a.blendFraction = 0.3;
        a.shaderOpsPerPixel = 110.0;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "3DMarkVAGT2";
        a.directxVersion = 10;
        a.width = 1920;
        a.height = 1200;
        a.frames = 4;
        a.seed = 0x3d02;
        a.triangles = 800000;
        a.triPixels = 8.0;
        a.frontToBack = 0.5;
        a.textureCount = 80;
        a.textureEdge = 1024;
        a.textureLayers = 2;
        a.anchorsPerTexture = 11;
        a.offscreenTargets = 3;
        a.offscreenScale = 0.9;
        a.consumeFraction = 0.55;
        a.postChainLength = 3;
        a.blendFraction = 0.35;
        a.shaderOpsPerPixel = 120.0;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "AssnCreed";
        a.directxVersion = 10;
        a.width = 1680;
        a.height = 1050;
        a.frames = 5;
        a.seed = 0xac;
        a.triangles = 550000;
        a.triPixels = 8.0;
        a.frontToBack = 0.65;
        a.textureCount = 48;
        a.textureEdge = 1024;
        a.textureLayers = 2;
        a.anchorsPerTexture = 7;
        a.offscreenTargets = 3;
        a.offscreenScale = 1.0;
        a.consumeFraction = 0.95;
        a.postChainLength = 3;
        a.blendFraction = 0.25;
        a.shaderOpsPerPixel = 95.0;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "BioShock";
        a.directxVersion = 10;
        a.width = 1920;
        a.height = 1200;
        a.frames = 4;
        a.seed = 0xb10;
        a.triangles = 500000;
        a.triPixels = 10.0;
        a.frontToBack = 0.6;
        a.textureCount = 56;
        a.textureEdge = 1024;
        a.textureLayers = 2;
        a.anchorsPerTexture = 13;
        a.offscreenTargets = 2;
        a.offscreenScale = 0.8;
        a.consumeFraction = 0.5;
        a.postChainLength = 2;
        a.blendFraction = 0.3;
        a.usesStencil = true;
        a.shaderOpsPerPixel = 90.0;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "DMC";
        a.directxVersion = 10;
        a.width = 1680;
        a.height = 1050;
        a.frames = 5;
        a.seed = 0xd3c;
        a.triangles = 450000;
        a.triPixels = 9.0;
        a.frontToBack = 0.45;
        a.textureCount = 40;
        a.textureEdge = 1024;
        a.textureLayers = 3;
        // Tight anchors: first reuse is common (E0 hits) but the
        // window pairs rarely overlap a third time, pushing the E1
        // death ratio above E0 as in Figure 7.
        a.anchorsPerTexture = 5;
        a.offscreenTargets = 2;
        a.offscreenScale = 0.8;
        a.consumeFraction = 0.45;
        a.postChainLength = 4;
        a.blendFraction = 0.4;
        a.shaderOpsPerPixel = 100.0;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "Civilization";
        a.directxVersion = 11;
        a.width = 1920;
        a.height = 1200;
        a.frames = 4;
        a.seed = 0xc117;
        a.triangles = 900000;
        a.triPixels = 6.0;
        a.frontToBack = 0.5;
        a.textureCount = 96;
        a.textureEdge = 512;
        a.textureLayers = 2;
        a.anchorsPerTexture = 8;
        a.offscreenTargets = 2;
        a.offscreenScale = 0.8;
        a.consumeFraction = 0.6;
        a.postChainLength = 2;
        a.blendFraction = 0.3;
        a.tessellatedDraws = 0.15;
        a.shaderOpsPerPixel = 80.0;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "Dirt";
        a.directxVersion = 11;
        a.width = 1680;
        a.height = 1050;
        a.frames = 4;
        a.seed = 0xd127;
        a.triangles = 650000;
        a.triPixels = 8.0;
        a.frontToBack = 0.7;
        a.textureCount = 64;
        a.textureEdge = 1024;
        a.textureLayers = 2;
        a.anchorsPerTexture = 14;
        // Produces several offscreen targets but samples almost
        // none of them back: static RT protection only pollutes.
        a.offscreenTargets = 3;
        a.offscreenScale = 0.9;
        a.consumeFraction = 0.08;
        a.postChainLength = 2;
        a.blendFraction = 0.3;
        a.tessellatedDraws = 0.1;
        a.shaderOpsPerPixel = 95.0;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "HAWX";
        a.directxVersion = 11;
        a.width = 1920;
        a.height = 1200;
        a.frames = 4;
        a.seed = 0x4a3c;
        a.triangles = 350000;
        a.triPixels = 12.0;
        a.frontToBack = 0.75;
        a.textureCount = 32;
        a.textureEdge = 1024;
        a.textureLayers = 1;
        a.anchorsPerTexture = 9;
        a.offscreenTargets = 2;
        a.offscreenScale = 0.7;
        a.consumeFraction = 0.5;
        a.postChainLength = 2;
        a.blendFraction = 0.2;
        a.tessellatedDraws = 0.15;
        a.shaderOpsPerPixel = 70.0;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "Heaven";
        a.directxVersion = 11;
        a.width = 2560;
        a.height = 1600;
        a.frames = 5;
        a.seed = 0x6ea7;
        a.triangles = 1400000;
        a.triPixels = 7.0;
        a.frontToBack = 0.5;
        a.textureCount = 112;
        a.textureEdge = 1024;
        a.textureLayers = 3;
        a.anchorsPerTexture = 15;
        a.offscreenTargets = 2;
        a.offscreenScale = 0.85;
        a.consumeFraction = 0.45;
        a.postChainLength = 3;
        a.blendFraction = 0.35;
        a.tessellatedDraws = 0.35;
        a.shaderOpsPerPixel = 130.0;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "LostPlanet";
        a.directxVersion = 11;
        a.width = 1920;
        a.height = 1200;
        a.frames = 5;
        a.seed = 0x105e;
        a.triangles = 600000;
        a.triPixels = 9.0;
        a.frontToBack = 0.5;
        a.textureCount = 56;
        a.textureEdge = 1024;
        a.textureLayers = 3;
        a.anchorsPerTexture = 6;
        a.offscreenTargets = 3;
        a.offscreenScale = 0.9;
        a.consumeFraction = 0.7;
        a.postChainLength = 3;
        a.blendFraction = 0.4;
        a.tessellatedDraws = 0.15;
        a.shaderOpsPerPixel = 105.0;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "StalkerCOP";
        a.directxVersion = 11;
        a.width = 1680;
        a.height = 1050;
        a.frames = 4;
        a.seed = 0x57a1;
        a.triangles = 500000;
        a.triPixels = 9.0;
        a.frontToBack = 0.6;
        a.textureCount = 48;
        a.textureEdge = 1024;
        a.textureLayers = 2;
        a.anchorsPerTexture = 10;
        a.offscreenTargets = 2;
        a.offscreenScale = 0.85;
        a.consumeFraction = 0.55;
        a.postChainLength = 2;
        a.blendFraction = 0.3;
        a.usesStencil = true;
        a.tessellatedDraws = 0.1;
        a.shaderOpsPerPixel = 85.0;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "Unigine";
        a.directxVersion = 11;
        a.width = 1920;
        a.height = 1200;
        a.frames = 4;
        a.seed = 0x0921;
        a.triangles = 750000;
        a.triPixels = 8.0;
        a.frontToBack = 0.55;
        a.textureCount = 72;
        a.textureEdge = 1024;
        a.textureLayers = 2;
        a.anchorsPerTexture = 12;
        a.offscreenTargets = 3;
        a.offscreenScale = 0.9;
        a.consumeFraction = 0.5;
        a.postChainLength = 3;
        a.blendFraction = 0.3;
        a.tessellatedDraws = 0.3;
        a.shaderOpsPerPixel = 115.0;
        apps.push_back(a);
    }

    std::uint32_t total = 0;
    for (const auto &a : apps)
        total += a.frames;
    GLLC_ASSERT_MSG(total == 52, "frame set has %u frames, want 52",
                    total);
    return apps;
}

} // namespace

const std::vector<AppProfile> &
paperApps()
{
    static const std::vector<AppProfile> apps = buildApps();
    return apps;
}

const AppProfile &
findApp(const std::string &name)
{
    for (const AppProfile &a : paperApps()) {
        if (a.name == name)
            return a;
    }
    fatal("unknown application \"%s\"", name.c_str());
}

} // namespace gllc
