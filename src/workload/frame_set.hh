/**
 * @file
 * The 52-frame evaluation set (Section 4).
 */

#ifndef GLLC_WORKLOAD_FRAME_SET_HH
#define GLLC_WORKLOAD_FRAME_SET_HH

#include <cstdint>
#include <vector>

#include "workload/app_profile.hh"
#include "workload/frame_renderer.hh"

namespace gllc
{

/** One frame to render: an application plus a frame index. */
struct FrameSpec
{
    const AppProfile *app = nullptr;
    std::uint32_t frameIndex = 0;
};

/**
 * The full 52-frame set: every application of Table 1 with its
 * per-application frame count.
 */
std::vector<FrameSpec> paperFrameSet();

/**
 * Frame set truncated per the GLLC_FRAMES environment variable
 * (<= 0 or unset keeps all 52), with frames drawn round-robin across
 * applications so a truncated run still spans every title.
 */
std::vector<FrameSpec> frameSetFromEnv();

/** RenderScale from the GLLC_SCALE environment variable (default 4). */
RenderScale scaleFromEnv();

} // namespace gllc

#endif // GLLC_WORKLOAD_FRAME_SET_HH
