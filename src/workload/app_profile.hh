/**
 * @file
 * Application profiles for the twelve DirectX workloads of Table 1.
 *
 * We cannot redistribute DirectX captures of the commercial titles,
 * so each application is modelled by a parameterized multi-pass
 * frame renderer (frame_renderer.hh).  The knobs below control the
 * properties the LLC policies are sensitive to: the stream mix, the
 * far-flung intra-stream texture reuse (epoch structure of Figure
 * 7), the render-target-to-texture consumption topology (Figure 6)
 * and the displayable-color share.  DESIGN.md documents the
 * substitution; EXPERIMENTS.md compares the resulting
 * characterization with the paper's.
 */

#ifndef GLLC_WORKLOAD_APP_PROFILE_HH
#define GLLC_WORKLOAD_APP_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gllc
{

/** Workload knobs for one application (values at full resolution). */
struct AppProfile
{
    std::string name;
    int directxVersion = 10;
    std::uint32_t width = 1920;
    std::uint32_t height = 1200;

    /** Frames captured from this title (the 12 apps sum to 52). */
    std::uint32_t frames = 4;

    /** Base seed; frame i uses seed ^ f(i). */
    std::uint64_t seed = 1;

    /// @name Geometry
    /// @{
    std::uint32_t triangles = 600000;  ///< main-pass triangles
    double triPixels = 9.0;            ///< mean triangle area (px)
    double frontToBack = 0.6;          ///< draw sorting quality [0,1]
    double trisPerDraw = 180.0;

    /**
     * Fraction of draws using the DirectX 11 tessellation stages
     * (hull shader / tessellator / domain shader, Section 2.1): the
     * patch expands into finer on-chip triangles (no vertex-buffer
     * traffic for the generated vertices) whose domain shader
     * samples a displacement map.  Zero for DirectX 10 titles.
     */
    double tessellatedDraws = 0.0;
    /// @}

    /// @name Static texturing
    /// @{
    std::uint32_t textureCount = 64;
    std::uint32_t textureEdge = 1024;   ///< square texture edge (texels)
    double zipfTheta = 0.6;             ///< texture popularity skew
    std::uint32_t textureLayers = 2;    ///< layers sampled per draw
    std::uint32_t anchorsPerTexture = 24;  ///< fewer => more reuse
    /// @}

    /// @name Dynamic texturing (render-to-texture)
    /// @{
    std::uint32_t offscreenTargets = 2;  ///< producer passes
    double offscreenScale = 0.5;         ///< target edge / screen edge
    double consumeFraction = 0.5;        ///< map area sampled later
    std::uint32_t postChainLength = 2;   ///< full-screen post passes
    /// @}

    /// @name Raster behaviour
    /// @{
    double blendFraction = 0.15;  ///< transparent draw fraction
    bool usesStencil = false;
    /** Probability a draw's mesh sits in the scene's focus region. */
    double clusterFocus = 0.55;
    /// @}

    /// @name Shading / misc
    /// @{
    double shaderOpsPerPixel = 90.0;
    double otherBlocksPerDraw = 4.0;  ///< constants/shader-code reads
    /// @}
};

/** The twelve applications of Table 1 with calibrated knobs. */
const std::vector<AppProfile> &paperApps();

/** Look up a paper application by (abbreviated) name. */
const AppProfile &findApp(const std::string &name);

} // namespace gllc

#endif // GLLC_WORKLOAD_APP_PROFILE_HH
