#include "workload/surfaces.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gllc
{

namespace
{

/** Tile edge in elements for a given element size (64 B tiles). */
std::uint32_t
tileEdgeFor(std::uint32_t bytes_per_element)
{
    switch (bytes_per_element) {
      case 1:
        return 8;   // 8x8 x 1 B
      case 4:
        return 4;   // 4x4 x 4 B
      default:
        GLLC_ASSERT_MSG(false, "unsupported element size %u",
                        bytes_per_element);
        return 0;
    }
}

} // namespace

Surface
Surface::make2D(GpuMemory &mem, SurfaceKind kind, const std::string &name,
                std::uint32_t width, std::uint32_t height,
                std::uint32_t bytes_per_element)
{
    GLLC_ASSERT(width > 0 && height > 0);
    Surface s;
    s.kind_ = kind;
    s.name_ = name;
    s.width_ = width;
    s.height_ = height;
    s.tileEdge_ = tileEdgeFor(bytes_per_element);
    s.tilesPerRow_ = (width + s.tileEdge_ - 1) / s.tileEdge_;
    const std::uint32_t tile_rows =
        (height + s.tileEdge_ - 1) / s.tileEdge_;
    s.bytes_ = static_cast<std::uint64_t>(s.tilesPerRow_) * tile_rows
        * kBlockBytes;
    s.base_ = mem.allocate(s.bytes_, name);
    return s;
}

Surface
Surface::makeLinear(GpuMemory &mem, SurfaceKind kind,
                    const std::string &name, std::uint64_t bytes)
{
    Surface s;
    s.kind_ = kind;
    s.name_ = name;
    s.bytes_ = (bytes + kBlockBytes - 1) / kBlockBytes * kBlockBytes;
    s.base_ = mem.allocate(s.bytes_, name);
    s.width_ = static_cast<std::uint32_t>(s.bytes_);
    s.height_ = 1;
    return s;
}

Addr
Surface::tileAddress(std::uint32_t x, std::uint32_t y) const
{
    x = std::min(x, width_ - 1);
    y = std::min(y, height_ - 1);
    const std::uint32_t tx = x / tileEdge_;
    const std::uint32_t ty = y / tileEdge_;
    return base_
        + (static_cast<std::uint64_t>(ty) * tilesPerRow_ + tx)
            * kBlockBytes;
}

} // namespace gllc
