/**
 * @file
 * Direct3D-style frame renderer producing LLC access traces.
 *
 * Models the pipeline of Section 2.1 in enough detail to reproduce
 * the LLC-visible behaviour of a rendered frame:
 *
 *   1. offscreen producer passes (shadow maps, environment maps)
 *      render geometry into offscreen render targets;
 *   2. the main geometry pass rasterizes the scene into the scene
 *      color target with hierarchical-Z and early-Z, samples static
 *      MIP-style textures and the offscreen targets (dynamic
 *      texturing = the RT->TEX inter-stream reuse of Figure 6);
 *   3. a post-processing chain of full-screen passes, each consuming
 *      the previous color target as a texture and writing the next;
 *   4. the present pass resolves the final target into the back
 *      buffer, emitting the displayable color stream.
 *
 * All memory traffic flows through the render-cache complex
 * (rcache/), so the produced FrameTrace contains exactly the render
 * cache misses and writebacks: the LLC access streams.
 */

#ifndef GLLC_WORKLOAD_FRAME_RENDERER_HH
#define GLLC_WORKLOAD_FRAME_RENDERER_HH

#include <cstdint>

#include "rcache/render_caches.hh"
#include "trace/frame_trace.hh"
#include "workload/app_profile.hh"

namespace gllc
{

/** Linear scale divisor applied to the whole machine (DESIGN.md §2). */
struct RenderScale
{
    /** Resolution divisor per axis; pixel counts shrink by scale^2. */
    std::uint32_t linear = 4;

    /**
     * Scatter surface pages across physical memory (the driver
     * fragmentation model; see workload/memmap.hh).  Disabled only
     * by the SHiP-mem region-purity ablation.
     */
    bool scatterPages = true;

    std::uint32_t pixelScale() const { return linear * linear; }
};

/**
 * Render one frame of an application.
 *
 * @param app workload profile (full-resolution knobs)
 * @param frame_index which captured frame (varies seed and camera)
 * @param scale machine/resolution scale
 * @param rc_config render caches to filter through (already scaled)
 */
FrameTrace renderFrame(const AppProfile &app, std::uint32_t frame_index,
                       const RenderScale &scale,
                       const RenderCacheConfig &rc_config);

/** renderFrame with render caches scaled to match @p scale. */
FrameTrace renderFrame(const AppProfile &app, std::uint32_t frame_index,
                       const RenderScale &scale);

/**
 * Render @p frame_count consecutive frames of an animation into one
 * trace.  Surfaces persist across frames (static textures, depth and
 * render targets keep their addresses), exposing the inter-frame
 * reuse a single-frame study cannot capture — an extension beyond
 * the paper's per-frame methodology (see bench/ext_animation).
 */
FrameTrace renderAnimation(const AppProfile &app,
                           std::uint32_t frame_count,
                           const RenderScale &scale);

} // namespace gllc

#endif // GLLC_WORKLOAD_FRAME_RENDERER_HH
