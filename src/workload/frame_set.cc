#include "workload/frame_set.hh"

#include <algorithm>

#include "common/env.hh"
#include "common/logging.hh"

namespace gllc
{

std::vector<FrameSpec>
paperFrameSet()
{
    std::vector<FrameSpec> frames;
    for (const AppProfile &app : paperApps()) {
        for (std::uint32_t f = 0; f < app.frames; ++f)
            frames.push_back(FrameSpec{&app, f});
    }
    GLLC_ASSERT(frames.size() == 52);
    return frames;
}

std::vector<FrameSpec>
frameSetFromEnv()
{
    const auto limit = envInt("GLLC_FRAMES", 0);
    std::vector<FrameSpec> all = paperFrameSet();
    if (limit <= 0 || static_cast<std::size_t>(limit) >= all.size())
        return all;

    // Round-robin over applications: frame 0 of every app first.
    std::stable_sort(all.begin(), all.end(),
                     [](const FrameSpec &a, const FrameSpec &b) {
                         return a.frameIndex < b.frameIndex;
                     });
    all.resize(static_cast<std::size_t>(limit));
    return all;
}

RenderScale
scaleFromEnv()
{
    RenderScale scale;
    const auto s = envInt("GLLC_SCALE", 4);
    if (s < 1 || s > 16)
        fatal("GLLC_SCALE=%lld out of range [1,16]",
              static_cast<long long>(s));
    scale.linear = static_cast<std::uint32_t>(s);
    return scale;
}

} // namespace gllc
