#include "service/result_store.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

namespace gllc
{

namespace
{

/** mkdir -p: create @p dir and any missing parents. */
bool
makeDirs(const std::string &dir)
{
    std::string partial;
    std::size_t pos = 0;
    while (pos <= dir.size()) {
        const std::size_t slash = dir.find('/', pos);
        const std::size_t end =
            slash == std::string::npos ? dir.size() : slash;
        partial.assign(dir, 0, end);
        pos = end + 1;
        if (partial.empty())
            continue;
        if (::mkdir(partial.c_str(), 0755) != 0
            && errno != EEXIST)
            return false;
    }
    return true;
}

std::string
keyFileName(const ResultKey &key)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "tr%016" PRIx64 "-sp%016" PRIx64 ".json",
                  key.traceHash, key.specHash);
    return buf;
}

} // namespace

ResultStore::ResultStore(std::string root) : root_(std::move(root))
{
}

std::string
ResultStore::path(const ResultKey &key) const
{
    if (root_.empty())
        return "";
    return root_ + "/" + keyFileName(key);
}

bool
ResultStore::contains(const ResultKey &key) const
{
    if (root_.empty())
        return false;
    struct stat st;
    return ::stat(path(key).c_str(), &st) == 0;
}

Result<std::string>
ResultStore::load(const ResultKey &key) const
{
    if (root_.empty())
        return Error(ErrorCode::Io, "result store disabled");
    std::ifstream is(path(key), std::ios::binary);
    if (!is)
        return Error::format(ErrorCode::Io, "no stored result at %s",
                             path(key).c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    if (!is.good() && !is.eof())
        return Error::format(ErrorCode::Io, "read failed on %s",
                             path(key).c_str());
    return buf.str();
}

Result<Unit>
ResultStore::store(const ResultKey &key, const std::string &payload)
{
    if (root_.empty())
        return Unit{};
    if (!makeDirs(root_))
        return Error::format(ErrorCode::Io,
                             "cannot create store dir %s: %s",
                             root_.c_str(), std::strerror(errno));
    const std::string final_path = path(key);
    const std::string tmp_path =
        final_path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream os(tmp_path, std::ios::binary);
        if (!os)
            return Error::format(ErrorCode::Io,
                                 "cannot write %s: %s",
                                 tmp_path.c_str(),
                                 std::strerror(errno));
        os << payload;
        if (!os.good())
            return Error::format(ErrorCode::Io, "write failed on %s",
                                 tmp_path.c_str());
    }
    if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        const Error err = Error::format(
            ErrorCode::Io, "rename %s -> %s failed: %s",
            tmp_path.c_str(), final_path.c_str(),
            std::strerror(errno));
        ::unlink(tmp_path.c_str());
        return err;
    }
    return Unit{};
}

} // namespace gllc
