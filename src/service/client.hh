/**
 * @file
 * Client side of the gllcd protocol: connect, submit, status.
 *
 * A thin, synchronous wrapper over the framed protocol — one
 * connection, sequential requests.  Submit blocks until the daemon
 * answers (jobs can run for minutes; the socket is the natural
 * place to wait) and hands back the exact report bytes the daemon
 * serves, plus the result header describing where they came from
 * (fresh run vs. result store, quarantine count).
 */

#ifndef GLLC_SERVICE_CLIENT_HH
#define GLLC_SERVICE_CLIENT_HH

#include <string>

#include "analysis/job_spec.hh"
#include "service/protocol.hh"

namespace gllc
{

/** What a submit yielded. */
struct SubmitOutcome
{
    ResultHeader header;

    /** Exact writeSweepJson() bytes of the result. */
    std::string payload;
};

/** One connection to a gllcd daemon. */
class ServiceClient
{
  public:
    /** Connect over a Unix-domain socket. */
    [[nodiscard]] static Result<ServiceClient>
    connectUnix(const std::string &path);

    /** Connect to a loopback TCP port. */
    [[nodiscard]] static Result<ServiceClient>
    connectTcp(int port);

    ~ServiceClient();

    ServiceClient(ServiceClient &&other) noexcept;
    ServiceClient &operator=(ServiceClient &&other) noexcept;
    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * Submit a job and wait for its result.  Daemon-side failures
     * (invalid spec, execution failure) come back as the daemon's
     * typed Error; transport failures as Io/Truncated.  A daemon
     * shedding load answers with an Overloaded error; when @p shed
     * is non-null it also receives the typed reason and the
     * daemon's retry-after hint, so callers can back off smartly.
     */
    [[nodiscard]] Result<SubmitOutcome>
    submit(const SweepJobSpec &spec,
           const std::string &tenant = "default",
           int priority = 0, ShedInfo *shed = nullptr);

    /** Fetch the daemon's status document (raw JSON). */
    [[nodiscard]] Result<std::string> status();

    /**
     * Fetch the telemetry status document (raw JSON): queue depth
     * per priority class, counters, latency quantiles — what
     * gllc-top renders.
     */
    [[nodiscard]] Result<std::string> statusV2();

  private:
    explicit ServiceClient(int fd) : fd_(fd) {}

    int fd_ = -1;
};

} // namespace gllc

#endif // GLLC_SERVICE_CLIENT_HH
