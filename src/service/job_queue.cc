#include "service/job_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gllc
{

void
JobQueue::configureLimits(QueueLimits limits)
{
    MutexLock lock(mutex_);
    limits_ = limits;
}

JobQueue::PushOutcome
JobQueue::push(QueuedJob job)
{
    {
        MutexLock lock(mutex_);
        if (closed_)
            return PushOutcome::Closed;
        if (limits_.maxDepth != 0 && depth_ >= limits_.maxDepth)
            return PushOutcome::QueueFull;
        if (limits_.tenantQuota != 0) {
            const auto td = tenantDepth_.find(job.tenant);
            if (td != tenantDepth_.end()
                && td->second >= limits_.tenantQuota)
                return PushOutcome::TenantQuotaExceeded;
        }
        PriorityClass &cls = classes_[job.priority];
        auto lane = cls.lanes.find(job.tenant);
        if (lane == cls.lanes.end()) {
            cls.rotation.push_back(job.tenant);
            lane = cls.lanes.emplace(job.tenant,
                                     std::deque<QueuedJob>{})
                       .first;
        }
        ++tenantDepth_[job.tenant];
        lane->second.push_back(std::move(job));
        ++depth_;
    }
    available_.notifyOne();
    return PushOutcome::Ok;
}

void
JobQueue::releaseTenantLocked(const std::string &tenant)
{
    const auto td = tenantDepth_.find(tenant);
    GLLC_ASSERT_MSG(td != tenantDepth_.end() && td->second > 0,
                    "tenant depth underflow");
    if (--td->second == 0)
        tenantDepth_.erase(td);
}

bool
JobQueue::cancel(std::uint64_t id)
{
    MutexLock lock(mutex_);
    for (auto cls_it = classes_.begin(); cls_it != classes_.end();
         ++cls_it) {
        PriorityClass &cls = cls_it->second;
        for (auto lane = cls.lanes.begin();
             lane != cls.lanes.end(); ++lane) {
            auto &jobs = lane->second;
            for (auto it = jobs.begin(); it != jobs.end(); ++it) {
                if (it->id != id)
                    continue;
                const std::string tenant = lane->first;
                jobs.erase(it);
                releaseTenantLocked(tenant);
                --depth_;
                if (jobs.empty()) {
                    // An empty lane must leave the rotation too, or
                    // a later pop asserts on a tenant with no work.
                    cls.lanes.erase(lane);
                    auto rot = std::find(cls.rotation.begin(),
                                         cls.rotation.end(),
                                         tenant);
                    GLLC_ASSERT_MSG(
                        rot != cls.rotation.end(),
                        "cancelled tenant missing from rotation");
                    cls.rotation.erase(rot);
                    if (cls.lanes.empty())
                        classes_.erase(cls_it);
                }
                return true;
            }
        }
    }
    return false;
}

bool
JobQueue::popLocked(QueuedJob &out)
{
    if (classes_.empty())
        return false;
    auto cls_it = classes_.begin();  // highest priority
    PriorityClass &cls = cls_it->second;
    GLLC_ASSERT_MSG(!cls.rotation.empty(),
                    "priority class without tenants");

    const std::string tenant = cls.rotation.front();
    cls.rotation.erase(cls.rotation.begin());
    auto lane = cls.lanes.find(tenant);
    GLLC_ASSERT_MSG(lane != cls.lanes.end() && !lane->second.empty(),
                    "rotation names an empty tenant lane");
    out = std::move(lane->second.front());
    lane->second.pop_front();
    releaseTenantLocked(tenant);
    if (lane->second.empty())
        cls.lanes.erase(lane);
    else
        cls.rotation.push_back(tenant);  // take a later turn
    if (cls.lanes.empty())
        classes_.erase(cls_it);
    --depth_;
    return true;
}

bool
JobQueue::pop(QueuedJob &out)
{
    MutexLock lock(mutex_);
    return popLocked(out);
}

bool
JobQueue::waitPop(QueuedJob &out)
{
    MutexLock lock(mutex_);
    while (!closed_ && depth_ == 0)
        available_.wait(mutex_);
    if (closed_)
        return false;
    return popLocked(out);
}

void
JobQueue::close()
{
    {
        MutexLock lock(mutex_);
        closed_ = true;
    }
    available_.notifyAll();
}

std::size_t
JobQueue::depth() const
{
    MutexLock lock(mutex_);
    return depth_;
}

std::vector<std::pair<int, std::size_t>>
JobQueue::classDepths() const
{
    std::vector<std::pair<int, std::size_t>> out;
    MutexLock lock(mutex_);
    out.reserve(classes_.size());
    for (const auto &[priority, cls] : classes_) {
        std::size_t depth = 0;
        for (const auto &[tenant, lane] : cls.lanes)
            depth += lane.size();
        out.emplace_back(priority, depth);
    }
    return out;
}

} // namespace gllc
