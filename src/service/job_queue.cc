#include "service/job_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gllc
{

bool
JobQueue::push(QueuedJob job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return false;
        PriorityClass &cls = classes_[job.priority];
        auto lane = cls.lanes.find(job.tenant);
        if (lane == cls.lanes.end()) {
            cls.rotation.push_back(job.tenant);
            lane = cls.lanes.emplace(job.tenant,
                                     std::deque<QueuedJob>{})
                       .first;
        }
        lane->second.push_back(std::move(job));
        ++depth_;
    }
    available_.notify_one();
    return true;
}

bool
JobQueue::popLocked(QueuedJob &out)
{
    if (classes_.empty())
        return false;
    auto cls_it = classes_.begin();  // highest priority
    PriorityClass &cls = cls_it->second;
    GLLC_ASSERT_MSG(!cls.rotation.empty(),
                    "priority class without tenants");

    const std::string tenant = cls.rotation.front();
    cls.rotation.erase(cls.rotation.begin());
    auto lane = cls.lanes.find(tenant);
    GLLC_ASSERT_MSG(lane != cls.lanes.end() && !lane->second.empty(),
                    "rotation names an empty tenant lane");
    out = std::move(lane->second.front());
    lane->second.pop_front();
    if (lane->second.empty())
        cls.lanes.erase(lane);
    else
        cls.rotation.push_back(tenant);  // take a later turn
    if (cls.lanes.empty())
        classes_.erase(cls_it);
    --depth_;
    return true;
}

bool
JobQueue::pop(QueuedJob &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return popLocked(out);
}

bool
JobQueue::waitPop(QueuedJob &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    available_.wait(lock,
                    [this] { return closed_ || depth_ > 0; });
    if (closed_)
        return false;
    return popLocked(out);
}

void
JobQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    available_.notify_all();
}

std::size_t
JobQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return depth_;
}

} // namespace gllc
