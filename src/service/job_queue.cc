#include "service/job_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gllc
{

bool
JobQueue::push(QueuedJob job)
{
    {
        MutexLock lock(mutex_);
        if (closed_)
            return false;
        PriorityClass &cls = classes_[job.priority];
        auto lane = cls.lanes.find(job.tenant);
        if (lane == cls.lanes.end()) {
            cls.rotation.push_back(job.tenant);
            lane = cls.lanes.emplace(job.tenant,
                                     std::deque<QueuedJob>{})
                       .first;
        }
        lane->second.push_back(std::move(job));
        ++depth_;
    }
    available_.notifyOne();
    return true;
}

bool
JobQueue::popLocked(QueuedJob &out)
{
    if (classes_.empty())
        return false;
    auto cls_it = classes_.begin();  // highest priority
    PriorityClass &cls = cls_it->second;
    GLLC_ASSERT_MSG(!cls.rotation.empty(),
                    "priority class without tenants");

    const std::string tenant = cls.rotation.front();
    cls.rotation.erase(cls.rotation.begin());
    auto lane = cls.lanes.find(tenant);
    GLLC_ASSERT_MSG(lane != cls.lanes.end() && !lane->second.empty(),
                    "rotation names an empty tenant lane");
    out = std::move(lane->second.front());
    lane->second.pop_front();
    if (lane->second.empty())
        cls.lanes.erase(lane);
    else
        cls.rotation.push_back(tenant);  // take a later turn
    if (cls.lanes.empty())
        classes_.erase(cls_it);
    --depth_;
    return true;
}

bool
JobQueue::pop(QueuedJob &out)
{
    MutexLock lock(mutex_);
    return popLocked(out);
}

bool
JobQueue::waitPop(QueuedJob &out)
{
    MutexLock lock(mutex_);
    while (!closed_ && depth_ == 0)
        available_.wait(mutex_);
    if (closed_)
        return false;
    return popLocked(out);
}

void
JobQueue::close()
{
    {
        MutexLock lock(mutex_);
        closed_ = true;
    }
    available_.notifyAll();
}

std::size_t
JobQueue::depth() const
{
    MutexLock lock(mutex_);
    return depth_;
}

std::vector<std::pair<int, std::size_t>>
JobQueue::classDepths() const
{
    std::vector<std::pair<int, std::size_t>> out;
    MutexLock lock(mutex_);
    out.reserve(classes_.size());
    for (const auto &[priority, cls] : classes_) {
        std::size_t depth = 0;
        for (const auto &[tenant, lane] : cls.lanes)
            depth += lane.size();
        out.emplace_back(priority, depth);
    }
    return out;
}

} // namespace gllc
