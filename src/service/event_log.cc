#include "service/event_log.hh"

#include <chrono>
#include <cstdio>

#include "common/json.hh"

namespace gllc
{

namespace
{

/** Deterministic double rendering (matches the metrics exporter). */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

ServiceEvent::ServiceEvent(const char *type)
{
    fields_ = ", \"event\": \"";
    fields_ += type;
    fields_ += "\"";
}

ServiceEvent &
ServiceEvent::str(const char *key, const std::string &value)
{
    fields_ += ", \"";
    fields_ += key;
    fields_ += "\": \"";
    fields_ += jsonEscape(value);
    fields_ += "\"";
    return *this;
}

ServiceEvent &
ServiceEvent::num(const char *key, std::int64_t value)
{
    fields_ += ", \"";
    fields_ += key;
    fields_ += "\": ";
    fields_ += std::to_string(value);
    return *this;
}

ServiceEvent &
ServiceEvent::dbl(const char *key, double value)
{
    fields_ += ", \"";
    fields_ += key;
    fields_ += "\": ";
    fields_ += fmtDouble(value);
    return *this;
}

Result<Unit>
ServiceEventLog::open(const std::string &path)
{
    if (path.empty())
        return Unit{};
    MutexLock lock(mutex_);
    os_.open(path, std::ios::app);
    if (!os_) {
        return Error::format(ErrorCode::Io,
                             "cannot open event log %s", path.c_str());
    }
    active_.store(true, std::memory_order_relaxed);
    return Unit{};
}

void
ServiceEventLog::emit(const ServiceEvent &event)
{
    if (!active())
        return;
    const auto now_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    MutexLock lock(mutex_);
    os_ << "{\"schema\": \"gllcd-events-v1\", \"ts_ms\": " << now_ms
        << event.fields_ << "}\n";
    os_.flush();
}

} // namespace gllc
