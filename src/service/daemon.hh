/**
 * @file
 * gllcd: the sharded sweep service.
 *
 * One daemon process owns listeners (Unix socket and/or loopback
 * TCP), a tenant-fair priority JobQueue, a content-addressed
 * ResultStore, and the worker subprocess pool.  Life of a job:
 *
 *   1. a connection thread reads the submit envelope + spec frames,
 *      validates the spec, and computes its ResultKey
 *      (traceHash, contentHash);
 *   2. a stored result is served immediately (cache hit, zero
 *      compute); an identical job already queued or running is
 *      joined, not duplicated (in-flight dedup) — both clients get
 *      the same bytes;
 *   3. otherwise the job queues; the single dispatcher thread pops
 *      per the fairness policy and executes it via runShardedSweep,
 *      cells fanned out over worker subprocesses — a crashing cell
 *      kills a worker, gets retried on a fresh one, and at worst
 *      quarantines that cell; the daemon never dies with it;
 *   4. the exact writeSweepJson() bytes are stored (clean runs
 *      only) and served to every waiting client, so a served result
 *      is byte-identical to an in-process SweepConfig run.
 *
 * Jobs execute one at a time — each job already saturates the
 * machine through its worker pool; admission control is the queue's
 * job, not the scheduler's.
 *
 * Status requests answer from counters without touching the queue's
 * dispatcher; everything also lands in the metrics registry under
 * "gllcd." when collection is active.
 */

#ifndef GLLC_SERVICE_DAEMON_HH
#define GLLC_SERVICE_DAEMON_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "service/event_log.hh"
#include "service/exposition.hh"
#include "service/job_journal.hh"
#include "service/job_queue.hh"
#include "service/protocol.hh"
#include "service/result_store.hh"
#include "service/worker.hh"

namespace gllc
{

/** Exit code of a daemon killed by the daemon.crash fault site. */
constexpr int kDaemonCrashExitCode = 70;

/** Where and how a SweepDaemon serves. */
struct DaemonOptions
{
    /** Unix-domain listener path; "" = no Unix listener. */
    std::string socketPath;

    /** Loopback TCP port; -1 = none, 0 = pick an ephemeral port. */
    int tcpPort = -1;

    /** Worker subprocesses per job (clamped to the frame count). */
    unsigned workers = 2;

    /** ResultStore root; "" disables result caching. */
    std::string storeDir;

    /**
     * Loopback HTTP port for GET /metrics + /status; -1 = no
     * exposition listener, 0 = pick an ephemeral port.
     */
    int metricsPort = -1;

    /**
     * Directory for merged per-job Perfetto timelines
     * (job-<id>.json, stitched from daemon spans and the worker
     * subprocesses' span files); "" disables job tracing.
     */
    std::string traceDir;

    /** JSON-lines event log path ("gllcd-events-v1"); "" = off. */
    std::string eventLogPath;

    /** Queue depth cap; over-limit submits shed.  0 = unbounded. */
    std::size_t maxQueue = 0;

    /** Per-tenant in-queue quota; 0 = unlimited. */
    std::size_t tenantQuota = 0;

    /**
     * Deadline in ms on every client-connection read and write; a
     * peer that stalls past it (slowloris, half-open socket) is
     * disconnected.  0 = no deadline.
     */
    int connTimeoutMs = 0;

    /** Concurrent-connection cap; over-limit accepts shed.  0 = ∞. */
    std::size_t maxConns = 0;

    /** Durable job journal (WAL) path; "" = no journal. */
    std::string journalPath;

    /**
     * Replay the journal at startup: unfinished jobs re-enqueue in
     * original order before the daemon starts serving.
     */
    bool recover = false;
};

/** The service (see file comment).  start() it, stop() it. */
class SweepDaemon
{
  public:
    explicit SweepDaemon(DaemonOptions options);

    /** stop()s if still running. */
    ~SweepDaemon();

    SweepDaemon(const SweepDaemon &) = delete;
    SweepDaemon &operator=(const SweepDaemon &) = delete;

    /**
     * Bind the configured listeners and start serving.
     * InvalidArgument when no listener is configured; Io when a
     * bind fails.
     */
    [[nodiscard]] Result<Unit> start();

    /**
     * Shut down: close listeners, abort in-flight connections,
     * drain the dispatcher, join every thread.  Idempotent.
     */
    void stop();

    /** The TCP port actually bound (after start(); -1 = none). */
    int tcpPort() const { return boundTcpPort_; }

    /** The exposition listener's bound port (-1 = not serving). */
    int metricsPort() const { return metricsServer_.port(); }

    /** The Unix socket path served (empty = none). */
    const std::string &socketPath() const
    {
        return options_.socketPath;
    }

    /** Jobs executed to completion (not cache hits). */
    std::uint64_t jobsCompleted() const
    {
        return jobsCompleted_.load();
    }

    /** Submissions answered straight from the result store. */
    std::uint64_t cacheHits() const { return cacheHits_.load(); }

    /** Worker subprocess deaths survived. */
    std::uint64_t workerCrashes() const
    {
        return workerCrashes_.load();
    }

    /** Hung workers killed at the cell timeout. */
    std::uint64_t cellTimeouts() const
    {
        return cellTimeouts_.load();
    }

    /** Submits refused by admission control (all reasons). */
    std::uint64_t jobsShed() const { return jobsShed_.load(); }

    /** Queued jobs cancelled because every waiter disconnected. */
    std::uint64_t jobsCancelled() const
    {
        return jobsCancelled_.load();
    }

    /** Jobs re-enqueued from the journal by --recover. */
    std::uint64_t jobsRecovered() const
    {
        return jobsRecovered_.load();
    }

  private:
    /** A job zero-or-more connections are waiting on. */
    struct JobState
    {
        Mutex mutex;
        CondVar doneCv;
        bool done GLLC_GUARDED_BY(mutex) = false;
        bool failed GLLC_GUARDED_BY(mutex) = false;
        /**
         * Connections currently blocked on doneCv.  Registered
         * under inflightMutex_ at join/create time, so a zero here
         * (checked under both locks) proves nobody can be about to
         * wait — the precondition for cancelling a queued job whose
         * last client hung up.  Recovered jobs start at zero and
         * are never cancelled: cancellation only triggers from a
         * disconnecting waiter.
         */
        unsigned waiters GLLC_GUARDED_BY(mutex) = 0;
        Error error GLLC_GUARDED_BY(mutex);
        ResultHeader header GLLC_GUARDED_BY(mutex);
        std::string payload GLLC_GUARDED_BY(mutex);
    };

    Result<int> bindUnixListener();
    Result<int> bindTcpListener();
    void acceptLoop(int listen_fd) GLLC_EXCLUDES(connMutex_);
    void serveConnection(int fd) GLLC_EXCLUDES(connMutex_);
    void dispatchLoop();
    void executeJob(const QueuedJob &job)
        GLLC_EXCLUDES(inflightMutex_);
    bool handleSubmit(int fd, const RequestEnvelope &envelope)
        GLLC_EXCLUDES(inflightMutex_);
    bool handleStatus(int fd);
    bool handleStatusV2(int fd);
    std::string statusJson();
    std::string statusV2Json();
    void countMetric(const char *name);

    /**
     * Answer an over-limit submit with a shed frame (typed reason +
     * retry-after hint) and account for it.
     */
    void shedSubmit(int fd, const char *reason,
                    const std::string &tenant);

    /** Count a failed response write: the client is gone. */
    void noteClientGone(std::uint64_t job_id,
                        const std::string &tenant);

    /**
     * Cancel @p state's queued job after its last waiter hung up;
     * false when the dispatcher got there first (the job runs and
     * its result lands in the store).
     */
    bool cancelAbandonedJob(const ResultKey &key,
                            const std::shared_ptr<JobState> &state,
                            const std::string &tenant)
        GLLC_EXCLUDES(inflightMutex_);

    /** Replay the journal: re-enqueue unfinished jobs in order. */
    [[nodiscard]] Result<Unit> recoverFromJournal()
        GLLC_EXCLUDES(inflightMutex_);

    /** Record current queue depths into the windowed gauges. */
    void recordQueueGauges();

    /**
     * Render the Prometheus exposition and rearm the windowed
     * queue-depth gauges for the next scrape window.
     */
    std::string metricsExposition();

    /**
     * Stitch the daemon's job spans and every worker-<pid>.jsonl
     * under @p job_trace_dir into one merged Perfetto timeline at
     * traceDir/job-<id>.json.
     */
    void stitchJobTrace(const QueuedJob &job,
                        const std::string &trace_id,
                        const std::string &job_trace_dir,
                        double accepted_us, double popped_us,
                        double done_us);

    /** Join conn threads whose serveConnection() has returned. */
    void reapFinishedConnsLocked() GLLC_REQUIRES(connMutex_);

    /** Wake every submit waiter with @p error; empties inflight_. */
    void failPendingJobs(const Error &error)
        GLLC_EXCLUDES(inflightMutex_);

    DaemonOptions options_;

    /** Written while binding listeners in start(), read after. */
    int boundTcpPort_ = -1;

    /** start()/stop() bookkeeping; touched only by their caller. */
    std::vector<int> listenFds_;
    std::vector<std::thread> acceptThreads_;
    std::thread dispatcher_;
    std::atomic<bool> running_{false};

    Mutex connMutex_;
    std::vector<std::thread> connThreads_
        GLLC_GUARDED_BY(connMutex_);
    /** Threads in connThreads_ that have finished and await join. */
    std::vector<std::thread::id> finishedConnIds_
        GLLC_GUARDED_BY(connMutex_);
    std::vector<int> connFds_ GLLC_GUARDED_BY(connMutex_);

    JobQueue queue_;
    ResultStore store_;

    Mutex inflightMutex_;
    std::map<ResultKey, std::shared_ptr<JobState>> inflight_
        GLLC_GUARDED_BY(inflightMutex_);

    MetricsHttpServer metricsServer_;
    ServiceEventLog eventLog_;
    JobJournal journal_;
    std::chrono::steady_clock::time_point startTime_;

    std::atomic<std::uint64_t> nextJobId_{1};
    std::atomic<std::uint64_t> jobsSubmitted_{0};
    std::atomic<std::uint64_t> jobsCompleted_{0};
    std::atomic<std::uint64_t> jobsFailed_{0};
    std::atomic<std::uint64_t> jobsQuarantined_{0};
    std::atomic<std::uint64_t> cacheHits_{0};
    std::atomic<std::uint64_t> inflightJoins_{0};
    std::atomic<std::uint64_t> workerCrashes_{0};
    std::atomic<std::uint64_t> cellTimeouts_{0};
    std::atomic<std::uint64_t> jobsShed_{0};
    std::atomic<std::uint64_t> jobsCancelled_{0};
    std::atomic<std::uint64_t> jobsRecovered_{0};
    std::atomic<std::uint64_t> clientGone_{0};
};

} // namespace gllc

#endif // GLLC_SERVICE_DAEMON_HH
