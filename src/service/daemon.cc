#include "service/daemon.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "analysis/report.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace gllc
{

namespace
{

/** Best-effort error reply; the client may already be gone. */
void
sendError(int fd, const Error &error)
{
    (void)writeFrame(fd, errorFrameJson(error));
}

} // namespace

SweepDaemon::SweepDaemon(DaemonOptions options)
    : options_(std::move(options)), store_(options_.storeDir)
{
}

SweepDaemon::~SweepDaemon()
{
    stop();
}

Result<int>
SweepDaemon::bindUnixListener()
{
    sockaddr_un addr{};
    if (options_.socketPath.size() >= sizeof(addr.sun_path))
        return Error::format(ErrorCode::InvalidArgument,
                             "socket path too long: %s",
                             options_.socketPath.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return Error::format(ErrorCode::Io, "socket(): %s",
                             std::strerror(errno));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.socketPath.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr))
            != 0
        || ::listen(fd, 16) != 0) {
        const Error err = Error::format(
            ErrorCode::Io, "cannot listen on %s: %s",
            options_.socketPath.c_str(), std::strerror(errno));
        ::close(fd);
        return err;
    }
    return fd;
}

Result<int>
SweepDaemon::bindTcpListener()
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Error::format(ErrorCode::Io, "socket(): %s",
                             std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(options_.tcpPort));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr))
            != 0
        || ::listen(fd, 16) != 0) {
        const Error err = Error::format(
            ErrorCode::Io, "cannot listen on tcp port %d: %s",
            options_.tcpPort, std::strerror(errno));
        ::close(fd);
        return err;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len)
        == 0)
        boundTcpPort_ = ntohs(bound.sin_port);
    return fd;
}

Result<Unit>
SweepDaemon::start()
{
    if (running_.load())
        return Error(ErrorCode::InvalidArgument,
                     "daemon already started");
    if (options_.socketPath.empty() && options_.tcpPort < 0)
        return Error(ErrorCode::InvalidArgument,
                     "no listener configured (need a socket path "
                     "or a TCP port)");
    // Dead clients surface as EPIPE from write(), not as a
    // process-killing signal.
    std::signal(SIGPIPE, SIG_IGN);

    if (!options_.socketPath.empty()) {
        Result<int> fd = bindUnixListener();
        if (!fd.ok())
            return fd.error();
        listenFds_.push_back(fd.value());
    }
    if (options_.tcpPort >= 0) {
        Result<int> fd = bindTcpListener();
        if (!fd.ok()) {
            for (const int open_fd : listenFds_)
                ::close(open_fd);
            listenFds_.clear();
            return fd.error();
        }
        listenFds_.push_back(fd.value());
    }

    running_.store(true);
    dispatcher_ = std::thread([this] { dispatchLoop(); });
    for (const int fd : listenFds_)
        acceptThreads_.emplace_back(
            [this, fd] { acceptLoop(fd); });
    return Unit{};
}

void
SweepDaemon::stop()
{
    if (!running_.exchange(false))
        return;
    for (const int fd : listenFds_) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    listenFds_.clear();
    queue_.close();
    {
        MutexLock lock(connMutex_);
        for (const int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &t : acceptThreads_)
        t.join();
    acceptThreads_.clear();
    if (dispatcher_.joinable())
        dispatcher_.join();
    // The dispatcher is gone and the queue is closed, so no queued
    // job will ever execute: fail every submit waiter BEFORE joining
    // the connection threads, which may be blocked on exactly those
    // jobs' doneCv.  (A submit racing in after this point hits the
    // closed queue and fails itself in handleSubmit.)
    failPendingJobs(Error(ErrorCode::Io, "daemon shutting down"));
    std::vector<std::thread> conns;
    {
        MutexLock lock(connMutex_);
        conns.swap(connThreads_);
        finishedConnIds_.clear();
    }
    for (std::thread &t : conns)
        t.join();
    if (!options_.socketPath.empty())
        ::unlink(options_.socketPath.c_str());
}

void
SweepDaemon::failPendingJobs(const Error &error)
{
    MutexLock lock(inflightMutex_);
    for (auto &[key, state] : inflight_) {
        MutexLock state_lock(state->mutex);
        if (!state->done) {
            state->done = true;
            state->failed = true;
            state->error = error;
            state->doneCv.notifyAll();
        }
    }
    inflight_.clear();
}

void
SweepDaemon::acceptLoop(int listen_fd)
{
    while (running_.load()) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // listener closed by stop()
        }
        MutexLock lock(connMutex_);
        if (!running_.load()) {
            ::close(fd);
            return;
        }
        // Retire finished connections before admitting a new one,
        // so a long-running daemon holds handles only for live
        // connections, not for every connection ever served.
        reapFinishedConnsLocked();
        connFds_.push_back(fd);
        connThreads_.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
}

void
SweepDaemon::reapFinishedConnsLocked()
{
    for (const std::thread::id id : finishedConnIds_) {
        for (std::size_t i = 0; i < connThreads_.size(); ++i) {
            if (connThreads_[i].get_id() != id)
                continue;
            // Joins near-instantly: the thread registered its id as
            // its final action under connMutex_, which we hold.
            connThreads_[i].join();
            connThreads_.erase(connThreads_.begin()
                               + static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    finishedConnIds_.clear();
}

void
SweepDaemon::countMetric(const char *name)
{
    if (metricsActive())
        MetricsRegistry::instance().addCounter(name);
}

void
SweepDaemon::serveConnection(int fd)
{
    std::string payload;
    while (running_.load()) {
        Result<bool> got = readFrame(fd, payload);
        if (!got.ok()) {
            // Framing is unrecoverable mid-stream: report the
            // typed error (truncated header, oversized frame, ...)
            // and hang up; the daemon itself shrugs.
            sendError(fd, got.error());
            break;
        }
        if (!got.value())
            break;  // clean close

        Result<RequestEnvelope> envelope =
            parseRequestEnvelope(payload);
        if (!envelope.ok()) {
            // Garbage inside an intact frame: typed error, keep
            // the conversation (framing is still in sync).
            countMetric("gllcd.bad_requests");
            sendError(fd, envelope.error());
            continue;
        }
        const bool keep_going =
            envelope.value().type == RequestType::Submit
                ? handleSubmit(fd, envelope.value())
                : handleStatus(fd);
        if (!keep_going)
            break;
    }
    ::close(fd);
    MutexLock lock(connMutex_);
    for (std::size_t i = 0; i < connFds_.size(); ++i) {
        if (connFds_[i] == fd) {
            connFds_.erase(connFds_.begin()
                           + static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    finishedConnIds_.push_back(std::this_thread::get_id());
}

bool
SweepDaemon::handleSubmit(int fd, const RequestEnvelope &envelope)
{
    std::string spec_bytes;
    Result<bool> got = readFrame(fd, spec_bytes);
    if (!got.ok()) {
        sendError(fd, got.error());
        return false;
    }
    if (!got.value())
        return false;  // hung up between envelope and spec

    Result<SweepJobSpec> parsed = parseSweepJobSpec(spec_bytes);
    if (!parsed.ok()) {
        countMetric("gllcd.bad_requests");
        sendError(fd, parsed.error());
        return true;
    }
    const SweepJobSpec spec = parsed.take();
    Result<Unit> valid = spec.validate();
    if (!valid.ok()) {
        countMetric("gllcd.bad_requests");
        sendError(fd, valid.error());
        return true;
    }

    const ResultKey key{spec.traceHash(), spec.contentHash()};
    jobsSubmitted_.fetch_add(1);
    countMetric("gllcd.jobs_submitted");

    // Fast path: the store already holds these exact bytes.
    if (store_.contains(key)) {
        Result<std::string> stored = store_.load(key);
        if (stored.ok()) {
            cacheHits_.fetch_add(1);
            countMetric("gllcd.cache_hits");
            ResultHeader header;
            header.jobId = nextJobId_.fetch_add(1);
            header.cached = true;
            header.specHash = key.specHash;
            header.traceHash = key.traceHash;
            if (!writeFrame(fd, resultHeaderJson(header)).ok())
                return false;
            return writeFrame(fd, stored.value()).ok();
        }
        warn("gllcd: stored result unreadable, recomputing: %s",
             stored.error().toString().c_str());
    }

    // Join an identical in-flight job or queue a new one.
    std::shared_ptr<JobState> state;
    {
        MutexLock lock(inflightMutex_);
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            state = it->second;
            inflightJoins_.fetch_add(1);
            countMetric("gllcd.inflight_joins");
        } else {
            state = std::make_shared<JobState>();
            // The state is not shared until the emplace below, but
            // its fields are guarded: take the (uncontended) lock so
            // every access to them is provably consistent.
            MutexLock state_lock(state->mutex);
            state->header.jobId = nextJobId_.fetch_add(1);
            state->header.specHash = key.specHash;
            state->header.traceHash = key.traceHash;
            QueuedJob job;
            job.id = state->header.jobId;
            job.tenant = envelope.tenant;
            job.priority = envelope.priority;
            job.spec = spec;
            if (queue_.push(std::move(job))) {
                inflight_.emplace(key, state);
                if (metricsActive())
                    MetricsRegistry::instance().maxGauge(
                        "gllcd.queue_depth", queue_.depth());
            } else {
                // Lost the race with stop(): the queue is closed and
                // nothing will ever pop this job.  Fail it here —
                // waiting on doneCv would block stop() forever.
                state->done = true;
                state->failed = true;
                state->error =
                    Error(ErrorCode::Io, "daemon shutting down");
            }
        }
    }

    bool failed = false;
    Error error;
    ResultHeader header;
    const std::string *payload = nullptr;
    {
        MutexLock lock(state->mutex);
        while (!state->done)
            state->doneCv.wait(state->mutex);
        failed = state->failed;
        if (failed) {
            error = state->error;
        } else {
            header = state->header;
            // After done, no writer ever touches the payload again,
            // so the reference outlives the lock safely (the shared
            // JobState keeps the bytes alive).
            payload = &state->payload;
        }
    }
    if (failed) {
        sendError(fd, error);
        return true;
    }
    if (!writeFrame(fd, resultHeaderJson(header)).ok())
        return false;
    return writeFrame(fd, *payload).ok();
}

std::string
SweepDaemon::statusJson()
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"status\",\"queue_depth\":";
    out += std::to_string(queue_.depth());
    out += ",\"jobs_submitted\":";
    out += std::to_string(jobsSubmitted_.load());
    out += ",\"jobs_completed\":";
    out += std::to_string(jobsCompleted_.load());
    out += ",\"jobs_failed\":";
    out += std::to_string(jobsFailed_.load());
    out += ",\"cache_hits\":";
    out += std::to_string(cacheHits_.load());
    out += ",\"inflight_joins\":";
    out += std::to_string(inflightJoins_.load());
    out += ",\"worker_crashes\":";
    out += std::to_string(workerCrashes_.load());
    out += ",\"cell_timeouts\":";
    out += std::to_string(cellTimeouts_.load());
    out += '}';
    return out;
}

bool
SweepDaemon::handleStatus(int fd)
{
    return writeFrame(fd, statusJson()).ok();
}

void
SweepDaemon::dispatchLoop()
{
    QueuedJob job;
    while (queue_.waitPop(job))
        executeJob(job);
}

void
SweepDaemon::executeJob(const QueuedJob &job)
{
    ShardedRunStats stats;
    Result<SweepResult> run =
        runShardedSweep(job.spec, options_.workers, &stats);
    workerCrashes_.fetch_add(stats.workerCrashes);
    cellTimeouts_.fetch_add(stats.cellTimeouts);

    const ResultKey key{job.spec.traceHash(),
                        job.spec.contentHash()};
    std::shared_ptr<JobState> state;
    {
        MutexLock lock(inflightMutex_);
        auto it = inflight_.find(key);
        GLLC_ASSERT_MSG(it != inflight_.end(),
                        "executed a job nobody is waiting on");
        state = it->second;
        inflight_.erase(it);
    }

    MutexLock state_lock(state->mutex);
    if (!run.ok()) {
        jobsFailed_.fetch_add(1);
        countMetric("gllcd.jobs_failed");
        state->failed = true;
        state->error = run.error();
    } else {
        const SweepResult result = run.take();
        std::ostringstream payload;
        writeSweepJson(result, payload);
        state->payload = payload.str();
        state->header.quarantined = static_cast<std::uint32_t>(
            result.quarantined().size());
        state->header.wallSeconds = result.wallSeconds();
        jobsCompleted_.fetch_add(1);
        countMetric("gllcd.jobs_completed");
        // Only complete results are worth replaying forever.
        if (result.quarantined().empty()) {
            Result<Unit> stored =
                store_.store(key, state->payload);
            if (!stored.ok())
                warn("gllcd: result store write failed: %s",
                     stored.error().toString().c_str());
        }
    }
    state->done = true;
    state->doneCv.notifyAll();
}

} // namespace gllc
