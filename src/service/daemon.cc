#include "service/daemon.hh"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <netinet/in.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "analysis/report.hh"
#include "common/fault.hh"
#include "common/hash.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace_event.hh"

namespace gllc
{

namespace
{

/**
 * How often a blocked submit waiter wakes to probe whether its
 * client is still connected (the hook for cancelling a queued job
 * whose every submitter hung up).
 */
constexpr int kDisconnectProbeMs = 200;

/** Injected stall length of the conn.stall fault site. */
constexpr unsigned kConnStallMs = 100;

/** Best-effort error reply; the client may already be gone. */
void
sendError(int fd, const Error &error, int timeout_ms)
{
    (void)writeFrame(fd, errorFrameJson(error), timeout_ms);
}

/** mkdir -p: create @p dir and any missing parents. */
bool
makeDirs(const std::string &dir)
{
    std::string partial;
    std::size_t pos = 0;
    while (pos <= dir.size()) {
        const std::size_t slash = dir.find('/', pos);
        const std::size_t end =
            slash == std::string::npos ? dir.size() : slash;
        partial.assign(dir, 0, end);
        pos = end + 1;
        if (partial.empty())
            continue;
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

/** Fixed-point rendering of trace-clock microseconds. */
std::string
fmtUs(double us)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

/** The daemon-minted per-job trace id (hex). */
std::string
mintTraceId(std::uint64_t job_id, std::uint64_t spec_hash)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64,
                  mix64(job_id) ^ spec_hash);
    return buf;
}

/** One daemon-side span object of a merged per-job timeline. */
std::string
daemonSpanJson(const char *name, const char *category,
               double start_us, double dur_us, std::uint32_t tid,
               const QueuedJob &job, const std::string &trace_id)
{
    std::string out = "{\"name\": \"";
    out += name;
    out += "\", \"cat\": \"";
    out += category;
    out += "\", \"ph\": \"X\", \"ts\": ";
    out += fmtUs(start_us);
    out += ", \"dur\": ";
    out += fmtUs(dur_us);
    out += ", \"pid\": ";
    out += std::to_string(static_cast<unsigned>(::getpid()));
    out += ", \"tid\": ";
    out += std::to_string(tid);
    out += ", \"args\": {\"job\": \"";
    out += std::to_string(job.id);
    out += "\", \"tenant\": \"";
    out += jsonEscape(job.tenant);
    out += "\", \"trace\": \"";
    out += jsonEscape(trace_id);
    out += "\"}}";
    return out;
}

/** Milliseconds between two trace-clock microsecond stamps. */
double
spanMs(double start_us, double end_us)
{
    return (end_us - start_us) / 1000.0;
}

} // namespace

SweepDaemon::SweepDaemon(DaemonOptions options)
    : options_(std::move(options)), store_(options_.storeDir)
{
}

SweepDaemon::~SweepDaemon()
{
    stop();
}

Result<int>
SweepDaemon::bindUnixListener()
{
    sockaddr_un addr{};
    if (options_.socketPath.size() >= sizeof(addr.sun_path))
        return Error::format(ErrorCode::InvalidArgument,
                             "socket path too long: %s",
                             options_.socketPath.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return Error::format(ErrorCode::Io, "socket(): %s",
                             std::strerror(errno));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.socketPath.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr))
            != 0
        || ::listen(fd, 16) != 0) {
        const Error err = Error::format(
            ErrorCode::Io, "cannot listen on %s: %s",
            options_.socketPath.c_str(), std::strerror(errno));
        ::close(fd);
        return err;
    }
    return fd;
}

Result<int>
SweepDaemon::bindTcpListener()
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Error::format(ErrorCode::Io, "socket(): %s",
                             std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(options_.tcpPort));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr))
            != 0
        || ::listen(fd, 16) != 0) {
        const Error err = Error::format(
            ErrorCode::Io, "cannot listen on tcp port %d: %s",
            options_.tcpPort, std::strerror(errno));
        ::close(fd);
        return err;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len)
        == 0)
        boundTcpPort_ = ntohs(bound.sin_port);
    return fd;
}

Result<Unit>
SweepDaemon::start()
{
    if (running_.load())
        return Error(ErrorCode::InvalidArgument,
                     "daemon already started");
    if (options_.socketPath.empty() && options_.tcpPort < 0)
        return Error(ErrorCode::InvalidArgument,
                     "no listener configured (need a socket path "
                     "or a TCP port)");
    // Dead clients surface as EPIPE from write(), not as a
    // process-killing signal.
    std::signal(SIGPIPE, SIG_IGN);

    if (!options_.eventLogPath.empty()) {
        Result<Unit> opened = eventLog_.open(options_.eventLogPath);
        if (!opened.ok())
            return opened.error();
    }
    if (!options_.traceDir.empty()
        && !makeDirs(options_.traceDir))
        return Error::format(ErrorCode::Io,
                             "cannot create trace dir %s: %s",
                             options_.traceDir.c_str(),
                             std::strerror(errno));
    startTime_ = std::chrono::steady_clock::now();

    if (options_.recover && options_.journalPath.empty())
        return Error(ErrorCode::InvalidArgument,
                     "--recover needs a job journal path");
    if (!options_.journalPath.empty()) {
        // Open (and torn-tail-trim) before replaying, so recovery
        // reads a clean file and its finish records persist.
        Result<Unit> opened = journal_.open(options_.journalPath);
        if (!opened.ok())
            return opened.error();
    }
    if (options_.recover) {
        Result<Unit> recovered = recoverFromJournal();
        if (!recovered.ok())
            return recovered.error();
    }
    // Limits engage only after recovery: every journaled job was
    // already accepted once and must re-enqueue, full queue or not.
    queue_.configureLimits(
        {options_.maxQueue, options_.tenantQuota});

    if (!options_.socketPath.empty()) {
        Result<int> fd = bindUnixListener();
        if (!fd.ok())
            return fd.error();
        listenFds_.push_back(fd.value());
    }
    if (options_.tcpPort >= 0) {
        Result<int> fd = bindTcpListener();
        if (!fd.ok()) {
            for (const int open_fd : listenFds_)
                ::close(open_fd);
            listenFds_.clear();
            return fd.error();
        }
        listenFds_.push_back(fd.value());
    }
    if (options_.metricsPort >= 0) {
        Result<Unit> served = metricsServer_.start(
            options_.metricsPort,
            [this] { return metricsExposition(); },
            [this] { return statusV2Json(); });
        if (!served.ok()) {
            for (const int open_fd : listenFds_)
                ::close(open_fd);
            listenFds_.clear();
            return served.error();
        }
    }

    if (eventLog_.active())
        eventLog_.emit(ServiceEvent("daemon_started")
                           .num("pid", ::getpid())
                           .num("workers", options_.workers)
                           .num("metrics_port", metricsPort()));

    running_.store(true);
    dispatcher_ = std::thread([this] { dispatchLoop(); });
    for (const int fd : listenFds_)
        acceptThreads_.emplace_back(
            [this, fd] { acceptLoop(fd); });
    return Unit{};
}

void
SweepDaemon::stop()
{
    if (!running_.exchange(false))
        return;
    metricsServer_.stop();
    if (eventLog_.active())
        eventLog_.emit(ServiceEvent("daemon_stopping")
                           .num("jobs_completed",
                                static_cast<std::int64_t>(
                                    jobsCompleted_.load())));
    for (const int fd : listenFds_) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    listenFds_.clear();
    queue_.close();
    {
        MutexLock lock(connMutex_);
        for (const int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &t : acceptThreads_)
        t.join();
    acceptThreads_.clear();
    if (dispatcher_.joinable())
        dispatcher_.join();
    // The dispatcher is gone and the queue is closed, so no queued
    // job will ever execute: fail every submit waiter BEFORE joining
    // the connection threads, which may be blocked on exactly those
    // jobs' doneCv.  (A submit racing in after this point hits the
    // closed queue and fails itself in handleSubmit.)
    failPendingJobs(Error(ErrorCode::Io, "daemon shutting down"));
    std::vector<std::thread> conns;
    {
        MutexLock lock(connMutex_);
        conns.swap(connThreads_);
        finishedConnIds_.clear();
    }
    for (std::thread &t : conns)
        t.join();
    // No finish records for the jobs failPendingJobs just aborted:
    // they were accepted but never ran, so the journal deliberately
    // still owes them — a --recover restart picks them back up.
    journal_.close();
    if (!options_.socketPath.empty())
        ::unlink(options_.socketPath.c_str());
}

Result<Unit>
SweepDaemon::recoverFromJournal()
{
    Result<JournalRecovery> loaded =
        JobJournal::load(options_.journalPath);
    if (!loaded.ok()) {
        // A missing journal is a fresh start, not a failure; a
        // corrupt one (bad header) is refused loudly — silently
        // dropping accepted jobs is the failure mode this file
        // exists to prevent.
        if (loaded.error().code == ErrorCode::Io)
            return Unit{};
        return loaded.error();
    }
    const JournalRecovery recovery = loaded.take();
    std::size_t requeued = 0;
    for (const JournalJob &entry : recovery.pending) {
        const ResultKey key{entry.spec.traceHash(),
                            entry.spec.contentHash()};
        // Crash between the store write and the finish record:
        // result already durable, just settle the journal's debt.
        if (store_.contains(key)) {
            journal_.recordFinish(entry.id, "completed");
            continue;
        }
        auto state = std::make_shared<JobState>();
        QueuedJob job;
        {
            MutexLock state_lock(state->mutex);
            state->header.jobId = entry.id;
            state->header.specHash = key.specHash;
            state->header.traceHash = key.traceHash;
            job.id = entry.id;
            job.tenant = entry.tenant;
            job.priority = entry.priority;
            job.spec = entry.spec;
            job.acceptedUs = 0.0;
        }
        MutexLock lock(inflightMutex_);
        if (inflight_.count(key) != 0)
            continue;  // duplicate accepts collapse to one run
        if (queue_.push(std::move(job))
            != JobQueue::PushOutcome::Ok)
            continue;  // unreachable: limits not yet configured
        inflight_.emplace(key, std::move(state));
        ++requeued;
        jobsRecovered_.fetch_add(1);
        countMetric("gllcd.jobs.recovered");
        if (eventLog_.active())
            eventLog_.emit(
                ServiceEvent("job_recovered")
                    .num("job",
                         static_cast<std::int64_t>(entry.id))
                    .str("tenant", entry.tenant)
                    .num("priority", entry.priority));
    }
    if (recovery.maxJobId >= nextJobId_.load())
        nextJobId_.store(recovery.maxJobId + 1);
    if (requeued > 0 || recovery.skippedLines > 0)
        warn("gllcd: journal recovery re-enqueued %zu job(s) "
             "(%zu accepted, %zu finished, %zu line(s) skipped)",
             requeued, recovery.accepted, recovery.finished,
             recovery.skippedLines);
    return Unit{};
}

void
SweepDaemon::failPendingJobs(const Error &error)
{
    MutexLock lock(inflightMutex_);
    for (auto &[key, state] : inflight_) {
        MutexLock state_lock(state->mutex);
        if (!state->done) {
            state->done = true;
            state->failed = true;
            state->error = error;
            state->doneCv.notifyAll();
        }
    }
    inflight_.clear();
}

void
SweepDaemon::acceptLoop(int listen_fd)
{
    while (running_.load()) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // listener closed by stop()
        }
        bool over_cap = false;
        {
            MutexLock lock(connMutex_);
            if (!running_.load()) {
                ::close(fd);
                return;
            }
            // Retire finished connections before admitting a new
            // one, so a long-running daemon holds handles only for
            // live connections, not for every connection ever
            // served.
            reapFinishedConnsLocked();
            if (options_.maxConns != 0
                && connFds_.size() >= options_.maxConns) {
                over_cap = true;
            } else {
                connFds_.push_back(fd);
                connThreads_.emplace_back(
                    [this, fd] { serveConnection(fd); });
            }
        }
        if (over_cap) {
            // Shed outside connMutex_: the write is to an untrusted
            // peer and must never stall the accept path's lock.
            shedSubmit(fd, "conn_limit", "");
            ::close(fd);
        }
    }
}

void
SweepDaemon::reapFinishedConnsLocked()
{
    for (const std::thread::id id : finishedConnIds_) {
        for (std::size_t i = 0; i < connThreads_.size(); ++i) {
            if (connThreads_[i].get_id() != id)
                continue;
            // Joins near-instantly: the thread registered its id as
            // its final action under connMutex_, which we hold.
            connThreads_[i].join();
            connThreads_.erase(connThreads_.begin()
                               + static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    finishedConnIds_.clear();
}

void
SweepDaemon::countMetric(const char *name)
{
    if (metricsActive())
        MetricsRegistry::instance().addCounter(name);
}

void
SweepDaemon::serveConnection(int fd)
{
    std::string payload;
    while (running_.load()) {
        if (faultFires(FaultSite::ConnStall))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(kConnStallMs));
        if (faultFires(FaultSite::ConnDrop))
            break;
        Result<bool> got =
            readFrame(fd, payload, options_.connTimeoutMs);
        if (!got.ok()) {
            // Framing is unrecoverable mid-stream: report the
            // typed error (truncated header, oversized frame, a
            // slowloris peer caught by the deadline, ...) and hang
            // up; the daemon itself shrugs.
            if (got.error().code == ErrorCode::Timeout)
                countMetric("gllcd.conn.timeouts");
            sendError(fd, got.error(), options_.connTimeoutMs);
            break;
        }
        if (!got.value())
            break;  // clean close

        Result<RequestEnvelope> envelope =
            parseRequestEnvelope(payload);
        if (!envelope.ok()) {
            // Garbage inside an intact frame: typed error, keep
            // the conversation (framing is still in sync).
            countMetric("gllcd.bad_requests");
            sendError(fd, envelope.error(),
                      options_.connTimeoutMs);
            continue;
        }
        bool keep_going = false;
        switch (envelope.value().type) {
        case RequestType::Submit:
            keep_going = handleSubmit(fd, envelope.value());
            break;
        case RequestType::Status:
            keep_going = handleStatus(fd);
            break;
        case RequestType::StatusV2:
            keep_going = handleStatusV2(fd);
            break;
        }
        if (!keep_going)
            break;
    }
    ::close(fd);
    MutexLock lock(connMutex_);
    for (std::size_t i = 0; i < connFds_.size(); ++i) {
        if (connFds_[i] == fd) {
            connFds_.erase(connFds_.begin()
                           + static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    finishedConnIds_.push_back(std::this_thread::get_id());
}

bool
SweepDaemon::handleSubmit(int fd, const RequestEnvelope &envelope)
{
    std::string spec_bytes;
    Result<bool> got =
        readFrame(fd, spec_bytes, options_.connTimeoutMs);
    if (!got.ok()) {
        if (got.error().code == ErrorCode::Timeout)
            countMetric("gllcd.conn.timeouts");
        sendError(fd, got.error(), options_.connTimeoutMs);
        return false;
    }
    if (!got.value())
        return false;  // hung up between envelope and spec

    Result<SweepJobSpec> parsed = parseSweepJobSpec(spec_bytes);
    if (!parsed.ok()) {
        countMetric("gllcd.bad_requests");
        sendError(fd, parsed.error(), options_.connTimeoutMs);
        return true;
    }
    const SweepJobSpec spec = parsed.take();
    Result<Unit> valid = spec.validate();
    if (!valid.ok()) {
        countMetric("gllcd.bad_requests");
        sendError(fd, valid.error(), options_.connTimeoutMs);
        return true;
    }

    const ResultKey key{spec.traceHash(), spec.contentHash()};
    jobsSubmitted_.fetch_add(1);
    countMetric("gllcd.jobs.submitted");

    // Fast path: the store already holds these exact bytes.
    if (store_.contains(key)) {
        Result<std::string> stored = store_.load(key);
        if (stored.ok()) {
            cacheHits_.fetch_add(1);
            countMetric("gllcd.jobs.cache_hits");
            ResultHeader header;
            header.jobId = nextJobId_.fetch_add(1);
            header.cached = true;
            header.specHash = key.specHash;
            header.traceHash = key.traceHash;
            if (eventLog_.active())
                eventLog_.emit(
                    ServiceEvent("job_cache_hit")
                        .num("job", static_cast<std::int64_t>(
                                        header.jobId))
                        .str("tenant", envelope.tenant)
                        .num("priority", envelope.priority));
            if (!writeFrame(fd, resultHeaderJson(header),
                            options_.connTimeoutMs)
                     .ok()
                || !writeFrame(fd, stored.value(),
                               options_.connTimeoutMs)
                        .ok()) {
                noteClientGone(header.jobId, envelope.tenant);
                return false;
            }
            return true;
        }
        warn("gllcd: stored result unreadable, recomputing: %s",
             stored.error().toString().c_str());
    }

    // Join an identical in-flight job or queue a new one.
    std::shared_ptr<JobState> state;
    const char *shed_reason = nullptr;
    {
        MutexLock lock(inflightMutex_);
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            state = it->second;
            {
                // Register as a waiter while inflightMutex_ is
                // still held: cancellation checks waiters under
                // both locks, so it can never miss us.
                MutexLock state_lock(state->mutex);
                ++state->waiters;
            }
            inflightJoins_.fetch_add(1);
            countMetric("gllcd.jobs.inflight_joins");
            if (eventLog_.active())
                eventLog_.emit(ServiceEvent("job_joined")
                                   .str("tenant", envelope.tenant)
                                   .num("priority",
                                        envelope.priority));
        } else {
            state = std::make_shared<JobState>();
            // The state is not shared until the emplace below, but
            // its fields are guarded: take the (uncontended) lock so
            // every access to them is provably consistent.
            MutexLock state_lock(state->mutex);
            state->header.jobId = nextJobId_.fetch_add(1);
            state->header.specHash = key.specHash;
            state->header.traceHash = key.traceHash;
            state->waiters = 1;
            QueuedJob job;
            job.id = state->header.jobId;
            job.tenant = envelope.tenant;
            job.priority = envelope.priority;
            job.spec = spec;
            job.acceptedUs = TraceCollector::instance().nowUs();
            // Emitted before the push so the log's causal order
            // (accepted, then started) holds even when the
            // dispatcher pops the job immediately.
            if (eventLog_.active())
                eventLog_.emit(
                    ServiceEvent("job_accepted")
                        .num("job", static_cast<std::int64_t>(
                                        state->header.jobId))
                        .str("tenant", envelope.tenant)
                        .num("priority", envelope.priority)
                        .num("frames", static_cast<std::int64_t>(
                                           spec.frames.size()))
                        .num("policies",
                             static_cast<std::int64_t>(
                                 spec.policies.size())));
            // Journal BEFORE queuing: once a job can be popped it
            // must be recoverable.  A rejected push compensates
            // with an immediate "shed" finish record, so the
            // journal never replays a job that never queued.
            journal_.recordAccept(job);
            switch (queue_.push(std::move(job))) {
            case JobQueue::PushOutcome::Ok:
                inflight_.emplace(key, state);
                countMetric("gllcd.jobs.accepted");
                recordQueueGauges();
                break;
            case JobQueue::PushOutcome::QueueFull:
                shed_reason = "queue_full";
                break;
            case JobQueue::PushOutcome::TenantQuotaExceeded:
                shed_reason = "tenant_quota";
                break;
            case JobQueue::PushOutcome::Closed:
                // Lost the race with stop(): the queue is closed
                // and nothing will ever pop this job.
                shed_reason = "shutdown";
                break;
            }
            if (shed_reason != nullptr)
                journal_.recordFinish(state->header.jobId,
                                      "shed");
        }
    }
    if (shed_reason != nullptr) {
        shedSubmit(fd, shed_reason, envelope.tenant);
        return true;
    }

    bool failed = false;
    bool abandoned = false;
    Error error;
    ResultHeader header;
    const std::string *payload = nullptr;
    {
        MutexLock lock(state->mutex);
        while (!state->done) {
            // Wake periodically to probe the socket: a client that
            // hung up while its job sits queued should not pin the
            // job (nor this thread) until dispatch.
            const std::cv_status status = state->doneCv.waitFor(
                state->mutex,
                std::chrono::milliseconds(kDisconnectProbeMs));
            if (status == std::cv_status::timeout && !state->done
                && peerClosed(fd)) {
                abandoned = true;
                break;
            }
        }
        --state->waiters;
        failed = state->failed;
        if (!failed) {
            header = state->header;
            // After done, no writer ever touches the payload again,
            // so the reference outlives the lock safely (the shared
            // JobState keeps the bytes alive).
            payload = &state->payload;
        } else {
            error = state->error;
        }
    }
    if (abandoned) {
        // If cancellation loses the race (another waiter joined,
        // or the dispatcher already popped the job), the job simply
        // runs to completion and lands in the result store.
        (void)cancelAbandonedJob(key, state, envelope.tenant);
        return false;
    }
    if (failed) {
        sendError(fd, error, options_.connTimeoutMs);
        return true;
    }
    if (!writeFrame(fd, resultHeaderJson(header),
                    options_.connTimeoutMs)
             .ok()
        || !writeFrame(fd, *payload, options_.connTimeoutMs)
               .ok()) {
        noteClientGone(header.jobId, envelope.tenant);
        return false;
    }
    return true;
}

void
SweepDaemon::shedSubmit(int fd, const char *reason,
                        const std::string &tenant)
{
    jobsShed_.fetch_add(1);
    if (metricsActive()) {
        MetricsRegistry &registry = MetricsRegistry::instance();
        registry.addCounter("gllcd.shed_total");
        registry.addCounter(std::string("gllcd.shed.") + reason);
    }
    ShedInfo shed;
    shed.reason = reason;
    // Depth-proportional backoff hint: a barely-full queue clears
    // in a beat; a deep one tells clients to stay away longer.
    const std::size_t depth = queue_.depth();
    shed.retryAfterMs = static_cast<int>(
        std::min<std::size_t>(30000, 100 * (depth + 1)));
    if (eventLog_.active())
        eventLog_.emit(
            ServiceEvent("job_shed")
                .str("tenant", tenant)
                .str("reason", reason)
                .num("queue_depth",
                     static_cast<std::int64_t>(depth))
                .num("retry_after_ms", shed.retryAfterMs));
    // Never block shedding on a peer that won't read: fall back to
    // a short bounded write even when connections are undeadlined.
    const int timeout_ms = options_.connTimeoutMs > 0
                               ? options_.connTimeoutMs
                               : 1000;
    (void)writeFrame(fd, shedFrameJson(shed), timeout_ms);
}

void
SweepDaemon::noteClientGone(std::uint64_t job_id,
                            const std::string &tenant)
{
    clientGone_.fetch_add(1);
    countMetric("gllcd.client_gone");
    if (eventLog_.active())
        eventLog_.emit(
            ServiceEvent("job_client_gone")
                .num("job", static_cast<std::int64_t>(job_id))
                .str("tenant", tenant));
}

bool
SweepDaemon::cancelAbandonedJob(
    const ResultKey &key, const std::shared_ptr<JobState> &state,
    const std::string &tenant)
{
    std::uint64_t job_id = 0;
    {
        MutexLock lock(inflightMutex_);
        auto it = inflight_.find(key);
        if (it == inflight_.end() || it->second != state)
            return false;  // already finished (or a fresh retry)
        MutexLock state_lock(state->mutex);
        // waiters was registered under inflightMutex_, so zero here
        // — under both locks — proves no connection is waiting or
        // about to wait on this job.
        if (state->done || state->waiters > 0)
            return false;
        if (!queue_.cancel(state->header.jobId))
            return false;  // dispatcher got there first: it runs
        job_id = state->header.jobId;
        state->done = true;
        state->failed = true;
        state->error =
            Error(ErrorCode::Io,
                  "every client disconnected; job cancelled "
                  "before dispatch");
        state->doneCv.notifyAll();
        inflight_.erase(it);
    }
    journal_.recordFinish(job_id, "cancelled");
    jobsCancelled_.fetch_add(1);
    countMetric("gllcd.jobs.cancelled");
    recordQueueGauges();
    if (eventLog_.active())
        eventLog_.emit(
            ServiceEvent("job_cancelled")
                .num("job", static_cast<std::int64_t>(job_id))
                .str("tenant", tenant));
    return true;
}

std::string
SweepDaemon::statusJson()
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"status\",\"queue_depth\":";
    out += std::to_string(queue_.depth());
    out += ",\"jobs_submitted\":";
    out += std::to_string(jobsSubmitted_.load());
    out += ",\"jobs_completed\":";
    out += std::to_string(jobsCompleted_.load());
    out += ",\"jobs_failed\":";
    out += std::to_string(jobsFailed_.load());
    out += ",\"cache_hits\":";
    out += std::to_string(cacheHits_.load());
    out += ",\"inflight_joins\":";
    out += std::to_string(inflightJoins_.load());
    out += ",\"worker_crashes\":";
    out += std::to_string(workerCrashes_.load());
    out += ",\"cell_timeouts\":";
    out += std::to_string(cellTimeouts_.load());
    out += '}';
    return out;
}

bool
SweepDaemon::handleStatus(int fd)
{
    return writeFrame(fd, statusJson(), options_.connTimeoutMs)
        .ok();
}

std::string
SweepDaemon::statusV2Json()
{
    const double uptime_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - startTime_)
            .count();
    const std::uint64_t submitted = jobsSubmitted_.load();
    const std::uint64_t hits = cacheHits_.load();
    char buf[64];

    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"status_v2\",\"uptime_seconds\":";
    std::snprintf(buf, sizeof(buf), "%.3f", uptime_s);
    out += buf;
    out += ",\"queue\":{\"depth\":";
    out += std::to_string(queue_.depth());
    out += ",\"classes\":[";
    bool first = true;
    for (const auto &[prio, depth] : queue_.classDepths()) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"priority\":";
        out += std::to_string(prio);
        out += ",\"depth\":";
        out += std::to_string(depth);
        out += '}';
    }
    out += "]},\"jobs\":{\"submitted\":";
    out += std::to_string(submitted);
    out += ",\"completed\":";
    out += std::to_string(jobsCompleted_.load());
    out += ",\"failed\":";
    out += std::to_string(jobsFailed_.load());
    out += ",\"quarantined\":";
    out += std::to_string(jobsQuarantined_.load());
    out += ",\"cache_hits\":";
    out += std::to_string(hits);
    out += ",\"inflight_joins\":";
    out += std::to_string(inflightJoins_.load());
    out += ",\"shed\":";
    out += std::to_string(jobsShed_.load());
    out += ",\"cancelled\":";
    out += std::to_string(jobsCancelled_.load());
    out += ",\"recovered\":";
    out += std::to_string(jobsRecovered_.load());
    out += ",\"client_gone\":";
    out += std::to_string(clientGone_.load());
    out += "},\"workers\":{\"configured\":";
    out += std::to_string(options_.workers);
    out += ",\"crashes\":";
    out += std::to_string(workerCrashes_.load());
    out += ",\"cell_timeouts\":";
    out += std::to_string(cellTimeouts_.load());
    out += "},\"latency_ms\":{";
    const MetricsSnapshot snap =
        MetricsRegistry::instance().snapshot();
    const char *hist_keys[3][2] = {
        {"queue_wait", "gllcd.job.queue_wait_ms"},
        {"exec", "gllcd.job.exec_ms"},
        {"e2e", "gllcd.job.e2e_ms"},
    };
    for (int i = 0; i < 3; ++i) {
        if (i > 0)
            out += ',';
        std::int64_t p50 = 0;
        std::int64_t p95 = 0;
        if (const MetricValue *hist = snap.find(hist_keys[i][1])) {
            p50 = histogramQuantile(*hist, 0.50);
            p95 = histogramQuantile(*hist, 0.95);
        }
        out += '"';
        out += hist_keys[i][0];
        out += "\":{\"p50\":";
        out += std::to_string(p50);
        out += ",\"p95\":";
        out += std::to_string(p95);
        out += '}';
    }
    out += "},\"cache_hit_rate\":";
    std::snprintf(buf, sizeof(buf), "%.4f",
                  static_cast<double>(hits)
                      / static_cast<double>(
                          submitted > 0 ? submitted : 1));
    out += buf;
    out += '}';
    return out;
}

bool
SweepDaemon::handleStatusV2(int fd)
{
    return writeFrame(fd, statusV2Json(), options_.connTimeoutMs)
        .ok();
}

void
SweepDaemon::recordQueueGauges()
{
    if (!metricsActive())
        return;
    MetricsRegistry &registry = MetricsRegistry::instance();
    registry.maxGauge("gllcd.queue.depth",
                      static_cast<double>(queue_.depth()));
    for (const auto &[prio, depth] : queue_.classDepths())
        registry.maxGauge("gllcd.queue.depth.p"
                              + std::to_string(prio),
                          static_cast<double>(depth));
}

std::string
SweepDaemon::metricsExposition()
{
    recordQueueGauges();
    const MetricsSnapshot snap =
        MetricsRegistry::instance().snapshot();
    std::ostringstream os;
    snap.writePrometheus(os);
    // Queue-depth gauges are windowed: each scrape reports the max
    // depth since the previous scrape, then rearms the window so the
    // next scrape isn't forever stuck at the all-time high.
    for (const auto &[name, value] : snap.values()) {
        (void)value;
        if (name.compare(0, 17, "gllcd.queue.depth") == 0)
            MetricsRegistry::instance().rearmGauge(name);
    }
    recordQueueGauges();
    return os.str();
}

void
SweepDaemon::stitchJobTrace(const QueuedJob &job,
                            const std::string &trace_id,
                            const std::string &job_trace_dir,
                            double accepted_us, double popped_us,
                            double done_us)
{
    std::string merged = "{\"displayTimeUnit\": \"ms\", "
                         "\"traceEvents\": [\n";
    merged += daemonSpanJson("job", "job", accepted_us,
                             done_us - accepted_us, 0, job,
                             trace_id);
    merged += ",\n";
    merged += daemonSpanJson("queue-wait", "job_phase",
                             accepted_us, popped_us - accepted_us,
                             0, job, trace_id);
    merged += ",\n";
    merged += daemonSpanJson("execute", "job_phase", popped_us,
                             done_us - popped_us, 0, job, trace_id);

    // Splice every worker's span lines, each line re-validated so
    // one torn file cannot corrupt the merged timeline.
    DIR *dir = ::opendir(job_trace_dir.c_str());
    if (dir != nullptr) {
        std::vector<std::string> names;
        while (const dirent *entry = ::readdir(dir)) {
            const std::string name = entry->d_name;
            if (name.size() > 6
                && name.compare(0, 7, "worker-") == 0
                && name.size() > 6
                && name.compare(name.size() - 6, 6, ".jsonl")
                       == 0)
                names.push_back(name);
        }
        ::closedir(dir);
        std::sort(names.begin(), names.end());
        for (const std::string &name : names) {
            std::ifstream in(job_trace_dir + "/" + name);
            std::string line;
            while (std::getline(in, line)) {
                if (line.empty())
                    continue;
                Result<JsonValue> parsed = parseJson(line);
                if (!parsed.ok() || !parsed.value().isObject()
                    || parsed.value().find("ph") == nullptr) {
                    warn("gllcd: skipping torn trace line in %s",
                         name.c_str());
                    continue;
                }
                merged += ",\n";
                merged += line;
            }
        }
    }
    merged += "\n]}\n";

    const std::string out_path = options_.traceDir + "/job-"
                                 + std::to_string(job.id)
                                 + ".json";
    std::ofstream out(out_path,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("gllcd: cannot write merged job trace %s",
             out_path.c_str());
        return;
    }
    out << merged;
}

void
SweepDaemon::dispatchLoop()
{
    QueuedJob job;
    while (queue_.waitPop(job))
        executeJob(job);
}

void
SweepDaemon::executeJob(const QueuedJob &job)
{
    TraceCollector &collector = TraceCollector::instance();
    const double popped_us = collector.nowUs();
    const double accepted_us =
        job.acceptedUs > 0.0 ? job.acceptedUs : popped_us;
    if (metricsActive())
        recordLatencyMs("gllcd.job.queue_wait_ms",
                        spanMs(accepted_us, popped_us));
    if (eventLog_.active())
        eventLog_.emit(
            ServiceEvent("job_started")
                .num("job", static_cast<std::int64_t>(job.id))
                .str("tenant", job.tenant)
                .num("priority", job.priority)
                .dbl("queue_wait_ms",
                     spanMs(accepted_us, popped_us)));

    // Chaos site: die mid-dispatch with the job accepted but
    // unfinished — exactly the window --recover must cover.
    if (faultFires(FaultSite::DaemonCrash))
        std::_Exit(kDaemonCrashExitCode);

    ShardTelemetry telemetry;
    telemetry.jobId = job.id;
    telemetry.traceId =
        mintTraceId(job.id, job.spec.contentHash());
    telemetry.daemonEpochUs = collector.epochSinceBootUs();
    telemetry.events = &eventLog_;
    std::string job_trace_dir;
    if (!options_.traceDir.empty()) {
        job_trace_dir = options_.traceDir + "/job-"
                        + std::to_string(job.id) + ".d";
        if (makeDirs(job_trace_dir))
            telemetry.traceDir = job_trace_dir;
        else
            warn("gllcd: cannot create job trace dir %s: %s",
                 job_trace_dir.c_str(), std::strerror(errno));
    }

    ShardedRunStats stats;
    Result<SweepResult> run = runShardedSweep(
        job.spec, options_.workers, &stats, &telemetry);
    workerCrashes_.fetch_add(stats.workerCrashes);
    cellTimeouts_.fetch_add(stats.cellTimeouts);

    const double done_us = collector.nowUs();
    if (metricsActive()) {
        recordLatencyMs("gllcd.job.exec_ms",
                        spanMs(popped_us, done_us));
        recordLatencyMs("gllcd.job.e2e_ms",
                        spanMs(accepted_us, done_us));
    }
    if (!telemetry.traceDir.empty())
        stitchJobTrace(job, telemetry.traceId, job_trace_dir,
                       accepted_us, popped_us, done_us);

    const ResultKey key{job.spec.traceHash(),
                        job.spec.contentHash()};
    std::shared_ptr<JobState> state;
    {
        MutexLock lock(inflightMutex_);
        auto it = inflight_.find(key);
        GLLC_ASSERT_MSG(it != inflight_.end(),
                        "executed a job nobody is waiting on");
        state = it->second;
        inflight_.erase(it);
    }

    MutexLock state_lock(state->mutex);
    if (!run.ok()) {
        jobsFailed_.fetch_add(1);
        countMetric("gllcd.jobs.failed");
        state->failed = true;
        state->error = run.error();
        if (eventLog_.active())
            eventLog_.emit(
                ServiceEvent("job_failed")
                    .num("job", static_cast<std::int64_t>(job.id))
                    .str("tenant", job.tenant)
                    .str("error", run.error().toString()));
    } else {
        const SweepResult result = run.take();
        std::ostringstream payload;
        writeSweepJson(result, payload);
        state->payload = payload.str();
        state->header.quarantined = static_cast<std::uint32_t>(
            result.quarantined().size());
        state->header.wallSeconds = result.wallSeconds();
        jobsCompleted_.fetch_add(1);
        countMetric("gllcd.jobs.completed");
        if (!result.quarantined().empty()) {
            jobsQuarantined_.fetch_add(1);
            countMetric("gllcd.jobs.quarantined");
        }
        if (eventLog_.active())
            eventLog_.emit(
                ServiceEvent("job_completed")
                    .num("job", static_cast<std::int64_t>(job.id))
                    .str("tenant", job.tenant)
                    .num("cells", static_cast<std::int64_t>(
                                      result.cells().size()))
                    .num("quarantined",
                         static_cast<std::int64_t>(
                             result.quarantined().size()))
                    .dbl("exec_ms", spanMs(popped_us, done_us))
                    .dbl("e2e_ms", spanMs(accepted_us, done_us)));
        // Only complete results are worth replaying forever.
        if (result.quarantined().empty()) {
            Result<Unit> stored =
                store_.store(key, state->payload);
            if (!stored.ok())
                warn("gllcd: result store write failed: %s",
                     stored.error().toString().c_str());
        }
    }
    // Settle the journal only after the result (if any) is stored:
    // a crash in between replays the job, which is idempotent; the
    // reverse order would lose it.
    journal_.recordFinish(job.id,
                          run.ok() ? "completed" : "failed");
    state->done = true;
    state->doneCv.notifyAll();
}

} // namespace gllc
