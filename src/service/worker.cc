#include "service/worker.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "analysis/checkpoint.hh"
#include "analysis/offline_sim.hh"
#include "analysis/policy_table.hh"
#include "common/env.hh"
#include "common/fault.hh"
#include "common/hash.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_annotations.hh"
#include "common/trace_event.hh"
#include "workload/app_profile.hh"
#include "workload/trace_cache.hh"

namespace gllc
{

namespace
{

/** Verify a sealed line's trailing checksum (keeps @p line whole). */
bool
verifySeal(const std::string &line)
{
    std::string copy = line;
    if (!copy.empty() && copy.back() == '\n')
        copy.pop_back();
    return unsealJournalLine(copy);
}

/** The failed-cell line of the worker protocol (sealed). */
std::string
failedCellLine(const CellKey &key, unsigned attempts,
               const std::string &error)
{
    std::string line = "{\"failed\":1,\"app\":\"";
    line += jsonEscape(key.app);
    line += "\",\"frame\":";
    line += std::to_string(key.frameIndex);
    line += ",\"policy\":\"";
    line += jsonEscape(key.policy);
    line += "\",\"attempts\":";
    line += std::to_string(attempts);
    line += ",\"error\":\"";
    line += jsonEscape(error);
    line += '"';
    return sealJournalLine(std::move(line));
}

/** Parsed failure report. */
struct FailedCell
{
    CellKey key;
    unsigned attempts = 0;
    std::string error;
};

/** Parse a sealed failed-cell line; false on any deviation. */
bool
parseFailedCellLine(const std::string &line, FailedCell &out)
{
    if (line.compare(0, 12, "{\"failed\":1,") != 0
        || !verifySeal(line))
        return false;
    Result<JsonValue> parsed = parseJson(
        line.back() == '\n' ? line.substr(0, line.size() - 1)
                            : line);
    if (!parsed.ok())
        return false;
    const JsonValue doc = parsed.take();
    const JsonValue *app = doc.find("app");
    const JsonValue *frame = doc.find("frame");
    const JsonValue *policy = doc.find("policy");
    const JsonValue *attempts = doc.find("attempts");
    const JsonValue *error = doc.find("error");
    if (app == nullptr || frame == nullptr || policy == nullptr
        || attempts == nullptr || error == nullptr)
        return false;
    Result<std::string> app_name = app->asString("app");
    Result<std::uint64_t> frame_index = frame->asU64("frame");
    Result<std::string> policy_name = policy->asString("policy");
    Result<std::uint64_t> attempt_count =
        attempts->asU64("attempts");
    Result<std::string> error_text = error->asString("error");
    if (!app_name.ok() || !frame_index.ok() || !policy_name.ok()
        || !attempt_count.ok() || !error_text.ok())
        return false;
    out.key = {app_name.take(),
               static_cast<std::uint32_t>(frame_index.value()),
               policy_name.take()};
    out.attempts = static_cast<unsigned>(attempt_count.value());
    out.error = error_text.take();
    return true;
}

/**
 * The fault key of a cell attempt — the exact formula the in-process
 * engine uses, so GLLC_FAULT reproduces the same failing cells
 * whether a sweep runs in-process or sharded over workers.
 */
std::uint64_t
cellFaultKey(const CellKey &key, unsigned attempt)
{
    return fnv1a64(key.policy, fnv1a64(key.app))
        ^ mix64((static_cast<std::uint64_t>(key.frameIndex) << 8)
                | attempt);
}

/** Exception boundary (mirrors the sweep engine's guarded()). */
template <typename F>
std::string
guardedCall(F &&fn)
{
    try {
        fn();
        return {};
    } catch (const std::exception &e) {
        return e.what()[0] != '\0' ? e.what() : "unnamed exception";
    } catch (...) {
        return "non-standard exception";
    }
}

/** Exponential backoff before re-attempt @p attempt (1-based). */
void
retryBackoff(unsigned first_delay_ms, unsigned attempt)
{
    if (first_delay_ms == 0)
        return;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<std::uint64_t>(first_delay_ms)
        << (attempt - 1)));
}

/** Write all bytes; false on unrecoverable error (EPIPE, ...). */
bool
writeAll(int fd, const char *buf, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::write(fd, buf + done, len - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/** One worker-bound cell request line. */
std::string
cellRequestLine(std::size_t frame, std::size_t policy,
                unsigned attempt)
{
    std::string line = "{\"cell\":{\"frame\":";
    line += std::to_string(frame);
    line += ",\"policy\":";
    line += std::to_string(policy);
    line += ",\"attempt\":";
    line += std::to_string(attempt);
    line += "}}\n";
    return line;
}

/** The trace-context line handed to a freshly spawned worker. */
std::string
traceRequestLine(const ShardTelemetry &telemetry,
                 const std::string &out_path)
{
    char epoch[64];
    std::snprintf(epoch, sizeof(epoch), "%.3f",
                  telemetry.daemonEpochUs);
    std::string line = "{\"trace\":{\"id\":\"";
    line += jsonEscape(telemetry.traceId);
    line += "\",\"job\":";
    line += std::to_string(telemetry.jobId);
    line += ",\"epoch_us\":";
    line += epoch;
    line += ",\"out\":\"";
    line += jsonEscape(out_path);
    line += "\"}}\n";
    return line;
}

/** Emit a per-cell structured event when an event sink is wired. */
void
emitCellEvent(const ShardTelemetry *telemetry, const char *type,
              const CellKey &key, unsigned attempts,
              const std::string &detail)
{
    if (telemetry == nullptr || telemetry->events == nullptr
        || !telemetry->events->active())
        return;
    ServiceEvent event(type);
    event.num("job", static_cast<std::int64_t>(telemetry->jobId))
        .str("app", key.app)
        .num("frame", key.frameIndex)
        .str("policy", key.policy)
        .num("attempts", attempts);
    if (!detail.empty())
        event.str("error", detail);
    telemetry->events->emit(event);
}

/** Stall injected by the cell.delay fault site (mirrors sweep.cc). */
constexpr unsigned kInjectedDelayMs = 100;

/** How a receive() attempt ended. */
enum class RecvStatus
{
    Line,    ///< one complete response line delivered
    Eof,     ///< worker closed its pipe (died or exited)
    Timeout  ///< no complete line within the deadline
};

/** Describe how a reaped worker died. */
std::string
exitDescription(int status)
{
    if (WIFEXITED(status))
        return "exit status "
            + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return "signal " + std::to_string(WTERMSIG(status));
    return "unknown status " + std::to_string(status);
}

/** A live worker subprocess (parent side). */
class WorkerProcess
{
  public:
    WorkerProcess() = default;
    ~WorkerProcess() { shutdown(); }

    WorkerProcess(const WorkerProcess &) = delete;
    WorkerProcess &operator=(const WorkerProcess &) = delete;

    bool alive() const { return pid_ > 0; }

    /** The subprocess pid (names its per-spawn trace file). */
    pid_t pid() const { return pid_; }

    /** Spawn and send the spec line; false on any failure. */
    [[nodiscard]] bool
    spawn(const std::string &exe, const std::string &spec_line)
    {
        int to_child[2];
        int from_child[2];
        if (::pipe(to_child) != 0)
            return false;
        if (::pipe(from_child) != 0) {
            ::close(to_child[0]);
            ::close(to_child[1]);
            return false;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(to_child[0]);
            ::close(to_child[1]);
            ::close(from_child[0]);
            ::close(from_child[1]);
            return false;
        }
        if (pid == 0) {
            // Child: stdin/stdout onto the pipes, then exec the
            // worker entry.  Only async-signal-safe calls here.
            ::dup2(to_child[0], 0);
            ::dup2(from_child[1], 1);
            ::close(to_child[0]);
            ::close(to_child[1]);
            ::close(from_child[0]);
            ::close(from_child[1]);
            char arg0[] = "gllcd-worker";
            char arg1[] = "--worker";
            char *argv[] = {arg0, arg1, nullptr};
            ::execv(exe.c_str(), argv);
            ::_exit(127);
        }
        pid_ = pid;
        writeFd_ = to_child[1];
        readFd_ = from_child[0];
        buffer_.clear();
        ::close(to_child[0]);
        ::close(from_child[1]);
        if (!send(spec_line)) {
            shutdown();
            return false;
        }
        return true;
    }

    [[nodiscard]] bool
    send(const std::string &line)
    {
        return writeFd_ >= 0
            && writeAll(writeFd_, line.data(), line.size());
    }

    /**
     * Read one response line.  @p timeout_ms bounds the whole wait
     * (0 = wait forever); Timeout means the worker is alive but
     * hung past the budget — the caller must kill() it, since a
     * spinning worker ignores its pipes closing.
     */
    RecvStatus
    receive(std::string &line, unsigned timeout_ms)
    {
        using clock = std::chrono::steady_clock;
        const clock::time_point deadline =
            clock::now() + std::chrono::milliseconds(timeout_ms);
        for (;;) {
            const std::size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                line.assign(buffer_, 0, nl + 1);
                buffer_.erase(0, nl + 1);
                return RecvStatus::Line;
            }
            if (readFd_ < 0)
                return RecvStatus::Eof;
            if (timeout_ms > 0) {
                const long long left_ms =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(deadline
                                                   - clock::now())
                        .count();
                if (left_ms <= 0)
                    return RecvStatus::Timeout;
                pollfd pfd{};
                pfd.fd = readFd_;
                pfd.events = POLLIN;
                const int ready = ::poll(
                    &pfd, 1,
                    static_cast<int>(std::min<long long>(
                        left_ms, INT_MAX)));
                if (ready < 0) {
                    if (errno == EINTR)
                        continue;
                    return RecvStatus::Eof;
                }
                if (ready == 0)
                    return RecvStatus::Timeout;
            }
            char chunk[4096];
            const ssize_t n =
                ::read(readFd_, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return RecvStatus::Eof;
            }
            if (n == 0)
                return RecvStatus::Eof;
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

    /** SIGKILL a hung worker so shutdown()'s reap cannot block. */
    void
    kill()
    {
        if (pid_ > 0)
            ::kill(pid_, SIGKILL);
    }

    /** Close pipes and reap; returns the exit description. */
    std::string
    shutdown()
    {
        if (writeFd_ >= 0) {
            ::close(writeFd_);
            writeFd_ = -1;
        }
        if (readFd_ >= 0) {
            ::close(readFd_);
            readFd_ = -1;
        }
        buffer_.clear();
        std::string how = "never ran";
        if (pid_ > 0) {
            int status = 0;
            while (::waitpid(pid_, &status, 0) < 0
                   && errno == EINTR) {
            }
            how = exitDescription(status);
            pid_ = -1;
        }
        return how;
    }

  private:
    pid_t pid_ = -1;
    int writeFd_ = -1;
    int readFd_ = -1;
    std::string buffer_;
};

/** The worker binary to exec (tests point this at gllcd). */
std::string
workerExecutable()
{
    const std::string configured = envString("GLLC_WORKER_EXE", "");
    return configured.empty() ? "/proc/self/exe" : configured;
}

/** Run-wide stats the shard threads update concurrently. */
struct SharedStats
{
    Mutex mutex;
    ShardedRunStats stats GLLC_GUARDED_BY(mutex);
};

/** Outcome slot of one cell of a sharded run. */
struct CellOutcome
{
    bool done = false;
    bool ok = false;
    SweepCell cell;
    std::string error;
    unsigned attempts = 0;
};

/**
 * Drive one worker's shard of cells to completion (one thread per
 * worker runs this).  Crashes respawn the worker and retry the
 * unanswered cell within the job's retry budget; a cell that keeps
 * killing workers is quarantined and the shard moves on.
 */
void
runShard(const SweepJobSpec &spec, const std::string &spec_line,
         const std::vector<std::pair<std::size_t, std::size_t>>
             &cells,
         std::vector<CellOutcome> &outcomes, std::size_t num_policies,
         SharedStats &shared, const ShardTelemetry *telemetry)
{
    const std::string exe = workerExecutable();
    const unsigned max_attempts = spec.retries + 1;
    WorkerProcess proc;

    // Hand every fresh worker the job's trace context; each spawn
    // writes its own worker-<pid>.jsonl, so a crashed worker leaves
    // at most a file the daemon's stitcher will ignore as invalid.
    const bool tracing = telemetry != nullptr
        && !telemetry->traceDir.empty();
    const auto send_trace_context = [&] {
        if (!tracing)
            return;
        const std::string out_path = telemetry->traceDir + "/worker-"
            + std::to_string(proc.pid()) + ".jsonl";
        // A failed send means the worker died already; the next
        // cell request surfaces that as a crash.
        (void)proc.send(traceRequestLine(*telemetry, out_path));
    };

    const auto note_spawn = [&] {
        MutexLock lock(shared.mutex);
        ++shared.stats.workersSpawned;
    };
    const auto note_crash = [&] {
        MutexLock lock(shared.mutex);
        ++shared.stats.workerCrashes;
        if (metricsActive())
            MetricsRegistry::instance().addCounter(
                "gllcd.worker_crashes");
    };
    const auto note_timeout = [&] {
        MutexLock lock(shared.mutex);
        ++shared.stats.cellTimeouts;
        if (metricsActive())
            MetricsRegistry::instance().addCounter(
                "gllcd.cell_timeouts");
    };

    for (const auto &[frame_idx, policy_idx] : cells) {
        CellOutcome &out =
            outcomes[frame_idx * num_policies + policy_idx];
        const CellKey expect{spec.frames[frame_idx].app,
                             spec.frames[frame_idx].frameIndex,
                             spec.policies[policy_idx]};
        for (unsigned attempt = 1;; ++attempt) {
            out.attempts = attempt;
            if (!proc.alive()) {
                if (!proc.spawn(exe, spec_line)) {
                    out.done = true;
                    out.error = "cannot spawn worker " + exe;
                    break;
                }
                note_spawn();
                send_trace_context();
            }
            const auto attempt_start =
                std::chrono::steady_clock::now();
            std::string line;
            RecvStatus received = RecvStatus::Eof;
            if (proc.send(cellRequestLine(frame_idx, policy_idx,
                                          attempt)))
                received = proc.receive(line, spec.cellTimeoutMs);
            recordLatencyMs(
                "gllcd.cell.exec_ms",
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - attempt_start)
                    .count());
            if (received != RecvStatus::Line) {
                // The unanswered request names the killer cell.  A
                // hung worker (Timeout) must die by SIGKILL first:
                // it is not reading its pipes, so shutdown()'s reap
                // would otherwise block on it forever.
                const bool hung = received == RecvStatus::Timeout;
                if (hung) {
                    proc.kill();
                    note_timeout();
                } else {
                    note_crash();
                }
                const std::string how = proc.shutdown();
                warn("gllcd worker %s (%s) on cell %s (attempt %u)",
                     hung ? "hung past the cell timeout" : "died",
                     how.c_str(), expect.toString().c_str(),
                     attempt);
                if (attempt >= max_attempts) {
                    out.done = true;
                    out.error = hung
                        ? "cell exceeded timeout "
                            + std::to_string(spec.cellTimeoutMs)
                            + " ms"
                        : "worker crashed (" + how + ")";
                    break;
                }
                emitCellEvent(telemetry, "cell_retry", expect,
                              attempt,
                              hung ? "cell timeout"
                                   : "worker crashed (" + how + ")");
                retryBackoff(spec.backoffMs, attempt);
                continue;
            }

            SweepCell cell;
            if (parseCheckpointCellLine(line, cell)
                && cell.key == expect) {
                out.done = true;
                out.ok = true;
                out.cell = std::move(cell);
                break;
            }
            FailedCell failed;
            if (parseFailedCellLine(line, failed)
                && failed.key == expect) {
                if (attempt >= max_attempts) {
                    out.done = true;
                    out.error = failed.error;
                    break;
                }
                emitCellEvent(telemetry, "cell_retry", expect,
                              attempt, failed.error);
                retryBackoff(spec.backoffMs, attempt);
                continue;
            }
            // Unparseable response: the worker is off the rails;
            // treat it like a crash of this cell.
            const std::string how = proc.shutdown();
            note_crash();
            warn("gllcd worker spoke garbage (%s) on cell %s",
                 how.c_str(), expect.toString().c_str());
            if (attempt >= max_attempts) {
                out.done = true;
                out.error = "worker protocol failure (" + how + ")";
                break;
            }
            emitCellEvent(telemetry, "cell_retry", expect, attempt,
                          "worker protocol failure");
            retryBackoff(spec.backoffMs, attempt);
        }
        if (metricsActive())
            MetricsRegistry::instance().recordValue(
                "gllcd.cell.attempts", out.attempts);
        if (!out.ok)
            emitCellEvent(telemetry, "cell_quarantined", expect,
                          out.attempts, out.error);
    }
    proc.shutdown();
}

} // namespace

Result<SweepResult>
runShardedSweep(const SweepJobSpec &spec, unsigned workers,
                ShardedRunStats *stats,
                const ShardTelemetry *telemetry)
{
    Result<Unit> valid = spec.validate();
    if (!valid.ok())
        return valid.error();

    const auto start = std::chrono::steady_clock::now();
    const std::size_t num_frames = spec.frames.size();
    const std::size_t num_policies = spec.policies.size();
    const unsigned shard_count = static_cast<unsigned>(std::min(
        static_cast<std::size_t>(std::max(workers, 1u)),
        num_frames));
    const std::string spec_line = spec.toJson() + "\n";

    // Frames round-robin over shards: each frame's cells stay in
    // one worker, so its trace renders exactly once.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
        shards(shard_count);
    for (std::size_t f = 0; f < num_frames; ++f) {
        for (std::size_t p = 0; p < num_policies; ++p)
            shards[f % shard_count].emplace_back(f, p);
    }

    std::vector<CellOutcome> outcomes(num_frames * num_policies);
    SharedStats shared;
    {
        std::vector<std::thread> drivers;
        drivers.reserve(shard_count);
        for (unsigned s = 0; s < shard_count; ++s) {
            drivers.emplace_back([&, s] {
                runShard(spec, spec_line, shards[s], outcomes,
                         num_policies, shared, telemetry);
            });
        }
        for (std::thread &t : drivers)
            t.join();
    }

    // Merge in deterministic engine order: surviving cells first
    // (frame-major, policy-minor), quarantined cells alongside.
    std::vector<SweepCell> cells;
    cells.reserve(outcomes.size());
    std::vector<QuarantinedCell> quarantined;
    for (std::size_t k = 0; k < outcomes.size(); ++k) {
        CellOutcome &out = outcomes[k];
        GLLC_ASSERT_MSG(out.done, "sharded cell left unprocessed");
        if (out.ok) {
            cells.push_back(std::move(out.cell));
        } else {
            const std::size_t f = k / num_policies;
            const std::size_t p = k % num_policies;
            quarantined.push_back(
                {CellKey{spec.frames[f].app,
                         spec.frames[f].frameIndex,
                         spec.policies[p]},
                 out.error, out.attempts});
        }
    }

    RenderScale scale;
    scale.linear = spec.scaleLinear;
    scale.scatterPages = spec.scatterPages;
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (stats != nullptr) {
        MutexLock lock(shared.mutex);
        *stats = shared.stats;
    }
    return SweepResult::fromParts(
        spec.policies, scale,
        scaledLlcConfig(spec.llcBytes, scale.pixelScale()),
        std::move(cells), std::move(quarantined), 0, wall,
        shard_count);
}

int
runSweepWorker()
{
    // The daemon's telemetry env vars are inherited through exec;
    // left in place, every worker's atexit exporters would race to
    // clobber the daemon's own stats/trace files.  Workers report
    // through the line protocol and the trace context instead.
    ::unsetenv("GLLC_STATS_JSON");
    ::unsetenv("GLLC_TRACE_OUT");

    // Line 1: the job spec this worker serves cells of.
    char *buf = nullptr;
    std::size_t cap = 0;
    ssize_t n = ::getline(&buf, &cap, stdin);
    if (n < 0) {
        std::free(buf);
        return 65;  // EX_DATAERR: no spec
    }
    const std::string spec_json(buf, static_cast<std::size_t>(n));
    Result<SweepJobSpec> parsed = parseSweepJobSpec(spec_json);
    if (!parsed.ok()) {
        std::free(buf);
        warn("gllcd worker: bad spec: %s",
             parsed.error().toString().c_str());
        return 65;
    }
    const SweepJobSpec spec = parsed.take();
    Result<Unit> valid = spec.validate();
    if (!valid.ok()) {
        std::free(buf);
        warn("gllcd worker: invalid spec: %s",
             valid.error().toString().c_str());
        return 65;
    }

    RenderScale scale;
    scale.linear = spec.scaleLinear;
    scale.scatterPages = spec.scatterPages;
    const LlcConfig llc =
        scaledLlcConfig(spec.llcBytes, scale.pixelScale());

    std::vector<PolicySpec> policies;
    policies.reserve(spec.policies.size());
    for (const std::string &name : spec.policies)
        policies.push_back(tryPolicySpec(name).takeOrFatal());
    std::map<std::string, const AppProfile *> apps;
    for (const AppProfile &app : paperApps())
        apps[app.name] = &app;

    // Trace context (set by the optional trace line): where this
    // worker's spans go and how to land them on the daemon's clock.
    std::string trace_id;
    std::string trace_out;
    double daemon_epoch_us = 0.0;

    // Serve cell requests until the parent hangs up.
    int rc = 0;
    while ((n = ::getline(&buf, &cap, stdin)) >= 0) {
        const std::string line(buf, static_cast<std::size_t>(n));
        Result<JsonValue> doc = parseJson(line);
        const JsonValue *trace_node =
            doc.ok() && doc.value().isObject()
                ? doc.value().find("trace")
                : nullptr;
        if (trace_node != nullptr) {
            const JsonValue *id = trace_node->isObject()
                ? trace_node->find("id") : nullptr;
            const JsonValue *epoch = trace_node->isObject()
                ? trace_node->find("epoch_us") : nullptr;
            const JsonValue *out = trace_node->isObject()
                ? trace_node->find("out") : nullptr;
            if (id == nullptr || !id->isString() || epoch == nullptr
                || !epoch->isNumber() || out == nullptr
                || !out->isString()) {
                warn("gllcd worker: malformed trace context");
                rc = 65;
                break;
            }
            trace_id = id->string();
            daemon_epoch_us = epoch->number();
            trace_out = out->string();
            setTraceEventsActive(true);
            continue;  // configuration, not a request: no reply
        }
        const JsonValue *cell_node =
            doc.ok() && doc.value().isObject()
                ? doc.value().find("cell")
                : nullptr;
        const JsonValue *frame_node =
            cell_node != nullptr && cell_node->isObject()
                ? cell_node->find("frame")
                : nullptr;
        const JsonValue *policy_node =
            cell_node != nullptr && cell_node->isObject()
                ? cell_node->find("policy")
                : nullptr;
        const JsonValue *attempt_node =
            cell_node != nullptr && cell_node->isObject()
                ? cell_node->find("attempt")
                : nullptr;
        if (frame_node == nullptr || policy_node == nullptr
            || attempt_node == nullptr) {
            warn("gllcd worker: unintelligible request");
            rc = 65;
            break;
        }
        Result<std::uint64_t> frame_idx = frame_node->asU64("frame");
        Result<std::uint64_t> policy_idx =
            policy_node->asU64("policy");
        Result<std::uint64_t> attempt_no =
            attempt_node->asU64("attempt");
        if (!frame_idx.ok() || !policy_idx.ok() || !attempt_no.ok()
            || frame_idx.value() >= spec.frames.size()
            || policy_idx.value() >= spec.policies.size()
            || attempt_no.value() == 0) {
            warn("gllcd worker: cell request out of range");
            rc = 65;
            break;
        }
        const SweepJobFrame &frame =
            spec.frames[frame_idx.value()];
        const PolicySpec &policy = policies[policy_idx.value()];
        const unsigned attempt =
            static_cast<unsigned>(attempt_no.value());

        SweepCell cell;
        cell.key = {frame.app, frame.frameIndex, policy.name};
        cell.attempts = attempt;
        const std::uint64_t fault_key =
            cellFaultKey(cell.key, attempt);

        // The crash site fires before any reply, so the parent sees
        // EOF on exactly this cell.  _Exit skips atexit/destructors:
        // this models a hard death, not an orderly failure.
        if (faultFires(FaultSite::WorkerCrash, fault_key))
            std::_Exit(kWorkerCrashExitCode);

        TraceSpan span("cell", cell.key.toString(),
                       {{"app", cell.key.app},
                        {"frame",
                         std::to_string(cell.key.frameIndex)},
                        {"policy", cell.key.policy},
                        {"trace", trace_id}});
        const std::string error = guardedCall([&] {
            // Same injection sites, same keyed draws as the
            // in-process engine; cell.delay is how tests make a
            // worker hang past the cell timeout.
            if (faultFires(FaultSite::CellDelay, fault_key))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(kInjectedDelayMs));
            if (faultFires(FaultSite::CellThrow, fault_key))
                throwInjectedFault(FaultSite::CellThrow);
            const FrameTrace trace = cachedRenderFrame(
                *apps.at(frame.app), frame.frameIndex, scale);
            cell.result = runTrace(trace, policy, llc);
        });
        const std::string reply =
            error.empty()
                ? checkpointCellLine(cell)
                : failedCellLine(cell.key, attempt, error);
        if (!writeAll(1, reply.data(), reply.size())) {
            rc = 74;  // EX_IOERR: parent is gone
            break;
        }
    }
    std::free(buf);

    // Flush this worker's spans where the daemon's stitcher expects
    // them, shifted onto the daemon's trace clock and stamped with
    // the real pid so the merged timeline shows one track per
    // worker process.  Crashed workers never get here; the stitcher
    // simply finds fewer files.
    if (!trace_out.empty()) {
        std::ofstream os(trace_out, std::ios::trunc);
        if (os) {
            const TraceCollector &collector =
                TraceCollector::instance();
            collector.writeJsonl(
                os,
                collector.epochSinceBootUs() - daemon_epoch_us,
                static_cast<std::uint32_t>(::getpid()));
        } else {
            warn("gllcd worker: cannot write trace %s",
                 trace_out.c_str());
        }
    }
    return rc;
}

} // namespace gllc
