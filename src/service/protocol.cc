#include "service/protocol.hh"

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <climits>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/json.hh"

namespace gllc
{

namespace
{

/**
 * A poll() budget: constructed from a timeout in milliseconds,
 * 0 (or negative) meaning unbounded.  Mirrors the raw-fd deadline
 * reader WorkerProcess::receive grew for hung workers — here it
 * bounds hostile or half-open clients.
 */
class Deadline
{
  public:
    explicit Deadline(int timeout_ms) : unbounded_(timeout_ms <= 0)
    {
        if (!unbounded_)
            end_ = std::chrono::steady_clock::now()
                   + std::chrono::milliseconds(timeout_ms);
    }

    /** poll() timeout argument: -1 = wait forever, >= 0 = budget. */
    int
    remainingMs() const
    {
        if (unbounded_)
            return -1;
        const long long left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                end_ - std::chrono::steady_clock::now())
                .count();
        if (left <= 0)
            return 0;
        return static_cast<int>(
            left > INT_MAX ? INT_MAX : left);
    }

  private:
    bool unbounded_;
    std::chrono::steady_clock::time_point end_;
};

/** How a deadline-bounded wait for fd readiness ended. */
enum class IoWait : std::uint8_t
{
    Ready,
    Timeout,
    Error
};

/** Wait for @p events on @p fd within the deadline. */
IoWait
waitForFd(int fd, short events, const Deadline &deadline)
{
    for (;;) {
        const int remaining = deadline.remainingMs();
        if (remaining == 0)
            return IoWait::Timeout;
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = events;
        const int n = ::poll(&pfd, 1, remaining);
        if (n > 0)
            return IoWait::Ready;
        if (n == 0)
            return IoWait::Timeout;
        if (errno != EINTR)
            return IoWait::Error;
    }
}

/** How a deadline-bounded exact-length transfer ended. */
enum class IoStatus : std::uint8_t
{
    Ok,       ///< all bytes transferred
    Eof,      ///< stream ended early (read side only)
    Timeout,  ///< deadline expired mid-transfer
    Error     ///< errno-level failure
};

/**
 * Read exactly @p len bytes within the deadline; @p got reports the
 * transferred count on Eof so framing errors can say how far the
 * stream reached.
 */
IoStatus
readFull(int fd, char *buf, std::size_t len,
         const Deadline &deadline, std::size_t &got)
{
    got = 0;
    while (got < len) {
        const IoWait wait = waitForFd(fd, POLLIN, deadline);
        if (wait == IoWait::Timeout)
            return IoStatus::Timeout;
        if (wait == IoWait::Error)
            return IoStatus::Error;
        // Non-blocking for the same reason as writeFull: a spurious
        // POLLIN must loop back to poll(), not block past the
        // deadline.
        const ssize_t n =
            ::recv(fd, buf + got, len - got, MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN
                || errno == EWOULDBLOCK)
                continue;
            return IoStatus::Error;
        }
        if (n == 0)
            return IoStatus::Eof;
        got += static_cast<std::size_t>(n);
    }
    return IoStatus::Ok;
}

/** Write all of @p len bytes within the deadline. */
IoStatus
writeFull(int fd, const char *buf, std::size_t len,
          const Deadline &deadline)
{
    std::size_t done = 0;
    while (done < len) {
        const IoWait wait = waitForFd(fd, POLLOUT, deadline);
        if (wait == IoWait::Timeout)
            return IoStatus::Timeout;
        if (wait == IoWait::Error)
            return IoStatus::Error;
        // MSG_DONTWAIT matters: POLLOUT only promises *some* buffer
        // space, and a blocking write of more than that would stall
        // in the kernel until the peer drains it — past any
        // deadline.  Partial writes loop back through poll().
        const ssize_t n = ::send(fd, buf + done, len - done,
                                 MSG_DONTWAIT | MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN
                || errno == EWOULDBLOCK)
                continue;
            return IoStatus::Error;
        }
        done += static_cast<std::size_t>(n);
    }
    return IoStatus::Ok;
}

/** Reverse of errorCodeName(); InvalidArgument for unknown names. */
ErrorCode
errorCodeFromName(const std::string &name)
{
    static constexpr ErrorCode kCodes[] = {
        ErrorCode::Io,           ErrorCode::BadMagic,
        ErrorCode::BadVersion,   ErrorCode::Truncated,
        ErrorCode::Corrupt,      ErrorCode::ChecksumMismatch,
        ErrorCode::LimitExceeded, ErrorCode::InvalidArgument,
        ErrorCode::Injected,     ErrorCode::CellFailed,
        ErrorCode::Timeout,      ErrorCode::Overloaded,
    };
    for (const ErrorCode code : kCodes) {
        if (name == errorCodeName(code))
            return code;
    }
    return ErrorCode::InvalidArgument;
}

/** Append %016x of @p v. */
void
appendHex64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    out += buf;
}

} // namespace

Result<Unit>
writeFrame(int fd, const std::string &payload, int timeout_ms)
{
    if (payload.size() > kMaxFrameBytes)
        return Error::format(ErrorCode::LimitExceeded,
                             "frame of %zu bytes exceeds %u cap",
                             payload.size(), kMaxFrameBytes);
    const Deadline deadline(timeout_ms);
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    char header[4] = {
        static_cast<char>((len >> 24) & 0xff),
        static_cast<char>((len >> 16) & 0xff),
        static_cast<char>((len >> 8) & 0xff),
        static_cast<char>(len & 0xff),
    };
    IoStatus wrote =
        writeFull(fd, header, sizeof(header), deadline);
    if (wrote == IoStatus::Ok)
        wrote = writeFull(fd, payload.data(), payload.size(),
                          deadline);
    if (wrote == IoStatus::Timeout)
        return Error::format(ErrorCode::Timeout,
                             "frame write exceeded %d ms deadline",
                             timeout_ms);
    if (wrote != IoStatus::Ok)
        return Error::format(ErrorCode::Io,
                             "frame write failed: %s",
                             std::strerror(errno));
    return Unit{};
}

Result<bool>
readFrame(int fd, std::string &payload, int timeout_ms)
{
    const Deadline deadline(timeout_ms);
    char header[4];
    std::size_t got = 0;
    const IoStatus read_header =
        readFull(fd, header, sizeof(header), deadline, got);
    if (read_header == IoStatus::Timeout)
        return Error::format(ErrorCode::Timeout,
                             "frame header not received within "
                             "%d ms (%zu of 4 bytes)",
                             timeout_ms, got);
    if (read_header == IoStatus::Error)
        return Error::format(ErrorCode::Io,
                             "frame header read failed: %s",
                             std::strerror(errno));
    if (read_header == IoStatus::Eof) {
        if (got == 0)
            return false;  // clean close between frames
        return Error::format(ErrorCode::Truncated,
                             "connection closed inside a frame "
                             "header (%zu of 4 bytes)",
                             got);
    }
    const std::uint32_t len =
        (static_cast<std::uint32_t>(
             static_cast<unsigned char>(header[0]))
         << 24)
        | (static_cast<std::uint32_t>(
               static_cast<unsigned char>(header[1]))
           << 16)
        | (static_cast<std::uint32_t>(
               static_cast<unsigned char>(header[2]))
           << 8)
        | static_cast<std::uint32_t>(
            static_cast<unsigned char>(header[3]));
    if (len > kMaxFrameBytes)
        return Error::format(ErrorCode::LimitExceeded,
                             "frame declares %u bytes, cap is %u",
                             len, kMaxFrameBytes);
    payload.resize(len);
    if (len > 0) {
        std::size_t body = 0;
        const IoStatus read_body =
            readFull(fd, payload.data(), len, deadline, body);
        if (read_body == IoStatus::Timeout)
            return Error::format(
                ErrorCode::Timeout,
                "frame body not received within %d ms "
                "(%zu of %u bytes)",
                timeout_ms, body, len);
        if (read_body == IoStatus::Error)
            return Error::format(ErrorCode::Io,
                                 "frame body read failed: %s",
                                 std::strerror(errno));
        if (read_body == IoStatus::Eof)
            return Error::format(
                ErrorCode::Truncated,
                "connection closed inside a frame body "
                "(%zu of %u bytes)",
                body, len);
    }
    return true;
}

Result<std::size_t>
readSomeDeadline(int fd, char *buf, std::size_t cap,
                 int timeout_ms)
{
    const Deadline deadline(timeout_ms);
    for (;;) {
        const IoWait wait = waitForFd(fd, POLLIN, deadline);
        if (wait == IoWait::Timeout)
            return Error::format(ErrorCode::Timeout,
                                 "no bytes readable within %d ms",
                                 timeout_ms);
        if (wait == IoWait::Error)
            return Error::format(ErrorCode::Io, "poll(): %s",
                                 std::strerror(errno));
        const ssize_t n = ::read(fd, buf, cap);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Error::format(ErrorCode::Io, "read(): %s",
                                 std::strerror(errno));
        }
        return static_cast<std::size_t>(n);
    }
}

Result<Unit>
writeAllDeadline(int fd, const char *buf, std::size_t len,
                 int timeout_ms)
{
    const Deadline deadline(timeout_ms);
    const IoStatus wrote = writeFull(fd, buf, len, deadline);
    if (wrote == IoStatus::Timeout)
        return Error::format(ErrorCode::Timeout,
                             "write exceeded %d ms deadline",
                             timeout_ms);
    if (wrote != IoStatus::Ok)
        return Error::format(ErrorCode::Io, "write failed: %s",
                             std::strerror(errno));
    return Unit{};
}

bool
peerClosed(int fd)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, 0) <= 0)
        return false;  // nothing pending: the peer is quiet, alive
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0)
        return true;
    if ((pfd.revents & POLLIN) != 0) {
        // Readable might mean pipelined client bytes, not a close:
        // peek without consuming and check for EOF specifically.
        char probe = 0;
        const ssize_t n =
            ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
        return n == 0;
    }
    return false;
}

std::string
submitEnvelopeJson(const std::string &tenant, int priority)
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"submit\",\"tenant\":\"";
    out += jsonEscape(tenant);
    out += "\",\"priority\":";
    out += std::to_string(priority);
    out += '}';
    return out;
}

std::string
statusEnvelopeJson()
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"status\"}";
    return out;
}

std::string
statusV2EnvelopeJson()
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"status_v2\"}";
    return out;
}

Result<RequestEnvelope>
parseRequestEnvelope(const std::string &json)
{
    Result<JsonValue> parsed = parseJson(json);
    if (!parsed.ok())
        return parsed.error();
    const JsonValue doc = parsed.take();
    if (!doc.isObject())
        return Error(ErrorCode::BadMagic,
                     "request envelope must be a JSON object");
    const JsonValue *version = doc.find("gllcd");
    if (version == nullptr)
        return Error(ErrorCode::BadMagic,
                     "not a gllcd envelope (missing \"gllcd\")");
    Result<std::uint64_t> v = version->asU64("gllcd");
    if (!v.ok())
        return v.error();
    if (v.value() != kServiceProtocolVersion)
        return Error::format(
            ErrorCode::BadVersion,
            "protocol version %llu unsupported (speaking %u)",
            static_cast<unsigned long long>(v.value()),
            kServiceProtocolVersion);

    RequestEnvelope env;
    const JsonValue *type = doc.find("type");
    if (type == nullptr)
        return Error(ErrorCode::InvalidArgument,
                     "envelope missing \"type\"");
    Result<std::string> type_name = type->asString("type");
    if (!type_name.ok())
        return type_name.error();
    if (type_name.value() == "submit")
        env.type = RequestType::Submit;
    else if (type_name.value() == "status")
        env.type = RequestType::Status;
    else if (type_name.value() == "status_v2")
        env.type = RequestType::StatusV2;
    else
        return Error::format(ErrorCode::InvalidArgument,
                             "unknown request type \"%s\"",
                             type_name.value().c_str());

    if (const JsonValue *tenant = doc.find("tenant")) {
        Result<std::string> name = tenant->asString("tenant");
        if (!name.ok())
            return name.error();
        env.tenant = name.take();
        if (env.tenant.empty())
            return Error(ErrorCode::InvalidArgument,
                         "tenant must be nonempty");
    }
    if (const JsonValue *priority = doc.find("priority")) {
        if (!priority->isNumber())
            return Error(ErrorCode::InvalidArgument,
                         "priority: expected a number");
        const double p = priority->number();
        if (p < -1000.0 || p > 1000.0)
            return Error(ErrorCode::InvalidArgument,
                         "priority out of range [-1000, 1000]");
        env.priority = static_cast<int>(p);
    }
    return env;
}

std::string
resultHeaderJson(const ResultHeader &header)
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"result\",\"job\":";
    out += std::to_string(header.jobId);
    out += ",\"cached\":";
    out += header.cached ? "true" : "false";
    out += ",\"spec_hash\":\"";
    appendHex64(out, header.specHash);
    out += "\",\"trace_hash\":\"";
    appendHex64(out, header.traceHash);
    out += "\",\"quarantined\":";
    out += std::to_string(header.quarantined);
    out += ",\"wall_seconds\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", header.wallSeconds);
    out += buf;
    out += '}';
    return out;
}

std::string
errorFrameJson(const Error &error)
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"error\",\"code\":\"";
    out += errorCodeName(error.code);
    out += "\",\"message\":\"";
    out += jsonEscape(error.context);
    out += "\"}";
    return out;
}

std::string
shedFrameJson(const ShedInfo &shed)
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"shed\",\"reason\":\"";
    out += jsonEscape(shed.reason);
    out += "\",\"retry_after_ms\":";
    out += std::to_string(shed.retryAfterMs);
    out += '}';
    return out;
}

Result<bool>
parseResponseFrame(const std::string &json, ResultHeader &header,
                   Error &error, ShedInfo *shed)
{
    Result<JsonValue> parsed = parseJson(json);
    if (!parsed.ok())
        return parsed.error();
    const JsonValue doc = parsed.take();
    const JsonValue *type =
        doc.isObject() ? doc.find("type") : nullptr;
    if (type == nullptr)
        return Error(ErrorCode::BadMagic,
                     "response frame has no \"type\"");
    Result<std::string> type_name = type->asString("type");
    if (!type_name.ok())
        return type_name.error();

    if (type_name.value() == "error") {
        const JsonValue *code = doc.find("code");
        const JsonValue *message = doc.find("message");
        if (code == nullptr || message == nullptr)
            return Error(ErrorCode::Corrupt,
                         "error frame needs code and message");
        Result<std::string> code_name = code->asString("code");
        if (!code_name.ok())
            return code_name.error();
        Result<std::string> text = message->asString("message");
        if (!text.ok())
            return text.error();
        error = Error(errorCodeFromName(code_name.value()),
                      text.take());
        return false;
    }
    if (type_name.value() == "shed") {
        const JsonValue *reason = doc.find("reason");
        if (reason == nullptr)
            return Error(ErrorCode::Corrupt,
                         "shed frame needs a reason");
        Result<std::string> why = reason->asString("reason");
        if (!why.ok())
            return why.error();
        int retry_after_ms = 0;
        if (const JsonValue *retry = doc.find("retry_after_ms")) {
            if (!retry->isNumber())
                return Error(ErrorCode::Corrupt,
                             "retry_after_ms: expected a number");
            retry_after_ms = static_cast<int>(retry->number());
        }
        if (shed != nullptr) {
            shed->reason = why.value();
            shed->retryAfterMs = retry_after_ms;
        }
        error = Error::format(
            ErrorCode::Overloaded,
            "daemon shed the job (%s); retry after %d ms",
            why.value().c_str(), retry_after_ms);
        return false;
    }
    if (type_name.value() != "result")
        return Error::format(ErrorCode::InvalidArgument,
                             "unexpected response type \"%s\"",
                             type_name.value().c_str());

    const JsonValue *job = doc.find("job");
    const JsonValue *cached = doc.find("cached");
    const JsonValue *quarantined = doc.find("quarantined");
    if (job == nullptr || cached == nullptr
        || quarantined == nullptr)
        return Error(ErrorCode::Corrupt,
                     "result frame missing job/cached/quarantined");
    Result<std::uint64_t> job_id = job->asU64("job");
    if (!job_id.ok())
        return job_id.error();
    header.jobId = job_id.value();
    Result<bool> was_cached = cached->asBool("cached");
    if (!was_cached.ok())
        return was_cached.error();
    header.cached = was_cached.value();
    Result<std::uint64_t> quarantine_count =
        quarantined->asU64("quarantined");
    if (!quarantine_count.ok())
        return quarantine_count.error();
    header.quarantined =
        static_cast<std::uint32_t>(quarantine_count.value());
    if (const JsonValue *spec_hash = doc.find("spec_hash")) {
        Result<std::string> hex = spec_hash->asString("spec_hash");
        if (!hex.ok())
            return hex.error();
        header.specHash = std::strtoull(hex.value().c_str(),
                                        nullptr, 16);
    }
    if (const JsonValue *trace_hash = doc.find("trace_hash")) {
        Result<std::string> hex =
            trace_hash->asString("trace_hash");
        if (!hex.ok())
            return hex.error();
        header.traceHash = std::strtoull(hex.value().c_str(),
                                         nullptr, 16);
    }
    if (const JsonValue *wall = doc.find("wall_seconds")) {
        if (!wall->isNumber())
            return Error(ErrorCode::Corrupt,
                         "wall_seconds: expected a number");
        header.wallSeconds = wall->number();
    }
    return true;
}

} // namespace gllc
