#include "service/protocol.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include "common/json.hh"

namespace gllc
{

namespace
{

/** Read exactly @p len bytes; short count = EOF, -1 = errno. */
ssize_t
readFull(int fd, char *buf, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::read(fd, buf + done, len - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (n == 0)
            break;
        done += static_cast<std::size_t>(n);
    }
    return static_cast<ssize_t>(done);
}

/** Write all of @p len bytes; false on any unrecoverable error. */
bool
writeFull(int fd, const char *buf, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::write(fd, buf + done, len - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/** Reverse of errorCodeName(); InvalidArgument for unknown names. */
ErrorCode
errorCodeFromName(const std::string &name)
{
    static constexpr ErrorCode kCodes[] = {
        ErrorCode::Io,           ErrorCode::BadMagic,
        ErrorCode::BadVersion,   ErrorCode::Truncated,
        ErrorCode::Corrupt,      ErrorCode::ChecksumMismatch,
        ErrorCode::LimitExceeded, ErrorCode::InvalidArgument,
        ErrorCode::Injected,     ErrorCode::CellFailed,
    };
    for (const ErrorCode code : kCodes) {
        if (name == errorCodeName(code))
            return code;
    }
    return ErrorCode::InvalidArgument;
}

/** Append %016x of @p v. */
void
appendHex64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    out += buf;
}

} // namespace

Result<Unit>
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        return Error::format(ErrorCode::LimitExceeded,
                             "frame of %zu bytes exceeds %u cap",
                             payload.size(), kMaxFrameBytes);
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    char header[4] = {
        static_cast<char>((len >> 24) & 0xff),
        static_cast<char>((len >> 16) & 0xff),
        static_cast<char>((len >> 8) & 0xff),
        static_cast<char>(len & 0xff),
    };
    if (!writeFull(fd, header, sizeof(header))
        || !writeFull(fd, payload.data(), payload.size()))
        return Error::format(ErrorCode::Io,
                             "frame write failed: %s",
                             std::strerror(errno));
    return Unit{};
}

Result<bool>
readFrame(int fd, std::string &payload)
{
    char header[4];
    const ssize_t got = readFull(fd, header, sizeof(header));
    if (got < 0)
        return Error::format(ErrorCode::Io,
                             "frame header read failed: %s",
                             std::strerror(errno));
    if (got == 0)
        return false;  // clean close between frames
    if (got < static_cast<ssize_t>(sizeof(header)))
        return Error::format(ErrorCode::Truncated,
                             "connection closed inside a frame "
                             "header (%zd of 4 bytes)",
                             got);
    const std::uint32_t len =
        (static_cast<std::uint32_t>(
             static_cast<unsigned char>(header[0]))
         << 24)
        | (static_cast<std::uint32_t>(
               static_cast<unsigned char>(header[1]))
           << 16)
        | (static_cast<std::uint32_t>(
               static_cast<unsigned char>(header[2]))
           << 8)
        | static_cast<std::uint32_t>(
            static_cast<unsigned char>(header[3]));
    if (len > kMaxFrameBytes)
        return Error::format(ErrorCode::LimitExceeded,
                             "frame declares %u bytes, cap is %u",
                             len, kMaxFrameBytes);
    payload.resize(len);
    if (len > 0) {
        const ssize_t body = readFull(fd, payload.data(), len);
        if (body < 0)
            return Error::format(ErrorCode::Io,
                                 "frame body read failed: %s",
                                 std::strerror(errno));
        if (body < static_cast<ssize_t>(len))
            return Error::format(
                ErrorCode::Truncated,
                "connection closed inside a frame body "
                "(%zd of %u bytes)",
                body, len);
    }
    return true;
}

std::string
submitEnvelopeJson(const std::string &tenant, int priority)
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"submit\",\"tenant\":\"";
    out += jsonEscape(tenant);
    out += "\",\"priority\":";
    out += std::to_string(priority);
    out += '}';
    return out;
}

std::string
statusEnvelopeJson()
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"status\"}";
    return out;
}

std::string
statusV2EnvelopeJson()
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"status_v2\"}";
    return out;
}

Result<RequestEnvelope>
parseRequestEnvelope(const std::string &json)
{
    Result<JsonValue> parsed = parseJson(json);
    if (!parsed.ok())
        return parsed.error();
    const JsonValue doc = parsed.take();
    if (!doc.isObject())
        return Error(ErrorCode::BadMagic,
                     "request envelope must be a JSON object");
    const JsonValue *version = doc.find("gllcd");
    if (version == nullptr)
        return Error(ErrorCode::BadMagic,
                     "not a gllcd envelope (missing \"gllcd\")");
    Result<std::uint64_t> v = version->asU64("gllcd");
    if (!v.ok())
        return v.error();
    if (v.value() != kServiceProtocolVersion)
        return Error::format(
            ErrorCode::BadVersion,
            "protocol version %llu unsupported (speaking %u)",
            static_cast<unsigned long long>(v.value()),
            kServiceProtocolVersion);

    RequestEnvelope env;
    const JsonValue *type = doc.find("type");
    if (type == nullptr)
        return Error(ErrorCode::InvalidArgument,
                     "envelope missing \"type\"");
    Result<std::string> type_name = type->asString("type");
    if (!type_name.ok())
        return type_name.error();
    if (type_name.value() == "submit")
        env.type = RequestType::Submit;
    else if (type_name.value() == "status")
        env.type = RequestType::Status;
    else if (type_name.value() == "status_v2")
        env.type = RequestType::StatusV2;
    else
        return Error::format(ErrorCode::InvalidArgument,
                             "unknown request type \"%s\"",
                             type_name.value().c_str());

    if (const JsonValue *tenant = doc.find("tenant")) {
        Result<std::string> name = tenant->asString("tenant");
        if (!name.ok())
            return name.error();
        env.tenant = name.take();
        if (env.tenant.empty())
            return Error(ErrorCode::InvalidArgument,
                         "tenant must be nonempty");
    }
    if (const JsonValue *priority = doc.find("priority")) {
        if (!priority->isNumber())
            return Error(ErrorCode::InvalidArgument,
                         "priority: expected a number");
        const double p = priority->number();
        if (p < -1000.0 || p > 1000.0)
            return Error(ErrorCode::InvalidArgument,
                         "priority out of range [-1000, 1000]");
        env.priority = static_cast<int>(p);
    }
    return env;
}

std::string
resultHeaderJson(const ResultHeader &header)
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"result\",\"job\":";
    out += std::to_string(header.jobId);
    out += ",\"cached\":";
    out += header.cached ? "true" : "false";
    out += ",\"spec_hash\":\"";
    appendHex64(out, header.specHash);
    out += "\",\"trace_hash\":\"";
    appendHex64(out, header.traceHash);
    out += "\",\"quarantined\":";
    out += std::to_string(header.quarantined);
    out += ",\"wall_seconds\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", header.wallSeconds);
    out += buf;
    out += '}';
    return out;
}

std::string
errorFrameJson(const Error &error)
{
    std::string out = "{\"gllcd\":";
    out += std::to_string(kServiceProtocolVersion);
    out += ",\"type\":\"error\",\"code\":\"";
    out += errorCodeName(error.code);
    out += "\",\"message\":\"";
    out += jsonEscape(error.context);
    out += "\"}";
    return out;
}

Result<bool>
parseResponseFrame(const std::string &json, ResultHeader &header,
                   Error &error)
{
    Result<JsonValue> parsed = parseJson(json);
    if (!parsed.ok())
        return parsed.error();
    const JsonValue doc = parsed.take();
    const JsonValue *type =
        doc.isObject() ? doc.find("type") : nullptr;
    if (type == nullptr)
        return Error(ErrorCode::BadMagic,
                     "response frame has no \"type\"");
    Result<std::string> type_name = type->asString("type");
    if (!type_name.ok())
        return type_name.error();

    if (type_name.value() == "error") {
        const JsonValue *code = doc.find("code");
        const JsonValue *message = doc.find("message");
        if (code == nullptr || message == nullptr)
            return Error(ErrorCode::Corrupt,
                         "error frame needs code and message");
        Result<std::string> code_name = code->asString("code");
        if (!code_name.ok())
            return code_name.error();
        Result<std::string> text = message->asString("message");
        if (!text.ok())
            return text.error();
        error = Error(errorCodeFromName(code_name.value()),
                      text.take());
        return false;
    }
    if (type_name.value() != "result")
        return Error::format(ErrorCode::InvalidArgument,
                             "unexpected response type \"%s\"",
                             type_name.value().c_str());

    const JsonValue *job = doc.find("job");
    const JsonValue *cached = doc.find("cached");
    const JsonValue *quarantined = doc.find("quarantined");
    if (job == nullptr || cached == nullptr
        || quarantined == nullptr)
        return Error(ErrorCode::Corrupt,
                     "result frame missing job/cached/quarantined");
    Result<std::uint64_t> job_id = job->asU64("job");
    if (!job_id.ok())
        return job_id.error();
    header.jobId = job_id.value();
    Result<bool> was_cached = cached->asBool("cached");
    if (!was_cached.ok())
        return was_cached.error();
    header.cached = was_cached.value();
    Result<std::uint64_t> quarantine_count =
        quarantined->asU64("quarantined");
    if (!quarantine_count.ok())
        return quarantine_count.error();
    header.quarantined =
        static_cast<std::uint32_t>(quarantine_count.value());
    if (const JsonValue *spec_hash = doc.find("spec_hash")) {
        Result<std::string> hex = spec_hash->asString("spec_hash");
        if (!hex.ok())
            return hex.error();
        header.specHash = std::strtoull(hex.value().c_str(),
                                        nullptr, 16);
    }
    if (const JsonValue *trace_hash = doc.find("trace_hash")) {
        Result<std::string> hex =
            trace_hash->asString("trace_hash");
        if (!hex.ok())
            return hex.error();
        header.traceHash = std::strtoull(hex.value().c_str(),
                                         nullptr, 16);
    }
    if (const JsonValue *wall = doc.find("wall_seconds")) {
        if (!wall->isNumber())
            return Error(ErrorCode::Corrupt,
                         "wall_seconds: expected a number");
        header.wallSeconds = wall->number();
    }
    return true;
}

} // namespace gllc
