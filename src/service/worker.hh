/**
 * @file
 * Sweep-cell worker subprocesses and the sharded job runner.
 *
 * The daemon's fault boundary is the process: a cell that segfaults,
 * aborts, or hard-exits (the worker.crash injection site) must kill
 * a disposable worker, never the service.  So a job's (frame,
 * policy) cells are sharded across worker subprocesses by frame
 * (each frame's trace renders once, in the one worker that owns it)
 * and executed over a line protocol on the worker's stdin/stdout:
 *
 *   parent -> worker   line 1:  SweepJobSpec::toJson()
 *   parent -> worker   {"trace":{"id":"...","job":N,"epoch_us":E,
 *                       "out":"<path>.jsonl"}}   (optional, once,
 *                      right after the spec: the daemon's per-job
 *                      trace context — the worker records one span
 *                      per cell and writes them to "out" at EOF,
 *                      timestamps shifted onto the daemon's trace
 *                      clock via the epoch difference; no reply)
 *   parent -> worker   {"cell":{"frame":F,"policy":P,"attempt":A}}
 *                      (F, P index the spec's frames/policies)
 *   worker -> parent   one line per cell, in request order:
 *                        success: checkpointCellLine() bytes — the
 *                          same sealed line a checkpoint journal
 *                          holds, so a cell survives a pipe exactly
 *                          the way it survives a crash
 *                        failure: {"failed":1,...} sealed the same
 *                          way, carrying the error text
 *
 * Requests are strictly request/response, so when a worker dies the
 * unanswered request names the killer cell precisely.  The parent
 * respawns the worker and retries that cell with the job's retry
 * budget (spec.retries, spec.backoffMs — the same semantics the
 * in-process engine applies to throwing cells), then quarantines it
 * and moves on.  A clean job is therefore byte-identical to
 * SweepConfig::fromSpec(spec).run() — fewer moving parts than it
 * sounds: both paths end in the same runTrace() on the same trace.
 *
 * The worker executable is GLLC_WORKER_EXE when set (tests point it
 * at the gllcd binary) and /proc/self/exe otherwise; either way it
 * is entered through runSweepWorker() via the --worker flag.
 */

#ifndef GLLC_SERVICE_WORKER_HH
#define GLLC_SERVICE_WORKER_HH

#include <cstdint>
#include <string>

#include "analysis/job_spec.hh"
#include "analysis/sweep.hh"
#include "common/result.hh"
#include "service/event_log.hh"

namespace gllc
{

/** Exit code of a worker killed by the worker.crash fault site. */
constexpr int kWorkerCrashExitCode = 70;

/** Telemetry of one sharded run (service status, tests). */
struct ShardedRunStats
{
    unsigned workersSpawned = 0;
    unsigned workerCrashes = 0;
    /** Cells whose worker hung past cellTimeoutMs and was killed. */
    unsigned cellTimeouts = 0;
};

/**
 * Per-job observability context the daemon threads through a
 * sharded run.  traceDir enables cross-process tracing: every
 * spawned worker is handed a trace line naming a private
 * worker-<pid>.jsonl file under traceDir plus the daemon's trace
 * epoch, and the daemon stitches the files it finds there into one
 * merged per-job timeline after the run.  events (when non-null and
 * active) receives cell_retry / cell_quarantined structured events
 * as they happen.  A default-constructed context disables both.
 */
struct ShardTelemetry
{
    std::uint64_t jobId = 0;

    /** Daemon-minted per-job trace id (hex), tags every span. */
    std::string traceId;

    /** Worker trace files land here; "" = no cross-process traces. */
    std::string traceDir;

    /** The daemon collector's TraceCollector::epochSinceBootUs(). */
    double daemonEpochUs = 0.0;

    /** Structured event sink (not owned); may be null. */
    ServiceEventLog *events = nullptr;
};

/**
 * Execute @p spec with its cells sharded over @p workers worker
 * subprocesses (clamped to the frame count, minimum 1).  Execution
 * knobs inside the spec keep their engine meaning where they apply
 * (retries, backoffMs); threads/frameWindow are superseded by the
 * process-level sharding and checkpointing is the caller's concern,
 * not the workers'.  cellTimeoutMs is enforced HARD here, unlike
 * the in-process engine's warn-only watchdog: a worker that hangs
 * past the budget is SIGKILLed and the cell retried on a fresh
 * worker, then quarantined — safe because the fault boundary is a
 * disposable process with no shared state to corrupt (0 = no
 * timeout).  InvalidArgument when the spec does not
 * validate(); Io when workers cannot be spawned at all.  Individual
 * cell failures and crashes never fail the run — they quarantine,
 * exactly like the in-process engine.
 */
[[nodiscard]] Result<SweepResult>
runShardedSweep(const SweepJobSpec &spec, unsigned workers,
                ShardedRunStats *stats = nullptr,
                const ShardTelemetry *telemetry = nullptr);

/**
 * Worker-subprocess entry: serve cell requests on stdin/stdout per
 * the protocol above until EOF.  Returns the process exit code (0
 * on an orderly shutdown, EX_DATAERR-style nonzero when the parent
 * speaks garbage).
 */
int runSweepWorker();

} // namespace gllc

#endif // GLLC_SERVICE_WORKER_HH
