/**
 * @file
 * Content-addressed store of finished sweep reports.
 *
 * A sweep's result bytes are a pure function of its identity: the
 * rendered traces (frames + scale) and the replay parameters
 * (policies + LLC size).  SweepJobSpec captures exactly that split
 * as (traceHash, contentHash), so the pair addresses a result the
 * way a git blob hash addresses content — two tenants submitting
 * the same job byte-for-byte share one entry, and a resubmission is
 * a file read instead of an hours-long recompute.
 *
 * Layout: one file per result under the store root,
 *
 *   <root>/tr<traceHash:016x>-sp<specHash:016x>.json
 *
 * holding the exact writeSweepJson() bytes that were served.  Writes
 * go through a same-directory temp file and rename(2), so a crashed
 * daemon can never leave a torn entry for a later hit to trust;
 * results with quarantined cells are never stored (partial results
 * must be recomputed, not replayed forever).
 */

#ifndef GLLC_SERVICE_RESULT_STORE_HH
#define GLLC_SERVICE_RESULT_STORE_HH

#include <cstdint>
#include <string>

#include "common/result.hh"

namespace gllc
{

/** The content address of one sweep result. */
struct ResultKey
{
    std::uint64_t traceHash = 0;  ///< SweepJobSpec::traceHash()
    std::uint64_t specHash = 0;   ///< SweepJobSpec::contentHash()

    bool
    operator<(const ResultKey &other) const
    {
        if (traceHash != other.traceHash)
            return traceHash < other.traceHash;
        return specHash < other.specHash;
    }
    bool
    operator==(const ResultKey &other) const
    {
        return traceHash == other.traceHash
            && specHash == other.specHash;
    }
};

/** Filesystem-backed content-addressed result cache. */
class ResultStore
{
  public:
    /**
     * Use @p root as the store directory, creating it (and parents)
     * on first store() if absent.  An empty root disables the store:
     * contains() is false and store() is a no-op, which is how a
     * cache-less daemon runs.
     */
    explicit ResultStore(std::string root);

    /** True when the store is configured with a directory. */
    bool enabled() const { return !root_.empty(); }

    /** The file a key maps to ("" when disabled). */
    std::string path(const ResultKey &key) const;

    /** True when a stored result exists for @p key. */
    bool contains(const ResultKey &key) const;

    /**
     * Read the stored payload for @p key.  Io when absent or
     * unreadable — the caller falls back to computing.
     */
    [[nodiscard]] Result<std::string>
    load(const ResultKey &key) const;

    /**
     * Atomically persist @p payload under @p key (temp file +
     * rename).  Io on filesystem failure; the daemon logs and
     * continues, because serving the computed result matters more
     * than caching it.
     */
    [[nodiscard]] Result<Unit> store(const ResultKey &key,
                       const std::string &payload);

  private:
    std::string root_;
};

} // namespace gllc

#endif // GLLC_SERVICE_RESULT_STORE_HH
