/**
 * @file
 * Priority job queue with fair scheduling across tenants.
 *
 * The daemon serves whoever connects, which means one chatty tenant
 * must not starve everyone else.  Jobs are grouped into priority
 * classes (higher value runs first); within a class, tenants take
 * strict turns: each pop serves the front job of the next tenant in
 * a round-robin rotation, so a tenant that queued fifty jobs and a
 * tenant that queued one alternate instead of running back-to-back.
 * The rotation order is the order tenants first appeared in the
 * class, so scheduling is deterministic given the arrival sequence.
 *
 * Thread model: connection threads push, the single dispatcher
 * thread pops (blocking); close() wakes the dispatcher for
 * shutdown.  All state lives behind one mutex — job dispatch is
 * seconds-scale work, contention is irrelevant.
 */

#ifndef GLLC_SERVICE_JOB_QUEUE_HH
#define GLLC_SERVICE_JOB_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/job_spec.hh"
#include "common/thread_annotations.hh"

namespace gllc
{

/** One queued unit of work. */
struct QueuedJob
{
    std::uint64_t id = 0;
    std::string tenant;
    int priority = 0;
    SweepJobSpec spec;

    /**
     * When the daemon accepted the job, on its trace clock
     * (TraceCollector::nowUs()).  The dispatcher reads it at pop
     * time to charge queue-wait latency to the right histogram.
     */
    double acceptedUs = 0.0;
};

/** Tenant-fair priority queue (see file comment). */
class JobQueue
{
  public:
    /**
     * Enqueue a job; wakes a blocked waitPop().  False once the
     * queue is close()d — nothing will ever pop the job, so the
     * caller must fail it instead of waiting on it.
     */
    [[nodiscard]] bool push(QueuedJob job) GLLC_EXCLUDES(mutex_);

    /**
     * Dequeue the next job per the scheduling policy without
     * blocking; false when the queue is empty.
     */
    [[nodiscard]] bool pop(QueuedJob &out) GLLC_EXCLUDES(mutex_);

    /**
     * Blocking pop: waits for a job or close().  False only after
     * close() with the queue drained-or-abandoned.
     */
    [[nodiscard]] bool waitPop(QueuedJob &out) GLLC_EXCLUDES(mutex_);

    /** Wake all waiters; subsequent waitPop() calls fail fast. */
    void close() GLLC_EXCLUDES(mutex_);

    /** Jobs currently queued (not the one being executed). */
    std::size_t depth() const GLLC_EXCLUDES(mutex_);

    /**
     * Queued jobs per priority class, highest priority first.
     * Classes empty out and disappear as jobs pop, so this lists
     * only classes with work — status reporting and the per-class
     * queue-depth gauges consume it.
     */
    std::vector<std::pair<int, std::size_t>> classDepths() const
        GLLC_EXCLUDES(mutex_);

  private:
    /** One priority class: tenant lanes plus their rotation. */
    struct PriorityClass
    {
        /** Tenants with queued jobs, in round-robin order. */
        std::vector<std::string> rotation;
        std::map<std::string, std::deque<QueuedJob>> lanes;
    };

    bool popLocked(QueuedJob &out) GLLC_REQUIRES(mutex_);

    mutable Mutex mutex_;
    CondVar available_;
    /** Classes keyed by priority, highest first. */
    std::map<int, PriorityClass, std::greater<>> classes_
        GLLC_GUARDED_BY(mutex_);
    std::size_t depth_ GLLC_GUARDED_BY(mutex_) = 0;
    bool closed_ GLLC_GUARDED_BY(mutex_) = false;
};

} // namespace gllc

#endif // GLLC_SERVICE_JOB_QUEUE_HH
