/**
 * @file
 * Priority job queue with fair scheduling across tenants.
 *
 * The daemon serves whoever connects, which means one chatty tenant
 * must not starve everyone else.  Jobs are grouped into priority
 * classes (higher value runs first); within a class, tenants take
 * strict turns: each pop serves the front job of the next tenant in
 * a round-robin rotation, so a tenant that queued fifty jobs and a
 * tenant that queued one alternate instead of running back-to-back.
 * The rotation order is the order tenants first appeared in the
 * class, so scheduling is deterministic given the arrival sequence.
 *
 * Bounded admission: the queue optionally caps its total depth and
 * each tenant's in-queue share (configureLimits), and push() reports
 * a typed PushOutcome instead of a bare bool so the daemon can shed
 * an over-limit submit with a reasoned reply instead of letting a
 * flood grow memory without bound.  A client that gives up on a
 * queued job can cancel() it by id before it dispatches.
 *
 * Thread model: connection threads push, the single dispatcher
 * thread pops (blocking); close() wakes the dispatcher for
 * shutdown.  All state lives behind one mutex — job dispatch is
 * seconds-scale work, contention is irrelevant.
 */

#ifndef GLLC_SERVICE_JOB_QUEUE_HH
#define GLLC_SERVICE_JOB_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/job_spec.hh"
#include "common/thread_annotations.hh"

namespace gllc
{

/** One queued unit of work. */
struct QueuedJob
{
    std::uint64_t id = 0;
    std::string tenant;
    int priority = 0;
    SweepJobSpec spec;

    /**
     * When the daemon accepted the job, on its trace clock
     * (TraceCollector::nowUs()).  The dispatcher reads it at pop
     * time to charge queue-wait latency to the right histogram.
     */
    double acceptedUs = 0.0;
};

/** Admission limits; 0 = unlimited (the default). */
struct QueueLimits
{
    /** Cap on total queued jobs across all classes and tenants. */
    std::size_t maxDepth = 0;

    /** Cap on one tenant's queued jobs (across all its classes). */
    std::size_t tenantQuota = 0;
};

/** Tenant-fair priority queue (see file comment). */
class JobQueue
{
  public:
    /** Why a push() was accepted or refused. */
    enum class PushOutcome : std::uint8_t
    {
        Ok,                   ///< queued; a waitPop() was woken
        Closed,               ///< queue close()d — fail the job
        QueueFull,            ///< total depth cap reached — shed
        TenantQuotaExceeded,  ///< tenant's in-queue quota hit — shed
    };

    /**
     * Set admission limits; applies to subsequent pushes only (jobs
     * already queued — e.g. recovered ones — are never evicted).
     */
    void configureLimits(QueueLimits limits) GLLC_EXCLUDES(mutex_);

    /**
     * Enqueue a job; wakes a blocked waitPop() on Ok.  Any other
     * outcome means nothing will ever pop the job: the caller must
     * fail or shed it instead of waiting on it.
     */
    [[nodiscard]] PushOutcome push(QueuedJob job)
        GLLC_EXCLUDES(mutex_);

    /**
     * Remove a still-queued job by id (a waiting client hung up).
     * False when the job is not in the queue — already popped,
     * already cancelled, or never queued; the caller must then
     * leave it to run.
     */
    [[nodiscard]] bool cancel(std::uint64_t id)
        GLLC_EXCLUDES(mutex_);

    /**
     * Dequeue the next job per the scheduling policy without
     * blocking; false when the queue is empty.
     */
    [[nodiscard]] bool pop(QueuedJob &out) GLLC_EXCLUDES(mutex_);

    /**
     * Blocking pop: waits for a job or close().  False only after
     * close() with the queue drained-or-abandoned.
     */
    [[nodiscard]] bool waitPop(QueuedJob &out) GLLC_EXCLUDES(mutex_);

    /** Wake all waiters; subsequent waitPop() calls fail fast. */
    void close() GLLC_EXCLUDES(mutex_);

    /** Jobs currently queued (not the one being executed). */
    std::size_t depth() const GLLC_EXCLUDES(mutex_);

    /**
     * Queued jobs per priority class, highest priority first.
     * Classes empty out and disappear as jobs pop, so this lists
     * only classes with work — status reporting and the per-class
     * queue-depth gauges consume it.
     */
    std::vector<std::pair<int, std::size_t>> classDepths() const
        GLLC_EXCLUDES(mutex_);

  private:
    /** One priority class: tenant lanes plus their rotation. */
    struct PriorityClass
    {
        /** Tenants with queued jobs, in round-robin order. */
        std::vector<std::string> rotation;
        std::map<std::string, std::deque<QueuedJob>> lanes;
    };

    bool popLocked(QueuedJob &out) GLLC_REQUIRES(mutex_);

    /** Drop @p tenant's depth by one; erases the entry at zero. */
    void releaseTenantLocked(const std::string &tenant)
        GLLC_REQUIRES(mutex_);

    mutable Mutex mutex_;
    CondVar available_;
    /** Classes keyed by priority, highest first. */
    std::map<int, PriorityClass, std::greater<>> classes_
        GLLC_GUARDED_BY(mutex_);
    /** In-queue jobs per tenant, summed across classes. */
    std::map<std::string, std::size_t> tenantDepth_
        GLLC_GUARDED_BY(mutex_);
    QueueLimits limits_ GLLC_GUARDED_BY(mutex_);
    std::size_t depth_ GLLC_GUARDED_BY(mutex_) = 0;
    bool closed_ GLLC_GUARDED_BY(mutex_) = false;
};

} // namespace gllc

#endif // GLLC_SERVICE_JOB_QUEUE_HH
