/**
 * @file
 * Durable job journal (write-ahead log) of the gllcd sweep service.
 *
 * The JobQueue exists only in memory, so without a journal a daemon
 * crash silently loses every accepted-but-unfinished job — the one
 * failure mode a client cannot defend against, because its submit
 * was already acknowledged by the act of queuing.  The journal
 * closes that hole: every accepted job's canonical SweepJobSpec JSON
 * is appended (and fsync'd) BEFORE the job enters the queue, and a
 * finish record lands when the job reaches a terminal state
 * (completed, failed, cancelled, shed).  On `gllcd --recover` the
 * journal replays: unfinished jobs re-enqueue in their original
 * acceptance order, so a kill -9 mid-queue followed by a restart
 * completes every accepted job — and the results, being computed
 * from the same canonical spec, are byte-identical to a local run.
 *
 * Format ("gllcd-journal-v1"): JSON lines sealed exactly like the
 * checkpoint journal (sealJournalLine: trailing fnv1a64 "line_hash",
 * torn tails trimmed on append-open, bad lines skipped on load):
 *
 *   header  {"gllcd_journal":1,...}
 *   accept  {"accept":1,"job":ID,"tenant":T,"priority":P,
 *            "spec":"<escaped SweepJobSpec::toJson()>",...}
 *   finish  {"finish":1,"job":ID,"outcome":"completed",...}
 *
 * The spec travels as an escaped string so replay re-parses it with
 * the same parseSweepJobSpec() every other consumer uses; the
 * canonical serialization round-trips exactly, so a recovered job's
 * contentHash()/traceHash() — and therefore its ResultStore key —
 * are identical to the original submission's.
 */

#ifndef GLLC_SERVICE_JOB_JOURNAL_HH
#define GLLC_SERVICE_JOB_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/thread_annotations.hh"
#include "service/job_queue.hh"

namespace gllc
{

/** One accepted-but-unfinished job restored from a journal. */
struct JournalJob
{
    std::uint64_t id = 0;
    std::string tenant;
    int priority = 0;
    SweepJobSpec spec;
};

/** What a journal replay found. */
struct JournalRecovery
{
    /** Unfinished jobs, in original acceptance order. */
    std::vector<JournalJob> pending;

    /** Highest job id ever journaled (seed for fresh ids). */
    std::uint64_t maxJobId = 0;

    std::size_t accepted = 0;      ///< accept records read
    std::size_t finished = 0;      ///< finish records read
    std::size_t skippedLines = 0;  ///< torn/corrupt lines skipped
};

/**
 * Appending journal writer (see file comment).  Thread-safe: accept
 * records come from connection threads, finish records from the
 * dispatcher.  Every record is fsync'd before the call returns —
 * jobs are seconds-scale work, so per-record durability is cheap
 * relative to what it buys.  A default-constructed (never opened)
 * journal drops records for free, so call sites need no guards.
 */
class JobJournal
{
  public:
    JobJournal() = default;
    ~JobJournal();

    JobJournal(const JobJournal &) = delete;
    JobJournal &operator=(const JobJournal &) = delete;

    /**
     * Open @p path for appending: trim a torn tail, write the
     * header when starting fresh.  Io when the path is unusable.
     */
    [[nodiscard]] Result<Unit> open(const std::string &path)
        GLLC_EXCLUDES(mutex_);

    /** True once open() succeeded (records will persist). */
    bool active() const GLLC_EXCLUDES(mutex_);

    /** Durably record an accepted job.  Call BEFORE queuing it. */
    void recordAccept(const QueuedJob &job) GLLC_EXCLUDES(mutex_);

    /**
     * Durably record a job's terminal outcome ("completed",
     * "failed", "cancelled", "shed").
     */
    void recordFinish(std::uint64_t id, const char *outcome)
        GLLC_EXCLUDES(mutex_);

    /** Flush, sync, and close; further records are dropped. */
    void close() GLLC_EXCLUDES(mutex_);

    /**
     * Replay the journal at @p path.  Io when the file cannot be
     * opened, Corrupt when it is non-empty without a valid header;
     * individually bad lines (the torn tail of a killed daemon) are
     * skipped and counted, never fatal.
     */
    [[nodiscard]] static Result<JournalRecovery>
    load(const std::string &path);

  private:
    void appendLocked(const std::string &line)
        GLLC_REQUIRES(mutex_);

    mutable Mutex mutex_;
    std::FILE *file_ GLLC_GUARDED_BY(mutex_) = nullptr;
    std::string path_;
};

} // namespace gllc

#endif // GLLC_SERVICE_JOB_JOURNAL_HH
