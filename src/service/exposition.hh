/**
 * @file
 * Embedded HTTP exposition listener for gllcd.
 *
 * Prometheus and friends scrape over plain HTTP, so the daemon
 * offers a deliberately tiny single-threaded HTTP/1.0-style server
 * on loopback: GET /metrics answers the text exposition format
 * (version 0.0.4) rendered from the metrics registry, GET /status
 * answers the status_v2 JSON document, anything else is a 404.
 * Every response closes the connection — scrapes are seconds apart,
 * connection reuse would buy nothing and cost state.
 *
 * This is not a general web server and must never become one: no
 * TLS, no keep-alive, no request bodies, loopback only, 8 KB
 * request cap, one connection served at a time.  The framed gllcd
 * protocol remains the real API; this listener exists only so a
 * scraper needs zero custom code.
 */

#ifndef GLLC_SERVICE_EXPOSITION_HH
#define GLLC_SERVICE_EXPOSITION_HH

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "common/result.hh"

namespace gllc
{

/** Loopback HTTP listener serving /metrics and /status. */
class MetricsHttpServer
{
  public:
    /** Renders a response body on demand (called per request). */
    using BodyFn = std::function<std::string()>;

    MetricsHttpServer() = default;

    /** stop()s if still running. */
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and serve @p
     * metrics_text on /metrics and @p status_json on /status from a
     * background thread.  Io when the bind fails.
     */
    [[nodiscard]] Result<Unit> start(int port, BodyFn metrics_text,
                                     BodyFn status_json);

    /** Close the listener and join the serving thread. Idempotent. */
    void stop();

    /** The port actually bound (after start(); -1 = not serving). */
    int port() const { return boundPort_; }

  private:
    void serveLoop();
    void serveOne(int fd);

    BodyFn metricsText_;
    BodyFn statusJson_;
    int listenFd_ = -1;
    int boundPort_ = -1;
    std::thread thread_;
    std::atomic<bool> running_{false};
};

} // namespace gllc

#endif // GLLC_SERVICE_EXPOSITION_HH
