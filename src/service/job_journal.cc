#include "service/job_journal.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <unistd.h>

#include "analysis/checkpoint.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace gllc
{

namespace
{

std::string
journalHeaderLine()
{
    return sealJournalLine("{\"gllcd_journal\":1");
}

/**
 * Unseal one journal line and re-parse it as JSON.  unsealJournalLine
 * strips to the checksummed prefix WITHOUT its closing brace, so one
 * is re-appended before parsing.
 */
bool
unsealToJson(std::string line, JsonValue &doc)
{
    while (!line.empty()
           && (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
    if (!unsealJournalLine(line))
        return false;
    line += '}';
    Result<JsonValue> parsed = parseJson(line);
    if (!parsed.ok() || !parsed.value().isObject())
        return false;
    doc = parsed.take();
    return true;
}

} // namespace

JobJournal::~JobJournal()
{
    close();
}

Result<Unit>
JobJournal::open(const std::string &path)
{
    // Trim the torn final line a kill -9 can leave, exactly like
    // CheckpointWriter: the next record must start on a clean line
    // boundary, not glue onto a fragment.
    std::string bytes;
    {
        std::ifstream probe(path, std::ios::binary);
        std::ostringstream ss;
        ss << probe.rdbuf();
        bytes = ss.str();
    }
    if (!bytes.empty() && bytes.back() != '\n') {
        const std::size_t keep = bytes.rfind('\n') + 1;
        if (::truncate(path.c_str(), static_cast<off_t>(keep))
            != 0)
            warn("cannot trim torn tail of job journal \"%s\"",
                 path.c_str());
        bytes.resize(keep);
    }
    const bool write_header = bytes.empty();

    MutexLock lock(mutex_);
    if (file_ != nullptr)
        return Error::format(ErrorCode::InvalidArgument,
                             "job journal already open at \"%s\"",
                             path_.c_str());
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr)
        return Error::format(ErrorCode::Io,
                             "cannot open job journal \"%s\": %s",
                             path.c_str(), std::strerror(errno));
    path_ = path;
    if (write_header)
        appendLocked(journalHeaderLine());
    return Unit{};
}

bool
JobJournal::active() const
{
    MutexLock lock(mutex_);
    return file_ != nullptr;
}

void
JobJournal::appendLocked(const std::string &line)
{
    if (file_ == nullptr)
        return;
    if (std::fwrite(line.data(), 1, line.size(), file_)
        != line.size()) {
        warn("job journal write to \"%s\" failed; journaling "
             "disabled for the rest of this run",
             path_.c_str());
        std::fclose(file_);
        file_ = nullptr;
        return;
    }
    std::fflush(file_);
    // Durability is the whole point of this file: a record the page
    // cache still owns would vanish with the crash it exists to
    // survive.
    ::fsync(::fileno(file_));
}

void
JobJournal::recordAccept(const QueuedJob &job)
{
    std::string line = "{\"accept\":1,\"job\":";
    line += std::to_string(job.id);
    line += ",\"tenant\":\"";
    line += jsonEscape(job.tenant);
    line += "\",\"priority\":";
    line += std::to_string(job.priority);
    line += ",\"spec\":\"";
    line += jsonEscape(job.spec.toJson());
    line += '"';
    const std::string sealed = sealJournalLine(std::move(line));
    MutexLock lock(mutex_);
    appendLocked(sealed);
}

void
JobJournal::recordFinish(std::uint64_t id, const char *outcome)
{
    std::string line = "{\"finish\":1,\"job\":";
    line += std::to_string(id);
    line += ",\"outcome\":\"";
    line += jsonEscape(outcome);
    line += '"';
    const std::string sealed = sealJournalLine(std::move(line));
    MutexLock lock(mutex_);
    appendLocked(sealed);
}

void
JobJournal::close()
{
    MutexLock lock(mutex_);
    if (file_ == nullptr)
        return;
    std::fflush(file_);
    ::fsync(::fileno(file_));
    std::fclose(file_);
    file_ = nullptr;
}

Result<JournalRecovery>
JobJournal::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return Error::format(ErrorCode::Io,
                             "cannot open job journal \"%s\"",
                             path.c_str());

    JournalRecovery recovery;
    std::string line;
    if (!std::getline(is, line))
        return recovery;  // empty journal: nothing to recover
    {
        JsonValue header;
        if (!unsealToJson(line, header)
            || header.find("gllcd_journal") == nullptr)
            return Error::format(
                ErrorCode::Corrupt,
                "job journal \"%s\" has no valid header line",
                path.c_str());
    }

    // Acceptance order is recovery order, so replay preserves the
    // original scheduling sequence.
    std::vector<JournalJob> accepted;
    std::set<std::uint64_t> finished;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        JsonValue doc;
        if (!unsealToJson(std::move(line), doc)) {
            ++recovery.skippedLines;
            continue;
        }
        const JsonValue *job_node = doc.find("job");
        if (job_node == nullptr) {
            ++recovery.skippedLines;
            continue;
        }
        Result<std::uint64_t> job_id = job_node->asU64("job");
        if (!job_id.ok()) {
            ++recovery.skippedLines;
            continue;
        }
        recovery.maxJobId =
            std::max(recovery.maxJobId, job_id.value());

        if (doc.find("finish") != nullptr) {
            ++recovery.finished;
            finished.insert(job_id.value());
            continue;
        }
        if (doc.find("accept") == nullptr) {
            ++recovery.skippedLines;
            continue;
        }
        const JsonValue *tenant = doc.find("tenant");
        const JsonValue *priority = doc.find("priority");
        const JsonValue *spec_node = doc.find("spec");
        if (tenant == nullptr || priority == nullptr
            || spec_node == nullptr) {
            ++recovery.skippedLines;
            continue;
        }
        Result<std::string> tenant_name =
            tenant->asString("tenant");
        Result<std::string> spec_json = spec_node->asString("spec");
        if (!tenant_name.ok() || !spec_json.ok()
            || !priority->isNumber()) {
            ++recovery.skippedLines;
            continue;
        }
        Result<SweepJobSpec> spec =
            parseSweepJobSpec(spec_json.value());
        if (!spec.ok()) {
            warn("job journal: skipping job %llu with unusable "
                 "spec: %s",
                 static_cast<unsigned long long>(job_id.value()),
                 spec.error().toString().c_str());
            ++recovery.skippedLines;
            continue;
        }
        JournalJob job;
        job.id = job_id.value();
        job.tenant = tenant_name.take();
        job.priority = static_cast<int>(priority->number());
        job.spec = spec.take();
        accepted.push_back(std::move(job));
        ++recovery.accepted;
    }

    for (JournalJob &job : accepted) {
        if (finished.count(job.id) == 0)
            recovery.pending.push_back(std::move(job));
    }
    return recovery;
}

} // namespace gllc
