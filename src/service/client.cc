#include "service/client.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace gllc
{

Result<ServiceClient>
ServiceClient::connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        return Error::format(ErrorCode::InvalidArgument,
                             "socket path too long: %s",
                             path.c_str());
    std::signal(SIGPIPE, SIG_IGN);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return Error::format(ErrorCode::Io, "socket(): %s",
                             std::strerror(errno));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        const Error err =
            Error::format(ErrorCode::Io, "cannot connect to %s: %s",
                          path.c_str(), std::strerror(errno));
        ::close(fd);
        return err;
    }
    return ServiceClient(fd);
}

Result<ServiceClient>
ServiceClient::connectTcp(int port)
{
    std::signal(SIGPIPE, SIG_IGN);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Error::format(ErrorCode::Io, "socket(): %s",
                             std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        const Error err = Error::format(
            ErrorCode::Io, "cannot connect to port %d: %s", port,
            std::strerror(errno));
        ::close(fd);
        return err;
    }
    return ServiceClient(fd);
}

ServiceClient::~ServiceClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

ServiceClient::ServiceClient(ServiceClient &&other) noexcept
    : fd_(other.fd_)
{
    other.fd_ = -1;
}

ServiceClient &
ServiceClient::operator=(ServiceClient &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

Result<SubmitOutcome>
ServiceClient::submit(const SweepJobSpec &spec,
                      const std::string &tenant, int priority,
                      ShedInfo *shed)
{
    Result<Unit> sent =
        writeFrame(fd_, submitEnvelopeJson(tenant, priority));
    if (sent.ok())
        sent = writeFrame(fd_, spec.toJson());
    if (!sent.ok()) {
        // The daemon may have answered before reading the request —
        // a connection-limit shed writes its frame and hangs up
        // immediately, which makes our writes fail with EPIPE.  A
        // buffered early answer beats the write error.
        std::string early;
        Result<bool> got = readFrame(fd_, early, 1000);
        if (got.ok() && got.value()) {
            SubmitOutcome outcome;
            Error daemon_error;
            Result<bool> is_result = parseResponseFrame(
                early, outcome.header, daemon_error, shed);
            if (is_result.ok() && !is_result.value())
                return daemon_error;
        }
        return sent.error();
    }

    std::string response;
    Result<bool> got = readFrame(fd_, response);
    if (!got.ok())
        return got.error();
    if (!got.value())
        return Error(ErrorCode::Truncated,
                     "daemon closed the connection before "
                     "answering");
    SubmitOutcome outcome;
    Error daemon_error;
    Result<bool> is_result = parseResponseFrame(
        response, outcome.header, daemon_error, shed);
    if (!is_result.ok())
        return is_result.error();
    if (!is_result.value())
        return daemon_error;

    Result<bool> payload = readFrame(fd_, outcome.payload);
    if (!payload.ok())
        return payload.error();
    if (!payload.value())
        return Error(ErrorCode::Truncated,
                     "daemon closed the connection before the "
                     "result payload");
    return outcome;
}

namespace
{

/** Shared request/response round trip of both status flavours. */
Result<std::string>
statusRoundTrip(int fd, const std::string &envelope)
{
    Result<Unit> sent = writeFrame(fd, envelope);
    if (!sent.ok())
        return sent.error();
    std::string response;
    Result<bool> got = readFrame(fd, response);
    if (!got.ok())
        return got.error();
    if (!got.value())
        return Error(ErrorCode::Truncated,
                     "daemon closed the connection before "
                     "answering");
    return response;
}

} // namespace

Result<std::string>
ServiceClient::status()
{
    return statusRoundTrip(fd_, statusEnvelopeJson());
}

Result<std::string>
ServiceClient::statusV2()
{
    return statusRoundTrip(fd_, statusV2EnvelopeJson());
}

} // namespace gllc
