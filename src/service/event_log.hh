/**
 * @file
 * Structured JSON-lines event log for the sweep service.
 *
 * Every operationally interesting transition in gllcd — a job
 * accepted, started, served from cache, retried, quarantined,
 * completed — appends one self-describing JSON object per line
 * (schema "gllcd-events-v1") to a log file, replacing the ad-hoc
 * note() lines the service path used before.  Lines are flushed as
 * they are written, so a crashed or SIGTERM'd daemon leaves a
 * parseable prefix; tools/check_observability.py --events validates
 * the schema and CI cross-checks quarantine events against the
 * result payload.
 *
 * Example line:
 *   {"schema": "gllcd-events-v1", "ts_ms": 1754650000123,
 *    "event": "job_accepted", "job": 3, "tenant": "alice",
 *    "priority": 1, "frames": 2, "policies": 2}
 */

#ifndef GLLC_SERVICE_EVENT_LOG_HH
#define GLLC_SERVICE_EVENT_LOG_HH

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>

#include "common/result.hh"
#include "common/thread_annotations.hh"

namespace gllc
{

/**
 * One event under construction: a type plus typed key/value fields,
 * rendered incrementally so emitting an event never allocates a DOM.
 * Field order is the call order, giving deterministic lines.
 */
class ServiceEvent
{
  public:
    explicit ServiceEvent(const char *type);

    ServiceEvent &str(const char *key, const std::string &value);
    ServiceEvent &num(const char *key, std::int64_t value);
    ServiceEvent &dbl(const char *key, double value);

  private:
    friend class ServiceEventLog;
    std::string fields_;  ///< pre-rendered `, "k": v` fragments
};

/**
 * The append-only event sink.  Thread-safe: connection handlers, the
 * dispatcher, and worker-driving shard threads all emit concurrently.
 * A default-constructed (or unopened) log drops events for free, so
 * call sites never need to test whether logging is configured.
 */
class ServiceEventLog
{
  public:
    ServiceEventLog() = default;

    /** Open (append) @p path; "" keeps the log disabled. */
    [[nodiscard]] Result<Unit> open(const std::string &path);

    /** True when events are being written. */
    bool active() const
    {
        return active_.load(std::memory_order_relaxed);
    }

    /** Append one schema-stamped, wall-clock-stamped line. */
    void emit(const ServiceEvent &event);

  private:
    std::atomic<bool> active_{false};
    Mutex mutex_;
    std::ofstream os_ GLLC_GUARDED_BY(mutex_);
};

} // namespace gllc

#endif // GLLC_SERVICE_EVENT_LOG_HH
