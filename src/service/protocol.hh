/**
 * @file
 * Wire protocol of the gllcd sweep service.
 *
 * Framing.  Every message is one frame: a 4-byte big-endian payload
 * length followed by that many bytes of UTF-8 JSON (or, for result
 * payloads, raw report bytes).  Frames larger than kMaxFrameBytes
 * are rejected before allocation, a connection that closes mid-frame
 * surfaces as Truncated, and unparseable payloads surface as
 * Corrupt — always a typed Error on the daemon side, never a crash,
 * because clients are outside our trust boundary.
 *
 * Conversation shapes (client speaks first):
 *
 *   submit   -> envelope frame {"gllcd":1,"type":"submit",
 *                               "tenant":T,"priority":P}
 *            -> spec frame     SweepJobSpec::toJson() bytes
 *            <- result frame   {"gllcd":1,"type":"result",...}
 *               payload frame  exact writeSweepJson() bytes
 *               (or one error frame)
 *   status   -> envelope frame {"gllcd":1,"type":"status"}
 *            <- status frame   {"gllcd":1,"type":"status",...}
 *   status_v2-> envelope frame {"gllcd":1,"type":"status_v2"}
 *            <- status frame   {"gllcd":1,"type":"status_v2",
 *                               "uptime_seconds":...,"queue":{...},
 *                               "jobs":{...},"workers":{...},
 *                               "latency_ms":{...},...}
 *
 * A submit the daemon refuses to queue (bounded admission) is
 * answered with a shed frame {"gllcd":1,"type":"shed","reason":R,
 * "retry_after_ms":N} instead of a result header.  Clients surface
 * it as an Overloaded error and should back off for roughly the
 * hinted interval before retrying.
 *
 * IO deadlines.  Every helper below takes a timeout in milliseconds
 * (0 = wait forever, the legacy behavior).  A bounded read or write
 * polls the fd with the remaining budget and surfaces an expired
 * deadline as a Timeout error, so a slowloris peer — one that sends
 * a partial header and then nothing — costs a connection thread at
 * most the deadline, never forever.  These wrappers (plus
 * worker.cc's pipe reader) are the only sanctioned raw-fd IO in
 * src/service/; gllc-lint enforces that.
 *
 * status_v2 is the telemetry view gllc-top polls: queue depth per
 * priority class, job counters, cache hit rate, and rolling
 * p50/p95 latency quantiles read from the metrics registry.  It is
 * additive — same version, new request type — so old clients keep
 * speaking plain status untouched.
 *
 * The spec travels as its own frame, byte-for-byte the canonical
 * SweepJobSpec serialization, so the daemon parses it with the same
 * parseSweepJobSpec() every other consumer uses and the envelope
 * never needs to nest documents.
 *
 * Errors cross the wire as {"gllcd":1,"type":"error","code":
 * "<errorCodeName>","message":...} and reconstruct into the same
 * typed Error the daemon produced locally.
 */

#ifndef GLLC_SERVICE_PROTOCOL_HH
#define GLLC_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "analysis/job_spec.hh"
#include "common/result.hh"

namespace gllc
{

/** Protocol version pinned into every envelope. */
constexpr std::uint32_t kServiceProtocolVersion = 1;

/** Sanity cap on one frame (64 MB covers any realistic report). */
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/**
 * Write one length-prefixed frame to @p fd within @p timeout_ms
 * (0 = wait forever).  LimitExceeded when the payload exceeds
 * kMaxFrameBytes; Timeout when the deadline expires mid-write; Io
 * when the peer is gone.
 */
[[nodiscard]] Result<Unit>
writeFrame(int fd, const std::string &payload, int timeout_ms = 0);

/**
 * Read one frame from @p fd into @p payload within @p timeout_ms
 * (0 = wait forever).  ok(false) on a clean close (EOF before any
 * header byte) — the peer simply hung up; Truncated when the stream
 * ends inside a frame, LimitExceeded when the header declares more
 * than kMaxFrameBytes, Timeout when the deadline expires with the
 * frame incomplete, Io on read errors.
 */
[[nodiscard]] Result<bool>
readFrame(int fd, std::string &payload, int timeout_ms = 0);

/**
 * Read up to @p cap bytes once @p fd turns readable, within
 * @p timeout_ms (0 = wait forever).  ok(0) means EOF; Timeout when
 * nothing became readable in time; Io on read errors.  For callers
 * (the exposition HTTP listener) that parse their own stream
 * framing but must still bound hostile peers.
 */
[[nodiscard]] Result<std::size_t>
readSomeDeadline(int fd, char *buf, std::size_t cap,
                 int timeout_ms);

/**
 * Write all @p len bytes within @p timeout_ms (0 = wait forever).
 * Timeout when the deadline expires mid-write; Io when the peer is
 * gone.
 */
[[nodiscard]] Result<Unit>
writeAllDeadline(int fd, const char *buf, std::size_t len,
                 int timeout_ms);

/**
 * True when the peer of socket @p fd has hung up (orderly close or
 * error state).  Non-blocking, never consumes stream bytes: the
 * daemon probes waiting submitters with this so a job whose client
 * vanished can be cancelled before it ever dispatches.
 */
bool peerClosed(int fd);

/** What a request envelope asks for. */
enum class RequestType : std::uint8_t
{
    Submit,
    Status,
    StatusV2,
};

/** Parsed request envelope (the spec arrives in its own frame). */
struct RequestEnvelope
{
    RequestType type = RequestType::Status;
    std::string tenant = "default";
    int priority = 0;
};

/** Serialize a submit envelope. */
std::string submitEnvelopeJson(const std::string &tenant,
                               int priority);

/** Serialize a status envelope. */
std::string statusEnvelopeJson();

/** Serialize a status_v2 (telemetry status) envelope. */
std::string statusV2EnvelopeJson();

/**
 * Parse a request envelope.  Corrupt for non-JSON, BadMagic for a
 * document that is not a gllcd envelope, BadVersion for a protocol
 * we do not speak, InvalidArgument for an unknown request type.
 */
[[nodiscard]] Result<RequestEnvelope>
parseRequestEnvelope(const std::string &json);

/** Header of a successful job response (payload frame follows). */
struct ResultHeader
{
    std::uint64_t jobId = 0;
    bool cached = false;            ///< served from the result store
    std::uint64_t specHash = 0;     ///< SweepJobSpec::contentHash()
    std::uint64_t traceHash = 0;    ///< SweepJobSpec::traceHash()
    std::uint32_t quarantined = 0;  ///< cells that failed permanently
    double wallSeconds = 0.0;       ///< 0 for cache hits
};

std::string resultHeaderJson(const ResultHeader &header);

/** Serialize a typed Error as an error frame. */
std::string errorFrameJson(const Error &error);

/**
 * Why (and for how long) the daemon refused to queue a submit.
 * Reasons are stable wire strings: "queue_full", "tenant_quota",
 * "conn_limit", "shutdown".
 */
struct ShedInfo
{
    std::string reason;
    int retryAfterMs = 0;  ///< client backoff hint, milliseconds
};

/** Serialize a load-shed response as a shed frame. */
std::string shedFrameJson(const ShedInfo &shed);

/**
 * Classify a response frame: fills exactly one of @p header (result;
 * caller then reads the payload frame) or @p error (the daemon's
 * typed Error, reconstructed).  Returns false for an error frame.
 * A shed frame also returns false, with @p error carrying
 * ErrorCode::Overloaded and, when @p shed is non-null, the parsed
 * reason and retry-after hint.
 */
[[nodiscard]] Result<bool>
parseResponseFrame(const std::string &json, ResultHeader &header,
                   Error &error, ShedInfo *shed = nullptr);

} // namespace gllc

#endif // GLLC_SERVICE_PROTOCOL_HH
