/**
 * @file
 * Wire protocol of the gllcd sweep service.
 *
 * Framing.  Every message is one frame: a 4-byte big-endian payload
 * length followed by that many bytes of UTF-8 JSON (or, for result
 * payloads, raw report bytes).  Frames larger than kMaxFrameBytes
 * are rejected before allocation, a connection that closes mid-frame
 * surfaces as Truncated, and unparseable payloads surface as
 * Corrupt — always a typed Error on the daemon side, never a crash,
 * because clients are outside our trust boundary.
 *
 * Conversation shapes (client speaks first):
 *
 *   submit   -> envelope frame {"gllcd":1,"type":"submit",
 *                               "tenant":T,"priority":P}
 *            -> spec frame     SweepJobSpec::toJson() bytes
 *            <- result frame   {"gllcd":1,"type":"result",...}
 *               payload frame  exact writeSweepJson() bytes
 *               (or one error frame)
 *   status   -> envelope frame {"gllcd":1,"type":"status"}
 *            <- status frame   {"gllcd":1,"type":"status",...}
 *   status_v2-> envelope frame {"gllcd":1,"type":"status_v2"}
 *            <- status frame   {"gllcd":1,"type":"status_v2",
 *                               "uptime_seconds":...,"queue":{...},
 *                               "jobs":{...},"workers":{...},
 *                               "latency_ms":{...},...}
 *
 * status_v2 is the telemetry view gllc-top polls: queue depth per
 * priority class, job counters, cache hit rate, and rolling
 * p50/p95 latency quantiles read from the metrics registry.  It is
 * additive — same version, new request type — so old clients keep
 * speaking plain status untouched.
 *
 * The spec travels as its own frame, byte-for-byte the canonical
 * SweepJobSpec serialization, so the daemon parses it with the same
 * parseSweepJobSpec() every other consumer uses and the envelope
 * never needs to nest documents.
 *
 * Errors cross the wire as {"gllcd":1,"type":"error","code":
 * "<errorCodeName>","message":...} and reconstruct into the same
 * typed Error the daemon produced locally.
 */

#ifndef GLLC_SERVICE_PROTOCOL_HH
#define GLLC_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "analysis/job_spec.hh"
#include "common/result.hh"

namespace gllc
{

/** Protocol version pinned into every envelope. */
constexpr std::uint32_t kServiceProtocolVersion = 1;

/** Sanity cap on one frame (64 MB covers any realistic report). */
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/**
 * Write one length-prefixed frame to @p fd.  LimitExceeded when the
 * payload exceeds kMaxFrameBytes; Io when the peer is gone.
 */
[[nodiscard]] Result<Unit>
writeFrame(int fd, const std::string &payload);

/**
 * Read one frame from @p fd into @p payload.  ok(false) on a clean
 * close (EOF before any header byte) — the peer simply hung up;
 * Truncated when the stream ends inside a frame, LimitExceeded when
 * the header declares more than kMaxFrameBytes, Io on read errors.
 */
[[nodiscard]] Result<bool> readFrame(int fd, std::string &payload);

/** What a request envelope asks for. */
enum class RequestType : std::uint8_t
{
    Submit,
    Status,
    StatusV2,
};

/** Parsed request envelope (the spec arrives in its own frame). */
struct RequestEnvelope
{
    RequestType type = RequestType::Status;
    std::string tenant = "default";
    int priority = 0;
};

/** Serialize a submit envelope. */
std::string submitEnvelopeJson(const std::string &tenant,
                               int priority);

/** Serialize a status envelope. */
std::string statusEnvelopeJson();

/** Serialize a status_v2 (telemetry status) envelope. */
std::string statusV2EnvelopeJson();

/**
 * Parse a request envelope.  Corrupt for non-JSON, BadMagic for a
 * document that is not a gllcd envelope, BadVersion for a protocol
 * we do not speak, InvalidArgument for an unknown request type.
 */
[[nodiscard]] Result<RequestEnvelope>
parseRequestEnvelope(const std::string &json);

/** Header of a successful job response (payload frame follows). */
struct ResultHeader
{
    std::uint64_t jobId = 0;
    bool cached = false;            ///< served from the result store
    std::uint64_t specHash = 0;     ///< SweepJobSpec::contentHash()
    std::uint64_t traceHash = 0;    ///< SweepJobSpec::traceHash()
    std::uint32_t quarantined = 0;  ///< cells that failed permanently
    double wallSeconds = 0.0;       ///< 0 for cache hits
};

std::string resultHeaderJson(const ResultHeader &header);

/** Serialize a typed Error as an error frame. */
std::string errorFrameJson(const Error &error);

/**
 * Classify a response frame: fills exactly one of @p header (result;
 * caller then reads the payload frame) or @p error (the daemon's
 * typed Error, reconstructed).  Returns false for an error frame.
 */
[[nodiscard]] Result<bool>
parseResponseFrame(const std::string &json, ResultHeader &header,
                   Error &error);

} // namespace gllc

#endif // GLLC_SERVICE_PROTOCOL_HH
