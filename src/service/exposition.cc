#include "service/exposition.hh"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "service/protocol.hh"

namespace gllc
{

namespace
{

/** A slow or hostile scraper may hold the fd this long, no more. */
constexpr int kRequestTimeoutMs = 2000;

/** Request lines longer than this are nobody's scrape. */
constexpr std::size_t kMaxRequestBytes = 8192;

/** Write all bytes, best effort (the scraper may hang up early). */
void
writeAll(int fd, const std::string &bytes)
{
    (void)writeAllDeadline(fd, bytes.data(), bytes.size(),
                           kRequestTimeoutMs);
}

std::string
httpResponse(const char *status, const char *content_type,
             const std::string &body)
{
    std::string out = "HTTP/1.1 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

Result<Unit>
MetricsHttpServer::start(int port, BodyFn metrics_text,
                         BodyFn status_json)
{
    if (running_.load())
        return Error(ErrorCode::InvalidArgument,
                     "exposition server already started");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Error::format(ErrorCode::Io, "socket(): %s",
                             std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr))
            != 0
        || ::listen(fd, 4) != 0) {
        const Error err = Error::format(
            ErrorCode::Io, "cannot listen on metrics port %d: %s",
            port, std::strerror(errno));
        ::close(fd);
        return err;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len)
        == 0)
        boundPort_ = ntohs(bound.sin_port);

    metricsText_ = std::move(metrics_text);
    statusJson_ = std::move(status_json);
    listenFd_ = fd;
    running_.store(true);
    thread_ = std::thread([this] { serveLoop(); });
    return Unit{};
}

void
MetricsHttpServer::stop()
{
    if (!running_.exchange(false))
        return;
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    listenFd_ = -1;
    if (thread_.joinable())
        thread_.join();
    boundPort_ = -1;
}

void
MetricsHttpServer::serveLoop()
{
    while (running_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // listener closed by stop()
        }
        serveOne(fd);
        ::close(fd);
    }
}

void
MetricsHttpServer::serveOne(int fd)
{
    // Read until the end of the request head; we never want a body.
    std::string request;
    char chunk[1024];
    while (request.find("\r\n\r\n") == std::string::npos
           && request.size() < kMaxRequestBytes) {
        Result<std::size_t> n = readSomeDeadline(
            fd, chunk, sizeof(chunk), kRequestTimeoutMs);
        if (!n.ok() || n.value() == 0)
            return;  // timeout, error, or early hangup: just drop
        request.append(chunk, n.value());
    }

    const std::size_t line_end = request.find("\r\n");
    const std::string line = request.substr(
        0, line_end == std::string::npos ? request.size() : line_end);
    if (line.compare(0, 4, "GET ") != 0) {
        writeAll(fd, httpResponse("405 Method Not Allowed",
                                  "text/plain; charset=utf-8",
                                  "only GET is served\n"));
        return;
    }
    const std::size_t path_end = line.find(' ', 4);
    const std::string path =
        line.substr(4, path_end == std::string::npos
                           ? std::string::npos
                           : path_end - 4);
    if (path == "/metrics") {
        writeAll(fd, httpResponse(
                         "200 OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         metricsText_()));
    } else if (path == "/status") {
        writeAll(fd, httpResponse("200 OK",
                                  "application/json; charset=utf-8",
                                  statusJson_()));
    } else {
        writeAll(fd, httpResponse("404 Not Found",
                                  "text/plain; charset=utf-8",
                                  "serving /metrics and /status\n"));
    }
}

} // namespace gllc
