/**
 * @file
 * Graphics stream-aware probabilistic caching — the paper's proposal.
 *
 * Section 3 derives three increasingly capable policies; they share
 * the victim-selection rule (2-bit RRIP), the sample-set learning
 * machinery (Table 2) and the per-block state of Figure 10, so all
 * three are implemented by GspcFamilyPolicy with a Variant switch:
 *
 *  - Variant::Gspztc      Table 3. Probabilistic Z and texture
 *    insertion from aggregate FILL/HIT counters; render targets
 *    always inserted at RRPV 0.
 *  - Variant::GspztcTse   Table 4. Adds texture-sampler epochs
 *    E0/E1/E>=2 in two state bits per block; insertion and promotion
 *    RRPVs for texture come from per-epoch FILL/HIT counters.
 *  - Variant::Gspc        Table 5. Adds dynamic render-target
 *    protection from the PROD/CONS (production/consumption) ratio
 *    with 1/16 and 1/8 thresholds.
 *
 * Block state encoding (Figure 10): 00 = texture epoch E0,
 * 01 = E1, 10 = E>=2, 11 = render target (replaces the RT bit).
 *
 * The threshold parameter t (reuse probability threshold 1/(t+1))
 * defaults to 8, the paper's most robust setting (Figure 11).
 */

#ifndef GLLC_CORE_GSPC_FAMILY_HH
#define GLLC_CORE_GSPC_FAMILY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cache/rrip.hh"
#include "core/stream_counters.hh"

namespace gllc
{

/** Which member of the GSPC family a policy instance implements. */
enum class GspcVariant : std::uint8_t
{
    Gspztc,      ///< Table 3
    GspztcTse,   ///< Table 4
    Gspc,        ///< Table 5
};

/** Figure 10 block states. */
enum class BlockState : std::uint8_t
{
    TexE0 = 0b00,
    TexE1 = 0b01,
    TexE2Plus = 0b10,
    RenderTarget = 0b11,
};

/** Human-readable Figure-10 state name ("E0", "E1", "E>=2", "RT"). */
const char *blockStateName(BlockState s);

/**
 * Whether @p from -> @p to is a legal Figure-10 transition for an
 * access of policy stream @p stream.  Fills reset the state (texture
 * epoch E0, or RT for render-target fills) regardless of the
 * previous occupant; hits walk the epoch FSM: RT->E0 on texture
 * consumption, E0->E1->E>=2 (absorbing) on texture hits, any->RT on
 * render-target hits, and no state change for Z/Rest hits.
 */
bool legalBlockTransition(BlockState from, BlockState to,
                          PolicyStream stream, bool is_fill);

/**
 * Audit-layer check of one observed FSM transition; fails the audit
 * with both state names when the transition is illegal.  No-op
 * unless auditActive().
 */
void auditBlockTransition(BlockState from, BlockState to,
                          PolicyStream stream, bool is_fill);

/**
 * Tunable implementation parameters of the GSPC family, exposed for
 * the ablation benches; the defaults are the paper's design point.
 */
struct GspcParams
{
    /** Reuse-probability threshold parameter (Figure 11). */
    std::uint32_t t = 8;

    /** FILL/HIT/PROD/CONS counter width. */
    unsigned counterBits = 8;

    /** ACC(ALL) width: halving period is 2^accBits - 1. */
    unsigned accBits = 7;

    /** One sample set per 2^sampleLog2 sets (paper: 16/1024). */
    unsigned sampleLog2 = 6;

    /**
     * GSPC+B extension: bypass (never allocate) texture and Z fills
     * whose learned reuse probability is below the threshold,
     * instead of inserting them at RRPV 3.  Follows the bypass
     * direction of the authors' exclusive-LLC work cited in §1.1.1;
     * off in the paper's design.
     */
    bool bypassDeadFills = false;
};

class GspcFamilyPolicy : public ReplacementPolicy
{
  public:
    explicit GspcFamilyPolicy(GspcVariant variant, std::uint32_t t = 8);

    GspcFamilyPolicy(GspcVariant variant, const GspcParams &params);

    void configure(std::uint32_t sets, std::uint32_t ways) override;
    std::uint32_t selectVictim(std::uint32_t set) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    void onEvict(std::uint32_t set, std::uint32_t way) override;
    bool shouldBypass(std::uint32_t set,
                      const AccessInfo &info) const override;
    bool mayBypass() const override { return params_.bypassDeadFills; }
    const FillHistogram *fillHistogram() const override;
    std::string name() const override;

    /** The bank's learning counters (tests/introspection). */
    const StreamReuseCounters &counters() const { return counters_; }

    /** Figure 10 state of a resident block (tests/introspection). */
    BlockState
    blockState(std::uint32_t set, std::uint32_t way) const
    {
        return state_[static_cast<std::size_t>(set) * ways_ + way];
    }

    /** Current RRPV of a block (tests/introspection). */
    std::uint8_t
    rrpvOf(std::uint32_t set, std::uint32_t way) const
    {
        return rrip_.get(set, way);
    }

    /**
     * Audit hook: RRPVs within the 2-bit width, Figure-10 state
     * encodings valid, learning counters within their widths.
     */
    void auditInvariants(std::uint32_t set) const override;

    /**
     * Metrics hook: hits by prior Figure-10 state, RT-protection and
     * texture insertion decisions, RT->TEX conversions, final state
     * occupancy, and per-sample-window PROD/CONS protection levels.
     */
    void flushMetrics(const std::string &prefix) const override;

    int
    decisionRrpv(std::uint32_t set, std::uint32_t way) const override
    {
        return static_cast<int>(rrip_.get(set, way));
    }

    const char *
    decisionState(std::uint32_t set, std::uint32_t way) const override
    {
        return blockStateName(blockState(set, way));
    }

    /**
     * Test-only: overwrite the raw Figure-10 state byte of a block,
     * bypassing the FSM, so the audit layer's encoding checks can be
     * exercised.
     */
    void
    debugSetBlockStateRaw(std::uint32_t set, std::uint32_t way,
                          std::uint8_t raw)
    {
        stateAt(set, way) = static_cast<BlockState>(raw);
    }

    /** Test-only: the mutable learning counters (corruption tests). */
    StreamReuseCounters &debugCounters() { return counters_; }

    static PolicyFactory factory(GspcVariant variant, std::uint32_t t = 8);

    /** Factory with full parameter control (ablations). */
    static PolicyFactory factory(GspcVariant variant,
                                 const GspcParams &params);

  private:
    BlockState &
    stateAt(std::uint32_t set, std::uint32_t way)
    {
        return state_[static_cast<std::size_t>(set) * ways_ + way];
    }

    /** onFill/onHit bodies; the public hooks audit the transition. */
    void onFillImpl(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &info);
    void onHitImpl(std::uint32_t set, std::uint32_t way,
                   const AccessInfo &info);

    /** Insertion RRPV for a texture block entering epoch E0. */
    std::uint8_t texE0Rrpv() const;

    GspcVariant variant_;
    GspcParams params_;
    std::uint32_t t_;
    RripState rrip_;
    StreamReuseCounters counters_;
    std::uint32_t ways_ = 0;
    std::vector<BlockState> state_;

    /** Decision telemetry, maintained only while metricsActive(). */
    bool metrics_ = false;
    std::array<std::uint64_t, 4> stateHits_{};    ///< by prior state
    std::array<std::uint64_t, 3> rtProtFills_{};  ///< by RtProtection
    std::uint64_t texInsertProtect_ = 0;
    std::uint64_t texInsertDistant_ = 0;
    std::uint64_t rtConsume_ = 0;  ///< RT->TEX conversions observed
};

} // namespace gllc

#endif // GLLC_CORE_GSPC_FAMILY_HH
