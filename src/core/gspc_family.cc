#include "core/gspc_family.hh"

#include <algorithm>

#include "cache/geometry.hh"
#include "common/audit.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace gllc
{

const char *
blockStateName(BlockState s)
{
    switch (s) {
      case BlockState::TexE0:
        return "E0";
      case BlockState::TexE1:
        return "E1";
      case BlockState::TexE2Plus:
        return "E>=2";
      case BlockState::RenderTarget:
        return "RT";
    }
    return "invalid";
}

bool
legalBlockTransition(BlockState from, BlockState to, PolicyStream stream,
                     bool is_fill)
{
    if (is_fill) {
        // Fills overwrite the previous occupant's state outright.
        return to == ((stream == PolicyStream::RenderTarget)
                          ? BlockState::RenderTarget
                          : BlockState::TexE0);
    }
    switch (stream) {
      case PolicyStream::Texture:
        switch (from) {
          case BlockState::RenderTarget:
            return to == BlockState::TexE0;  // RT->TEX consumption
          case BlockState::TexE0:
            return to == BlockState::TexE1;
          case BlockState::TexE1:
          case BlockState::TexE2Plus:
            return to == BlockState::TexE2Plus;  // E>=2 absorbs
        }
        return false;
      case PolicyStream::RenderTarget:
        return to == BlockState::RenderTarget;
      default:
        return to == from;  // Z/Rest hits leave the state alone
    }
}

void
auditBlockTransition(BlockState from, BlockState to, PolicyStream stream,
                     bool is_fill)
{
    if (!auditActive())
        return;
    GLLC_AUDIT_CHECK("GspcFamily", "epoch-fsm",
                     legalBlockTransition(from, to, stream, is_fill),
                     "illegal Figure-10 transition %s -> %s on %s %s",
                     blockStateName(from), blockStateName(to),
                     policyStreamName(stream).c_str(),
                     is_fill ? "fill" : "hit");
}

GspcFamilyPolicy::GspcFamilyPolicy(GspcVariant variant, std::uint32_t t)
    : GspcFamilyPolicy(variant, GspcParams{t, 8, 7, 6})
{
}

GspcFamilyPolicy::GspcFamilyPolicy(GspcVariant variant,
                                   const GspcParams &params)
    : variant_(variant), params_(params), t_(params.t), rrip_(2),
      counters_(params.counterBits, params.accBits),
      metrics_(metricsActive())
{
    GLLC_ASSERT(params.t >= 1);
    GLLC_ASSERT(params.sampleLog2 >= 2 && params.sampleLog2 <= 10);
}

void
GspcFamilyPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    rrip_.configure(sets, ways);
    state_.assign(static_cast<std::size_t>(sets) * ways,
                  BlockState::TexE0);

    if (auditActive()) {
        // Sample-set invariant (Table 2): the predicate must select
        // exactly one set per 2^sampleLog2-set constituency, and be
        // stable (it is a pure function of the set index, so one
        // recount both checks the density and pins the membership).
        std::uint32_t samples = 0;
        for (std::uint32_t s = 0; s < sets; ++s) {
            if (isSampleSetAt(s, params_.sampleLog2))
                ++samples;
        }
        const std::uint32_t expected =
            std::max<std::uint32_t>(1, sets >> params_.sampleLog2);
        GLLC_AUDIT_CHECK("GspcFamily", "sample-density",
                         samples == expected,
                         "%u sample sets in %u sets, expected %u "
                         "(log2 density %u)",
                         samples, sets, expected, params_.sampleLog2);
    }
}

std::uint32_t
GspcFamilyPolicy::selectVictim(std::uint32_t set)
{
    return rrip_.selectVictim(set);
}

std::uint8_t
GspcFamilyPolicy::texE0Rrpv() const
{
    const bool distant = (variant_ == GspcVariant::Gspztc)
        ? counters_.texDistantAgg(t_)
        : counters_.texDistantEpoch(0, t_);
    // Inserting surviving texture blocks at RRPV 2 hurts (Section 3),
    // so the paper's policies use 0 when not condemning them.
    return distant ? rrip_.maxRrpv() : 0;
}

void
GspcFamilyPolicy::onFill(std::uint32_t set, std::uint32_t way,
                         const AccessInfo &info)
{
    if (!auditActive()) {
        onFillImpl(set, way, info);
        return;
    }
    const BlockState prev = stateAt(set, way);
    onFillImpl(set, way, info);
    auditBlockTransition(prev, stateAt(set, way), info.pstream(), true);
}

void
GspcFamilyPolicy::onFillImpl(std::uint32_t set, std::uint32_t way,
                             const AccessInfo &info)
{
    const bool sample = isSampleSetAt(set, params_.sampleLog2);
    const PolicyStream ps = info.pstream();

    // Default new-block state: a later texture touch would see E0.
    BlockState next_state = BlockState::TexE0;
    std::uint8_t rrpv = rrip_.distantRrpv();  // SRRIP-style default

    if (sample) {
        // Sample sets execute SRRIP for every stream (Table 2) and
        // only learn.
        counters_.recordAccess();
        switch (ps) {
          case PolicyStream::Z:
            counters_.recordZFill();
            break;
          case PolicyStream::Texture:
            counters_.recordTexFillAgg();
            counters_.recordTexFillEpoch(0);
            break;
          case PolicyStream::RenderTarget:
            counters_.recordRtProduce();
            next_state = BlockState::RenderTarget;
            break;
          default:
            break;
        }
        rrip_.fill(set, way, rrpv, ps);
        stateAt(set, way) = next_state;
        return;
    }

    switch (ps) {
      case PolicyStream::Z:
        rrpv = counters_.zDistant(t_) ? rrip_.maxRrpv()
                                      : rrip_.distantRrpv();
        break;
      case PolicyStream::Texture:
        rrpv = texE0Rrpv();
        if (metrics_) {
            if (rrpv == rrip_.maxRrpv())
                ++texInsertDistant_;
            else
                ++texInsertProtect_;
        }
        break;
      case PolicyStream::RenderTarget:
        next_state = BlockState::RenderTarget;
        if (variant_ == GspcVariant::Gspc) {
            const RtProtection level = counters_.rtProtection();
            if (metrics_)
                ++rtProtFills_[static_cast<std::size_t>(level)];
            switch (level) {
              case RtProtection::Distant:
                rrpv = rrip_.maxRrpv();
                break;
              case RtProtection::Intermediate:
                rrpv = rrip_.distantRrpv();
                break;
              case RtProtection::Protect:
                rrpv = 0;
                break;
            }
        } else {
            // GSPZTC/GSPZTC+TSE: maximum protection for render
            // targets to enable RT->TEX reuse through the LLC.
            rrpv = 0;
        }
        break;
      default:
        rrpv = rrip_.distantRrpv();
        break;
    }

    rrip_.fill(set, way, rrpv, ps);
    stateAt(set, way) = next_state;
}

void
GspcFamilyPolicy::onHit(std::uint32_t set, std::uint32_t way,
                        const AccessInfo &info)
{
    if (!auditActive()) {
        onHitImpl(set, way, info);
        return;
    }
    const BlockState prev = stateAt(set, way);
    onHitImpl(set, way, info);
    auditBlockTransition(prev, stateAt(set, way), info.pstream(), false);
}

void
GspcFamilyPolicy::onHitImpl(std::uint32_t set, std::uint32_t way,
                            const AccessInfo &info)
{
    const bool sample = isSampleSetAt(set, params_.sampleLog2);
    const PolicyStream ps = info.pstream();
    BlockState &state = stateAt(set, way);

    if (metrics_)
        ++stateHits_[static_cast<std::size_t>(state)];

    if (sample)
        counters_.recordAccess();

    if (ps == PolicyStream::Texture) {
        if (state == BlockState::RenderTarget) {
            if (metrics_)
                ++rtConsume_;
            // RT->TEX consumption: the block becomes a texture block
            // and (re)enters epoch E0 (Figure 10).
            if (sample) {
                counters_.recordRtConsume();
                counters_.recordTexFillAgg();
                counters_.recordTexFillEpoch(0);
            }
            state = BlockState::TexE0;
            rrip_.set(set, way, sample ? 0 : texE0Rrpv());
            return;
        }

        if (state == BlockState::TexE0) {
            if (sample) {
                counters_.recordTexHitAgg();
                counters_.recordTexHitEpoch(0);
                counters_.recordTexFillEpoch(1);
            }
            state = BlockState::TexE1;
            std::uint8_t rrpv = 0;
            if (!sample && variant_ != GspcVariant::Gspztc) {
                rrpv = counters_.texDistantEpoch(1, t_) ? rrip_.maxRrpv()
                                                        : 0;
            }
            rrip_.set(set, way, rrpv);
            return;
        }

        if (state == BlockState::TexE1) {
            if (sample) {
                counters_.recordTexHitAgg();
                counters_.recordTexHitEpoch(1);
            }
            state = BlockState::TexE2Plus;
        } else {
            // E>=2 stays E>=2.
            if (sample)
                counters_.recordTexHitAgg();
            state = BlockState::TexE2Plus;
        }
        rrip_.set(set, way, 0);
        return;
    }

    if (ps == PolicyStream::RenderTarget) {
        // RT hit (blending), or the application reuses an existing
        // surface as a new render target: state 11, RRPV 0.
        state = BlockState::RenderTarget;
        rrip_.set(set, way, 0);
        return;
    }

    if (ps == PolicyStream::Z && sample)
        counters_.recordZHit();

    rrip_.set(set, way, 0);
}

bool
GspcFamilyPolicy::shouldBypass(std::uint32_t set,
                               const AccessInfo &info) const
{
    if (!params_.bypassDeadFills)
        return false;
    // Sample sets must keep allocating or the counters starve.
    if (isSampleSetAt(set, params_.sampleLog2))
        return false;
    switch (info.pstream()) {
      case PolicyStream::Texture:
        return (variant_ == GspcVariant::Gspztc)
            ? counters_.texDistantAgg(t_)
            : counters_.texDistantEpoch(0, t_);
      case PolicyStream::Z:
        return counters_.zDistant(t_);
      default:
        return false;
    }
}

void
GspcFamilyPolicy::onEvict(std::uint32_t set, std::uint32_t way)
{
    // The RT bit / state is conceptually cleared on eviction; the
    // next fill rewrites it, but reset keeps introspection honest.
    stateAt(set, way) = BlockState::TexE0;
}

void
GspcFamilyPolicy::auditInvariants(std::uint32_t set) const
{
    if (!auditActive())
        return;
    rrip_.auditSet(set, "GspcFamily");
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const auto raw = static_cast<std::uint8_t>(state_[base + w]);
        GLLC_AUDIT_CHECK("GspcFamily", "block-state", raw <= 0b11,
                         "set %u way %u holds state byte 0x%02x "
                         "outside the 2-bit Figure-10 encoding",
                         set, w, raw);
    }
    counters_.auditInvariants("GspcFamily");
}

const FillHistogram *
GspcFamilyPolicy::fillHistogram() const
{
    return &rrip_.histogram();
}

void
GspcFamilyPolicy::flushMetrics(const std::string &prefix) const
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    const std::string p = prefix + "gspc.";

    static const char *const kStateKeys[4] = {"E0", "E1", "E2plus",
                                              "RT"};
    for (std::size_t s = 0; s < stateHits_.size(); ++s) {
        if (stateHits_[s] > 0)
            reg.addCounter(p + "state_hits." + kStateKeys[s],
                           stateHits_[s]);
    }

    static const char *const kProtKeys[3] = {"distant",
                                             "intermediate",
                                             "protect"};
    for (std::size_t l = 0; l < rtProtFills_.size(); ++l) {
        if (rtProtFills_[l] > 0)
            reg.addCounter(p + "rt_protection." + kProtKeys[l],
                           rtProtFills_[l]);
    }

    if (texInsertProtect_ > 0)
        reg.addCounter(p + "tex_insert.protect", texInsertProtect_);
    if (texInsertDistant_ > 0)
        reg.addCounter(p + "tex_insert.distant", texInsertDistant_);
    if (rtConsume_ > 0)
        reg.addCounter(p + "rt_consume", rtConsume_);

    // Figure-10 occupancy at end of replay: how the bank's blocks
    // were distributed over the epoch FSM when the frame finished.
    std::array<std::uint64_t, 4> occupancy{};
    for (const BlockState s : state_)
        ++occupancy[static_cast<std::size_t>(s) & 3u];
    for (std::size_t s = 0; s < occupancy.size(); ++s) {
        if (occupancy[s] > 0)
            reg.recordValue(p + "state_final",
                            static_cast<std::int64_t>(s),
                            occupancy[s]);
    }

    // PROD/CONS protection level per completed sample window, plus
    // the counters' final resting values.
    if (counters_.windows() > 0)
        reg.addCounter(p + "sample_windows", counters_.windows());
    for (std::size_t l = 0; l < 3; ++l) {
        const std::uint64_t n =
            counters_.windowsAt(static_cast<RtProtection>(l));
        if (n > 0)
            reg.recordValue(p + "window_rt_protection",
                            static_cast<std::int64_t>(l), n);
    }
    reg.recordValue(p + "prod_final",
                    static_cast<std::int64_t>(counters_.prod()));
    reg.recordValue(p + "cons_final",
                    static_cast<std::int64_t>(counters_.cons()));
}

std::string
GspcFamilyPolicy::name() const
{
    std::string base;
    switch (variant_) {
      case GspcVariant::Gspztc:
        base = "GSPZTC";
        break;
      case GspcVariant::GspztcTse:
        base = "GSPZTC+TSE";
        break;
      case GspcVariant::Gspc:
        base = "GSPC";
        break;
    }
    if (params_.bypassDeadFills)
        base += "+B";
    return base;
}

PolicyFactory
GspcFamilyPolicy::factory(GspcVariant variant, std::uint32_t t)
{
    return [variant, t] {
        return std::make_unique<GspcFamilyPolicy>(variant, t);
    };
}

PolicyFactory
GspcFamilyPolicy::factory(GspcVariant variant, const GspcParams &params)
{
    return [variant, params] {
        return std::make_unique<GspcFamilyPolicy>(variant, params);
    };
}

} // namespace gllc
