/**
 * @file
 * Per-bank graphics-stream reuse-probability counters (Section 3).
 *
 * The GSPC family learns stream reuse probabilities from the sample
 * sets with a handful of saturating counters per LLC bank:
 *
 *   FILL(Z), HIT(Z)            8-bit  Z-stream reuse probability
 *   FILL(E,TEX), HIT(E,TEX)    8-bit  texture epoch E in {0, 1}
 *   FILL(TEX), HIT(TEX)        8-bit  aggregate (GSPZTC only)
 *   PROD, CONS                 8-bit  RT production / RT->TEX
 *                                     consumption (GSPC only)
 *   ACC(ALL)                   7-bit  all sample-set accesses
 *
 * Whenever ACC(ALL) saturates, every other counter is halved and ACC
 * resets, giving an exponentially decayed estimate that adapts to
 * phase changes within a frame.
 */

#ifndef GLLC_CORE_STREAM_COUNTERS_HH
#define GLLC_CORE_STREAM_COUNTERS_HH

#include <cstdint>
#include <string>

#include "common/sat_counter.hh"

namespace gllc
{

/** Protection level chosen for a render-target fill (Table 5). */
enum class RtProtection : std::uint8_t
{
    Distant,       ///< consumption probability < 1/16: RRPV 3
    Intermediate,  ///< in [1/16, 1/8): RRPV 2
    Protect,       ///< >= 1/8: RRPV 0
};

/** The counters of one LLC bank. */
class StreamReuseCounters
{
  public:
    /**
     * @param counter_bits width of the FILL/HIT/PROD/CONS counters
     *        (8 in the paper)
     * @param acc_bits width of ACC(ALL) (7 in the paper); halving
     *        happens every 2^acc_bits - 1 sample accesses
     */
    explicit StreamReuseCounters(unsigned counter_bits = 8,
                                 unsigned acc_bits = 7);

    /// @name Sample-set event recording
    /// @{
    void recordZFill();
    void recordZHit();

    /** Aggregate texture fill (GSPZTC); covers RT->TEX conversions. */
    void recordTexFillAgg();
    /** Aggregate texture hit to a non-RT block (GSPZTC). */
    void recordTexHitAgg();

    /** Texture block entered epoch E (fill or RT->TEX conversion). */
    void recordTexFillEpoch(unsigned epoch);
    /** Texture hit observed in epoch E. */
    void recordTexHitEpoch(unsigned epoch);

    /** Render-target fill into a sample set (PROD). */
    void recordRtProduce();
    /** Render target consumed by the sampler from the LLC (CONS). */
    void recordRtConsume();

    /** Any access to a sample set: ACC(ALL)++, halving on saturation. */
    void recordAccess();
    /// @}

    /// @name Insertion decisions (non-sample sets)
    /// @{
    /** True when FILL(Z) > t * HIT(Z): insert Z at RRPV 3. */
    bool zDistant(std::uint32_t t) const;

    /** True when FILL(TEX) > t * HIT(TEX) (aggregate, GSPZTC). */
    bool texDistantAgg(std::uint32_t t) const;

    /** True when FILL(E,TEX) > t * HIT(E,TEX) (TSE/GSPC). */
    bool texDistantEpoch(unsigned epoch, std::uint32_t t) const;

    /** RT insertion protection from the PROD/CONS ratio (Table 5). */
    RtProtection rtProtection() const;
    /// @}

    /// @name Sample-window telemetry (metrics layer)
    /// @{
    /** Completed ACC(ALL) sample windows (halvings) so far. */
    std::uint64_t windows() const { return windows_; }

    /**
     * Windows that closed with the PROD/CONS ratio at each RT
     * protection level — the paper's Table-5 decision as a per-
     * window trajectory.
     */
    std::uint64_t
    windowsAt(RtProtection level) const
    {
        return windowRt_[static_cast<std::size_t>(level)];
    }
    /// @}

    /// @name Raw values (tests, introspection)
    /// @{
    std::uint32_t fillZ() const { return fillZ_.value(); }
    std::uint32_t hitZ() const { return hitZ_.value(); }
    std::uint32_t fillTexAgg() const { return fillTexAgg_.value(); }
    std::uint32_t hitTexAgg() const { return hitTexAgg_.value(); }
    std::uint32_t fillTex(unsigned e) const { return fillTexE_[e].value(); }
    std::uint32_t hitTex(unsigned e) const { return hitTexE_[e].value(); }
    std::uint32_t prod() const { return prod_.value(); }
    std::uint32_t cons() const { return cons_.value(); }
    std::uint32_t acc() const { return acc_.value(); }
    /// @}

    /**
     * Audit every counter against its configured width; @p component
     * names the owning policy in the failure report.  No-op unless
     * auditActive().
     */
    void auditInvariants(const char *component) const;

    /**
     * Test-only: overwrite one counter's raw value, bypassing the
     * saturation clamps, so the audit layer's range checks can be
     * exercised.  @p name is one of FILL_Z, HIT_Z, FILL_TEX,
     * HIT_TEX, FILL_TEX_E0, HIT_TEX_E0, FILL_TEX_E1, HIT_TEX_E1,
     * PROD, CONS, ACC; unknown names panic.
     */
    void debugForceCounter(const std::string &name, std::uint32_t value);

  private:
    void halveAll();

    /** Apply @p fn to every (name, counter) pair (auditor, hook). */
    template <typename Self, typename Fn>
    static void forEachCounter(Self &self, Fn &&fn);

    SatCounter fillZ_;
    SatCounter hitZ_;
    SatCounter fillTexAgg_;
    SatCounter hitTexAgg_;
    SatCounter fillTexE_[2];
    SatCounter hitTexE_[2];
    SatCounter prod_;
    SatCounter cons_;
    SatCounter acc_;

    std::uint64_t windows_ = 0;
    std::uint64_t windowRt_[3] = {0, 0, 0};
};

} // namespace gllc

#endif // GLLC_CORE_STREAM_COUNTERS_HH
