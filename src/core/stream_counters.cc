#include "core/stream_counters.hh"

#include "common/audit.hh"
#include "common/logging.hh"

namespace gllc
{

StreamReuseCounters::StreamReuseCounters(unsigned counter_bits,
                                         unsigned acc_bits)
    : fillZ_(counter_bits), hitZ_(counter_bits),
      fillTexAgg_(counter_bits), hitTexAgg_(counter_bits),
      fillTexE_{SatCounter(counter_bits), SatCounter(counter_bits)},
      hitTexE_{SatCounter(counter_bits), SatCounter(counter_bits)},
      prod_(counter_bits), cons_(counter_bits), acc_(acc_bits)
{
}

void
StreamReuseCounters::recordZFill()
{
    fillZ_.increment();
}

void
StreamReuseCounters::recordZHit()
{
    hitZ_.increment();
}

void
StreamReuseCounters::recordTexFillAgg()
{
    fillTexAgg_.increment();
}

void
StreamReuseCounters::recordTexHitAgg()
{
    hitTexAgg_.increment();
}

void
StreamReuseCounters::recordTexFillEpoch(unsigned epoch)
{
    GLLC_ASSERT(epoch < 2);
    fillTexE_[epoch].increment();
}

void
StreamReuseCounters::recordTexHitEpoch(unsigned epoch)
{
    GLLC_ASSERT(epoch < 2);
    hitTexE_[epoch].increment();
}

void
StreamReuseCounters::recordRtProduce()
{
    prod_.increment();
}

void
StreamReuseCounters::recordRtConsume()
{
    cons_.increment();
}

void
StreamReuseCounters::recordAccess()
{
    acc_.increment();
    if (acc_.saturated()) {
        halveAll();
        acc_.reset();
    }
}

void
StreamReuseCounters::halveAll()
{
    // Close the sample window in the telemetry before decaying: the
    // recorded protection level is the one this window decided.
    ++windows_;
    ++windowRt_[static_cast<std::size_t>(rtProtection())];
    fillZ_.halve();
    hitZ_.halve();
    fillTexAgg_.halve();
    hitTexAgg_.halve();
    for (auto &c : fillTexE_)
        c.halve();
    for (auto &c : hitTexE_)
        c.halve();
    prod_.halve();
    cons_.halve();
}

bool
StreamReuseCounters::zDistant(std::uint32_t t) const
{
    return fillZ_.value() > t * hitZ_.value();
}

bool
StreamReuseCounters::texDistantAgg(std::uint32_t t) const
{
    return fillTexAgg_.value() > t * hitTexAgg_.value();
}

bool
StreamReuseCounters::texDistantEpoch(unsigned epoch,
                                     std::uint32_t t) const
{
    GLLC_ASSERT(epoch < 2);
    return fillTexE_[epoch].value() > t * hitTexE_[epoch].value();
}

template <typename Self, typename Fn>
void
StreamReuseCounters::forEachCounter(Self &self, Fn &&fn)
{
    fn("FILL_Z", self.fillZ_);
    fn("HIT_Z", self.hitZ_);
    fn("FILL_TEX", self.fillTexAgg_);
    fn("HIT_TEX", self.hitTexAgg_);
    fn("FILL_TEX_E0", self.fillTexE_[0]);
    fn("HIT_TEX_E0", self.hitTexE_[0]);
    fn("FILL_TEX_E1", self.fillTexE_[1]);
    fn("HIT_TEX_E1", self.hitTexE_[1]);
    fn("PROD", self.prod_);
    fn("CONS", self.cons_);
    fn("ACC", self.acc_);
}

void
StreamReuseCounters::auditInvariants(const char *component) const
{
    if (!auditActive())
        return;
    forEachCounter(*this, [component](const char *name,
                                      const SatCounter &c) {
        GLLC_AUDIT_CHECK(component, "counter-range", c.inRange(),
                         "counter %s holds %u > max %u", name,
                         c.value(), c.max());
    });
}

void
StreamReuseCounters::debugForceCounter(const std::string &name,
                                       std::uint32_t value)
{
    bool found = false;
    forEachCounter(*this, [&](const char *n, SatCounter &c) {
        if (name == n) {
            c.debugForceValue(value);
            found = true;
        }
    });
    GLLC_ASSERT_MSG(found, "unknown counter \"%s\"", name.c_str());
}

RtProtection
StreamReuseCounters::rtProtection() const
{
    const std::uint64_t p = prod_.value();
    const std::uint64_t c = cons_.value();
    if (p > 16 * c)
        return RtProtection::Distant;
    if (p > 8 * c)
        return RtProtection::Intermediate;
    return RtProtection::Protect;
}

} // namespace gllc
