/**
 * @file
 * 3D graphics data stream identities.
 *
 * Section 2.1 of the paper: a DirectX rendering pipeline generates
 * access streams to distinct data structures.  Each LLC access is
 * tagged with the identity of the render cache it came from; the
 * GSPC policies key their reuse-probability counters on this tag.
 */

#ifndef GLLC_TRACE_STREAM_HH
#define GLLC_TRACE_STREAM_HH

#include <cstdint>
#include <string>

namespace gllc
{

/**
 * The graphics data stream an LLC access belongs to.
 *
 * Display is the final back-buffer (displayable color) stream; the
 * paper notes it is itself a render target, so policies that are not
 * display-aware treat it as RenderTarget (see policyStream()).
 */
enum class StreamType : std::uint8_t
{
    Vertex = 0,     ///< vertex + vertex-index cache misses
    HiZ,            ///< hierarchical depth cache misses
    Z,              ///< depth cache misses
    Stencil,        ///< stencil cache misses
    RenderTarget,   ///< render-target (color) cache traffic
    Texture,        ///< texture sampler hierarchy (L3) misses
    Display,        ///< displayable color written to the back buffer
    Other,          ///< shader code, constants, misc state
    kCount
};

constexpr std::size_t kNumStreams =
    static_cast<std::size_t>(StreamType::kCount);

/**
 * The coarse four-way stream classification the GSPC policies use
 * (Section 3: "We partition the LLC accesses into four streams,
 * namely, Z, texture sampler, render targets, and the rest").
 */
enum class PolicyStream : std::uint8_t
{
    Z = 0,
    Texture,
    RenderTarget,
    Rest,
    kCount
};

constexpr std::size_t kNumPolicyStreams =
    static_cast<std::size_t>(PolicyStream::kCount);

/** Map a pipeline stream to the policy-visible four-way class. */
constexpr PolicyStream
policyStream(StreamType s)
{
    switch (s) {
      case StreamType::Z:
        return PolicyStream::Z;
      case StreamType::Texture:
        return PolicyStream::Texture;
      case StreamType::RenderTarget:
      case StreamType::Display:  // displayable color is a render target
        return PolicyStream::RenderTarget;
      default:
        return PolicyStream::Rest;
    }
}

/** Human-readable stream name ("Z", "TEX", ...). */
const std::string &streamName(StreamType s);

/** Human-readable policy-stream name. */
const std::string &policyStreamName(PolicyStream s);

} // namespace gllc

#endif // GLLC_TRACE_STREAM_HH
