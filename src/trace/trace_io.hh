/**
 * @file
 * Binary serialization of frame traces.
 *
 * Generating a frame trace costs far more than replaying it, so the
 * harnesses can cache traces on disk: `tracegen` writes them and any
 * replay tool loads them back.  The format is a fixed little-endian
 * header followed by the packed MemAccess records:
 *
 *   magic   "GLLCTRC1"                      8 bytes
 *   names   u32 length + bytes, twice       (trace name, app name)
 *   u32     frameIndex
 *   u64 x 6 FrameWork counters
 *   u64     access count
 *   records 16-byte MemAccess entries
 */

#ifndef GLLC_TRACE_TRACE_IO_HH
#define GLLC_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/frame_trace.hh"

namespace gllc
{

/** Serialize @p trace to a stream. */
void writeTrace(const FrameTrace &trace, std::ostream &os);

/** Serialize @p trace to a file; fatal on I/O failure. */
void writeTraceFile(const FrameTrace &trace, const std::string &path);

/** Deserialize a trace from a stream; fatal on malformed input. */
FrameTrace readTrace(std::istream &is);

/** Deserialize a trace from a file; fatal on I/O failure. */
FrameTrace readTraceFile(const std::string &path);

} // namespace gllc

#endif // GLLC_TRACE_TRACE_IO_HH
