/**
 * @file
 * Binary serialization of frame traces.
 *
 * Generating a frame trace costs far more than replaying it, so the
 * harnesses can cache traces on disk: `tracegen` writes them and any
 * replay tool loads them back.  The format is a fixed little-endian
 * header followed by the packed MemAccess records; version 2 adds a
 * per-section FNV-1a checksum so bit rot in a cached trace is
 * detected instead of silently skewing results:
 *
 *   magic    "GLLCTRC2"                      8 bytes
 *   names    u32 length + bytes, twice       (trace name, app name)
 *   u32      frameIndex
 *   u64 x 6  FrameWork counters
 *   u64      access count
 *   u64      header checksum (fnv1a64 of the bytes after the magic)
 *   records  16-byte MemAccess entries
 *   u64      record checksum (fnv1a64 of the record bytes)
 *
 * Readers also accept the checksum-free version-1 layout ("GLLCTRC1")
 * written before this scheme existed.
 *
 * Robustness contract: the try* readers never abort.  Malformed
 * input of any kind — wrong magic, unsupported version, truncation,
 * absurd declared sizes, out-of-range stream tags, checksum
 * mismatches — comes back as a typed Error, which is what lets the
 * sweep engine quarantine a rotten cached trace and regenerate it
 * instead of dying hours into a batch run.  The fault-injection
 * sites trace.bitflip / trace.truncate (common/fault.hh) corrupt
 * reads on demand to keep those paths tested.  The unprefixed
 * readers are legacy wrappers that fatal() on error.
 */

#ifndef GLLC_TRACE_TRACE_IO_HH
#define GLLC_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "common/result.hh"
#include "trace/frame_trace.hh"

namespace gllc
{

/** Serialize @p trace to a stream (always the current version). */
void writeTrace(const FrameTrace &trace, std::ostream &os);

/** Serialize @p trace to a file; typed error on I/O failure. */
[[nodiscard]] Result<Unit> tryWriteTraceFile(const FrameTrace &trace,
                               const std::string &path);

/** Legacy wrapper over tryWriteTraceFile(); fatal on I/O failure. */
void writeTraceFile(const FrameTrace &trace, const std::string &path);

/** Deserialize a trace from a stream; typed error on bad input. */
[[nodiscard]] Result<FrameTrace> tryReadTrace(std::istream &is);

/** Deserialize a trace from a file; typed error on bad input. */
[[nodiscard]] Result<FrameTrace>
tryReadTraceFile(const std::string &path);

/** Legacy wrapper over tryReadTrace(); fatal on malformed input. */
FrameTrace readTrace(std::istream &is);

/** Legacy wrapper over tryReadTraceFile(); fatal on I/O failure. */
FrameTrace readTraceFile(const std::string &path);

} // namespace gllc

#endif // GLLC_TRACE_TRACE_IO_HH
