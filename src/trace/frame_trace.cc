#include "trace/frame_trace.hh"

#include <unordered_set>

namespace gllc
{

std::array<std::uint64_t, kNumStreams>
FrameTrace::streamCounts() const
{
    std::array<std::uint64_t, kNumStreams> counts{};
    for (const MemAccess &a : accesses)
        ++counts[static_cast<std::size_t>(a.stream)];
    return counts;
}

std::uint64_t
FrameTrace::distinctBlocks() const
{
    std::unordered_set<Addr> blocks;
    blocks.reserve(accesses.size() / 4);
    for (const MemAccess &a : accesses)
        blocks.insert(blockNumber(a.addr));
    return blocks.size();
}

} // namespace gllc
