/**
 * @file
 * Per-frame LLC access trace plus the workload metadata the timing
 * model needs to turn cache results into a frame time.
 */

#ifndef GLLC_TRACE_FRAME_TRACE_HH
#define GLLC_TRACE_FRAME_TRACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/access.hh"

namespace gllc
{

/**
 * Aggregate work counts for one rendered frame, reported by the
 * workload model.  These bound the frame time independently of the
 * memory system (Section 4's shader/sampler throughput parameters).
 */
struct FrameWork
{
    /** Single-precision shader ALU operations executed. */
    std::uint64_t shaderOps = 0;

    /** Texels requested from the fixed-function samplers. */
    std::uint64_t texelRequests = 0;

    /** Pixels shaded (post early-Z). */
    std::uint64_t pixelsShaded = 0;

    /** Vertices transformed. */
    std::uint64_t verticesShaded = 0;

    /** Raw (pre-render-cache) memory operations issued. */
    std::uint64_t rawMemOps = 0;

    /** Abstract GPU cycles consumed by the generator's work cursor. */
    std::uint64_t issueCycles = 0;
};

/** A rendered frame: its LLC access stream and work metadata. */
struct FrameTrace
{
    /** "<app>/f<index>", e.g. "BioShock/f2". */
    std::string name;

    /** Application the frame belongs to. */
    std::string app;

    /** Frame index within the application's capture set. */
    std::uint32_t frameIndex = 0;

    /** Accesses in LLC arrival order. */
    std::vector<MemAccess> accesses;

    /** Work counters for the timing model. */
    FrameWork work;

    /** Count accesses per stream (helper for Figure 4). */
    std::array<std::uint64_t, kNumStreams> streamCounts() const;

    /** Number of distinct 64 B blocks touched (cold-miss lower bound). */
    std::uint64_t distinctBlocks() const;
};

} // namespace gllc

#endif // GLLC_TRACE_FRAME_TRACE_HH
