/**
 * @file
 * The LLC access record.
 *
 * A FrameTrace is a sequence of MemAccess records: the load/store
 * stream a GPU's render caches emit toward the LLC while rendering
 * one frame.  Records are packed to 16 bytes so multi-million-access
 * frames stay cheap to hold in memory.
 */

#ifndef GLLC_TRACE_ACCESS_HH
#define GLLC_TRACE_ACCESS_HH

#include <cstdint>

#include "common/types.hh"
#include "trace/stream.hh"

namespace gllc
{

/** One load/store presented to the LLC. */
struct MemAccess
{
    /** Byte address (block-aligned by the render caches). */
    Addr addr = 0;

    /**
     * Abstract GPU-clock issue cycle assigned by the workload model;
     * used by the DRAM/timing models to shape the arrival process.
     */
    std::uint32_t cycle = 0;

    /** Source graphics stream. */
    StreamType stream = StreamType::Other;

    /** True for stores (render-cache writebacks and write-through). */
    bool isWrite = false;

    std::uint16_t pad_ = 0;

    MemAccess() = default;

    MemAccess(Addr a, StreamType s, bool write, std::uint32_t cyc = 0)
        : addr(a), cycle(cyc), stream(s), isWrite(write)
    {}
};

static_assert(sizeof(MemAccess) == 16, "MemAccess must stay packed");

} // namespace gllc

#endif // GLLC_TRACE_ACCESS_HH
