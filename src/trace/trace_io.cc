#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace gllc
{

namespace
{

constexpr char kMagic[8] = {'G', 'L', 'L', 'C', 'T', 'R', 'C', '1'};

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!is)
        fatal("trace file truncated while reading %zu bytes",
              sizeof(T));
    return value;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &is)
{
    const auto len = readPod<std::uint32_t>(is);
    if (len > (1u << 20))
        fatal("trace file corrupt: absurd string length %u", len);
    std::string s(len, '\0');
    is.read(s.data(), len);
    if (!is)
        fatal("trace file truncated while reading a string");
    return s;
}

} // namespace

void
writeTrace(const FrameTrace &trace, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    writeString(os, trace.name);
    writeString(os, trace.app);
    writePod<std::uint32_t>(os, trace.frameIndex);
    writePod<std::uint64_t>(os, trace.work.shaderOps);
    writePod<std::uint64_t>(os, trace.work.texelRequests);
    writePod<std::uint64_t>(os, trace.work.pixelsShaded);
    writePod<std::uint64_t>(os, trace.work.verticesShaded);
    writePod<std::uint64_t>(os, trace.work.rawMemOps);
    writePod<std::uint64_t>(os, trace.work.issueCycles);
    writePod<std::uint64_t>(
        os, static_cast<std::uint64_t>(trace.accesses.size()));
    os.write(reinterpret_cast<const char *>(trace.accesses.data()),
             static_cast<std::streamsize>(trace.accesses.size()
                                          * sizeof(MemAccess)));
}

void
writeTraceFile(const FrameTrace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatal("cannot open \"%s\" for writing", path.c_str());
    writeTrace(trace, os);
    os.flush();
    if (!os)
        fatal("write to \"%s\" failed", path.c_str());
}

FrameTrace
readTrace(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("not a gllc trace file (bad magic)");

    FrameTrace trace;
    trace.name = readString(is);
    trace.app = readString(is);
    trace.frameIndex = readPod<std::uint32_t>(is);
    trace.work.shaderOps = readPod<std::uint64_t>(is);
    trace.work.texelRequests = readPod<std::uint64_t>(is);
    trace.work.pixelsShaded = readPod<std::uint64_t>(is);
    trace.work.verticesShaded = readPod<std::uint64_t>(is);
    trace.work.rawMemOps = readPod<std::uint64_t>(is);
    trace.work.issueCycles = readPod<std::uint64_t>(is);

    const auto count = readPod<std::uint64_t>(is);
    if (count > (1ull << 32))
        fatal("trace file corrupt: absurd access count");
    trace.accesses.resize(count);
    is.read(reinterpret_cast<char *>(trace.accesses.data()),
            static_cast<std::streamsize>(count * sizeof(MemAccess)));
    if (!is)
        fatal("trace file truncated while reading %llu accesses",
              static_cast<unsigned long long>(count));
    return trace;
}

FrameTrace
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open \"%s\" for reading", path.c_str());
    return readTrace(is);
}

} // namespace gllc
