#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/fault.hh"
#include "common/hash.hh"
#include "common/logging.hh"

namespace gllc
{

namespace
{

constexpr char kMagicPrefix[7] = {'G', 'L', 'L', 'C', 'T', 'R', 'C'};
constexpr char kVersion1 = '1';
constexpr char kVersion2 = '2';

/** Sanity caps: declared sizes beyond these are corruption. */
constexpr std::uint32_t kMaxNameLen = 1u << 20;
constexpr std::uint64_t kMaxAccessCount = 1ull << 32;

/** Stream writer that checksums every byte it emits. */
struct SectionWriter
{
    std::ostream &os;
    std::uint64_t hash = kFnvOffset;

    void
    write(const void *data, std::size_t n)
    {
        os.write(static_cast<const char *>(data),
                 static_cast<std::streamsize>(n));
        hash = fnv1a64(data, n, hash);
    }

    template <typename T>
    void
    pod(const T &value)
    {
        write(&value, sizeof(T));
    }

    void
    str(const std::string &s)
    {
        pod<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
        write(s.data(), s.size());
    }
};

/** Stream reader that checksums every byte it consumes. */
struct SectionReader
{
    std::istream &is;
    std::uint64_t hash = kFnvOffset;

    bool
    read(void *dst, std::size_t n)
    {
        is.read(static_cast<char *>(dst),
                static_cast<std::streamsize>(n));
        if (static_cast<std::size_t>(is.gcount()) != n)
            return false;
        hash = fnv1a64(dst, n, hash);
        return true;
    }

    template <typename T>
    bool
    pod(T &value)
    {
        return read(&value, sizeof(T));
    }
};

/** Read a checksum field (stored values are not themselves hashed). */
bool
readRawU64(std::istream &is, std::uint64_t &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    return static_cast<std::size_t>(is.gcount()) == sizeof(value);
}

Error
truncatedError(const char *what)
{
    return Error::format(ErrorCode::Truncated,
                         "trace file truncated while reading %s",
                         what);
}

} // namespace

void
writeTrace(const FrameTrace &trace, std::ostream &os)
{
    os.write(kMagicPrefix, sizeof(kMagicPrefix));
    os.put(kVersion2);

    SectionWriter header{os};
    header.str(trace.name);
    header.str(trace.app);
    header.pod<std::uint32_t>(trace.frameIndex);
    header.pod<std::uint64_t>(trace.work.shaderOps);
    header.pod<std::uint64_t>(trace.work.texelRequests);
    header.pod<std::uint64_t>(trace.work.pixelsShaded);
    header.pod<std::uint64_t>(trace.work.verticesShaded);
    header.pod<std::uint64_t>(trace.work.rawMemOps);
    header.pod<std::uint64_t>(trace.work.issueCycles);
    header.pod<std::uint64_t>(
        static_cast<std::uint64_t>(trace.accesses.size()));
    os.write(reinterpret_cast<const char *>(&header.hash),
             sizeof(header.hash));

    const std::size_t record_bytes =
        trace.accesses.size() * sizeof(MemAccess);
    os.write(reinterpret_cast<const char *>(trace.accesses.data()),
             static_cast<std::streamsize>(record_bytes));
    const std::uint64_t record_hash =
        fnv1a64(trace.accesses.data(), record_bytes);
    os.write(reinterpret_cast<const char *>(&record_hash),
             sizeof(record_hash));
}

Result<Unit>
tryWriteTraceFile(const FrameTrace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        return Error::format(ErrorCode::Io,
                             "cannot open \"%s\" for writing",
                             path.c_str());
    }
    writeTrace(trace, os);
    os.flush();
    if (!os) {
        return Error::format(ErrorCode::Io, "write to \"%s\" failed",
                             path.c_str());
    }
    return Unit{};
}

void
writeTraceFile(const FrameTrace &trace, const std::string &path)
{
    tryWriteTraceFile(trace, path).takeOrFatal();
}

Result<FrameTrace>
tryReadTrace(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (static_cast<std::size_t>(is.gcount()) != sizeof(magic))
        return truncatedError("the magic");
    if (std::memcmp(magic, kMagicPrefix, sizeof(kMagicPrefix)) != 0)
        return Error(ErrorCode::BadMagic,
                     "not a gllc trace file (bad magic)");
    const char version = magic[7];
    if (version != kVersion1 && version != kVersion2)
        return Error::format(ErrorCode::BadVersion,
                             "unsupported trace version '%c'",
                             version);

    SectionReader header{is};
    FrameTrace trace;
    for (std::string *s : {&trace.name, &trace.app}) {
        std::uint32_t len = 0;
        if (!header.pod(len))
            return truncatedError("a string length");
        if (len > kMaxNameLen)
            return Error::format(
                ErrorCode::LimitExceeded,
                "absurd string length %u (corrupt header)", len);
        s->assign(len, '\0');
        if (len > 0 && !header.read(s->data(), len))
            return truncatedError("a string");
    }
    if (!header.pod(trace.frameIndex))
        return truncatedError("the frame index");
    for (std::uint64_t *counter :
         {&trace.work.shaderOps, &trace.work.texelRequests,
          &trace.work.pixelsShaded, &trace.work.verticesShaded,
          &trace.work.rawMemOps, &trace.work.issueCycles}) {
        if (!header.pod(*counter))
            return truncatedError("the work counters");
    }
    std::uint64_t count = 0;
    if (!header.pod(count))
        return truncatedError("the access count");
    if (count > kMaxAccessCount)
        return Error::format(
            ErrorCode::LimitExceeded,
            "absurd access count %llu (corrupt header)",
            static_cast<unsigned long long>(count));

    if (version == kVersion2) {
        std::uint64_t stored = 0;
        if (!readRawU64(is, stored))
            return truncatedError("the header checksum");
        if (stored != header.hash)
            return Error::format(
                ErrorCode::ChecksumMismatch,
                "header checksum mismatch "
                "(stored %016llx, computed %016llx)",
                static_cast<unsigned long long>(stored),
                static_cast<unsigned long long>(header.hash));
    }

    if (faultFires(FaultSite::TraceTruncate))
        return Error(ErrorCode::Truncated,
                     "trace file truncated while reading accesses "
                     "(injected fault trace.truncate)");

    trace.accesses.resize(count);
    const std::size_t record_bytes = count * sizeof(MemAccess);
    is.read(reinterpret_cast<char *>(trace.accesses.data()),
            static_cast<std::streamsize>(record_bytes));
    if (static_cast<std::size_t>(is.gcount()) != record_bytes)
        return truncatedError("the accesses");

    // Simulated on-disk rot: flip a deterministic bit of the
    // payload before checksumming, so verification must catch it.
    if (record_bytes > 0 && faultFires(FaultSite::TraceBitflip)) {
        const std::uint64_t bit =
            faultPayload(FaultSite::TraceBitflip)
            % (record_bytes * 8);
        reinterpret_cast<unsigned char *>(
            trace.accesses.data())[bit / 8] ^=
            static_cast<unsigned char>(1u << (bit % 8));
    }

    if (version == kVersion2) {
        std::uint64_t stored = 0;
        if (!readRawU64(is, stored))
            return truncatedError("the record checksum");
        const std::uint64_t computed =
            fnv1a64(trace.accesses.data(), record_bytes);
        if (stored != computed)
            return Error::format(
                ErrorCode::ChecksumMismatch,
                "record checksum mismatch "
                "(stored %016llx, computed %016llx)",
                static_cast<unsigned long long>(stored),
                static_cast<unsigned long long>(computed));
    }

    // Bounds of every record: the one corruption a checksum-free
    // version-1 trace can still reveal.
    for (std::size_t i = 0; i < trace.accesses.size(); ++i) {
        const auto tag =
            static_cast<std::size_t>(trace.accesses[i].stream);
        if (tag >= kNumStreams)
            return Error::format(
                ErrorCode::Corrupt,
                "record %zu has out-of-range stream tag %zu", i,
                tag);
    }
    return trace;
}

Result<FrameTrace>
tryReadTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return Error::format(ErrorCode::Io,
                             "cannot open \"%s\" for reading",
                             path.c_str());
    Result<FrameTrace> result = tryReadTrace(is);
    if (!result.ok())
        return Error(result.error().code,
                     path + ": " + result.error().context);
    return result;
}

FrameTrace
readTrace(std::istream &is)
{
    return tryReadTrace(is).takeOrFatal();
}

FrameTrace
readTraceFile(const std::string &path)
{
    return tryReadTraceFile(path).takeOrFatal();
}

} // namespace gllc
