#include "trace/stream.hh"

#include <array>

#include "common/logging.hh"

namespace gllc
{

const std::string &
streamName(StreamType s)
{
    static const std::array<std::string, kNumStreams> names = {
        "VTX", "HiZ", "Z", "STC", "RT", "TEX", "DISP", "OTHER",
    };
    const auto idx = static_cast<std::size_t>(s);
    GLLC_ASSERT(idx < kNumStreams);
    return names[idx];
}

const std::string &
policyStreamName(PolicyStream s)
{
    static const std::array<std::string, kNumPolicyStreams> names = {
        "Z", "TEX", "RT", "REST",
    };
    const auto idx = static_cast<std::size_t>(s);
    GLLC_ASSERT(idx < kNumPolicyStreams);
    return names[idx];
}

} // namespace gllc
