/**
 * @file
 * Unit tests for the banked LLC model: stats accounting, dirty
 * eviction, bypass (UCD), observers and bank isolation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/banked_llc.hh"
#include "cache/policy/lru.hh"

using namespace gllc;

namespace
{

MemAccess
acc(Addr block, StreamType s = StreamType::Other, bool write = false)
{
    return MemAccess(block * kBlockBytes, s, write);
}

LlcConfig
smallConfig(std::uint32_t banks = 1)
{
    LlcConfig config;
    config.capacityBytes = 8 * 1024;  // 128 blocks
    config.ways = 4;
    config.banks = banks;
    return config;
}

} // namespace

TEST(BankedLlc, ColdMissThenHit)
{
    BankedLlc llc(smallConfig(), LruPolicy::factory());
    const auto r1 = llc.access(acc(1));
    EXPECT_FALSE(r1.hit);
    const auto r2 = llc.access(acc(1));
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(llc.stats().totalAccesses(), 2u);
    EXPECT_EQ(llc.stats().totalHits(), 1u);
    EXPECT_EQ(llc.stats().totalMisses(), 1u);
}

TEST(BankedLlc, PerStreamAccounting)
{
    BankedLlc llc(smallConfig(), LruPolicy::factory());
    llc.access(acc(1, StreamType::Z));
    llc.access(acc(1, StreamType::Z));
    llc.access(acc(2, StreamType::Texture));
    const LlcStats &s = llc.stats();
    EXPECT_EQ(s.of(StreamType::Z).accesses, 2u);
    EXPECT_EQ(s.of(StreamType::Z).hits, 1u);
    EXPECT_EQ(s.of(StreamType::Z).misses, 1u);
    EXPECT_EQ(s.of(StreamType::Texture).misses, 1u);
    EXPECT_DOUBLE_EQ(s.hitRate(StreamType::Z), 0.5);
    EXPECT_DOUBLE_EQ(s.hitRate(StreamType::Display), 0.0);
}

TEST(BankedLlc, InvalidWaysFillBeforeEviction)
{
    BankedLlc llc(smallConfig(), LruPolicy::factory());
    // 4 ways: the first 4 distinct blocks of one set evict nothing.
    const std::uint32_t sets = llc.geometry().setsPerBank();
    for (Addr i = 0; i < 4; ++i)
        llc.access(acc(i * sets));  // same set, different tags
    EXPECT_EQ(llc.stats().evictions, 0u);
    llc.access(acc(4 * sets));
    EXPECT_EQ(llc.stats().evictions, 1u);
}

TEST(BankedLlc, DirtyEvictionProducesWriteback)
{
    BankedLlc llc(smallConfig(), LruPolicy::factory());
    const std::uint32_t sets = llc.geometry().setsPerBank();
    llc.access(acc(0, StreamType::RenderTarget, true));  // dirty
    for (Addr i = 1; i <= 4; ++i) {
        const auto r = llc.access(acc(i * sets));
        if (i == 4) {
            EXPECT_TRUE(r.writeback);
            EXPECT_EQ(r.writebackAddr, 0u);
        } else {
            EXPECT_FALSE(r.writeback);
        }
    }
    EXPECT_EQ(llc.stats().writebacks, 1u);
}

TEST(BankedLlc, CleanEvictionNoWriteback)
{
    BankedLlc llc(smallConfig(), LruPolicy::factory());
    const std::uint32_t sets = llc.geometry().setsPerBank();
    for (Addr i = 0; i <= 4; ++i)
        llc.access(acc(i * sets));
    EXPECT_EQ(llc.stats().evictions, 1u);
    EXPECT_EQ(llc.stats().writebacks, 0u);
}

TEST(BankedLlc, WriteHitMarksDirty)
{
    BankedLlc llc(smallConfig(), LruPolicy::factory());
    const std::uint32_t sets = llc.geometry().setsPerBank();
    llc.access(acc(0));                             // clean fill
    llc.access(acc(0, StreamType::Other, true));    // dirty via hit
    for (Addr i = 1; i <= 4; ++i)
        llc.access(acc(i * sets));
    EXPECT_EQ(llc.stats().writebacks, 1u);
}

TEST(BankedLlc, BypassPreventsAllocation)
{
    LlcConfig config = smallConfig();
    config.bypass = displayBypass();
    BankedLlc llc(config, LruPolicy::factory());

    const auto r1 = llc.access(acc(7, StreamType::Display, true));
    EXPECT_FALSE(r1.hit);
    EXPECT_TRUE(r1.bypassed);
    EXPECT_FALSE(llc.isResident(7 * kBlockBytes));

    const auto r2 = llc.access(acc(7, StreamType::Display, true));
    EXPECT_TRUE(r2.bypassed);  // still not cached

    const LlcStats &s = llc.stats();
    EXPECT_EQ(s.of(StreamType::Display).bypasses, 2u);
    EXPECT_EQ(s.of(StreamType::Display).misses, 0u);
    EXPECT_EQ(s.totalMisses(), 2u);  // bypasses still go to DRAM
}

TEST(BankedLlc, BypassedStreamCanHitResidentBlock)
{
    LlcConfig config = smallConfig();
    config.bypass = displayBypass();
    BankedLlc llc(config, LruPolicy::factory());
    // Another stream cached the block; a display access finds it.
    llc.access(acc(9, StreamType::RenderTarget, true));
    const auto r = llc.access(acc(9, StreamType::Display, false));
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.bypassed);
}

TEST(BankedLlc, NonDisplayStreamsUnaffectedByUcd)
{
    LlcConfig config = smallConfig();
    config.bypass = displayBypass();
    BankedLlc llc(config, LruPolicy::factory());
    llc.access(acc(3, StreamType::Texture));
    EXPECT_TRUE(llc.isResident(3 * kBlockBytes));
}

TEST(BankedLlc, BanksAreDisjoint)
{
    BankedLlc llc(smallConfig(4), LruPolicy::factory());
    // Blocks 0..3 land in banks 0..3; filling one bank's set never
    // evicts another bank's blocks.
    for (Addr i = 0; i < 4; ++i)
        llc.access(acc(i));
    for (Addr i = 0; i < 4; ++i)
        EXPECT_TRUE(llc.isResident(i * kBlockBytes));
    EXPECT_EQ(llc.geometry().banks(), 4u);
}

TEST(BankedLlc, IsResidentProbeHasNoSideEffects)
{
    BankedLlc llc(smallConfig(), LruPolicy::factory());
    EXPECT_FALSE(llc.isResident(0));
    EXPECT_EQ(llc.stats().totalAccesses(), 0u);
    llc.access(acc(0));
    EXPECT_TRUE(llc.isResident(0));
    EXPECT_TRUE(llc.isResident(32));  // same block, other offset
    EXPECT_EQ(llc.stats().totalAccesses(), 1u);
}

namespace
{

/** Observer that counts its callbacks. */
class CountingObserver : public LlcObserver
{
  public:
    void onHit(const MemAccess &) override { ++hits; }
    void onMiss(const MemAccess &) override { ++misses; }
    void onBypass(const MemAccess &) override { ++bypasses; }
    void onEvict(Addr addr) override
    {
        ++evictions;
        lastEvicted = addr;
    }

    int hits = 0, misses = 0, bypasses = 0, evictions = 0;
    Addr lastEvicted = ~0ull;
};

} // namespace

TEST(BankedLlc, ObserverSeesAllEvents)
{
    LlcConfig config = smallConfig();
    config.bypass = displayBypass();
    BankedLlc llc(config, LruPolicy::factory());
    CountingObserver obs;
    llc.setObserver(&obs);

    const std::uint32_t sets = llc.geometry().setsPerBank();
    llc.access(acc(0));                              // miss
    llc.access(acc(0));                              // hit
    llc.access(acc(1, StreamType::Display, false));  // bypass
    for (Addr i = 1; i <= 4; ++i)
        llc.access(acc(i * sets));                   // 4 misses, 1 evict

    EXPECT_EQ(obs.hits, 1);
    EXPECT_EQ(obs.misses, 5);
    EXPECT_EQ(obs.bypasses, 1);
    EXPECT_EQ(obs.evictions, 1);
    EXPECT_EQ(obs.lastEvicted, 0u);

    llc.setObserver(nullptr);  // detaching must be safe
    llc.access(acc(99));
    EXPECT_EQ(obs.misses, 5);
}

TEST(BankedLlc, StatsMerge)
{
    LlcStats a, b;
    a.stream[0].accesses = 2;
    a.stream[0].hits = 1;
    b.stream[0].accesses = 3;
    b.stream[0].misses = 3;
    b.writebacks = 4;
    a.merge(b);
    EXPECT_EQ(a.stream[0].accesses, 5u);
    EXPECT_EQ(a.stream[0].hits, 1u);
    EXPECT_EQ(a.stream[0].misses, 3u);
    EXPECT_EQ(a.writebacks, 4u);
}

TEST(BankedLlc, GeometryExposed)
{
    BankedLlc llc(smallConfig(), LruPolicy::factory());
    EXPECT_EQ(llc.geometry().capacityBytes(), 8u * 1024);
    EXPECT_EQ(llc.geometry().ways(), 4u);
}
