/**
 * @file
 * Property-based tests over randomized traces.
 *
 * The central invariants:
 *  - Belady's optimal policy never misses more than any online
 *    policy on the same trace and cache;
 *  - every policy's misses are at least the cold-miss lower bound
 *    and at most the trace length;
 *  - accounting identities hold (hits + misses + bypasses =
 *    accesses);
 *  - replays are deterministic.
 *
 * Each property runs as a parameterized sweep over (policy, seed).
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/offline_sim.hh"
#include "common/rng.hh"

using namespace gllc;

namespace
{

/** Random multi-stream trace with hot/cold mixture. */
FrameTrace
randomTrace(std::uint64_t seed, std::size_t length = 20000)
{
    Rng rng(seed);
    FrameTrace t;
    t.name = "random-" + std::to_string(seed);
    const StreamType streams[] = {
        StreamType::Vertex, StreamType::Z, StreamType::RenderTarget,
        StreamType::Texture, StreamType::Display, StreamType::Other,
    };
    for (std::size_t i = 0; i < length; ++i) {
        Addr block;
        if (rng.chance(0.5)) {
            block = rng.below(256);          // hot set
        } else {
            block = 256 + rng.below(16384);  // cold sprawl
        }
        const StreamType s = streams[rng.below(6)];
        t.accesses.emplace_back(block * kBlockBytes, s,
                                rng.chance(0.4),
                                static_cast<std::uint32_t>(i));
    }
    return t;
}

LlcConfig
smallLlc()
{
    LlcConfig c;
    c.capacityBytes = 128 * 1024;  // 2048 blocks
    c.ways = 16;
    c.banks = 4;
    return c;
}

std::uint64_t
coldMisses(const FrameTrace &t)
{
    std::unordered_set<Addr> seen;
    for (const MemAccess &a : t.accesses)
        seen.insert(blockNumber(a.addr));
    return seen.size();
}

using PolicySeed = std::tuple<std::string, std::uint64_t>;

class PolicyProperty : public ::testing::TestWithParam<PolicySeed>
{
};

} // namespace

TEST_P(PolicyProperty, BeladyIsOptimal)
{
    const auto &[policy, seed] = GetParam();
    const FrameTrace t = randomTrace(seed);
    const auto online =
        runTrace(t, policySpec(policy), smallLlc());
    const auto opt = runTrace(t, policySpec("Belady"), smallLlc());
    EXPECT_LE(opt.stats.totalMisses(), online.stats.totalMisses())
        << policy << " beat Belady on seed " << seed;
}

TEST_P(PolicyProperty, MissesBoundedByColdAndLength)
{
    const auto &[policy, seed] = GetParam();
    const FrameTrace t = randomTrace(seed);
    const auto r = runTrace(t, policySpec(policy), smallLlc());
    EXPECT_GE(r.stats.totalMisses(), coldMisses(t));
    EXPECT_LE(r.stats.totalMisses(), t.accesses.size());
}

TEST_P(PolicyProperty, AccountingIdentity)
{
    const auto &[policy, seed] = GetParam();
    const FrameTrace t = randomTrace(seed);
    const auto r = runTrace(t, policySpec(policy), smallLlc());
    EXPECT_EQ(r.stats.totalAccesses(), t.accesses.size());
    std::uint64_t sum = 0;
    for (const auto &s : r.stats.stream)
        sum += s.hits + s.misses + s.bypasses;
    EXPECT_EQ(sum, t.accesses.size());
}

TEST_P(PolicyProperty, ReplayIsDeterministic)
{
    const auto &[policy, seed] = GetParam();
    const FrameTrace t = randomTrace(seed, 8000);
    const auto a = runTrace(t, policySpec(policy), smallLlc());
    const auto b = runTrace(t, policySpec(policy), smallLlc());
    EXPECT_EQ(a.stats.totalMisses(), b.stats.totalMisses());
    EXPECT_EQ(a.stats.totalHits(), b.stats.totalHits());
}

TEST_P(PolicyProperty, UcdNeverCachesDisplay)
{
    const auto &[policy, seed] = GetParam();
    const FrameTrace t = randomTrace(seed, 8000);
    const auto r =
        runTrace(t, policySpec(policy + "+UCD"), smallLlc());
    const auto &disp = r.stats.of(StreamType::Display);
    // Display may still hit blocks cached by other streams, but it
    // must never allocate.
    EXPECT_EQ(disp.misses, 0u);
    EXPECT_EQ(disp.accesses, disp.hits + disp.bypasses);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyProperty,
    ::testing::Combine(
        ::testing::Values("LRU", "NRU", "Random", "SRRIP", "DRRIP",
                          "DRRIP-4", "GS-DRRIP", "SHiP-mem", "DIP",
                          "UCP-stream", "peLIFO", "GSPZTC",
                          "GSPZTC+TSE", "GSPC"),
        ::testing::Values(1ull, 2ull, 3ull)),
    [](const ::testing::TestParamInfo<PolicySeed> &info) {
        std::string name = std::get<0>(info.param) + "_seed"
            + std::to_string(std::get<1>(info.param));
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

namespace
{

class CapacityProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(CapacityProperty, WiderBeladyCacheNeverMissesMore)
{
    // At a fixed set count, growing the associativity grows each
    // set's private capacity; per-set OPT is optimal on the set's
    // subtrace, so misses are monotone non-increasing (the OPT
    // inclusion property).
    const FrameTrace t = randomTrace(GetParam());
    std::uint64_t last = ~0ull;
    for (const std::uint32_t ways : {16u, 32u, 64u, 128u}) {
        LlcConfig c;
        c.capacityBytes =
            static_cast<std::uint64_t>(ways) * 32 * kBlockBytes;
        c.ways = ways;  // 32 sets at every step
        c.banks = 1;
        const auto r = runTrace(t, policySpec("Belady"), c);
        EXPECT_LE(r.stats.totalMisses(), last);
        last = r.stats.totalMisses();
    }
}

TEST_P(CapacityProperty, HugeCacheLeavesOnlyColdMisses)
{
    const FrameTrace t = randomTrace(GetParam());
    LlcConfig c;
    c.capacityBytes = 4 << 20;  // far beyond the working set
    c.ways = 16;
    c.banks = 1;
    for (const char *policy : {"LRU", "DRRIP", "GSPC", "Belady"}) {
        const auto r = runTrace(t, policySpec(policy), c);
        EXPECT_EQ(r.stats.totalMisses(), coldMisses(t)) << policy;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CapacityProperty,
                         ::testing::Values(11ull, 22ull, 33ull));
