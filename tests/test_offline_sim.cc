/**
 * @file
 * Tests for the offline LLC replay harness.
 */

#include <gtest/gtest.h>

#include "analysis/offline_sim.hh"

using namespace gllc;

namespace
{

FrameTrace
syntheticTrace()
{
    FrameTrace t;
    t.name = "synthetic";
    // RT production, consumption, a Z pair, display writes.
    for (Addr b = 0; b < 64; ++b)
        t.accesses.emplace_back(b * kBlockBytes,
                                StreamType::RenderTarget, true);
    for (Addr b = 0; b < 64; ++b)
        t.accesses.emplace_back(b * kBlockBytes, StreamType::Texture,
                                false);
    for (Addr b = 100; b < 132; ++b)
        t.accesses.emplace_back(b * kBlockBytes, StreamType::Z, true);
    for (Addr b = 200; b < 232; ++b)
        t.accesses.emplace_back(b * kBlockBytes, StreamType::Display,
                                true);
    return t;
}

LlcConfig
tinyLlc()
{
    LlcConfig c;
    c.capacityBytes = 64 * 1024;
    c.ways = 16;
    c.banks = 4;
    return c;
}

} // namespace

TEST(OfflineSim, StatsCoverWholeTrace)
{
    const FrameTrace t = syntheticTrace();
    const RunResult r = runTrace(t, policySpec("DRRIP"), tinyLlc());
    EXPECT_EQ(r.stats.totalAccesses(), t.accesses.size());
    // Everything fits in 1024 blocks: texture reads all hit.
    EXPECT_EQ(r.stats.of(StreamType::Texture).hits, 64u);
    EXPECT_EQ(r.characterization.rtConsumptions, 64u);
}

TEST(OfflineSim, BeladyOracleBuiltOnDemand)
{
    const FrameTrace t = syntheticTrace();
    const RunResult r = runTrace(t, policySpec("Belady"), tinyLlc());
    EXPECT_EQ(r.stats.of(StreamType::Texture).hits, 64u);
}

TEST(OfflineSim, UcdBypassesDisplayOnly)
{
    const FrameTrace t = syntheticTrace();
    const RunResult r =
        runTrace(t, policySpec("DRRIP+UCD"), tinyLlc());
    EXPECT_EQ(r.stats.of(StreamType::Display).bypasses, 32u);
    EXPECT_EQ(r.stats.of(StreamType::Display).misses, 0u);
    EXPECT_EQ(r.stats.of(StreamType::Z).misses, 32u);
}

TEST(OfflineSim, DramTraceOnRequest)
{
    const FrameTrace t = syntheticTrace();
    RunOptions options;
    options.collectDramTrace = true;
    const RunResult r =
        runTrace(t, policySpec("DRRIP"), tinyLlc(), options);
    // Misses: 64 RT + 32 Z + 32 display = 128 (textures hit); no
    // capacity evictions, so no writebacks.
    EXPECT_EQ(r.dramTrace.size(), 128u);
    const RunResult no_collect =
        runTrace(t, policySpec("DRRIP"), tinyLlc());
    EXPECT_TRUE(no_collect.dramTrace.empty());
}

TEST(OfflineSim, DramTraceIncludesWritebacks)
{
    // Overflow a tiny LLC with dirty blocks: writebacks appear.
    FrameTrace t;
    for (Addr b = 0; b < 1024; ++b)
        t.accesses.emplace_back(b * kBlockBytes,
                                StreamType::RenderTarget, true);
    LlcConfig config;
    config.capacityBytes = 16 * 1024;  // 256 blocks
    config.ways = 4;
    config.banks = 1;
    RunOptions options;
    options.collectDramTrace = true;
    const RunResult r =
        runTrace(t, policySpec("LRU"), config, options);
    EXPECT_GT(r.dramTrace.size(), 1024u);
    EXPECT_EQ(r.stats.writebacks, r.dramTrace.size() - 1024u);
}

TEST(OfflineSim, FillHistogramReturned)
{
    const FrameTrace t = syntheticTrace();
    const RunResult r = runTrace(t, policySpec("DRRIP"), tinyLlc());
    EXPECT_EQ(r.fills.fills(PolicyStream::RenderTarget), 64u + 32u);
    EXPECT_EQ(r.fills.fills(PolicyStream::Z), 32u);
    EXPECT_EQ(r.fills.fills(PolicyStream::Texture), 0u);  // all hits
}

TEST(OfflineSim, ScaledLlcConfig)
{
    const LlcConfig full = scaledLlcConfig(8ull << 20, 1);
    EXPECT_EQ(full.capacityBytes, 8ull << 20);
    const LlcConfig quarter = scaledLlcConfig(8ull << 20, 16);
    EXPECT_EQ(quarter.capacityBytes, 512u * 1024);
    // Floor guards tiny scales.
    const LlcConfig tiny = scaledLlcConfig(1 << 20, 256);
    EXPECT_EQ(tiny.capacityBytes, 64u * 1024);
}

TEST(OfflineSim, PoliciesAreIndependentAcrossRuns)
{
    const FrameTrace t = syntheticTrace();
    const RunResult a = runTrace(t, policySpec("GSPC"), tinyLlc());
    const RunResult b = runTrace(t, policySpec("GSPC"), tinyLlc());
    EXPECT_EQ(a.stats.totalMisses(), b.stats.totalMisses());
    EXPECT_EQ(a.characterization.rtConsumptions,
              b.characterization.rtConsumptions);
}
