/**
 * @file
 * End-to-end tests of the gllcd sweep service: an in-process
 * SweepDaemon forking real worker subprocesses (the gllcd binary via
 * GLLC_WORKER_EXE), exercised through real sockets.
 *
 * The non-negotiable properties under test:
 *  - a served result is byte-identical to an in-process
 *    SweepConfig::fromSpec(spec).run();
 *  - resubmitting an identical job is answered from the result
 *    store without recompute;
 *  - a crashing worker quarantines its cell and never kills the
 *    daemon;
 *  - hostile bytes on the wire come back as typed error frames, and
 *    the daemon keeps serving.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/report.hh"
#include "analysis/sweep.hh"
#include "common/fault.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "workload/app_profile.hh"

using namespace gllc;

namespace
{

/** Tiny two-frame, one-policy job: fast, deterministic. */
SweepJobSpec
tinySpec()
{
    SweepJobSpec spec;
    spec.policies = {"DRRIP+UCD"};
    spec.frames = {{paperApps()[0].name, 0},
                   {paperApps()[0].name, 1}};
    spec.scaleLinear = 8;
    spec.scatterPages = true;
    spec.llcBytes = 8ull << 20;
    spec.threads = 1;
    spec.backoffMs = 1;
    return spec;
}

/** The bytes an in-process run of @p spec serializes to. */
std::string
localPayload(const SweepJobSpec &spec)
{
    const SweepResult result = SweepConfig::fromSpec(spec).run();
    std::ostringstream os;
    writeSweepJson(result, os);
    return os.str();
}

/** Daemon + socket paths scoped to one test. */
class ServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Workers fork+exec the gllcd binary (compiled in by CMake);
        // without this the worker exe would be the test binary via
        // /proc/self/exe, which has no --worker mode.
        ::setenv("GLLC_WORKER_EXE", GLLC_GLLCD_PATH, 1);
        ::unsetenv("GLLC_FAULT");
        configureFaults("");
    }

    void
    TearDown() override
    {
        ::unsetenv("GLLC_FAULT");
        configureFaults("");
    }

    std::string
    tempPath(const std::string &leaf)
    {
        return ::testing::TempDir() + "/gllc_svc_"
            + std::to_string(::getpid()) + "_" + leaf;
    }

    /** Start a daemon on a fresh Unix socket (no result store). */
    SweepDaemon &
    startDaemon(const std::string &store_dir = "")
    {
        DaemonOptions options;
        options.socketPath = tempPath("sock");
        options.workers = 2;
        options.storeDir = store_dir;
        daemon_ = std::make_unique<SweepDaemon>(std::move(options));
        Result<Unit> started = daemon_->start();
        EXPECT_TRUE(started.ok()) << started.error().toString();
        return *daemon_;
    }

    ServiceClient
    connect()
    {
        Result<ServiceClient> client =
            ServiceClient::connectUnix(daemon_->socketPath());
        EXPECT_TRUE(client.ok()) << client.error().toString();
        return client.take();
    }

    std::unique_ptr<SweepDaemon> daemon_;
};

} // namespace

TEST_F(ServiceTest, ServedResultIsByteIdenticalToLocalRun)
{
    const SweepJobSpec spec = tinySpec();
    const std::string expected = localPayload(spec);

    startDaemon();
    ServiceClient client = connect();
    Result<SubmitOutcome> outcome = client.submit(spec);
    ASSERT_TRUE(outcome.ok()) << outcome.error().toString();

    EXPECT_FALSE(outcome.value().header.cached);
    EXPECT_EQ(outcome.value().header.specHash, spec.contentHash());
    EXPECT_EQ(outcome.value().header.traceHash, spec.traceHash());
    EXPECT_EQ(outcome.value().header.quarantined, 0u);
    EXPECT_EQ(outcome.value().payload, expected);
}

TEST_F(ServiceTest, ResubmissionIsServedFromTheResultStore)
{
    const SweepJobSpec spec = tinySpec();
    SweepDaemon &daemon = startDaemon(tempPath("store"));

    ServiceClient first = connect();
    Result<SubmitOutcome> computed = first.submit(spec, "tenant-a");
    ASSERT_TRUE(computed.ok()) << computed.error().toString();
    ASSERT_FALSE(computed.value().header.cached);

    // A different tenant submitting the identical job shares the
    // stored entry: content addressing, not per-tenant caching.
    ServiceClient second = connect();
    Result<SubmitOutcome> cached = second.submit(spec, "tenant-b");
    ASSERT_TRUE(cached.ok()) << cached.error().toString();
    EXPECT_TRUE(cached.value().header.cached);
    EXPECT_EQ(cached.value().payload, computed.value().payload);
    EXPECT_EQ(daemon.cacheHits(), 1u);
    EXPECT_EQ(daemon.jobsCompleted(), 1u);
}

TEST_F(ServiceTest, ConcurrentClientsBothGetFullResults)
{
    const SweepJobSpec spec = tinySpec();
    SweepJobSpec other = spec;
    other.llcBytes = 4ull << 20;  // different job, same traces
    ASSERT_NE(other.contentHash(), spec.contentHash());

    startDaemon();
    std::string payload_a, payload_b;
    std::thread submit_a([&] {
        ServiceClient client = connect();
        Result<SubmitOutcome> got = client.submit(spec, "a");
        if (got.ok())
            payload_a = got.take().payload;
    });
    std::thread submit_b([&] {
        ServiceClient client = connect();
        Result<SubmitOutcome> got = client.submit(other, "b");
        if (got.ok())
            payload_b = got.take().payload;
    });
    submit_a.join();
    submit_b.join();

    EXPECT_EQ(payload_a, localPayload(spec));
    EXPECT_EQ(payload_b, localPayload(other));
    EXPECT_EQ(daemon_->jobsCompleted(), 2u);
}

TEST_F(ServiceTest, InvalidSpecIsRejectedWithoutKillingTheDaemon)
{
    startDaemon();
    SweepJobSpec bad = tinySpec();
    bad.policies = {"NoSuchPolicy"};

    ServiceClient client = connect();
    Result<SubmitOutcome> outcome = client.submit(bad);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, ErrorCode::InvalidArgument);

    // Same connection still serves a good job afterwards.
    Result<SubmitOutcome> good = client.submit(tinySpec());
    EXPECT_TRUE(good.ok()) << good.error().toString();
}

TEST_F(ServiceTest, WorkerCrashQuarantinesCellsNotTheDaemon)
{
    startDaemon();

    // Workers inherit the environment, so every cell attempt
    // hard-exits its worker mid-cell.  The test process itself never
    // draws at this site (the parent does not run cells in-process).
    ::setenv("GLLC_FAULT", "worker.crash:p=1", 1);
    ServiceClient client = connect();
    Result<SubmitOutcome> outcome = client.submit(tinySpec());
    ::unsetenv("GLLC_FAULT");

    ASSERT_TRUE(outcome.ok()) << outcome.error().toString();
    EXPECT_EQ(outcome.value().header.quarantined, 2u);
    EXPECT_GE(daemon_->workerCrashes(), 2u);

    // The daemon survived and a clean resubmission now computes the
    // full result (quarantined results are never cached).
    Result<SubmitOutcome> clean = client.submit(tinySpec());
    ASSERT_TRUE(clean.ok()) << clean.error().toString();
    EXPECT_FALSE(clean.value().header.cached);
    EXPECT_EQ(clean.value().header.quarantined, 0u);
}

TEST_F(ServiceTest, StatusReportsCounters)
{
    SweepDaemon &daemon = startDaemon(tempPath("status_store"));
    ServiceClient client = connect();
    ASSERT_TRUE(client.submit(tinySpec()).ok());
    ASSERT_TRUE(client.submit(tinySpec()).ok());

    Result<std::string> status = client.status();
    ASSERT_TRUE(status.ok()) << status.error().toString();
    EXPECT_NE(status.value().find("\"jobs_completed\":1"),
              std::string::npos);
    EXPECT_NE(status.value().find("\"cache_hits\":1"),
              std::string::npos);
    EXPECT_EQ(daemon.jobsCompleted(), 1u);
    EXPECT_EQ(daemon.cacheHits(), 1u);
}

TEST_F(ServiceTest, HostileBytesGetTypedErrorsAndServiceSurvives)
{
    startDaemon();

    // Raw connection, bypassing ServiceClient.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, daemon_->socketPath().c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    // A well-framed frame of non-JSON garbage: the daemon must
    // answer with a typed error frame, not crash or hang up.
    ASSERT_TRUE(writeFrame(fd, "\x01\x02not json at all").ok());
    std::string response;
    Result<bool> read = readFrame(fd, response);
    ASSERT_TRUE(read.ok()) << read.error().toString();
    ASSERT_TRUE(read.value());
    ResultHeader header;
    Error error;
    Result<bool> kind = parseResponseFrame(response, header, error);
    ASSERT_TRUE(kind.ok()) << kind.error().toString();
    EXPECT_FALSE(kind.value());
    EXPECT_EQ(error.code, ErrorCode::Corrupt);

    // The same connection still answers a valid status request.
    ASSERT_TRUE(writeFrame(fd, statusEnvelopeJson()).ok());
    read = readFrame(fd, response);
    ASSERT_TRUE(read.ok()) << read.error().toString();
    ASSERT_TRUE(read.value());
    EXPECT_NE(response.find("\"jobs_submitted\""),
              std::string::npos);

    // An envelope that is valid JSON but not a gllcd document.
    ASSERT_TRUE(writeFrame(fd, "{\"hello\":1}").ok());
    read = readFrame(fd, response);
    ASSERT_TRUE(read.ok()) << read.error().toString();
    ASSERT_TRUE(read.value());
    kind = parseResponseFrame(response, header, error);
    ASSERT_TRUE(kind.ok());
    EXPECT_FALSE(kind.value());
    EXPECT_EQ(error.code, ErrorCode::BadMagic);

    ::close(fd);

    // The daemon outlived all of it and serves a fresh client.
    ServiceClient client = connect();
    EXPECT_TRUE(client.status().ok());
}

TEST_F(ServiceTest, StopUnderLoadReleasesQueuedClients)
{
    startDaemon();

    // Every cell stalls 100 ms in its worker, so the first job
    // holds the dispatcher long enough for stop() to land while the
    // second is still queued.  Jobs queued at shutdown must fail
    // their waiting clients, not strand them (and stop() with them).
    ::setenv("GLLC_FAULT", "cell.delay:p=1", 1);
    const SweepJobSpec slow_a = tinySpec();
    SweepJobSpec slow_b = tinySpec();
    slow_b.llcBytes = 4ull << 20;  // distinct job, no dedup join

    std::atomic<int> released{0};
    std::thread submit_a([&] {
        ServiceClient client = connect();
        (void)client.submit(slow_a, "a");
        released.fetch_add(1);
    });
    std::thread submit_b([&] {
        ServiceClient client = connect();
        (void)client.submit(slow_b, "b");
        released.fetch_add(1);
    });
    // Let both submissions reach the daemon, then pull the plug.
    // If stop() abandons queued jobs without failing their waiters,
    // it never returns and this test times out.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    daemon_->stop();
    submit_a.join();
    submit_b.join();
    ::unsetenv("GLLC_FAULT");
    EXPECT_EQ(released.load(), 2);
}

TEST_F(ServiceTest, HungWorkerIsKilledAtTheCellTimeout)
{
    startDaemon();

    // cell.delay stalls every cell 100 ms inside the worker; a
    // 30 ms hard timeout must kill the hung worker and quarantine
    // the cell instead of waiting out the stall (retries = 0 so
    // each cell is attempted exactly once).
    SweepJobSpec spec = tinySpec();
    spec.cellTimeoutMs = 30;
    spec.retries = 0;
    ::setenv("GLLC_FAULT", "cell.delay:p=1", 1);
    ServiceClient client = connect();
    Result<SubmitOutcome> outcome = client.submit(spec);
    ::unsetenv("GLLC_FAULT");

    ASSERT_TRUE(outcome.ok()) << outcome.error().toString();
    EXPECT_EQ(outcome.value().header.quarantined, 2u);
    EXPECT_EQ(daemon_->cellTimeouts(), 2u);
    EXPECT_NE(outcome.value().payload.find("exceeded timeout"),
              std::string::npos);

    // The daemon survived; without the fault the same job now
    // completes cleanly.  A generous budget keeps slow CI machines
    // from tripping it (the knob is outside the content hash, so
    // this is still the same job).
    spec.cellTimeoutMs = 10000;
    Result<SubmitOutcome> clean = client.submit(spec);
    ASSERT_TRUE(clean.ok()) << clean.error().toString();
    EXPECT_EQ(clean.value().header.quarantined, 0u);
}

TEST_F(ServiceTest, StatusAnswersConcurrentlyWithRunningJobs)
{
    // Regression for the daemon's lock discipline: status requests
    // answer from counters while the dispatcher executes jobs and
    // submit waiters sleep on their JobState.  Hammering status
    // concurrently with two real jobs must never wedge, crash, or
    // return malformed JSON (the TSan CI job checks the data-race
    // half of this contract).
    const SweepJobSpec spec = tinySpec();
    SweepJobSpec other = spec;
    other.llcBytes = 4ull << 20;

    startDaemon();
    std::atomic<bool> submits_done{false};
    std::atomic<unsigned> status_ok{0};
    std::thread pest([&] {
        while (!submits_done.load()) {
            ServiceClient client = connect();
            Result<std::string> status = client.status();
            ASSERT_TRUE(status.ok()) << status.error().toString();
            EXPECT_NE(status.value().find("\"queue_depth\":"),
                      std::string::npos);
            ++status_ok;
        }
    });

    std::thread submit_a([&] {
        ServiceClient client = connect();
        Result<SubmitOutcome> got = client.submit(spec, "a");
        EXPECT_TRUE(got.ok());
    });
    std::thread submit_b([&] {
        ServiceClient client = connect();
        Result<SubmitOutcome> got = client.submit(other, "b");
        EXPECT_TRUE(got.ok());
    });
    submit_a.join();
    submit_b.join();
    submits_done.store(true);
    pest.join();

    EXPECT_GE(status_ok.load(), 1u);
    EXPECT_EQ(daemon_->jobsCompleted(), 2u);
}
