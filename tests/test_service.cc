/**
 * @file
 * End-to-end tests of the gllcd sweep service: an in-process
 * SweepDaemon forking real worker subprocesses (the gllcd binary via
 * GLLC_WORKER_EXE), exercised through real sockets.
 *
 * The non-negotiable properties under test:
 *  - a served result is byte-identical to an in-process
 *    SweepConfig::fromSpec(spec).run();
 *  - resubmitting an identical job is answered from the result
 *    store without recompute;
 *  - a crashing worker quarantines its cell and never kills the
 *    daemon;
 *  - hostile bytes on the wire come back as typed error frames, and
 *    the daemon keeps serving.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/report.hh"
#include "analysis/sweep.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "common/metrics.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/job_journal.hh"
#include "service/protocol.hh"
#include "workload/app_profile.hh"

using namespace gllc;

namespace
{

/** Tiny two-frame, one-policy job: fast, deterministic. */
SweepJobSpec
tinySpec()
{
    SweepJobSpec spec;
    spec.policies = {"DRRIP+UCD"};
    spec.frames = {{paperApps()[0].name, 0},
                   {paperApps()[0].name, 1}};
    spec.scaleLinear = 8;
    spec.scatterPages = true;
    spec.llcBytes = 8ull << 20;
    spec.threads = 1;
    spec.backoffMs = 1;
    return spec;
}

/** The bytes an in-process run of @p spec serializes to. */
std::string
localPayload(const SweepJobSpec &spec)
{
    const SweepResult result = SweepConfig::fromSpec(spec).run();
    std::ostringstream os;
    writeSweepJson(result, os);
    return os.str();
}

/** Daemon + socket paths scoped to one test. */
class ServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Workers fork+exec the gllcd binary (compiled in by CMake);
        // without this the worker exe would be the test binary via
        // /proc/self/exe, which has no --worker mode.
        ::setenv("GLLC_WORKER_EXE", GLLC_GLLCD_PATH, 1);
        ::unsetenv("GLLC_FAULT");
        configureFaults("");
    }

    void
    TearDown() override
    {
        ::unsetenv("GLLC_FAULT");
        configureFaults("");
    }

    std::string
    tempPath(const std::string &leaf)
    {
        return ::testing::TempDir() + "/gllc_svc_"
            + std::to_string(::getpid()) + "_" + leaf;
    }

    /** Start a daemon on a fresh Unix socket (no result store). */
    SweepDaemon &
    startDaemon(const std::string &store_dir = "")
    {
        DaemonOptions options;
        options.socketPath = tempPath("sock");
        options.workers = 2;
        options.storeDir = store_dir;
        return startDaemonWith(std::move(options));
    }

    /** Start a daemon with caller-tuned options (telemetry tests). */
    SweepDaemon &
    startDaemonWith(DaemonOptions options)
    {
        if (options.socketPath.empty())
            options.socketPath = tempPath("sock");
        daemon_ = std::make_unique<SweepDaemon>(std::move(options));
        Result<Unit> started = daemon_->start();
        EXPECT_TRUE(started.ok()) << started.error().toString();
        return *daemon_;
    }

    ServiceClient
    connect()
    {
        Result<ServiceClient> client =
            ServiceClient::connectUnix(daemon_->socketPath());
        EXPECT_TRUE(client.ok()) << client.error().toString();
        return client.take();
    }

    std::unique_ptr<SweepDaemon> daemon_;
};

} // namespace

TEST_F(ServiceTest, ServedResultIsByteIdenticalToLocalRun)
{
    const SweepJobSpec spec = tinySpec();
    const std::string expected = localPayload(spec);

    startDaemon();
    ServiceClient client = connect();
    Result<SubmitOutcome> outcome = client.submit(spec);
    ASSERT_TRUE(outcome.ok()) << outcome.error().toString();

    EXPECT_FALSE(outcome.value().header.cached);
    EXPECT_EQ(outcome.value().header.specHash, spec.contentHash());
    EXPECT_EQ(outcome.value().header.traceHash, spec.traceHash());
    EXPECT_EQ(outcome.value().header.quarantined, 0u);
    EXPECT_EQ(outcome.value().payload, expected);
}

TEST_F(ServiceTest, ResubmissionIsServedFromTheResultStore)
{
    const SweepJobSpec spec = tinySpec();
    SweepDaemon &daemon = startDaemon(tempPath("store"));

    ServiceClient first = connect();
    Result<SubmitOutcome> computed = first.submit(spec, "tenant-a");
    ASSERT_TRUE(computed.ok()) << computed.error().toString();
    ASSERT_FALSE(computed.value().header.cached);

    // A different tenant submitting the identical job shares the
    // stored entry: content addressing, not per-tenant caching.
    ServiceClient second = connect();
    Result<SubmitOutcome> cached = second.submit(spec, "tenant-b");
    ASSERT_TRUE(cached.ok()) << cached.error().toString();
    EXPECT_TRUE(cached.value().header.cached);
    EXPECT_EQ(cached.value().payload, computed.value().payload);
    EXPECT_EQ(daemon.cacheHits(), 1u);
    EXPECT_EQ(daemon.jobsCompleted(), 1u);
}

TEST_F(ServiceTest, ConcurrentClientsBothGetFullResults)
{
    const SweepJobSpec spec = tinySpec();
    SweepJobSpec other = spec;
    other.llcBytes = 4ull << 20;  // different job, same traces
    ASSERT_NE(other.contentHash(), spec.contentHash());

    startDaemon();
    std::string payload_a, payload_b;
    std::thread submit_a([&] {
        ServiceClient client = connect();
        Result<SubmitOutcome> got = client.submit(spec, "a");
        if (got.ok())
            payload_a = got.take().payload;
    });
    std::thread submit_b([&] {
        ServiceClient client = connect();
        Result<SubmitOutcome> got = client.submit(other, "b");
        if (got.ok())
            payload_b = got.take().payload;
    });
    submit_a.join();
    submit_b.join();

    EXPECT_EQ(payload_a, localPayload(spec));
    EXPECT_EQ(payload_b, localPayload(other));
    EXPECT_EQ(daemon_->jobsCompleted(), 2u);
}

TEST_F(ServiceTest, InvalidSpecIsRejectedWithoutKillingTheDaemon)
{
    startDaemon();
    SweepJobSpec bad = tinySpec();
    bad.policies = {"NoSuchPolicy"};

    ServiceClient client = connect();
    Result<SubmitOutcome> outcome = client.submit(bad);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, ErrorCode::InvalidArgument);

    // Same connection still serves a good job afterwards.
    Result<SubmitOutcome> good = client.submit(tinySpec());
    EXPECT_TRUE(good.ok()) << good.error().toString();
}

TEST_F(ServiceTest, WorkerCrashQuarantinesCellsNotTheDaemon)
{
    startDaemon();

    // Workers inherit the environment, so every cell attempt
    // hard-exits its worker mid-cell.  The test process itself never
    // draws at this site (the parent does not run cells in-process).
    ::setenv("GLLC_FAULT", "worker.crash:p=1", 1);
    ServiceClient client = connect();
    Result<SubmitOutcome> outcome = client.submit(tinySpec());
    ::unsetenv("GLLC_FAULT");

    ASSERT_TRUE(outcome.ok()) << outcome.error().toString();
    EXPECT_EQ(outcome.value().header.quarantined, 2u);
    EXPECT_GE(daemon_->workerCrashes(), 2u);

    // The daemon survived and a clean resubmission now computes the
    // full result (quarantined results are never cached).
    Result<SubmitOutcome> clean = client.submit(tinySpec());
    ASSERT_TRUE(clean.ok()) << clean.error().toString();
    EXPECT_FALSE(clean.value().header.cached);
    EXPECT_EQ(clean.value().header.quarantined, 0u);
}

TEST_F(ServiceTest, StatusReportsCounters)
{
    SweepDaemon &daemon = startDaemon(tempPath("status_store"));
    ServiceClient client = connect();
    ASSERT_TRUE(client.submit(tinySpec()).ok());
    ASSERT_TRUE(client.submit(tinySpec()).ok());

    Result<std::string> status = client.status();
    ASSERT_TRUE(status.ok()) << status.error().toString();
    EXPECT_NE(status.value().find("\"jobs_completed\":1"),
              std::string::npos);
    EXPECT_NE(status.value().find("\"cache_hits\":1"),
              std::string::npos);
    EXPECT_EQ(daemon.jobsCompleted(), 1u);
    EXPECT_EQ(daemon.cacheHits(), 1u);
}

TEST_F(ServiceTest, HostileBytesGetTypedErrorsAndServiceSurvives)
{
    startDaemon();

    // Raw connection, bypassing ServiceClient.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, daemon_->socketPath().c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    // A well-framed frame of non-JSON garbage: the daemon must
    // answer with a typed error frame, not crash or hang up.
    ASSERT_TRUE(writeFrame(fd, "\x01\x02not json at all").ok());
    std::string response;
    Result<bool> read = readFrame(fd, response);
    ASSERT_TRUE(read.ok()) << read.error().toString();
    ASSERT_TRUE(read.value());
    ResultHeader header;
    Error error;
    Result<bool> kind = parseResponseFrame(response, header, error);
    ASSERT_TRUE(kind.ok()) << kind.error().toString();
    EXPECT_FALSE(kind.value());
    EXPECT_EQ(error.code, ErrorCode::Corrupt);

    // The same connection still answers a valid status request.
    ASSERT_TRUE(writeFrame(fd, statusEnvelopeJson()).ok());
    read = readFrame(fd, response);
    ASSERT_TRUE(read.ok()) << read.error().toString();
    ASSERT_TRUE(read.value());
    EXPECT_NE(response.find("\"jobs_submitted\""),
              std::string::npos);

    // An envelope that is valid JSON but not a gllcd document.
    ASSERT_TRUE(writeFrame(fd, "{\"hello\":1}").ok());
    read = readFrame(fd, response);
    ASSERT_TRUE(read.ok()) << read.error().toString();
    ASSERT_TRUE(read.value());
    kind = parseResponseFrame(response, header, error);
    ASSERT_TRUE(kind.ok());
    EXPECT_FALSE(kind.value());
    EXPECT_EQ(error.code, ErrorCode::BadMagic);

    ::close(fd);

    // The daemon outlived all of it and serves a fresh client.
    ServiceClient client = connect();
    EXPECT_TRUE(client.status().ok());
}

TEST_F(ServiceTest, StopUnderLoadReleasesQueuedClients)
{
    startDaemon();

    // Every cell stalls 100 ms in its worker, so the first job
    // holds the dispatcher long enough for stop() to land while the
    // second is still queued.  Jobs queued at shutdown must fail
    // their waiting clients, not strand them (and stop() with them).
    ::setenv("GLLC_FAULT", "cell.delay:p=1", 1);
    const SweepJobSpec slow_a = tinySpec();
    SweepJobSpec slow_b = tinySpec();
    slow_b.llcBytes = 4ull << 20;  // distinct job, no dedup join

    std::atomic<int> released{0};
    std::thread submit_a([&] {
        ServiceClient client = connect();
        (void)client.submit(slow_a, "a");
        released.fetch_add(1);
    });
    std::thread submit_b([&] {
        ServiceClient client = connect();
        (void)client.submit(slow_b, "b");
        released.fetch_add(1);
    });
    // Let both submissions reach the daemon, then pull the plug.
    // If stop() abandons queued jobs without failing their waiters,
    // it never returns and this test times out.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    daemon_->stop();
    submit_a.join();
    submit_b.join();
    ::unsetenv("GLLC_FAULT");
    EXPECT_EQ(released.load(), 2);
}

TEST_F(ServiceTest, HungWorkerIsKilledAtTheCellTimeout)
{
    startDaemon();

    // cell.delay stalls every cell 100 ms inside the worker; a
    // 30 ms hard timeout must kill the hung worker and quarantine
    // the cell instead of waiting out the stall (retries = 0 so
    // each cell is attempted exactly once).
    SweepJobSpec spec = tinySpec();
    spec.cellTimeoutMs = 30;
    spec.retries = 0;
    ::setenv("GLLC_FAULT", "cell.delay:p=1", 1);
    ServiceClient client = connect();
    Result<SubmitOutcome> outcome = client.submit(spec);
    ::unsetenv("GLLC_FAULT");

    ASSERT_TRUE(outcome.ok()) << outcome.error().toString();
    EXPECT_EQ(outcome.value().header.quarantined, 2u);
    EXPECT_EQ(daemon_->cellTimeouts(), 2u);
    EXPECT_NE(outcome.value().payload.find("exceeded timeout"),
              std::string::npos);

    // The daemon survived; without the fault the same job now
    // completes cleanly.  A generous budget keeps slow CI machines
    // from tripping it (the knob is outside the content hash, so
    // this is still the same job).
    spec.cellTimeoutMs = 10000;
    Result<SubmitOutcome> clean = client.submit(spec);
    ASSERT_TRUE(clean.ok()) << clean.error().toString();
    EXPECT_EQ(clean.value().header.quarantined, 0u);
}

TEST_F(ServiceTest, StatusV2ReportsQueueClassesAndLatency)
{
    MetricsRegistry::instance().reset();
    setMetricsActive(true);
    startDaemon();
    ServiceClient client = connect();
    ASSERT_TRUE(client.submit(tinySpec()).ok());

    Result<std::string> doc = client.statusV2();
    ASSERT_TRUE(doc.ok()) << doc.error().toString();
    Result<JsonValue> parsed = parseJson(doc.value());
    ASSERT_TRUE(parsed.ok()) << parsed.error().toString();
    const JsonValue &status = parsed.value();

    ASSERT_NE(status.find("type"), nullptr);
    EXPECT_EQ(status.find("type")->string(), "status_v2");
    ASSERT_NE(status.find("uptime_seconds"), nullptr);
    EXPECT_GT(status.find("uptime_seconds")->number(), 0.0);

    const JsonValue *queue = status.find("queue");
    ASSERT_NE(queue, nullptr);
    ASSERT_NE(queue->find("depth"), nullptr);
    ASSERT_NE(queue->find("classes"), nullptr);
    EXPECT_TRUE(queue->find("classes")->isArray());

    const JsonValue *jobs = status.find("jobs");
    ASSERT_NE(jobs, nullptr);
    EXPECT_EQ(jobs->find("submitted")->number(), 1.0);
    EXPECT_EQ(jobs->find("completed")->number(), 1.0);
    EXPECT_EQ(jobs->find("quarantined")->number(), 0.0);

    // The job latency histograms fed the quantiles: e2e covers the
    // whole job, so its p95 upper bound is at least exec's.
    const JsonValue *latency = status.find("latency_ms");
    ASSERT_NE(latency, nullptr);
    const JsonValue *e2e = latency->find("e2e");
    const JsonValue *exec = latency->find("exec");
    ASSERT_NE(e2e, nullptr);
    ASSERT_NE(exec, nullptr);
    EXPECT_GT(e2e->find("p95")->number(), 0.0);
    EXPECT_GE(e2e->find("p95")->number(),
              exec->find("p95")->number());

    ASSERT_NE(status.find("cache_hit_rate"), nullptr);
    setMetricsActive(false);
    MetricsRegistry::instance().reset();
}

TEST_F(ServiceTest, MetricsEndpointServesPrometheusText)
{
    MetricsRegistry::instance().reset();
    setMetricsActive(true);
    DaemonOptions options;
    options.workers = 2;
    options.metricsPort = 0;  // ephemeral loopback HTTP
    SweepDaemon &daemon = startDaemonWith(std::move(options));
    ASSERT_GT(daemon.metricsPort(), 0);

    ServiceClient client = connect();
    ASSERT_TRUE(client.submit(tinySpec()).ok());

    // Scrape over a raw TCP socket: real HTTP bytes, no helper.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(daemon.metricsPort()));
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string request =
        "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char chunk[4096];
    ssize_t n;
    while ((n = ::read(fd, chunk, sizeof(chunk))) > 0)
        response.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);

    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(response.find("# TYPE gllcd_jobs_completed_total "
                            "counter"),
              std::string::npos);
    EXPECT_NE(response.find("gllcd_jobs_completed_total 1"),
              std::string::npos);
    EXPECT_NE(response.find("gllcd_job_e2e_ms_bucket{le="),
              std::string::npos);
    EXPECT_NE(response.find("# TYPE gllcd_queue_depth gauge"),
              std::string::npos);
    setMetricsActive(false);
    MetricsRegistry::instance().reset();
}

TEST_F(ServiceTest, MergedJobTraceSpansDaemonAndWorkers)
{
    DaemonOptions options;
    options.workers = 2;
    options.traceDir = tempPath("traces");
    startDaemonWith(std::move(options));

    ServiceClient client = connect();
    Result<SubmitOutcome> outcome = client.submit(tinySpec());
    ASSERT_TRUE(outcome.ok()) << outcome.error().toString();
    const std::uint64_t job_id = outcome.value().header.jobId;

    const std::string trace_path = tempPath("traces") + "/job-"
                                   + std::to_string(job_id)
                                   + ".json";
    std::ifstream in(trace_path);
    ASSERT_TRUE(in.good()) << "missing " << trace_path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<JsonValue> parsed = parseJson(buffer.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error().toString();

    const JsonValue *events = parsed.value().find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::set<double> daemon_pids;
    std::set<double> cell_pids;
    std::size_t cells = 0;
    for (const JsonValue &e : events->items()) {
        ASSERT_NE(e.find("ph"), nullptr);
        EXPECT_EQ(e.find("ph")->string(), "X");
        const JsonValue *cat = e.find("cat");
        ASSERT_NE(cat, nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        const double pid = e.find("pid")->number();
        if (cat->string() == "job" || cat->string() == "job_phase")
            daemon_pids.insert(pid);
        if (cat->string() == "cell") {
            cell_pids.insert(pid);
            ++cells;
        }
    }
    // One daemon process, one job/queue-wait/execute trio.
    EXPECT_EQ(daemon_pids.size(), 1u);
    EXPECT_EQ(daemon_pids.count(
                  static_cast<double>(::getpid())),
              1u);
    // Both frames' cells, sharded across two distinct workers, and
    // every pid in the merged timeline is a real process, so the
    // trace demonstrably spans >= 2 processes.
    EXPECT_EQ(cells, 2u);
    EXPECT_EQ(cell_pids.size(), 2u);
    EXPECT_EQ(cell_pids.count(static_cast<double>(::getpid())), 0u);
}

TEST_F(ServiceTest, EventLogRecordsLifecycleAndQuarantines)
{
    const std::string events_path = tempPath("events.jsonl");
    DaemonOptions options;
    options.workers = 2;
    options.eventLogPath = events_path;
    options.storeDir = tempPath("ev_store");
    startDaemonWith(std::move(options));

    // One clean job, one cache hit, then a quarantining job.
    ServiceClient client = connect();
    ASSERT_TRUE(client.submit(tinySpec()).ok());
    ASSERT_TRUE(client.submit(tinySpec()).ok());
    ::setenv("GLLC_FAULT", "cell.throw:p=1", 1);
    SweepJobSpec faulty = tinySpec();
    // Distinct content: execution knobs (retries) sit outside the
    // content hash, so an identical spec would be a cache hit.
    faulty.llcBytes = 4ull << 20;
    faulty.retries = 1;
    Result<SubmitOutcome> bad = client.submit(faulty);
    ::unsetenv("GLLC_FAULT");
    ASSERT_TRUE(bad.ok()) << bad.error().toString();
    ASSERT_EQ(bad.value().header.quarantined, 2u);
    daemon_->stop();

    std::ifstream in(events_path);
    ASSERT_TRUE(in.good());
    std::map<std::string, unsigned> counts;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        Result<JsonValue> event = parseJson(line);
        ASSERT_TRUE(event.ok())
            << event.error().toString() << ": " << line;
        ASSERT_NE(event.value().find("schema"), nullptr);
        EXPECT_EQ(event.value().find("schema")->string(),
                  "gllcd-events-v1");
        ASSERT_NE(event.value().find("ts_ms"), nullptr);
        EXPECT_GT(event.value().find("ts_ms")->number(), 0.0);
        ASSERT_NE(event.value().find("event"), nullptr);
        ++counts[event.value().find("event")->string()];
    }
    EXPECT_EQ(counts["daemon_started"], 1u);
    EXPECT_EQ(counts["daemon_stopping"], 1u);
    EXPECT_EQ(counts["job_accepted"], 2u);
    EXPECT_EQ(counts["job_started"], 2u);
    EXPECT_EQ(counts["job_completed"], 2u);
    EXPECT_EQ(counts["job_cache_hit"], 1u);
    // Both cells threw on every attempt: one retry each (retries=1),
    // then quarantine.
    EXPECT_EQ(counts["cell_retry"], 2u);
    EXPECT_EQ(counts["cell_quarantined"], 2u);
}

TEST_F(ServiceTest, SigtermedDaemonLeavesValidArtifacts)
{
    // The real binary, a real SIGTERM: the stats snapshot and the
    // event log must still be complete, valid JSON afterwards.
    const std::string socket_path = tempPath("term_sock");
    const std::string stats_path = tempPath("term_stats.json");
    const std::string events_path = tempPath("term_events.jsonl");

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::setenv("GLLC_STATS_JSON", stats_path.c_str(), 1);
        ::execl(GLLC_GLLCD_PATH, GLLC_GLLCD_PATH, "--socket",
                socket_path.c_str(), "--events",
                events_path.c_str(), "--workers", "2",
                static_cast<char *>(nullptr));
        _exit(127);
    }

    // Wait for the daemon to serve, run one job through it.
    bool served = false;
    for (int i = 0; i < 200 && !served; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        Result<ServiceClient> client =
            ServiceClient::connectUnix(socket_path);
        if (!client.ok())
            continue;
        ServiceClient live = client.take();
        served = live.submit(tinySpec()).ok();
    }
    ASSERT_TRUE(served);

    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    // The stats artifact parses and is the documented schema.
    std::ifstream stats(stats_path);
    ASSERT_TRUE(stats.good()) << "missing " << stats_path;
    std::stringstream buffer;
    buffer << stats.rdbuf();
    Result<JsonValue> snap = parseJson(buffer.str());
    ASSERT_TRUE(snap.ok()) << snap.error().toString();
    ASSERT_NE(snap.value().find("schema"), nullptr);
    EXPECT_EQ(snap.value().find("schema")->string(),
              "gllc-stats-v1");

    // Every event log line parses, and the shutdown was recorded.
    std::ifstream events(events_path);
    ASSERT_TRUE(events.good()) << "missing " << events_path;
    bool saw_stopping = false;
    std::string line;
    while (std::getline(events, line)) {
        if (line.empty())
            continue;
        Result<JsonValue> event = parseJson(line);
        ASSERT_TRUE(event.ok())
            << event.error().toString() << ": " << line;
        if (event.value().find("event") != nullptr
            && event.value().find("event")->string()
                   == "daemon_stopping")
            saw_stopping = true;
    }
    EXPECT_TRUE(saw_stopping);
}

TEST_F(ServiceTest, SlowlorisConnectionIsReapedAtDeadline)
{
    DaemonOptions options;
    options.workers = 2;
    options.connTimeoutMs = 100;
    startDaemonWith(std::move(options));

    // A hostile client: two header bytes, then silence.  Without
    // the IO deadline the connection thread would block forever on
    // the rest of the header.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, daemon_->socketPath().c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_EQ(::write(fd, "\x00\x00", 2), 2);

    // The daemon answers with a typed Timeout error and hangs up;
    // crucially, it keeps serving well-behaved clients throughout.
    ServiceClient polite = connect();
    EXPECT_TRUE(polite.submit(tinySpec()).ok());

    std::string response;
    Result<bool> read = readFrame(fd, response, 5000);
    ASSERT_TRUE(read.ok()) << read.error().toString();
    ASSERT_TRUE(read.value());
    ResultHeader header;
    Error error;
    Result<bool> kind = parseResponseFrame(response, header, error);
    ASSERT_TRUE(kind.ok()) << kind.error().toString();
    EXPECT_FALSE(kind.value());
    EXPECT_EQ(error.code, ErrorCode::Timeout);

    // And then EOF: the stalled connection really was reaped.
    read = readFrame(fd, response, 5000);
    ASSERT_TRUE(read.ok()) << read.error().toString();
    EXPECT_FALSE(read.value());
    ::close(fd);
}

TEST_F(ServiceTest, DisconnectedClientCancelsItsQueuedJob)
{
    // One worker and 100 ms per cell: the four-cell job up front
    // holds the dispatcher ~400 ms, far longer than the ~200 ms
    // disconnect probe needs to notice the second job's client is
    // gone.
    DaemonOptions options;
    options.workers = 1;
    startDaemonWith(std::move(options));
    ::setenv("GLLC_FAULT", "cell.delay:p=1", 1);
    SweepJobSpec slow = tinySpec();
    slow.policies = {"DRRIP+UCD", "GSPC+UCD"};

    std::thread blocker([&] {
        ServiceClient client = connect();
        EXPECT_TRUE(client.submit(slow, "a").ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // Submit a second, distinct job and hang up immediately: the
    // job is queued behind the slow one and must never execute.
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, daemon_->socketPath().c_str(),
                     sizeof(addr.sun_path) - 1);
        ASSERT_EQ(
            ::connect(fd,
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)),
            0);
        ASSERT_TRUE(
            writeFrame(fd, submitEnvelopeJson("ghost", 0)).ok());
        ASSERT_TRUE(writeFrame(fd, tinySpec().toJson()).ok());
        ::close(fd);
    }

    // The probe fires within ~200 ms; give slow CI plenty of rope.
    bool cancelled = false;
    for (int i = 0; i < 200 && !cancelled; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        cancelled = daemon_->jobsCancelled() == 1;
    }
    EXPECT_TRUE(cancelled);

    blocker.join();
    ::unsetenv("GLLC_FAULT");
    // Only the surviving client's job ever executed.
    EXPECT_EQ(daemon_->jobsCompleted(), 1u);
}

TEST_F(ServiceTest, FullQueueShedsWithTypedReasonAndHint)
{
    DaemonOptions options;
    options.workers = 1;
    options.maxQueue = 1;
    startDaemonWith(std::move(options));
    ::setenv("GLLC_FAULT", "cell.delay:p=1", 1);

    // Job A occupies the dispatcher; job B fills the queue; job C
    // must bounce with a typed shed, instantly, instead of queuing
    // unboundedly or blocking.
    SweepJobSpec spec_a = tinySpec();
    SweepJobSpec spec_b = tinySpec();
    spec_b.llcBytes = 4ull << 20;
    SweepJobSpec spec_c = tinySpec();
    spec_c.llcBytes = 2ull << 20;

    std::thread submit_a([&] {
        ServiceClient client = connect();
        EXPECT_TRUE(client.submit(spec_a, "a").ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::thread submit_b([&] {
        ServiceClient client = connect();
        EXPECT_TRUE(client.submit(spec_b, "b").ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    ServiceClient client = connect();
    ShedInfo shed;
    Result<SubmitOutcome> outcome =
        client.submit(spec_c, "c", 0, &shed);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, ErrorCode::Overloaded);
    EXPECT_EQ(shed.reason, "queue_full");
    EXPECT_GT(shed.retryAfterMs, 0);
    EXPECT_EQ(daemon_->jobsShed(), 1u);

    // The shed connection is still usable (framing stayed in
    // sync), and once the queue drains the same job is accepted.
    submit_a.join();
    submit_b.join();
    ::unsetenv("GLLC_FAULT");
    Result<SubmitOutcome> retry = client.submit(spec_c, "c");
    EXPECT_TRUE(retry.ok()) << retry.error().toString();
}

TEST_F(ServiceTest, TenantQuotaShedsOnlyTheFloodingTenant)
{
    DaemonOptions options;
    options.workers = 1;
    options.tenantQuota = 1;
    startDaemonWith(std::move(options));
    ::setenv("GLLC_FAULT", "cell.delay:p=1", 1);

    SweepJobSpec spec_a = tinySpec();
    SweepJobSpec spec_b = tinySpec();
    spec_b.llcBytes = 4ull << 20;
    SweepJobSpec spec_c = tinySpec();
    spec_c.llcBytes = 2ull << 20;
    SweepJobSpec spec_d = tinySpec();
    spec_d.llcBytes = 1ull << 20;

    // A's first job dispatches (leaves the queue), A's second sits
    // queued at its quota; A's third must shed while B still gets
    // in — per-tenant isolation, not a global brake.
    std::thread submit_1([&] {
        ServiceClient client = connect();
        EXPECT_TRUE(client.submit(spec_a, "a").ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::thread submit_2([&] {
        ServiceClient client = connect();
        EXPECT_TRUE(client.submit(spec_b, "a").ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    ServiceClient flooder = connect();
    ShedInfo shed;
    Result<SubmitOutcome> refused =
        flooder.submit(spec_c, "a", 0, &shed);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.error().code, ErrorCode::Overloaded);
    EXPECT_EQ(shed.reason, "tenant_quota");

    std::thread submit_b([&] {
        ServiceClient client = connect();
        EXPECT_TRUE(client.submit(spec_d, "b").ok());
    });

    submit_1.join();
    submit_2.join();
    submit_b.join();
    ::unsetenv("GLLC_FAULT");
    EXPECT_EQ(daemon_->jobsShed(), 1u);
    EXPECT_EQ(daemon_->jobsCompleted(), 3u);
}

TEST_F(ServiceTest, ConnectionCapShedsExtraConnections)
{
    DaemonOptions options;
    options.workers = 2;
    options.maxConns = 1;
    startDaemonWith(std::move(options));

    // The first connection occupies the only slot...
    ServiceClient holder = connect();
    ASSERT_TRUE(holder.status().ok());

    // ...so the second is turned away with a typed conn_limit shed
    // before any request is read.
    ServiceClient extra = connect();
    ShedInfo shed;
    Result<SubmitOutcome> outcome =
        extra.submit(tinySpec(), "t", 0, &shed);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, ErrorCode::Overloaded);
    EXPECT_EQ(shed.reason, "conn_limit");

    // The admitted connection never noticed.
    EXPECT_TRUE(holder.submit(tinySpec()).ok());
}

TEST_F(ServiceTest, KilledDaemonRecoversEveryAcceptedJob)
{
    // The headline crash-recovery property, end to end: kill -9 a
    // real daemon with accepted jobs outstanding, restart it with
    // --recover, and every accepted job completes with bytes
    // identical to a local in-process run.
    const std::string socket_path = tempPath("kill_sock");
    const std::string store_dir = tempPath("kill_store");
    const std::string journal_path = tempPath("kill.wal");
    std::remove(journal_path.c_str());

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Slow cells keep jobs in flight while we pull the plug.
        ::setenv("GLLC_FAULT", "cell.delay:p=1", 1);
        ::execl(GLLC_GLLCD_PATH, GLLC_GLLCD_PATH, "--socket",
                socket_path.c_str(), "--store", store_dir.c_str(),
                "--journal", journal_path.c_str(), "--workers",
                "1", static_cast<char *>(nullptr));
        _exit(127);
    }

    SweepJobSpec spec_a = tinySpec();
    SweepJobSpec spec_b = tinySpec();
    spec_b.llcBytes = 4ull << 20;

    // Wait until the daemon accepts connections.
    bool up = false;
    for (int i = 0; i < 200 && !up; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        up = ServiceClient::connectUnix(socket_path).ok();
    }
    ASSERT_TRUE(up);

    // Two submits that will never be answered: the daemon dies
    // with both jobs accepted (journaled) but unfinished.
    std::thread doomed_a([&] {
        Result<ServiceClient> client =
            ServiceClient::connectUnix(socket_path);
        if (client.ok()) {
            ServiceClient conn = client.take();
            (void)conn.submit(spec_a, "a");
        }
    });
    std::thread doomed_b([&] {
        Result<ServiceClient> client =
            ServiceClient::connectUnix(socket_path);
        if (client.ok()) {
            ServiceClient conn = client.take();
            (void)conn.submit(spec_b, "b");
        }
    });

    // Kill only after both accept records are durably journaled.
    bool journaled = false;
    for (int i = 0; i < 400 && !journaled; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        std::ifstream is(journal_path);
        std::string line;
        int accepts = 0;
        while (std::getline(is, line))
            if (line.find("\"accept\":1") != std::string::npos)
                ++accepts;
        journaled = accepts >= 2;
    }
    ASSERT_TRUE(journaled);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    doomed_a.join();
    doomed_b.join();

    // Restart (in-process this time) with --recover semantics: the
    // journal replays and both jobs complete unattended.
    DaemonOptions options;
    options.workers = 2;
    options.storeDir = store_dir;
    options.journalPath = journal_path;
    options.recover = true;
    startDaemonWith(std::move(options));
    EXPECT_EQ(daemon_->jobsRecovered(), 2u);

    bool completed = false;
    for (int i = 0; i < 1200 && !completed; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        completed = daemon_->jobsCompleted() == 2;
    }
    ASSERT_TRUE(completed);

    // Resubmitting now serves from the store — and the bytes are
    // identical to a local in-process run of the same spec.
    ServiceClient client = connect();
    Result<SubmitOutcome> got_a = client.submit(spec_a, "a");
    ASSERT_TRUE(got_a.ok()) << got_a.error().toString();
    EXPECT_TRUE(got_a.value().header.cached);
    EXPECT_EQ(got_a.value().payload, localPayload(spec_a));
    Result<SubmitOutcome> got_b = client.submit(spec_b, "b");
    ASSERT_TRUE(got_b.ok()) << got_b.error().toString();
    EXPECT_TRUE(got_b.value().header.cached);
    EXPECT_EQ(got_b.value().payload, localPayload(spec_b));

    // A second recovery pass finds nothing left to do.
    daemon_->stop();
    Result<JournalRecovery> reloaded =
        JobJournal::load(journal_path);
    ASSERT_TRUE(reloaded.ok()) << reloaded.error().toString();
    EXPECT_TRUE(reloaded.value().pending.empty());
}

TEST_F(ServiceTest, DaemonCrashFaultSiteKillsWithTypedExitCode)
{
    // The chaos harness's daemon.crash site: a real daemon dies
    // mid-dispatch with the documented exit code, leaving its
    // journal owing the job — the recovery drill in CI starts here.
    const std::string socket_path = tempPath("crash_sock");
    const std::string journal_path = tempPath("crash.wal");
    std::remove(journal_path.c_str());

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::setenv("GLLC_FAULT", "daemon.crash:p=1", 1);
        ::execl(GLLC_GLLCD_PATH, GLLC_GLLCD_PATH, "--socket",
                socket_path.c_str(), "--journal",
                journal_path.c_str(), "--workers", "1",
                static_cast<char *>(nullptr));
        _exit(127);
    }

    bool up = false;
    for (int i = 0; i < 200 && !up; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        up = ServiceClient::connectUnix(socket_path).ok();
    }
    ASSERT_TRUE(up);

    std::thread doomed([&] {
        Result<ServiceClient> client =
            ServiceClient::connectUnix(socket_path);
        if (client.ok()) {
            ServiceClient conn = client.take();
            (void)conn.submit(tinySpec(), "a");
        }
    });
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    doomed.join();
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), kDaemonCrashExitCode);

    // The job was accepted but never finished: exactly one journal
    // debt for --recover to collect.
    Result<JournalRecovery> loaded =
        JobJournal::load(journal_path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    EXPECT_EQ(loaded.value().pending.size(), 1u);
}

TEST_F(ServiceTest, StatusAnswersConcurrentlyWithRunningJobs)
{
    // Regression for the daemon's lock discipline: status requests
    // answer from counters while the dispatcher executes jobs and
    // submit waiters sleep on their JobState.  Hammering status
    // concurrently with two real jobs must never wedge, crash, or
    // return malformed JSON (the TSan CI job checks the data-race
    // half of this contract).
    const SweepJobSpec spec = tinySpec();
    SweepJobSpec other = spec;
    other.llcBytes = 4ull << 20;

    startDaemon();
    std::atomic<bool> submits_done{false};
    std::atomic<unsigned> status_ok{0};
    std::thread pest([&] {
        while (!submits_done.load()) {
            ServiceClient client = connect();
            Result<std::string> status = client.status();
            ASSERT_TRUE(status.ok()) << status.error().toString();
            EXPECT_NE(status.value().find("\"queue_depth\":"),
                      std::string::npos);
            ++status_ok;
        }
    });

    std::thread submit_a([&] {
        ServiceClient client = connect();
        Result<SubmitOutcome> got = client.submit(spec, "a");
        EXPECT_TRUE(got.ok());
    });
    std::thread submit_b([&] {
        ServiceClient client = connect();
        Result<SubmitOutcome> got = client.submit(other, "b");
        EXPECT_TRUE(got.ok());
    });
    submit_a.join();
    submit_b.join();
    submits_done.store(true);
    pest.join();

    EXPECT_GE(status_ok.load(), 1u);
    EXPECT_EQ(daemon_->jobsCompleted(), 2u);
}
