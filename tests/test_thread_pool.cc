/**
 * @file
 * Tests for the fixed-size worker pool: submission ordering,
 * future-based results, exception propagation (both through
 * submit() futures and parallelFor's lowest-index rethrow),
 * destructor drain semantics, and genuine concurrency.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_pool.hh"

using namespace gllc;

TEST(ThreadPoolTest, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInFifoOrder)
{
    std::vector<int> order;
    {
        ThreadPool pool(1);
        for (int i = 0; i < 16; ++i)
            pool.submit([i, &order] { order.push_back(i); });
    }
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, SubmitReturnsResultThroughFuture)
{
    ThreadPool pool(2);
    auto doubled = pool.submit([] { return 21 * 2; });
    auto text = pool.submit([] { return std::string("ok"); });
    EXPECT_EQ(doubled.get(), 42);
    EXPECT_EQ(text.get(), "ok");
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(1);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(
        {
            try {
                f.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "boom");
                throw;
            }
        },
        std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 200;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(kN, [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(32, [](std::size_t i) {
            if (i == 3 || i == 17)
                throw std::runtime_error(std::to_string(i));
        });
        FAIL() << "parallelFor did not rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "3");
    }
}

TEST(ThreadPoolTest, ParallelForZeroItemsIsANoOp)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, DestructorDrainsPendingQueue)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 64; ++i)
            pool.submit([&done] { ++done; });
        // Most of the queue is still pending when the destructor
        // runs; it must finish the backlog, not drop it.
    }
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, WorkersRunConcurrently)
{
    // Two tasks rendezvous: each waits for the other to arrive.
    // A serial pool would time out on the first task.
    ThreadPool pool(2);
    ASSERT_EQ(pool.threadCount(), 2u);
    std::mutex m;
    std::condition_variable cv;
    int arrived = 0;
    std::atomic<int> met{0};
    pool.parallelFor(2, [&](std::size_t) {
        std::unique_lock lock(m);
        ++arrived;
        cv.notify_all();
        if (cv.wait_for(lock, std::chrono::seconds(10),
                        [&] { return arrived == 2; }))
            ++met;
    });
    EXPECT_EQ(met.load(), 2);
}
