/**
 * @file
 * Tests for the Chrome-trace span collector
 * (src/common/trace_event.hh): activation gating, span recording,
 * stable thread ids, and the trace-event JSON shape Perfetto /
 * chrome://tracing expects.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>

#include "common/trace_event.hh"

using namespace gllc;

namespace
{

/** Every test runs against a clean, force-enabled collector. */
class TraceEventTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        TraceCollector::instance().reset();
        setTraceEventsActive(true);
    }

    void
    TearDown() override
    {
        TraceCollector::instance().reset();
        setTraceEventsActive(false);
    }
};

TEST_F(TraceEventTest, SpanRecordsOnDestruction)
{
    auto &collector = TraceCollector::instance();
    {
        TraceSpan span("phase", "render frames 0..3");
        EXPECT_EQ(collector.size(), 0u);
    }
    EXPECT_EQ(collector.size(), 1u);
}

TEST_F(TraceEventTest, InactiveCollectorRecordsNothing)
{
    setTraceEventsActive(false);
    {
        TraceSpan span("cell", "ignored");
    }
    EXPECT_EQ(TraceCollector::instance().size(), 0u);
}

TEST_F(TraceEventTest, ClockIsMonotonic)
{
    auto &collector = TraceCollector::instance();
    const double a = collector.nowUs();
    const double b = collector.nowUs();
    EXPECT_LE(a, b);
}

TEST_F(TraceEventTest, ThreadIdsAreSmallAndStable)
{
    auto &collector = TraceCollector::instance();
    const std::uint32_t mine = collector.threadId();
    EXPECT_EQ(collector.threadId(), mine);

    std::atomic<std::uint32_t> other{mine};
    std::thread worker([&] { other = collector.threadId(); });
    worker.join();
    EXPECT_NE(other.load(), mine);
}

TEST_F(TraceEventTest, WriteEmitsTraceEventJson)
{
    auto &collector = TraceCollector::instance();
    {
        TraceSpan span("cell", "BioShock frame 2 GSPC",
                       {{"app", "BioShock"},
                        {"frame", "2"},
                        {"policy", "GSPC"}});
    }
    {
        TraceSpan span("phase", "merge frames 0..1");
    }
    std::ostringstream os;
    collector.write(os);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"BioShock frame 2 GSPC\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"cell\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"phase\""), std::string::npos);
    EXPECT_NE(json.find("\"policy\": \"GSPC\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"tid\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\""), std::string::npos);
}

TEST_F(TraceEventTest, ConcurrentSpansAllLand)
{
    auto &collector = TraceCollector::instance();
    constexpr int kThreads = 4;
    constexpr int kSpansPer = 50;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            for (int i = 0; i < kSpansPer; ++i) {
                std::string name("t");
                name += std::to_string(t);
                name += '#';
                name += std::to_string(i);
                TraceSpan span("cell", std::move(name));
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(collector.size(),
              static_cast<std::size_t>(kThreads) * kSpansPer);
}

TEST_F(TraceEventTest, ResetDropsSpans)
{
    {
        TraceSpan span("phase", "x");
    }
    EXPECT_EQ(TraceCollector::instance().size(), 1u);
    TraceCollector::instance().reset();
    EXPECT_EQ(TraceCollector::instance().size(), 0u);
}

} // namespace
