/**
 * @file
 * Tests for policy-driven bypass and the GSPC+B extension.
 */

#include <gtest/gtest.h>

#include "analysis/policy_table.hh"
#include "cache/banked_llc.hh"
#include "core/gspc_family.hh"

using namespace gllc;

namespace
{

MemAccess
acc(Addr block, StreamType s, bool write = false)
{
    return MemAccess(block * kBlockBytes, s, write);
}

AccessInfo
info(const MemAccess &a)
{
    return AccessInfo{&a, 0, kNever};
}

GspcParams
bypassParams()
{
    GspcParams p;
    p.bypassDeadFills = true;
    return p;
}

} // namespace

TEST(GspcBypass, OffByDefault)
{
    GspcFamilyPolicy p(GspcVariant::Gspc, GspcParams{});
    p.configure(128, 4);
    const MemAccess tex = acc(0, StreamType::Texture);
    // Even with dead-looking counters, the paper's GSPC never
    // bypasses.
    for (int i = 0; i < 20; ++i)
        p.onFill(0, 0, info(tex));  // sample set: trains FILL(0)
    EXPECT_FALSE(p.shouldBypass(1, info(tex)));
}

TEST(GspcBypass, DeadTextureFillsBypassInNonSamples)
{
    GspcFamilyPolicy p(GspcVariant::Gspc, bypassParams());
    p.configure(128, 4);
    const MemAccess tex = acc(0, StreamType::Texture);
    for (int i = 0; i < 20; ++i)
        p.onFill(0, 0, info(tex));
    EXPECT_TRUE(p.shouldBypass(1, info(tex)));
    // Sample sets must keep allocating to learn.
    EXPECT_FALSE(p.shouldBypass(0, info(tex)));
    EXPECT_FALSE(p.shouldBypass(65, info(tex)));
}

TEST(GspcBypass, AliveTextureStillAllocates)
{
    GspcFamilyPolicy p(GspcVariant::Gspc, bypassParams());
    p.configure(128, 4);
    const MemAccess tex = acc(0, StreamType::Texture);
    for (int i = 0; i < 8; ++i) {
        p.onFill(0, 0, info(tex));
        p.onHit(0, 0, info(tex));
        p.onEvict(0, 0);
    }
    // FILL(0) == HIT(0): not distant at t=8.
    EXPECT_FALSE(p.shouldBypass(1, info(tex)));
}

TEST(GspcBypass, DeadZBypassesButRtNever)
{
    GspcFamilyPolicy p(GspcVariant::Gspc, bypassParams());
    p.configure(128, 4);
    const MemAccess z = acc(0, StreamType::Z);
    const MemAccess rt = acc(0, StreamType::RenderTarget, true);
    for (int i = 0; i < 20; ++i)
        p.onFill(0, 0, info(z));
    EXPECT_TRUE(p.shouldBypass(1, info(z)));
    // Render targets are never bypassed: they may be consumed.
    EXPECT_FALSE(p.shouldBypass(1, info(rt)));
}

TEST(GspcBypass, NameCarriesSuffix)
{
    GspcFamilyPolicy p(GspcVariant::Gspc, bypassParams());
    EXPECT_EQ(p.name(), "GSPC+B");
}

TEST(GspcBypass, RegistryComposesWithUcd)
{
    const PolicySpec spec = policySpec("GSPC+B+UCD");
    EXPECT_TRUE(spec.uncachedDisplay);
    EXPECT_EQ(spec.factory()->name(), "GSPC+B");
}

TEST(LlcBypass, PolicyDrivenBypassSkipsAllocation)
{
    LlcConfig config;
    config.capacityBytes = 64 * 1024;
    config.ways = 16;
    config.banks = 1;
    BankedLlc llc(config, policySpec("GSPC+B").factory);

    // Train the sample sets dead via texture fills that land there
    // (set = blockNumber % 64 with 64 sets... drive enough blocks).
    for (Addr b = 0; b < 20000; ++b)
        llc.access(acc(b, StreamType::Texture));

    // After training, a texture fill to a non-sample set must
    // bypass: look for bypasses in the stats.
    const LlcStats stats = llc.stats();
    const auto &tex = stats.of(StreamType::Texture);
    EXPECT_GT(tex.bypasses, 0u);
    // And bypassed accesses still count toward DRAM traffic.
    EXPECT_EQ(tex.accesses, tex.hits + tex.misses + tex.bypasses);
}

TEST(LlcBypass, BypassedBlocksAreNotResident)
{
    LlcConfig config;
    config.capacityBytes = 64 * 1024;
    config.ways = 16;
    config.banks = 1;
    BankedLlc llc(config, policySpec("GSPC+B").factory);
    for (Addr b = 0; b < 20000; ++b)
        llc.access(acc(b, StreamType::Texture));

    // Find a recently bypassed block: replay a fresh address into a
    // non-sample set and check it did not allocate.
    const MemAccess probe = acc(1000001, StreamType::Texture);
    const auto r = llc.access(probe);
    if (r.bypassed) {
        EXPECT_FALSE(llc.isResident(probe.addr));
    }
}
