/**
 * @file
 * Tests for the typed-error plumbing (gllc::Result / gllc::Error).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/result.hh"

using namespace gllc;

namespace
{

Result<int>
parsePositive(int x)
{
    if (x <= 0)
        return Error::format(ErrorCode::InvalidArgument,
                             "%d is not positive", x);
    return x;
}

} // namespace

TEST(Result, OkPathCarriesTheValue)
{
    Result<int> r = parsePositive(41);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.value(), 41);
    EXPECT_EQ(r.take(), 41);
}

TEST(Result, ErrorPathCarriesCodeAndContext)
{
    Result<int> r = parsePositive(-3);
    ASSERT_FALSE(r.ok());
    EXPECT_FALSE(static_cast<bool>(r));
    EXPECT_EQ(r.error().code, ErrorCode::InvalidArgument);
    EXPECT_EQ(r.error().context, "-3 is not positive");
    EXPECT_EQ(r.error().toString(),
              "invalid-argument: -3 is not positive");
}

TEST(Result, MoveOnlyPayloadsWork)
{
    Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
    ASSERT_TRUE(r.ok());
    std::unique_ptr<int> p = r.take();
    EXPECT_EQ(*p, 7);
}

TEST(Result, ErrorCodeNamesAreStable)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Io), "io");
    EXPECT_STREQ(errorCodeName(ErrorCode::BadMagic), "bad-magic");
    EXPECT_STREQ(errorCodeName(ErrorCode::BadVersion),
                 "bad-version");
    EXPECT_STREQ(errorCodeName(ErrorCode::Truncated), "truncated");
    EXPECT_STREQ(errorCodeName(ErrorCode::Corrupt), "corrupt");
    EXPECT_STREQ(errorCodeName(ErrorCode::ChecksumMismatch),
                 "checksum-mismatch");
    EXPECT_STREQ(errorCodeName(ErrorCode::LimitExceeded),
                 "limit-exceeded");
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidArgument),
                 "invalid-argument");
    EXPECT_STREQ(errorCodeName(ErrorCode::Injected), "injected");
    EXPECT_STREQ(errorCodeName(ErrorCode::CellFailed),
                 "cell-failed");
}

TEST(Result, FormatTruncatesOverlongContextSafely)
{
    const std::string big(4096, 'x');
    const Error e =
        Error::format(ErrorCode::Corrupt, "%s", big.c_str());
    EXPECT_EQ(e.code, ErrorCode::Corrupt);
    EXPECT_FALSE(e.context.empty());
    EXPECT_LT(e.context.size(), big.size());
}

TEST(ResultDeath, TakeOrFatalExitsWithContext)
{
    Result<int> r = parsePositive(0);
    EXPECT_EXIT(r.takeOrFatal(), ::testing::ExitedWithCode(1),
                "invalid-argument: 0 is not positive");
}

TEST(ResultDeath, ValueOnErrorIsAnAssertionFailure)
{
#ifdef GLLC_DISABLE_ASSERTS
    GTEST_SKIP() << "GLLC_ASSERT compiled out (-DGLLC_ASSERTS=OFF)";
#else
    Result<int> r = parsePositive(-1);
    EXPECT_DEATH(r.value(), "Result::value\\(\\) on error");
#endif
}
