/**
 * @file
 * Wire-protocol tests for the gllcd sweep service: frame round
 * trips, hostile input (truncated, oversized, garbage) surfacing as
 * typed errors, and envelope / response-frame serialization.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <string>
#include <thread>

#include "service/protocol.hh"

using namespace gllc;

namespace
{

/** A connected socket pair closed on scope exit. */
struct SocketPair
{
    int fds[2] = {-1, -1};

    SocketPair()
    {
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    }
    ~SocketPair()
    {
        closeWrite();
        if (fds[1] >= 0)
            ::close(fds[1]);
    }
    void
    closeWrite()
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        fds[0] = -1;
    }
    int writer() const { return fds[0]; }
    int reader() const { return fds[1]; }
};

/** Write raw bytes, bypassing the framing layer. */
void
writeRaw(int fd, const std::string &bytes)
{
    ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
}

} // namespace

TEST(ServiceProtocol, FrameRoundTrip)
{
    SocketPair pair;
    const std::string payload = "{\"hello\":\"world\"}";
    ASSERT_TRUE(writeFrame(pair.writer(), payload).ok());
    ASSERT_TRUE(writeFrame(pair.writer(), "").ok());  // empty frame

    std::string got;
    Result<bool> read = readFrame(pair.reader(), got);
    ASSERT_TRUE(read.ok()) << read.error().toString();
    EXPECT_TRUE(read.value());
    EXPECT_EQ(got, payload);

    read = readFrame(pair.reader(), got);
    ASSERT_TRUE(read.ok());
    EXPECT_TRUE(read.value());
    EXPECT_EQ(got, "");
}

TEST(ServiceProtocol, CleanEofIsNotAnError)
{
    SocketPair pair;
    pair.closeWrite();
    std::string got;
    Result<bool> read = readFrame(pair.reader(), got);
    ASSERT_TRUE(read.ok()) << read.error().toString();
    EXPECT_FALSE(read.value());
}

TEST(ServiceProtocol, TruncatedHeaderIsTruncated)
{
    SocketPair pair;
    writeRaw(pair.writer(), std::string("\x00\x00", 2));
    pair.closeWrite();
    std::string got;
    Result<bool> read = readFrame(pair.reader(), got);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.error().code, ErrorCode::Truncated);
}

TEST(ServiceProtocol, TruncatedBodyIsTruncated)
{
    SocketPair pair;
    // Header promises 8 bytes; deliver 3 and hang up.
    writeRaw(pair.writer(),
             std::string("\x00\x00\x00\x08", 4) + "abc");
    pair.closeWrite();
    std::string got;
    Result<bool> read = readFrame(pair.reader(), got);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.error().code, ErrorCode::Truncated);
}

TEST(ServiceProtocol, OversizedFrameIsRejectedBeforeAllocation)
{
    SocketPair pair;
    // 0xFFFFFFFF-byte declared length: must be rejected from the
    // header alone, without waiting for (or allocating) the body.
    writeRaw(pair.writer(), std::string("\xff\xff\xff\xff", 4));
    std::string got;
    Result<bool> read = readFrame(pair.reader(), got);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.error().code, ErrorCode::LimitExceeded);

    const std::string big(kMaxFrameBytes + 1, 'x');
    Result<Unit> wrote = writeFrame(pair.writer(), big);
    ASSERT_FALSE(wrote.ok());
    EXPECT_EQ(wrote.error().code, ErrorCode::LimitExceeded);
}

TEST(ServiceProtocol, WriteToClosedPeerIsIo)
{
    SocketPair pair;
    ::close(pair.fds[1]);
    pair.fds[1] = -1;
    // SIGPIPE must already be ignored (clients and daemon both do
    // this); the test harness does it here.
    ::signal(SIGPIPE, SIG_IGN);
    Result<Unit> wrote =
        writeFrame(pair.writer(), std::string(1 << 16, 'x'));
    ASSERT_FALSE(wrote.ok());
    EXPECT_EQ(wrote.error().code, ErrorCode::Io);
}

TEST(ServiceProtocol, SubmitEnvelopeRoundTrip)
{
    Result<RequestEnvelope> env =
        parseRequestEnvelope(submitEnvelopeJson("acme", -3));
    ASSERT_TRUE(env.ok()) << env.error().toString();
    EXPECT_EQ(env.value().type, RequestType::Submit);
    EXPECT_EQ(env.value().tenant, "acme");
    EXPECT_EQ(env.value().priority, -3);
}

TEST(ServiceProtocol, StatusEnvelopeRoundTrip)
{
    Result<RequestEnvelope> env =
        parseRequestEnvelope(statusEnvelopeJson());
    ASSERT_TRUE(env.ok()) << env.error().toString();
    EXPECT_EQ(env.value().type, RequestType::Status);
}

TEST(ServiceProtocol, StatusV2EnvelopeRoundTrip)
{
    // StatusV2 is additive on the same protocol version: an old
    // daemon rejects it as a bad request, nothing worse.
    Result<RequestEnvelope> env =
        parseRequestEnvelope(statusV2EnvelopeJson());
    ASSERT_TRUE(env.ok()) << env.error().toString();
    EXPECT_EQ(env.value().type, RequestType::StatusV2);
    EXPECT_NE(statusV2EnvelopeJson().find("\"status_v2\""),
              std::string::npos);
}

TEST(ServiceProtocol, GarbageEnvelopeIsCorrupt)
{
    Result<RequestEnvelope> env =
        parseRequestEnvelope("this is not json");
    ASSERT_FALSE(env.ok());
    EXPECT_EQ(env.error().code, ErrorCode::Corrupt);
}

TEST(ServiceProtocol, ForeignDocumentIsBadMagic)
{
    Result<RequestEnvelope> env =
        parseRequestEnvelope("{\"type\":\"submit\"}");
    ASSERT_FALSE(env.ok());
    EXPECT_EQ(env.error().code, ErrorCode::BadMagic);
}

TEST(ServiceProtocol, FutureProtocolIsBadVersion)
{
    Result<RequestEnvelope> env = parseRequestEnvelope(
        "{\"gllcd\":99,\"type\":\"submit\"}");
    ASSERT_FALSE(env.ok());
    EXPECT_EQ(env.error().code, ErrorCode::BadVersion);
}

TEST(ServiceProtocol, UnknownRequestTypeIsInvalidArgument)
{
    Result<RequestEnvelope> env = parseRequestEnvelope(
        "{\"gllcd\":1,\"type\":\"dance\"}");
    ASSERT_FALSE(env.ok());
    EXPECT_EQ(env.error().code, ErrorCode::InvalidArgument);
}

TEST(ServiceProtocol, ResultHeaderRoundTrip)
{
    ResultHeader header;
    header.jobId = 42;
    header.cached = true;
    header.specHash = UINT64_C(0xdeadbeefcafef00d);
    header.traceHash = UINT64_C(0x0123456789abcdef);
    header.quarantined = 3;
    header.wallSeconds = 1.5;

    ResultHeader got;
    Error error;
    Result<bool> kind = parseResponseFrame(resultHeaderJson(header),
                                           got, error);
    ASSERT_TRUE(kind.ok()) << kind.error().toString();
    EXPECT_TRUE(kind.value());
    EXPECT_EQ(got.jobId, header.jobId);
    EXPECT_EQ(got.cached, header.cached);
    EXPECT_EQ(got.specHash, header.specHash);
    EXPECT_EQ(got.traceHash, header.traceHash);
    EXPECT_EQ(got.quarantined, header.quarantined);
    EXPECT_DOUBLE_EQ(got.wallSeconds, header.wallSeconds);
}

TEST(ServiceProtocol, ErrorFrameRoundTripPreservesCode)
{
    const Error sent{ErrorCode::LimitExceeded,
                     "frame of 100 MB exceeds the 64 MB cap"};
    ResultHeader header;
    Error got;
    Result<bool> kind =
        parseResponseFrame(errorFrameJson(sent), header, got);
    ASSERT_TRUE(kind.ok()) << kind.error().toString();
    EXPECT_FALSE(kind.value());
    EXPECT_EQ(got.code, ErrorCode::LimitExceeded);
    EXPECT_NE(got.context.find("64 MB cap"), std::string::npos);
}

TEST(ServiceProtocol, GarbageResponseFrameIsCorrupt)
{
    ResultHeader header;
    Error error;
    Result<bool> kind =
        parseResponseFrame("\x00\x01garbage", header, error);
    ASSERT_FALSE(kind.ok());
    EXPECT_EQ(kind.error().code, ErrorCode::Corrupt);
}

TEST(ServiceProtocol, ShedFrameRoundTrip)
{
    ShedInfo sent;
    sent.reason = "queue_full";
    sent.retryAfterMs = 700;

    ResultHeader header;
    Error error;
    ShedInfo got;
    Result<bool> kind = parseResponseFrame(shedFrameJson(sent),
                                           header, error, &got);
    ASSERT_TRUE(kind.ok()) << kind.error().toString();
    // A shed is "not a result": the caller sees a typed Overloaded
    // error plus the machine-readable reason and backoff hint.
    EXPECT_FALSE(kind.value());
    EXPECT_EQ(error.code, ErrorCode::Overloaded);
    EXPECT_EQ(got.reason, "queue_full");
    EXPECT_EQ(got.retryAfterMs, 700);

    // Callers that don't care about the details may pass no out
    // param and still get the typed error.
    kind = parseResponseFrame(shedFrameJson(sent), header, error);
    ASSERT_TRUE(kind.ok());
    EXPECT_FALSE(kind.value());
    EXPECT_EQ(error.code, ErrorCode::Overloaded);
}

TEST(ServiceProtocol, ReadFrameDeadlineCatchesSlowloris)
{
    SocketPair pair;
    // Two header bytes, then silence: without a deadline this read
    // would block forever; with one it must fail as Timeout, fast.
    writeRaw(pair.writer(), std::string("\x00\x00", 2));
    std::string got;
    const auto before = std::chrono::steady_clock::now();
    Result<bool> read = readFrame(pair.reader(), got, 50);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - before);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.error().code, ErrorCode::Timeout);
    EXPECT_GE(elapsed.count(), 45);
    EXPECT_LT(elapsed.count(), 5000);
}

TEST(ServiceProtocol, ReadFrameDeadlineCoversTheBodyToo)
{
    SocketPair pair;
    // A complete header promising 8 bytes, 3 delivered, then stall.
    writeRaw(pair.writer(),
             std::string("\x00\x00\x00\x08", 4) + "abc");
    std::string got;
    Result<bool> read = readFrame(pair.reader(), got, 50);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.error().code, ErrorCode::Timeout);
}

TEST(ServiceProtocol, WriteFrameDeadlineCatchesUnreadPeer)
{
    SocketPair pair;
    // The peer never reads, so the kernel buffers fill and the
    // write must time out rather than block the daemon forever.
    ::signal(SIGPIPE, SIG_IGN);
    Result<Unit> wrote = Unit{};
    for (int i = 0; i < 64 && wrote.ok(); ++i)
        wrote = writeFrame(pair.writer(),
                           std::string(1 << 20, 'x'), 50);
    ASSERT_FALSE(wrote.ok());
    EXPECT_EQ(wrote.error().code, ErrorCode::Timeout);
}

TEST(ServiceProtocol, ZeroTimeoutStaysFullyBlocking)
{
    // timeout_ms = 0 is the legacy contract: no deadline at all.
    // Deliver the frame from another thread after a pause longer
    // than any plausible accidental default.
    SocketPair pair;
    std::thread writer([&] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
        ASSERT_TRUE(writeFrame(pair.writer(), "late").ok());
    });
    std::string got;
    Result<bool> read = readFrame(pair.reader(), got, 0);
    writer.join();
    ASSERT_TRUE(read.ok()) << read.error().toString();
    EXPECT_TRUE(read.value());
    EXPECT_EQ(got, "late");
}

TEST(ServiceProtocol, PeerClosedSeesHangupAndLiveness)
{
    SocketPair pair;
    // A connected, quiet peer is not closed.
    EXPECT_FALSE(peerClosed(pair.reader()));
    // Buffered unread data alone must not read as a hangup.
    writeRaw(pair.writer(), "ping");
    EXPECT_FALSE(peerClosed(pair.reader()));
    // After the peer hangs up it must read as closed (even with
    // that data still buffered: the daemon's question is "is
    // anybody still waiting", not "is the buffer empty").
    pair.closeWrite();
    EXPECT_TRUE(peerClosed(pair.reader()));
}
