/**
 * @file
 * Unit tests for the shared RRIP machinery (victim selection, aging,
 * insertion histogram).
 */

#include <gtest/gtest.h>

#include "cache/rrip.hh"

using namespace gllc;

namespace
{

MemAccess
texAccess(Addr addr = 0)
{
    return MemAccess(addr, StreamType::Texture, false);
}

} // namespace

TEST(Rrip, WidthsDefineMaxAndDistant)
{
    RripState two(2);
    EXPECT_EQ(two.maxRrpv(), 3);
    EXPECT_EQ(two.distantRrpv(), 2);

    RripState four(4);
    EXPECT_EQ(four.maxRrpv(), 15);
    EXPECT_EQ(four.distantRrpv(), 14);
}

TEST(Rrip, BlocksStartAtMax)
{
    RripState r(2);
    r.configure(4, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        EXPECT_EQ(r.get(0, w), 3);
}

TEST(Rrip, VictimPrefersMaxRrpv)
{
    RripState r(2);
    r.configure(1, 4);
    r.set(0, 0, 2);
    r.set(0, 1, 3);
    r.set(0, 2, 1);
    r.set(0, 3, 0);
    EXPECT_EQ(r.selectVictim(0), 1u);
}

TEST(Rrip, VictimTieBreaksToMinWay)
{
    RripState r(2);
    r.configure(1, 4);
    r.set(0, 0, 2);
    r.set(0, 1, 3);
    r.set(0, 2, 3);
    r.set(0, 3, 3);
    EXPECT_EQ(r.selectVictim(0), 1u);
}

TEST(Rrip, AgingRaisesAllUntilMax)
{
    RripState r(2);
    r.configure(1, 4);
    r.set(0, 0, 0);
    r.set(0, 1, 1);
    r.set(0, 2, 2);
    r.set(0, 3, 2);
    // No way at 3: ages all by +1 until way 2 (first at 3) wins.
    EXPECT_EQ(r.selectVictim(0), 2u);
    EXPECT_EQ(r.get(0, 0), 1);
    EXPECT_EQ(r.get(0, 1), 2);
    EXPECT_EQ(r.get(0, 2), 3);
    EXPECT_EQ(r.get(0, 3), 3);
}

TEST(Rrip, AgingMultipleSteps)
{
    RripState r(2);
    r.configure(1, 2);
    r.set(0, 0, 0);
    r.set(0, 1, 0);
    EXPECT_EQ(r.selectVictim(0), 0u);
    EXPECT_EQ(r.get(0, 0), 3);
    EXPECT_EQ(r.get(0, 1), 3);
}

TEST(Rrip, SetsAreIndependent)
{
    RripState r(2);
    r.configure(2, 2);
    r.set(0, 0, 0);
    r.set(0, 1, 0);
    r.set(1, 0, 3);
    EXPECT_EQ(r.selectVictim(1), 0u);
    // Set 0 was not aged by set 1's victim scan.
    EXPECT_EQ(r.get(0, 0), 0);
}

TEST(Rrip, FillRecordsHistogram)
{
    RripState r(2);
    r.configure(1, 4);
    r.fill(0, 0, 3, PolicyStream::Texture);
    r.fill(0, 1, 0, PolicyStream::Texture);
    r.fill(0, 2, 3, PolicyStream::RenderTarget);
    const FillHistogram &h = r.histogram();
    EXPECT_EQ(h.fills(PolicyStream::Texture), 2u);
    EXPECT_EQ(h.fillsAt(PolicyStream::Texture, 3), 1u);
    EXPECT_EQ(h.fillsAt(PolicyStream::Texture, 0), 1u);
    EXPECT_EQ(h.fillsAt(PolicyStream::RenderTarget, 3), 1u);
    EXPECT_EQ(h.fills(PolicyStream::Z), 0u);
}

TEST(Rrip, HistogramMerge)
{
    FillHistogram a, b;
    a.record(PolicyStream::Z, 2);
    b.record(PolicyStream::Z, 2);
    b.record(PolicyStream::Z, 3);
    a.merge(b);
    EXPECT_EQ(a.fillsAt(PolicyStream::Z, 2), 2u);
    EXPECT_EQ(a.fillsAt(PolicyStream::Z, 3), 1u);
    EXPECT_EQ(a.fills(PolicyStream::Z), 3u);
}

TEST(Rrip, PolicyStreamMapping)
{
    EXPECT_EQ(policyStream(StreamType::Z), PolicyStream::Z);
    EXPECT_EQ(policyStream(StreamType::Texture), PolicyStream::Texture);
    EXPECT_EQ(policyStream(StreamType::RenderTarget),
              PolicyStream::RenderTarget);
    // Displayable color is a render target (Section 5.1).
    EXPECT_EQ(policyStream(StreamType::Display),
              PolicyStream::RenderTarget);
    EXPECT_EQ(policyStream(StreamType::Vertex), PolicyStream::Rest);
    EXPECT_EQ(policyStream(StreamType::HiZ), PolicyStream::Rest);
    EXPECT_EQ(policyStream(StreamType::Stencil), PolicyStream::Rest);
    EXPECT_EQ(policyStream(StreamType::Other), PolicyStream::Rest);
}

TEST(Rrip, AccessInfoStreamHelpers)
{
    const MemAccess a = texAccess(128);
    const AccessInfo info{&a, 0, kNever};
    EXPECT_EQ(info.stream(), StreamType::Texture);
    EXPECT_EQ(info.pstream(), PolicyStream::Texture);
}
