/**
 * @file
 * Negative compile test: touching a GLLC_GUARDED_BY field without
 * its mutex must not build under Clang -Wthread-safety.
 *
 * Compiled twice by tests/compile_fail/CMakeLists.txt, only when the
 * toolchain is Clang with GLLC_THREAD_SAFETY=ON (GCC compiles the
 * annotations to nothing, so there the test is not registered):
 *   - without GLLC_EXPECT_FAIL: the locked variant must compile;
 *   - with -DGLLC_EXPECT_FAIL: the unlocked write is compiled in and
 *     the build MUST fail under -Werror=thread-safety (WILL_FAIL).
 */

#include "common/thread_annotations.hh"

namespace
{

class Counter
{
  public:
    void
    bump() GLLC_EXCLUDES(mutex_)
    {
        gllc::MutexLock lock(mutex_);
        ++value_;
    }

#ifdef GLLC_EXPECT_FAIL
    /** Unguarded write: thread-safety analysis must reject this. */
    void
    bumpRacy()
    {
        ++value_;
    }
#endif

    int
    value() GLLC_EXCLUDES(mutex_)
    {
        gllc::MutexLock lock(mutex_);
        return value_;
    }

  private:
    gllc::Mutex mutex_;
    int value_ GLLC_GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Counter counter;
    counter.bump();
#ifdef GLLC_EXPECT_FAIL
    counter.bumpRacy();
#endif
    return counter.value() == 0 ? 1 : 0;
}
