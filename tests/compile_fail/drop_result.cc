/**
 * @file
 * Negative compile test: a silently dropped gllc::Result<T> must not
 * build.
 *
 * Compiled twice by tests/compile_fail/CMakeLists.txt:
 *   - without GLLC_EXPECT_FAIL: the well-behaved variant (checks the
 *     result, discards one loudly with (void)) must compile — this is
 *     the control proving the test file itself is valid C++;
 *   - with -DGLLC_EXPECT_FAIL: the bare-drop statement is compiled
 *     in and the build MUST fail under -Werror=unused-result
 *     (registered as WILL_FAIL in ctest).
 */

#include "common/result.hh"

namespace
{

gllc::Result<int>
tryAnswer(bool ok)
{
    if (!ok)
        return gllc::Error(gllc::ErrorCode::InvalidArgument, "no");
    return 42;
}

} // namespace

int
main()
{
    int sum = 0;

    // Checked use: always fine.
    gllc::Result<int> checked = tryAnswer(true);
    if (checked.ok())
        sum += checked.value();

    // Loud discard: always fine (this is the sanctioned spelling).
    (void)tryAnswer(true);

#ifdef GLLC_EXPECT_FAIL
    // Silent drop: must be rejected by -Werror=unused-result.
    tryAnswer(false);
#endif

    return sum == 42 ? 0 : 1;
}
