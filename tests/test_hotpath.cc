/**
 * @file
 * Replay hot-path guarantees (DESIGN.md section 9): the specialized
 * access path must be bit-identical to the generic observer path for
 * every registered policy, and the hotpath benchmark must emit its
 * stable "gllc-hotpath-v1" schema.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/offline_sim.hh"
#include "analysis/policy_table.hh"
#include "bench/hotpath.hh"
#include "common/decision_log.hh"

using namespace gllc;

namespace
{

/** Small but multi-bank LLC the pinned trace thrashes properly. */
LlcConfig
smallConfig()
{
    LlcConfig config;
    config.capacityBytes = 256 * 1024;
    config.ways = 16;
    config.banks = 4;
    return config;
}

void
expectStatsEqual(const LlcStats &a, const LlcStats &b,
                 const std::string &what)
{
    for (std::size_t i = 0; i < kNumStreams; ++i) {
        SCOPED_TRACE(what + " stream " + std::to_string(i));
        EXPECT_EQ(a.stream[i].accesses, b.stream[i].accesses);
        EXPECT_EQ(a.stream[i].hits, b.stream[i].hits);
        EXPECT_EQ(a.stream[i].misses, b.stream[i].misses);
        EXPECT_EQ(a.stream[i].bypasses, b.stream[i].bypasses);
    }
    EXPECT_EQ(a.writebacks, b.writebacks) << what;
    EXPECT_EQ(a.evictions, b.evictions) << what;
}

void
expectCharacterizationEqual(const Characterization &a,
                            const Characterization &b,
                            const std::string &what)
{
    EXPECT_EQ(a.interTexHits, b.interTexHits) << what;
    EXPECT_EQ(a.intraTexHits, b.intraTexHits) << what;
    EXPECT_EQ(a.rtProductions, b.rtProductions) << what;
    EXPECT_EQ(a.rtConsumptions, b.rtConsumptions) << what;
    for (unsigned k = 0; k < Characterization::kEpochs; ++k) {
        EXPECT_EQ(a.texEpochHits[k], b.texEpochHits[k]) << what;
        EXPECT_EQ(a.texReach[k], b.texReach[k]) << what;
        EXPECT_EQ(a.zReach[k], b.zReach[k]) << what;
    }
}

void
expectFillsEqual(const FillHistogram &a, const FillHistogram &b,
                 const std::string &what)
{
    for (std::size_t s = 0; s < kNumPolicyStreams; ++s)
        for (unsigned r = 0; r < FillHistogram::kMaxRrpv; ++r)
            EXPECT_EQ(a.counts[s][r], b.counts[s][r])
                << what << " stream " << s << " rrpv " << r;
}

} // namespace

/**
 * Every registered policy variant (base, +UCD, threshold sweeps)
 * produces byte-identical results on both access paths.
 */
TEST(HotpathBitIdentity, AllPolicyVariantsMatchGenericPath)
{
    const FrameTrace trace = syntheticHotpathTrace(20000, 42);
    const LlcConfig config = smallConfig();

    for (const PolicySpec &spec : allPolicySpecs()) {
        RunOptions fast;
        RunOptions generic;
        generic.forceGenericPath = true;
        const RunResult a = runTrace(trace, spec, config, fast);
        const RunResult b = runTrace(trace, spec, config, generic);
        expectStatsEqual(a.stats, b.stats, spec.name);
        expectCharacterizationEqual(a.characterization,
                                    b.characterization, spec.name);
        expectFillsEqual(a.fills, b.fills, spec.name);
    }
}

/** The DRAM-bound traffic stream is identical on both paths too. */
TEST(HotpathBitIdentity, DramTraceMatchesGenericPath)
{
    const FrameTrace trace = syntheticHotpathTrace(20000, 7);
    const LlcConfig config = smallConfig();
    const PolicySpec spec = policySpec("DRRIP+UCD");

    RunOptions fast;
    fast.collectDramTrace = true;
    RunOptions generic = fast;
    generic.forceGenericPath = true;

    const RunResult a = runTrace(trace, spec, config, fast);
    const RunResult b = runTrace(trace, spec, config, generic);
    ASSERT_EQ(a.dramTrace.size(), b.dramTrace.size());
    for (std::size_t i = 0; i < a.dramTrace.size(); ++i) {
        EXPECT_EQ(a.dramTrace[i].addr, b.dramTrace[i].addr) << i;
        EXPECT_EQ(a.dramTrace[i].stream, b.dramTrace[i].stream) << i;
        EXPECT_EQ(a.dramTrace[i].isWrite, b.dramTrace[i].isWrite)
            << i;
        EXPECT_EQ(a.dramTrace[i].cycle, b.dramTrace[i].cycle) << i;
    }
}

/**
 * Decision logging forces the generic path and must not perturb
 * results; the run actually records decisions.
 */
TEST(HotpathBitIdentity, DecisionLoggingUnperturbed)
{
    const FrameTrace trace = syntheticHotpathTrace(10000, 3);
    const LlcConfig config = smallConfig();
    const PolicySpec spec = policySpec("GSPC");

    const RunResult base = runTrace(trace, spec, config);

    DecisionLog::setDepth(128);
    DecisionLog::local().clear();
    const RunResult logged = runTrace(trace, spec, config);
    const std::size_t recorded = DecisionLog::local().size();
    DecisionLog::setDepth(0);

    EXPECT_EQ(recorded, 128u);
    expectStatsEqual(base.stats, logged.stats, "logged");
    expectCharacterizationEqual(base.characterization,
                                logged.characterization, "logged");
}

/** Same (length, seed) reproduces the synthetic trace exactly. */
TEST(HotpathSynthetic, TraceIsPinnedBySeed)
{
    const FrameTrace a = syntheticHotpathTrace(5000, 42);
    const FrameTrace b = syntheticHotpathTrace(5000, 42);
    const FrameTrace c = syntheticHotpathTrace(5000, 43);
    ASSERT_EQ(a.accesses.size(), 5000u);
    ASSERT_EQ(a.accesses.size(), b.accesses.size());
    bool differs = false;
    for (std::size_t i = 0; i < a.accesses.size(); ++i) {
        ASSERT_EQ(a.accesses[i].addr, b.accesses[i].addr) << i;
        ASSERT_EQ(a.accesses[i].stream, b.accesses[i].stream) << i;
        ASSERT_EQ(a.accesses[i].isWrite, b.accesses[i].isWrite) << i;
        ASSERT_EQ(a.accesses[i].cycle, b.accesses[i].cycle) << i;
        differs = differs || a.accesses[i].addr != c.accesses[i].addr;
    }
    EXPECT_TRUE(differs);
}

/** The benchmark JSON carries the stable v1 schema fields. */
TEST(HotpathSchema, JsonHasStableFields)
{
    HotpathOptions options;
    options.syntheticAccesses = 4000;
    options.realFrames = 0;
    options.repeats = 2;
    options.policies = {"NRU", "DRRIP"};

    const HotpathReport report = runHotpathBench(options);
    ASSERT_EQ(report.policies.size(), 2u);
    for (const HotpathPolicyResult &p : report.policies) {
        EXPECT_EQ(p.totalAccesses, 2u * 4000u) << p.policy;
        EXPECT_GT(p.accessesPerSec, 0.0) << p.policy;
        EXPECT_GT(p.misses, 0u) << p.policy;
        EXPECT_LE(p.p50CellMs, p.p95CellMs) << p.policy;
    }

    std::ostringstream os;
    writeHotpathJson(os, report);
    const std::string json = os.str();
    for (const char *needle :
         {"\"schema\": \"gllc-hotpath-v1\"", "\"config\"",
          "\"scale\"", "\"synthetic_accesses\"", "\"real_frames\"",
          "\"repeats\"", "\"generic_path\"", "\"policies\"",
          "\"policy\": \"NRU\"", "\"policy\": \"DRRIP\"",
          "\"total_accesses\"", "\"total_seconds\"",
          "\"accesses_per_sec\"", "\"p50_cell_ms\"",
          "\"p95_cell_ms\"", "\"misses\""}) {
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    }
}

/** The misses fingerprint is path-independent and deterministic. */
TEST(HotpathSchema, MissFingerprintMatchesGenericPath)
{
    HotpathOptions options;
    options.syntheticAccesses = 4000;
    options.realFrames = 0;
    options.repeats = 1;
    options.policies = {"SRRIP", "GSPC+B"};

    HotpathOptions generic = options;
    generic.genericPath = true;

    const HotpathReport a = runHotpathBench(options);
    const HotpathReport b = runHotpathBench(generic);
    ASSERT_EQ(a.policies.size(), b.policies.size());
    for (std::size_t i = 0; i < a.policies.size(); ++i) {
        EXPECT_EQ(a.policies[i].misses, b.policies[i].misses)
            << a.policies[i].policy;
    }
}
