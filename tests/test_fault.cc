/**
 * @file
 * Tests for the deterministic fault-injection harness.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.hh"

using namespace gllc;

namespace
{

/** Every test leaves the injector disarmed for its neighbours. */
class FaultEnv : public ::testing::Test
{
  protected:
    void SetUp() override { configureFaults(""); }
    void TearDown() override { configureFaults(""); }
};

} // namespace

TEST_F(FaultEnv, DisarmedSitesNeverFire)
{
    EXPECT_FALSE(faultsActive());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(faultFires(FaultSite::CellThrow));
    EXPECT_EQ(faultFired(FaultSite::CellThrow), 0u);
}

TEST_F(FaultEnv, ProbabilityOneAlwaysFires)
{
    configureFaults("cell.throw:p=1");
    EXPECT_TRUE(faultsActive());
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(faultFires(FaultSite::CellThrow));
    EXPECT_EQ(faultFired(FaultSite::CellThrow), 10u);
    EXPECT_EQ(faultDrawn(FaultSite::CellThrow), 10u);
    // The other sites stay disarmed.
    EXPECT_FALSE(faultFires(FaultSite::TraceBitflip));
}

TEST_F(FaultEnv, ProbabilityZeroNeverFires)
{
    configureFaults("cell.throw:p=0");
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(faultFires(FaultSite::CellThrow));
    EXPECT_EQ(faultDrawn(FaultSite::CellThrow), 100u);
    EXPECT_EQ(faultFired(FaultSite::CellThrow), 0u);
}

TEST_F(FaultEnv, FireCapStopsInjection)
{
    configureFaults("cell.throw:p=1,n=3");
    unsigned fires = 0;
    for (int i = 0; i < 10; ++i)
        fires += faultFires(FaultSite::CellThrow) ? 1 : 0;
    EXPECT_EQ(fires, 3u);
    EXPECT_EQ(faultFired(FaultSite::CellThrow), 3u);
}

TEST_F(FaultEnv, SequentialDrawsReproduceFromTheSeed)
{
    const std::string spec = "trace.bitflip:p=0.25,seed=1234";
    configureFaults(spec);
    std::vector<bool> first;
    for (int i = 0; i < 256; ++i)
        first.push_back(faultFires(FaultSite::TraceBitflip));

    configureFaults(spec);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(faultFires(FaultSite::TraceBitflip), first[i]) << i;
}

TEST_F(FaultEnv, DifferentSeedsDrawDifferentPatterns)
{
    configureFaults("trace.bitflip:p=0.5,seed=1");
    std::vector<bool> a;
    for (int i = 0; i < 128; ++i)
        a.push_back(faultFires(FaultSite::TraceBitflip));

    configureFaults("trace.bitflip:p=0.5,seed=2");
    std::vector<bool> b;
    for (int i = 0; i < 128; ++i)
        b.push_back(faultFires(FaultSite::TraceBitflip));

    EXPECT_NE(a, b);
}

TEST_F(FaultEnv, KeyedDrawsDependOnKeyNotOrder)
{
    configureFaults("cell.throw:p=0.5,seed=99");
    std::vector<bool> forward;
    for (std::uint64_t key = 0; key < 64; ++key)
        forward.push_back(faultFires(FaultSite::CellThrow, key));

    // Re-arm and query in reverse order: same per-key answers.
    configureFaults("cell.throw:p=0.5,seed=99");
    for (std::uint64_t key = 64; key-- > 0;) {
        EXPECT_EQ(faultFires(FaultSite::CellThrow, key),
                  forward[static_cast<std::size_t>(key)])
            << key;
    }
}

TEST_F(FaultEnv, ApproximateFireRateTracksProbability)
{
    configureFaults("dram.simulate:p=0.1,seed=7");
    unsigned fires = 0;
    for (int i = 0; i < 10000; ++i)
        fires += faultFires(FaultSite::DramSimulate) ? 1 : 0;
    EXPECT_GT(fires, 700u);
    EXPECT_LT(fires, 1300u);
}

TEST_F(FaultEnv, MultiSiteSpecArmsEachSiteIndependently)
{
    configureFaults("trace.truncate:p=1,n=1;cell.delay:p=0");
    EXPECT_TRUE(faultFires(FaultSite::TraceTruncate));
    EXPECT_FALSE(faultFires(FaultSite::TraceTruncate));
    EXPECT_FALSE(faultFires(FaultSite::CellDelay));
    EXPECT_FALSE(faultFires(FaultSite::SimAccess));
}

TEST_F(FaultEnv, PayloadIsDeterministic)
{
    configureFaults("trace.bitflip:p=1,seed=5");
    ASSERT_TRUE(faultFires(FaultSite::TraceBitflip));
    const std::uint64_t p1 = faultPayload(FaultSite::TraceBitflip);
    configureFaults("trace.bitflip:p=1,seed=5");
    ASSERT_TRUE(faultFires(FaultSite::TraceBitflip));
    EXPECT_EQ(faultPayload(FaultSite::TraceBitflip), p1);
}

TEST_F(FaultEnv, InjectedErrorNamesItsSite)
{
    try {
        throwInjectedFault(FaultSite::SimAccess);
        FAIL() << "throwInjectedFault returned";
    } catch (const FaultInjectedError &e) {
        EXPECT_EQ(e.site(), FaultSite::SimAccess);
        EXPECT_NE(std::string(e.what()).find("sim.access"),
                  std::string::npos);
    }
}

TEST_F(FaultEnv, SiteNamesRoundTrip)
{
    EXPECT_STREQ(faultSiteName(FaultSite::TraceBitflip),
                 "trace.bitflip");
    EXPECT_STREQ(faultSiteName(FaultSite::TraceTruncate),
                 "trace.truncate");
    EXPECT_STREQ(faultSiteName(FaultSite::CellThrow), "cell.throw");
    EXPECT_STREQ(faultSiteName(FaultSite::CellDelay), "cell.delay");
    EXPECT_STREQ(faultSiteName(FaultSite::SimAccess), "sim.access");
    EXPECT_STREQ(faultSiteName(FaultSite::DramSimulate),
                 "dram.simulate");
}

TEST(FaultDeath, MalformedSpecIsFatal)
{
    EXPECT_EXIT(configureFaults("cell.throw"),
                ::testing::ExitedWithCode(1), "lacks a ':p=");
    EXPECT_EXIT(configureFaults("bogus.site:p=1"),
                ::testing::ExitedWithCode(1),
                "unknown injection site");
    EXPECT_EXIT(configureFaults("cell.throw:p=2"),
                ::testing::ExitedWithCode(1),
                "not a probability");
    EXPECT_EXIT(configureFaults("cell.throw:p=1,bogus=3"),
                ::testing::ExitedWithCode(1), "unknown option");
}
