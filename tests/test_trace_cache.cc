/**
 * @file
 * Tests for the on-disk frame-trace cache.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workload/trace_cache.hh"

using namespace gllc;

namespace
{

RenderScale
tinyScale()
{
    RenderScale s;
    s.linear = 8;
    return s;
}

} // namespace

TEST(TraceCache, OffByDefault)
{
    ::unsetenv("GLLC_TRACE_CACHE");
    EXPECT_EQ(traceCachePath(paperApps().front(), 0, tinyScale()), "");
    // cachedRenderFrame falls back to plain rendering.
    const FrameTrace a =
        cachedRenderFrame(paperApps().front(), 0, tinyScale());
    const FrameTrace b = renderFrame(paperApps().front(), 0,
                                     tinyScale());
    EXPECT_EQ(a.accesses.size(), b.accesses.size());
}

TEST(TraceCache, PathEncodesAppFrameAndScale)
{
    const std::string dir = ::testing::TempDir();
    const std::string p =
        traceCachePath(paperApps().front(), 3, tinyScale(), dir);
    EXPECT_NE(p.find(paperApps().front().name), std::string::npos);
    EXPECT_NE(p.find("_f3"), std::string::npos);
    EXPECT_NE(p.find("_s8"), std::string::npos);

    RenderScale noscatter = tinyScale();
    noscatter.scatterPages = false;
    const std::string p2 = traceCachePath(paperApps().front(), 3,
                                          noscatter, dir);
    EXPECT_NE(p2.find("_noscatter"), std::string::npos);
    EXPECT_NE(p, p2);
}

TEST(TraceCache, MissPopulatesThenHitLoads)
{
    const std::string dir = ::testing::TempDir();
    const AppProfile &app = paperApps().front();
    const std::string path =
        traceCachePath(app, 0, tinyScale(), dir);
    std::remove(path.c_str());

    const FrameTrace first =
        cachedRenderFrame(app, 0, tinyScale(), dir);
    // The cache file exists now.
    std::ifstream probe(path, std::ios::binary);
    EXPECT_TRUE(probe.good());

    const FrameTrace second =
        cachedRenderFrame(app, 0, tinyScale(), dir);
    ASSERT_EQ(second.accesses.size(), first.accesses.size());
    EXPECT_EQ(second.accesses.back().addr,
              first.accesses.back().addr);
    EXPECT_EQ(second.work.pixelsShaded, first.work.pixelsShaded);
    std::remove(path.c_str());
}

TEST(TraceCache, EnvVariableActivates)
{
    const std::string dir = ::testing::TempDir();
    ::setenv("GLLC_TRACE_CACHE", dir.c_str(), 1);
    const AppProfile &app = paperApps()[1];
    const std::string path = traceCachePath(app, 1, tinyScale());
    EXPECT_FALSE(path.empty());
    std::remove(path.c_str());
    cachedRenderFrame(app, 1, tinyScale());
    std::ifstream probe(path, std::ios::binary);
    EXPECT_TRUE(probe.good());
    std::remove(path.c_str());
    ::unsetenv("GLLC_TRACE_CACHE");
}
