/**
 * @file
 * Tests for the content-addressed sweep result store.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "service/result_store.hh"

using namespace gllc;

namespace
{

/** A fresh (emptied) store root — TempDir() outlives test runs. */
std::string
storeRoot(const std::string &tag)
{
    const std::string root =
        ::testing::TempDir() + "/gllc_store_" + tag;
    std::filesystem::remove_all(root);
    return root;
}

} // namespace

TEST(ResultStore, StoreLoadContainsRoundTrip)
{
    ResultStore store(storeRoot("roundtrip"));
    ASSERT_TRUE(store.enabled());

    const ResultKey key{UINT64_C(0x1111222233334444),
                        UINT64_C(0x5555666677778888)};
    EXPECT_FALSE(store.contains(key));
    EXPECT_FALSE(store.load(key).ok());

    const std::string payload =
        "{\"cells\":[1,2,3]}\nwith a second line\n";
    Result<Unit> stored = store.store(key, payload);
    ASSERT_TRUE(stored.ok()) << stored.error().toString();

    EXPECT_TRUE(store.contains(key));
    Result<std::string> back = store.load(key);
    ASSERT_TRUE(back.ok()) << back.error().toString();
    EXPECT_EQ(back.value(), payload);

    // The layout is part of the format: scripts and operators look
    // entries up by name.
    EXPECT_NE(store.path(key).find(
                  "tr1111222233334444-sp5555666677778888.json"),
              std::string::npos);
}

TEST(ResultStore, KeysAreIndependent)
{
    ResultStore store(storeRoot("independent"));
    const ResultKey a{1, 1};
    const ResultKey same_trace{1, 2};  // same traces, different spec
    ASSERT_TRUE(store.store(a, "payload-a").ok());
    EXPECT_TRUE(store.contains(a));
    EXPECT_FALSE(store.contains(same_trace));

    ASSERT_TRUE(store.store(same_trace, "payload-b").ok());
    EXPECT_EQ(store.load(a).value(), "payload-a");
    EXPECT_EQ(store.load(same_trace).value(), "payload-b");
}

TEST(ResultStore, OverwriteReplacesAtomically)
{
    ResultStore store(storeRoot("overwrite"));
    const ResultKey key{3, 4};
    ASSERT_TRUE(store.store(key, "old").ok());
    ASSERT_TRUE(store.store(key, "new").ok());
    EXPECT_EQ(store.load(key).value(), "new");
}

TEST(ResultStore, DisabledStoreIsInert)
{
    ResultStore store("");
    EXPECT_FALSE(store.enabled());
    const ResultKey key{9, 9};
    EXPECT_EQ(store.path(key), "");
    EXPECT_FALSE(store.contains(key));
    EXPECT_FALSE(store.load(key).ok());
    // store() succeeds as a no-op: a cache-less daemon is not an
    // error condition.
    EXPECT_TRUE(store.store(key, "payload").ok());
    EXPECT_FALSE(store.contains(key));
}

TEST(ResultStore, LoadOfAbsentKeyIsIo)
{
    ResultStore store(storeRoot("absent"));
    Result<std::string> got = store.load(ResultKey{7, 7});
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().code, ErrorCode::Io);
}
