/**
 * @file
 * Unit tests for the three-level texture cache hierarchy.
 */

#include <gtest/gtest.h>

#include "rcache/texture_hierarchy.hh"

using namespace gllc;

namespace
{

TextureHierarchyConfig
tinyConfig()
{
    TextureHierarchyConfig c;
    c.samplers = 4;
    c.samplersPerCluster = 2;
    c.l1Blocks = 4;
    c.l1Ways = 4;
    c.l2Blocks = 8;
    c.l2Ways = 4;
    c.l3Blocks = 16;
    c.l3Ways = 4;
    return c;
}

Addr
block(Addr n)
{
    return n * kBlockBytes;
}

} // namespace

TEST(TextureHierarchy, ColdMissReachesLlc)
{
    TextureHierarchy tex(tinyConfig());
    std::vector<MemAccess> out;
    EXPECT_EQ(tex.read(block(1), 0, 9, out), 4);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].addr, block(1));
    EXPECT_EQ(out[0].stream, StreamType::Texture);
    EXPECT_FALSE(out[0].isWrite);
    EXPECT_EQ(out[0].cycle, 9u);
}

TEST(TextureHierarchy, SecondReadHitsL1)
{
    TextureHierarchy tex(tinyConfig());
    std::vector<MemAccess> out;
    tex.read(block(1), 0, 0, out);
    out.clear();
    EXPECT_EQ(tex.read(block(1), 0, 0, out), 1);
    EXPECT_TRUE(out.empty());
}

TEST(TextureHierarchy, SiblingSamplerHitsSharedL2)
{
    TextureHierarchy tex(tinyConfig());
    std::vector<MemAccess> out;
    tex.read(block(1), 0, 0, out);  // sampler 0 fills L1.0, L2.0, L3
    out.clear();
    // Sampler 1 shares cluster 0: misses its own L1, hits L2.
    EXPECT_EQ(tex.read(block(1), 1, 0, out), 2);
    EXPECT_TRUE(out.empty());
}

TEST(TextureHierarchy, RemoteClusterHitsSharedL3)
{
    TextureHierarchy tex(tinyConfig());
    std::vector<MemAccess> out;
    tex.read(block(1), 0, 0, out);
    out.clear();
    // Sampler 2 is in cluster 1: misses L1 and L2, hits the L3.
    EXPECT_EQ(tex.read(block(1), 2, 0, out), 3);
    EXPECT_TRUE(out.empty());
}

TEST(TextureHierarchy, L1EvictionFallsBackToL2)
{
    TextureHierarchy tex(tinyConfig());
    std::vector<MemAccess> out;
    tex.read(block(1), 0, 0, out);
    // Thrash sampler 0's 4-block L1.
    for (Addr i = 10; i < 14; ++i)
        tex.read(block(i), 0, 0, out);
    out.clear();
    const int level = tex.read(block(1), 0, 0, out);
    EXPECT_GE(level, 2);
    EXPECT_LE(level, 3);
    EXPECT_TRUE(out.empty());
}

TEST(TextureHierarchy, StatsPerLevel)
{
    TextureHierarchy tex(tinyConfig());
    std::vector<MemAccess> out;
    tex.read(block(1), 0, 0, out);
    tex.read(block(1), 0, 0, out);
    EXPECT_EQ(tex.l1Stats(0).accesses, 2u);
    EXPECT_EQ(tex.l1Stats(0).hits, 1u);
    EXPECT_EQ(tex.l2Stats(0).accesses, 1u);
    EXPECT_EQ(tex.l3Stats().accesses, 1u);
}

TEST(TextureHierarchy, InvalidateClearsAllLevels)
{
    TextureHierarchy tex(tinyConfig());
    std::vector<MemAccess> out;
    tex.read(block(1), 0, 0, out);
    tex.invalidate();
    out.clear();
    EXPECT_EQ(tex.read(block(1), 0, 0, out), 4);
    EXPECT_EQ(out.size(), 1u);
}

TEST(TextureHierarchy, SamplerCountExposed)
{
    TextureHierarchy tex(tinyConfig());
    EXPECT_EQ(tex.samplers(), 4u);
}

TEST(TextureHierarchy, PaperConfigurationBuilds)
{
    // Section 4: 12 samplers, 384 KB 48-way L3.
    TextureHierarchyConfig c;
    TextureHierarchy tex(c);
    std::vector<MemAccess> out;
    EXPECT_EQ(tex.read(block(7), 11, 0, out), 4);
}
