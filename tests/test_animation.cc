/**
 * @file
 * Tests for the multi-frame animation renderer extension.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/offline_sim.hh"
#include "workload/frame_set.hh"

using namespace gllc;

namespace
{

RenderScale
tinyScale()
{
    RenderScale s;
    s.linear = 8;
    return s;
}

} // namespace

TEST(Animation, LongerThanSingleFrame)
{
    const AppProfile &app = paperApps().front();
    const FrameTrace one = renderFrame(app, 0, tinyScale());
    const FrameTrace anim = renderAnimation(app, 3, tinyScale());
    EXPECT_GT(anim.accesses.size(), 2 * one.accesses.size());
    EXPECT_GT(anim.work.pixelsShaded, 2 * one.work.pixelsShaded);
    EXPECT_EQ(anim.name, app.name + "/anim3");
}

TEST(Animation, SingleFrameAnimationMatchesFrame)
{
    const AppProfile &app = paperApps().front();
    const FrameTrace one = renderFrame(app, 0, tinyScale());
    const FrameTrace anim = renderAnimation(app, 1, tinyScale());
    ASSERT_EQ(anim.accesses.size(), one.accesses.size());
    for (std::size_t i = 0; i < one.accesses.size(); ++i)
        EXPECT_EQ(anim.accesses[i].addr, one.accesses[i].addr);
}

TEST(Animation, SurfacesPersistAcrossFrames)
{
    // Cross-frame reuse: blocks touched in frame 1 are touched again
    // later (static textures / back buffer reused), so the distinct
    // block count grows sublinearly with the frame count.
    const AppProfile &app = paperApps().front();
    const FrameTrace one = renderFrame(app, 0, tinyScale());
    const FrameTrace anim = renderAnimation(app, 3, tinyScale());
    EXPECT_LT(anim.distinctBlocks(), 3 * one.distinctBlocks());
}

TEST(Animation, Deterministic)
{
    const AppProfile &app = paperApps()[1];
    const FrameTrace a = renderAnimation(app, 2, tinyScale());
    const FrameTrace b = renderAnimation(app, 2, tinyScale());
    ASSERT_EQ(a.accesses.size(), b.accesses.size());
    EXPECT_EQ(a.accesses.back().addr, b.accesses.back().addr);
}

TEST(Animation, ReplaysThroughTheLlc)
{
    const AppProfile &app = paperApps().front();
    const FrameTrace anim = renderAnimation(app, 2, tinyScale());
    const LlcConfig llc = scaledLlcConfig(8ull << 20, 64);
    const RunResult r = runTrace(anim, policySpec("GSPC+UCD"), llc);
    EXPECT_EQ(r.stats.totalAccesses(), anim.accesses.size());
    EXPECT_GT(r.characterization.rtConsumptions, 0u);
}
