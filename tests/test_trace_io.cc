/**
 * @file
 * Tests for frame-trace binary serialization: round trips, the
 * legacy fatal wrappers, and the hardened typed-error readers fed
 * with a truncation / bit-flip / bad-magic / bad-checksum corpus
 * (directly and through the fault injector).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/fault.hh"
#include "trace/trace_io.hh"

using namespace gllc;

namespace
{

FrameTrace
sampleTrace()
{
    FrameTrace t;
    t.name = "App/f3";
    t.app = "App";
    t.frameIndex = 3;
    t.work.shaderOps = 111;
    t.work.texelRequests = 222;
    t.work.pixelsShaded = 333;
    t.work.verticesShaded = 444;
    t.work.rawMemOps = 555;
    t.work.issueCycles = 666;
    for (Addr b = 0; b < 100; ++b) {
        t.accesses.emplace_back(
            b * kBlockBytes,
            static_cast<StreamType>(b % kNumStreams), b % 3 == 0,
            static_cast<std::uint32_t>(b * 7));
    }
    return t;
}

} // namespace

TEST(TraceIo, RoundTripPreservesEverything)
{
    const FrameTrace original = sampleTrace();
    std::stringstream buffer;
    writeTrace(original, buffer);
    const FrameTrace loaded = readTrace(buffer);

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.app, original.app);
    EXPECT_EQ(loaded.frameIndex, original.frameIndex);
    EXPECT_EQ(loaded.work.shaderOps, original.work.shaderOps);
    EXPECT_EQ(loaded.work.texelRequests, original.work.texelRequests);
    EXPECT_EQ(loaded.work.pixelsShaded, original.work.pixelsShaded);
    EXPECT_EQ(loaded.work.verticesShaded,
              original.work.verticesShaded);
    EXPECT_EQ(loaded.work.rawMemOps, original.work.rawMemOps);
    EXPECT_EQ(loaded.work.issueCycles, original.work.issueCycles);
    ASSERT_EQ(loaded.accesses.size(), original.accesses.size());
    for (std::size_t i = 0; i < loaded.accesses.size(); ++i) {
        EXPECT_EQ(loaded.accesses[i].addr, original.accesses[i].addr);
        EXPECT_EQ(loaded.accesses[i].stream,
                  original.accesses[i].stream);
        EXPECT_EQ(loaded.accesses[i].isWrite,
                  original.accesses[i].isWrite);
        EXPECT_EQ(loaded.accesses[i].cycle,
                  original.accesses[i].cycle);
    }
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    FrameTrace t;
    t.name = "empty";
    std::stringstream buffer;
    writeTrace(t, buffer);
    const FrameTrace loaded = readTrace(buffer);
    EXPECT_EQ(loaded.name, "empty");
    EXPECT_TRUE(loaded.accesses.empty());
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/gllc_trace.bin";
    const FrameTrace original = sampleTrace();
    writeTraceFile(original, path);
    const FrameTrace loaded = readTraceFile(path);
    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.accesses.size(), original.accesses.size());
    std::remove(path.c_str());
}

TEST(TraceIoDeath, BadMagicIsFatal)
{
    std::stringstream buffer;
    buffer << "NOTATRACEFILE-----------";
    EXPECT_EXIT(readTrace(buffer), ::testing::ExitedWithCode(1),
                "bad magic");
}

TEST(TraceIoDeath, TruncatedFileIsFatal)
{
    std::stringstream buffer;
    writeTrace(sampleTrace(), buffer);
    const std::string full = buffer.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_EXIT(readTrace(truncated), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(TraceIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(readTraceFile("/nonexistent/path/trace.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

// ---------------------------------------------------------------
// Typed-error readers: corrupt inputs must come back as errors,
// never as aborts and never as silently wrong data.
// ---------------------------------------------------------------

TEST(TraceIoTyped, MissingFileIsIoError)
{
    Result<FrameTrace> r =
        tryReadTraceFile("/nonexistent/path/trace.bin");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::Io);
    // The path rides in the context for quarantine reports.
    EXPECT_NE(r.error().context.find("/nonexistent/path/trace.bin"),
              std::string::npos);
}

TEST(TraceIoTyped, BadMagicIsTyped)
{
    std::stringstream buffer;
    buffer << "NOTATRACEFILE-----------";
    Result<FrameTrace> r = tryReadTrace(buffer);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::BadMagic);
}

TEST(TraceIoTyped, UnsupportedVersionIsTyped)
{
    std::stringstream good;
    writeTrace(sampleTrace(), good);
    std::string bytes = good.str();
    bytes[7] = '9';  // version byte of "GLLCTRC2"
    std::stringstream buffer(bytes);
    Result<FrameTrace> r = tryReadTrace(buffer);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::BadVersion);
}

TEST(TraceIoTyped, TruncationAtEveryLengthIsAnError)
{
    std::stringstream good;
    writeTrace(sampleTrace(), good);
    const std::string full = good.str();
    for (std::size_t len = 0; len < full.size(); ++len) {
        std::stringstream cut(full.substr(0, len));
        Result<FrameTrace> r = tryReadTrace(cut);
        ASSERT_FALSE(r.ok()) << "prefix length " << len;
        const ErrorCode code = r.error().code;
        EXPECT_TRUE(code == ErrorCode::Truncated
                    || code == ErrorCode::BadMagic
                    || code == ErrorCode::BadVersion
                    || code == ErrorCode::LimitExceeded
                    || code == ErrorCode::ChecksumMismatch)
            << "prefix length " << len << ": "
            << r.error().toString();
    }
}

TEST(TraceIoTyped, AnySingleBitFlipIsDetected)
{
    std::stringstream good;
    writeTrace(sampleTrace(), good);
    const std::string full = good.str();
    // Flip one bit per byte position (cycling through the bits) and
    // demand a typed error every time: the checksums must leave no
    // silently-accepted corruption.
    for (std::size_t i = 0; i < full.size(); ++i) {
        std::string bytes = full;
        bytes[i] = static_cast<char>(
            static_cast<unsigned char>(bytes[i]) ^ (1u << (i % 8)));
        std::stringstream buffer(bytes);
        Result<FrameTrace> r = tryReadTrace(buffer);
        EXPECT_FALSE(r.ok()) << "flipped bit " << i % 8
                             << " of byte " << i;
    }
}

TEST(TraceIoTyped, CorruptRecordIsChecksumMismatch)
{
    std::stringstream good;
    writeTrace(sampleTrace(), good);
    std::string bytes = good.str();
    // The record block sits before the trailing 8-byte checksum.
    bytes[bytes.size() - 16] ^= 0x40;
    std::stringstream buffer(bytes);
    Result<FrameTrace> r = tryReadTrace(buffer);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ChecksumMismatch);
}

TEST(TraceIoTyped, InjectedTruncationIsTypedAndAttributed)
{
    configureFaults("trace.truncate:p=1,n=1");
    std::stringstream good;
    writeTrace(sampleTrace(), good);
    Result<FrameTrace> r = tryReadTrace(good);
    configureFaults("");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::Truncated);
    EXPECT_NE(r.error().context.find("injected"), std::string::npos);
}

TEST(TraceIoTyped, InjectedBitFlipIsCaughtByChecksum)
{
    configureFaults("trace.bitflip:p=1,n=1,seed=3");
    std::stringstream good;
    writeTrace(sampleTrace(), good);
    Result<FrameTrace> r = tryReadTrace(good);
    configureFaults("");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ChecksumMismatch);
}

TEST(TraceIoTyped, InjectorCorpusNeverCrashesTheReader)
{
    // Sustained low-probability corruption across many reads: every
    // outcome is either a clean trace or a typed error.
    configureFaults(
        "trace.bitflip:p=0.3,seed=11;trace.truncate:p=0.3,seed=12");
    const FrameTrace original = sampleTrace();
    std::size_t ok = 0, failed = 0;
    for (int i = 0; i < 64; ++i) {
        std::stringstream buffer;
        writeTrace(original, buffer);
        Result<FrameTrace> r = tryReadTrace(buffer);
        if (r.ok()) {
            ++ok;
            EXPECT_EQ(r.value().accesses.size(),
                      original.accesses.size());
        } else {
            ++failed;
        }
    }
    configureFaults("");
    EXPECT_GT(failed, 0u);
    EXPECT_EQ(ok + failed, 64u);
}
