/**
 * @file
 * Tests for frame-trace binary serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/trace_io.hh"

using namespace gllc;

namespace
{

FrameTrace
sampleTrace()
{
    FrameTrace t;
    t.name = "App/f3";
    t.app = "App";
    t.frameIndex = 3;
    t.work.shaderOps = 111;
    t.work.texelRequests = 222;
    t.work.pixelsShaded = 333;
    t.work.verticesShaded = 444;
    t.work.rawMemOps = 555;
    t.work.issueCycles = 666;
    for (Addr b = 0; b < 100; ++b) {
        t.accesses.emplace_back(
            b * kBlockBytes,
            static_cast<StreamType>(b % kNumStreams), b % 3 == 0,
            static_cast<std::uint32_t>(b * 7));
    }
    return t;
}

} // namespace

TEST(TraceIo, RoundTripPreservesEverything)
{
    const FrameTrace original = sampleTrace();
    std::stringstream buffer;
    writeTrace(original, buffer);
    const FrameTrace loaded = readTrace(buffer);

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.app, original.app);
    EXPECT_EQ(loaded.frameIndex, original.frameIndex);
    EXPECT_EQ(loaded.work.shaderOps, original.work.shaderOps);
    EXPECT_EQ(loaded.work.texelRequests, original.work.texelRequests);
    EXPECT_EQ(loaded.work.pixelsShaded, original.work.pixelsShaded);
    EXPECT_EQ(loaded.work.verticesShaded,
              original.work.verticesShaded);
    EXPECT_EQ(loaded.work.rawMemOps, original.work.rawMemOps);
    EXPECT_EQ(loaded.work.issueCycles, original.work.issueCycles);
    ASSERT_EQ(loaded.accesses.size(), original.accesses.size());
    for (std::size_t i = 0; i < loaded.accesses.size(); ++i) {
        EXPECT_EQ(loaded.accesses[i].addr, original.accesses[i].addr);
        EXPECT_EQ(loaded.accesses[i].stream,
                  original.accesses[i].stream);
        EXPECT_EQ(loaded.accesses[i].isWrite,
                  original.accesses[i].isWrite);
        EXPECT_EQ(loaded.accesses[i].cycle,
                  original.accesses[i].cycle);
    }
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    FrameTrace t;
    t.name = "empty";
    std::stringstream buffer;
    writeTrace(t, buffer);
    const FrameTrace loaded = readTrace(buffer);
    EXPECT_EQ(loaded.name, "empty");
    EXPECT_TRUE(loaded.accesses.empty());
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/gllc_trace.bin";
    const FrameTrace original = sampleTrace();
    writeTraceFile(original, path);
    const FrameTrace loaded = readTraceFile(path);
    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.accesses.size(), original.accesses.size());
    std::remove(path.c_str());
}

TEST(TraceIoDeath, BadMagicIsFatal)
{
    std::stringstream buffer;
    buffer << "NOTATRACEFILE-----------";
    EXPECT_EXIT(readTrace(buffer), ::testing::ExitedWithCode(1),
                "bad magic");
}

TEST(TraceIoDeath, TruncatedFileIsFatal)
{
    std::stringstream buffer;
    writeTrace(sampleTrace(), buffer);
    const std::string full = buffer.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_EXIT(readTrace(truncated), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(TraceIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(readTraceFile("/nonexistent/path/trace.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}
