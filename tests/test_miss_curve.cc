/**
 * @file
 * Tests for the Mattson miss-ratio-curve tool.
 */

#include <gtest/gtest.h>

#include "analysis/miss_curve.hh"
#include "analysis/offline_sim.hh"
#include "common/rng.hh"

using namespace gllc;

namespace
{

std::vector<MemAccess>
cyclic(Addr working_set, int reps)
{
    std::vector<MemAccess> t;
    for (int r = 0; r < reps; ++r)
        for (Addr b = 0; b < working_set; ++b)
            t.emplace_back(b * kBlockBytes, StreamType::Other, false);
    return t;
}

} // namespace

TEST(MissCurve, CyclicKneeAtWorkingSetSize)
{
    // A cyclic scan of W blocks: LRU misses everything below W and
    // only the cold misses at or above it.
    const auto t = cyclic(64, 10);
    const ReuseDistanceHistogram unified =
        unifyHistograms(measureReuseDistances(t));

    // Below the knee: every access misses.
    EXPECT_DOUBLE_EQ(lruMissRatioAt(unified, 32), 1.0);
    // At/above the knee: only the 64 cold misses of 640 accesses.
    EXPECT_NEAR(lruMissRatioAt(unified, 64), 64.0 / 640.0, 1e-12);
    EXPECT_NEAR(lruMissRatioAt(unified, 1024), 0.1, 1e-12);
}

TEST(MissCurve, MonotoneNonIncreasing)
{
    Rng rng(3);
    std::vector<MemAccess> t;
    for (int i = 0; i < 20000; ++i) {
        t.emplace_back(rng.below(4096) * kBlockBytes,
                       StreamType::Other, false);
    }
    const auto curve = lruMissCurve(t, 16, 8192);
    ASSERT_GE(curve.size(), 3u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_LE(curve[i].missRatio, curve[i - 1].missRatio);
        EXPECT_EQ(curve[i].blocks, 2 * curve[i - 1].blocks);
    }
}

TEST(MissCurve, MatchesFullyAssociativeLruReplay)
{
    // The analytic curve must agree with an actual fully
    // associative LRU cache replay at the same capacity.
    Rng rng(9);
    FrameTrace trace;
    for (int i = 0; i < 8000; ++i) {
        trace.accesses.emplace_back(rng.below(512) * kBlockBytes,
                                    StreamType::Other, false);
    }

    const std::uint64_t capacity_blocks = 128;
    LlcConfig config;
    config.capacityBytes = capacity_blocks * kBlockBytes;
    config.ways = static_cast<std::uint32_t>(capacity_blocks);
    config.banks = 1;  // fully associative: 1 set
    const RunResult r = runTrace(trace, policySpec("LRU"), config);
    const double replay_ratio =
        static_cast<double>(r.stats.totalMisses())
        / static_cast<double>(trace.accesses.size());

    const ReuseDistanceHistogram unified = unifyHistograms(
        measureReuseDistances(trace.accesses));
    EXPECT_NEAR(lruMissRatioAt(unified, capacity_blocks),
                replay_ratio, 1e-9);
}

TEST(MissCurve, EmptyTraceIsZero)
{
    const ReuseDistanceHistogram unified =
        unifyHistograms(measureReuseDistances({}));
    EXPECT_DOUBLE_EQ(lruMissRatioAt(unified, 64), 0.0);
}

TEST(MissCurve, ColdOnlyTraceAlwaysMisses)
{
    std::vector<MemAccess> t;
    for (Addr b = 0; b < 100; ++b)
        t.emplace_back(b * kBlockBytes, StreamType::Other, false);
    const ReuseDistanceHistogram unified =
        unifyHistograms(measureReuseDistances(t));
    EXPECT_DOUBLE_EQ(lruMissRatioAt(unified, 1u << 20), 1.0);
}
