/**
 * @file
 * Tests for the simplified pseudo-LIFO policy (paper reference [5]).
 */

#include <gtest/gtest.h>

#include "cache/banked_llc.hh"
#include "cache/policy/pelifo.hh"

using namespace gllc;

namespace
{

MemAccess
acc(Addr block)
{
    return MemAccess(block * kBlockBytes, StreamType::Other, false);
}

AccessInfo
info(const MemAccess &a)
{
    return AccessInfo{&a, 0, kNever};
}

} // namespace

TEST(PeLifo, StackPositionsFollowFillOrder)
{
    PeLifoPolicy p;
    p.configure(1, 4);
    const MemAccess a = acc(1);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, info(a));
    // Way 3 filled last: position 0 (top of the fill stack).
    EXPECT_EQ(p.stackPosition(0, 3), 0u);
    EXPECT_EQ(p.stackPosition(0, 2), 1u);
    EXPECT_EQ(p.stackPosition(0, 1), 2u);
    EXPECT_EQ(p.stackPosition(0, 0), 3u);
}

TEST(PeLifo, RefillMovesBlockToTop)
{
    PeLifoPolicy p;
    p.configure(1, 4);
    const MemAccess a = acc(1);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, info(a));
    p.onFill(0, 0, info(a));  // way 0 refilled
    EXPECT_EQ(p.stackPosition(0, 0), 0u);
    EXPECT_EQ(p.stackPosition(0, 3), 1u);
}

TEST(PeLifo, NoInformationEvictsTheTop)
{
    // Without hit history every block is assumed to die young: the
    // victim is the top of the fill stack, protecting the deep
    // stack (LIFO thrash resistance).
    PeLifoPolicy p;
    p.configure(1, 4);
    const MemAccess a = acc(1);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, info(a));
    EXPECT_EQ(p.escapePoint(), 0u);
    const std::uint32_t victim = p.selectVictim(0);
    EXPECT_EQ(p.stackPosition(0, victim), 0u);
}

TEST(PeLifo, DeepHitsLowerTheEscapePoint)
{
    PeLifoPolicy p;
    p.configure(1, 4);
    const MemAccess a = acc(1);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, info(a));
    // Hits at depth 3 (way 0 is the deepest block): depths 0..2
    // are dead, so the victim comes from the deepest dead position
    // and the proven hitter at the bottom is protected.
    for (int i = 0; i < 100; ++i)
        p.onHit(0, 0, info(a));
    EXPECT_EQ(p.escapePoint(), 3u);
    EXPECT_EQ(p.stackPosition(0, p.selectVictim(0)), 2u);
}

TEST(PeLifo, MidStackHitsCarveADeadRegion)
{
    PeLifoPolicy p;
    p.configure(1, 8);
    const MemAccess a = acc(1);
    for (std::uint32_t w = 0; w < 8; ++w)
        p.onFill(0, w, info(a));
    // All hits at depth 2: every other depth is dead and the
    // victim comes from the deepest dead position (LRU-like among
    // the dead), leaving the hit-carrying depth alone.
    for (int i = 0; i < 100; ++i)
        p.onHit(0, 5, info(a));  // way 5 sits at depth 2
    EXPECT_EQ(p.escapePoint(), 2u);
    EXPECT_EQ(p.stackPosition(0, p.selectVictim(0)), 7u);
}

TEST(PeLifo, SurvivesThrashingBetterThanItsFillFifo)
{
    // Cyclic loop over 2x the cache: keeping the deep stack pinned
    // must produce real hits (a pure FIFO/LRU would miss always).
    LlcConfig config;
    config.capacityBytes = 64 * 1024;  // 1024 blocks
    config.ways = 16;
    config.banks = 1;
    BankedLlc llc(config, PeLifoPolicy::factory());
    for (int rep = 0; rep < 30; ++rep)
        for (Addr b = 0; b < 2048; ++b)
            llc.access(acc(b));
    const double hit_rate =
        static_cast<double>(llc.stats().totalHits())
        / static_cast<double>(llc.stats().totalAccesses());
    EXPECT_GT(hit_rate, 0.25);
}

TEST(PeLifo, Name)
{
    EXPECT_EQ(PeLifoPolicy().name(), "peLIFO");
}
