/**
 * @file
 * Workload validation: per-application shape checks against the
 * paper's characterization (Section 2).  These guard the calibrated
 * application profiles — if a generator change breaks the stream
 * mix, the consumption topology or a profile's distinguishing
 * feature, these tests fail before the benches drift.
 *
 * One frame per application at the default scale; results are
 * computed once and shared across tests.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/offline_sim.hh"
#include "workload/frame_set.hh"

using namespace gllc;

namespace
{

struct AppData
{
    FrameTrace trace;
    RunResult belady;
    RunResult drrip;
};

const std::map<std::string, AppData> &
data()
{
    static const std::map<std::string, AppData> d = [] {
        RenderScale scale;
        scale.linear = 4;
        const LlcConfig llc =
            scaledLlcConfig(8ull << 20, scale.pixelScale());
        std::map<std::string, AppData> m;
        for (const AppProfile &app : paperApps()) {
            AppData entry;
            entry.trace = renderFrame(app, 0, scale);
            entry.belady =
                runTrace(entry.trace, policySpec("Belady"), llc);
            entry.drrip =
                runTrace(entry.trace, policySpec("DRRIP"), llc);
            m.emplace(app.name, std::move(entry));
        }
        return m;
    }();
    return d;
}

double
streamShare(const FrameTrace &t, StreamType s)
{
    const auto counts = t.streamCounts();
    return static_cast<double>(counts[static_cast<std::size_t>(s)])
        / static_cast<double>(t.accesses.size());
}

double
consumption(const RunResult &r)
{
    return r.characterization.rtConsumptionRate();
}

} // namespace

TEST(WorkloadValidation, RtAndTexDominateEveryApp)
{
    for (const auto &[name, d] : data()) {
        const double rt_tex =
            streamShare(d.trace, StreamType::RenderTarget)
            + streamShare(d.trace, StreamType::Texture);
        EXPECT_GT(rt_tex, 0.55) << name;
        EXPECT_LT(rt_tex, 0.90) << name;
    }
}

TEST(WorkloadValidation, ZStreamShareInPaperRange)
{
    for (const auto &[name, d] : data()) {
        const double z = streamShare(d.trace, StreamType::Z);
        EXPECT_GT(z, 0.04) << name;
        EXPECT_LT(z, 0.20) << name;
    }
}

TEST(WorkloadValidation, DisplayShareSmall)
{
    for (const auto &[name, d] : data()) {
        const double disp = streamShare(d.trace, StreamType::Display);
        EXPECT_GT(disp, 0.01) << name;
        EXPECT_LT(disp, 0.12) << name;
    }
}

TEST(WorkloadValidation, StencilAppsMatchTable)
{
    for (const auto &[name, d] : data()) {
        const double stc = streamShare(d.trace, StreamType::Stencil);
        if (findApp(name).usesStencil)
            EXPECT_GT(stc, 0.01) << name;
        else
            EXPECT_EQ(stc, 0.0) << name;
    }
}

TEST(WorkloadValidation, HeavenHasTheLargestTrace)
{
    // 2560x1600: the paper's largest resolution by far.
    const std::size_t heaven = data().at("Heaven").trace.accesses
                                   .size();
    for (const auto &[name, d] : data()) {
        if (name != "Heaven") {
            EXPECT_GT(heaven, d.trace.accesses.size()) << name;
        }
    }
}

TEST(WorkloadValidation, AssassinsCreedIsTopConsumer)
{
    // Figure 6: Assassin's Creed has the highest RT->TEX consumption
    // potential of the game titles (DMC close).
    const double ac = consumption(data().at("AssnCreed").belady);
    EXPECT_GT(ac, 0.55);
    int higher = 0;
    for (const auto &[name, d] : data())
        higher += (consumption(d.belady) > ac);
    EXPECT_LE(higher, 1);
}

TEST(WorkloadValidation, DirtConsumesLeastAmongDx11Games)
{
    // Dirt's profile produces offscreen targets it barely samples
    // back (the GSPC-vs-GSPZTC differentiator).
    const double dirt = consumption(data().at("Dirt").belady);
    EXPECT_LT(dirt, consumption(data().at("AssnCreed").belady));
    EXPECT_LT(dirt, consumption(data().at("DMC").belady));
}

TEST(WorkloadValidation, HeavenIsCapacityStarved)
{
    // Heaven's working set is the largest relative to the LLC, so
    // even Belady's hit rate is the lowest of the twelve.
    const auto rate = [](const RunResult &r) {
        return static_cast<double>(r.stats.totalHits())
            / static_cast<double>(r.stats.totalAccesses());
    };
    const double heaven = rate(data().at("Heaven").belady);
    for (const auto &[name, d] : data()) {
        if (name != "Heaven") {
            EXPECT_LT(heaven, rate(d.belady)) << name;
        }
    }
}

TEST(WorkloadValidation, BeladyConsumptionBeatsDrripEverywhere)
{
    for (const auto &[name, d] : data()) {
        EXPECT_GT(consumption(d.belady), 3 * consumption(d.drrip))
            << name;
    }
}

TEST(WorkloadValidation, TextureEpochShapeHoldsPerApp)
{
    for (const auto &[name, d] : data()) {
        const Characterization &ch = d.belady.characterization;
        // E0 dominates intra-stream hits in every title (Figure 7).
        EXPECT_GT(ch.texEpochHits[0], ch.texEpochHits[1]) << name;
        EXPECT_GT(ch.texDeathRatio(0), 0.7) << name;
    }
}

TEST(WorkloadValidation, BeladyGapExistsEverywhere)
{
    for (const auto &[name, d] : data()) {
        EXPECT_LT(d.belady.stats.totalMisses(),
                  d.drrip.stats.totalMisses())
            << name;
    }
}

TEST(WorkloadValidation, TraceSizesAreSimulable)
{
    for (const auto &[name, d] : data()) {
        EXPECT_GT(d.trace.accesses.size(), 50'000u) << name;
        EXPECT_LT(d.trace.accesses.size(), 2'000'000u) << name;
    }
}
