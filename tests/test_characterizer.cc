/**
 * @file
 * Unit tests for the reuse characterization layer (Section 2.3's
 * RT-bit protocol and epoch bookkeeping).
 */

#include <gtest/gtest.h>

#include "analysis/characterizer.hh"
#include "cache/policy/lru.hh"

using namespace gllc;

namespace
{

MemAccess
acc(Addr block, StreamType s, bool write = false)
{
    return MemAccess(block * kBlockBytes, s, write);
}

/** LLC with an attached characterizer for event-driven tests. */
struct Harness
{
    Harness()
        : llc(LlcConfig{8 * 1024, 4, 1},
              LruPolicy::factory())
    {
        llc.setObserver(&ch);
    }

    BankedLlc llc;
    Characterizer ch;
};

} // namespace

TEST(Characterizer, RtConsumptionIsInterStreamHit)
{
    Harness h;
    h.llc.access(acc(1, StreamType::RenderTarget, true));  // produce
    h.llc.access(acc(1, StreamType::Texture));             // consume
    const Characterization &c = h.ch.result();
    EXPECT_EQ(c.rtProductions, 1u);
    EXPECT_EQ(c.rtConsumptions, 1u);
    EXPECT_EQ(c.interTexHits, 1u);
    EXPECT_EQ(c.intraTexHits, 0u);
}

TEST(Characterizer, ConsumptionClearsRtBit)
{
    Harness h;
    h.llc.access(acc(1, StreamType::RenderTarget, true));
    h.llc.access(acc(1, StreamType::Texture));
    // Second texture hit: the block is now a texture block in E0.
    h.llc.access(acc(1, StreamType::Texture));
    const Characterization &c = h.ch.result();
    EXPECT_EQ(c.rtConsumptions, 1u);
    EXPECT_EQ(c.interTexHits, 1u);
    EXPECT_EQ(c.intraTexHits, 1u);
    EXPECT_EQ(c.texEpochHits[0], 1u);
}

TEST(Characterizer, TextureEpochHitHistogram)
{
    Harness h;
    h.llc.access(acc(2, StreamType::Texture));  // fill: lifetime E0
    for (int k = 0; k < 5; ++k)
        h.llc.access(acc(2, StreamType::Texture));
    const Characterization &c = h.ch.result();
    EXPECT_EQ(c.intraTexHits, 5u);
    EXPECT_EQ(c.texEpochHits[0], 1u);
    EXPECT_EQ(c.texEpochHits[1], 1u);
    EXPECT_EQ(c.texEpochHits[2], 1u);
    EXPECT_EQ(c.texEpochHits[3], 2u);  // E>=3 bucket
}

TEST(Characterizer, TexReachAndDeathRatio)
{
    Harness h;
    // Three texture lifetimes: blocks 1, 2, 3.  Block 1 gets two
    // hits, block 2 one, block 3 none.
    h.llc.access(acc(1, StreamType::Texture));
    h.llc.access(acc(2, StreamType::Texture));
    h.llc.access(acc(3, StreamType::Texture));
    h.llc.access(acc(1, StreamType::Texture));
    h.llc.access(acc(1, StreamType::Texture));
    h.llc.access(acc(2, StreamType::Texture));

    const Characterization &c = h.ch.result();
    EXPECT_EQ(c.texReach[0], 3u);
    EXPECT_EQ(c.texReach[1], 2u);
    EXPECT_EQ(c.texReach[2], 1u);
    EXPECT_NEAR(c.texDeathRatio(0), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(c.texDeathRatio(1), 0.5, 1e-12);
}

TEST(Characterizer, ZEpochsTrackedSeparately)
{
    Harness h;
    h.llc.access(acc(5, StreamType::Z, true));
    h.llc.access(acc(5, StreamType::Z));
    h.llc.access(acc(6, StreamType::Z, true));
    const Characterization &c = h.ch.result();
    EXPECT_EQ(c.zReach[0], 2u);
    EXPECT_EQ(c.zReach[1], 1u);
    EXPECT_NEAR(c.zDeathRatio(0), 0.5, 1e-12);
    // Z activity must not contaminate texture epochs.
    EXPECT_EQ(c.texReach[0], 0u);
}

TEST(Characterizer, RtRewriteCountsOneProduction)
{
    Harness h;
    h.llc.access(acc(1, StreamType::RenderTarget, true));
    h.llc.access(acc(1, StreamType::RenderTarget, true));  // blend hit
    EXPECT_EQ(h.ch.result().rtProductions, 1u);
}

TEST(Characterizer, RtReacquisitionAfterConsumptionIsNewProduction)
{
    Harness h;
    h.llc.access(acc(1, StreamType::RenderTarget, true));
    h.llc.access(acc(1, StreamType::Texture));             // consume
    h.llc.access(acc(1, StreamType::RenderTarget, true));  // reuse
    EXPECT_EQ(h.ch.result().rtProductions, 2u);
    EXPECT_EQ(h.ch.result().rtConsumptions, 1u);
}

TEST(Characterizer, DisplayCountsAsRenderTarget)
{
    Harness h;
    h.llc.access(acc(4, StreamType::Display, true));
    EXPECT_EQ(h.ch.result().rtProductions, 1u);
}

TEST(Characterizer, EvictionEndsLifetimes)
{
    Harness h;
    // 4-way single... small cache: force eviction of a texture block
    // and confirm a later refill starts a fresh E0 lifetime.
    const std::uint32_t sets = h.llc.geometry().setsPerBank();
    h.llc.access(acc(0, StreamType::Texture));
    for (Addr i = 1; i <= 4; ++i)
        h.llc.access(acc(i * sets, StreamType::Other));
    EXPECT_FALSE(h.llc.isResident(0));
    h.llc.access(acc(0, StreamType::Texture));
    const Characterization &c = h.ch.result();
    EXPECT_EQ(c.texReach[0], 2u);  // two lifetimes
    EXPECT_EQ(c.texReach[1], 0u);  // neither ever hit
    EXPECT_NEAR(c.texDeathRatio(0), 1.0, 1e-12);
}

TEST(Characterizer, DeathRatioZeroWhenNoLifetimes)
{
    Characterization c;
    EXPECT_EQ(c.texDeathRatio(0), 0.0);
    EXPECT_EQ(c.zDeathRatio(2), 0.0);
    EXPECT_EQ(c.rtConsumptionRate(), 0.0);
}

TEST(Characterizer, MergeAddsFields)
{
    Characterization a, b;
    a.interTexHits = 1;
    a.texReach[0] = 4;
    b.interTexHits = 2;
    b.texReach[0] = 6;
    b.zReach[1] = 3;
    a.merge(b);
    EXPECT_EQ(a.interTexHits, 3u);
    EXPECT_EQ(a.texReach[0], 10u);
    EXPECT_EQ(a.zReach[1], 3u);
}

TEST(Characterizer, BlendHitEndsTextureLifetime)
{
    Harness h;
    h.llc.access(acc(1, StreamType::Texture));
    h.llc.access(acc(1, StreamType::RenderTarget, true));
    h.llc.access(acc(1, StreamType::Texture));  // consumption again
    const Characterization &c = h.ch.result();
    // First lifetime died hitless; the RT write produced; the second
    // texture access consumed.
    EXPECT_EQ(c.rtProductions, 1u);
    EXPECT_EQ(c.rtConsumptions, 1u);
    EXPECT_EQ(c.texReach[0], 2u);
}
