/**
 * @file
 * Tests for the hierarchical metrics registry
 * (src/common/metrics.hh).
 *
 * Covers the registry semantics (counter/gauge/histogram
 * accumulation, dotted-name hierarchy, kind-collision panics), the
 * deterministic thread-local merge (the same work snapshots
 * byte-identically from 1 and N threads), histogram bucket edge
 * cases, and the observation-only guarantee: an instrumented replay
 * produces the same RunResult as an uninstrumented one, mirroring
 * the audit layer's read-only test.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/offline_sim.hh"
#include "analysis/policy_table.hh"
#include "common/decision_log.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "trace/frame_trace.hh"

using namespace gllc;

namespace
{

/** Every test runs against a clean, force-enabled registry. */
class MetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        MetricsRegistry::instance().reset();
        setMetricsActive(true);
    }

    void
    TearDown() override
    {
        MetricsRegistry::instance().reset();
        setMetricsActive(false);
    }
};

/** gtest runs suites named *DeathTest first; same fixture. */
using MetricsDeathTest = MetricsTest;

// ---------------------------------------------------------------
// Basic accumulation semantics
// ---------------------------------------------------------------

TEST_F(MetricsTest, CounterAccumulates)
{
    auto &reg = MetricsRegistry::instance();
    reg.addCounter("llc.hits");
    reg.addCounter("llc.hits", 41);
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("llc.hits"), 42u);
    EXPECT_EQ(snap.counter("llc.misses"), 0u);
    ASSERT_NE(snap.find("llc.hits"), nullptr);
    EXPECT_EQ(snap.find("llc.hits")->kind, MetricKind::Counter);
    EXPECT_EQ(snap.find("llc.misses"), nullptr);
}

TEST_F(MetricsTest, GaugeKeepsMaximum)
{
    auto &reg = MetricsRegistry::instance();
    // All-negative samples exercise the -inf initial watermark.
    reg.maxGauge("sim.low", -7.5);
    reg.maxGauge("sim.low", -2.25);
    reg.maxGauge("sim.low", -100.0);
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_NE(snap.find("sim.low"), nullptr);
    EXPECT_DOUBLE_EQ(snap.find("sim.low")->gauge, -2.25);
}

TEST_F(MetricsTest, HistogramBucketEdgeCases)
{
    auto &reg = MetricsRegistry::instance();
    const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
    reg.recordValue("h", lo);
    reg.recordValue("h", hi, 3);
    reg.recordValue("h", 0);
    reg.recordValue("h", 0, 0);  // zero-count record is a no-op sample
    reg.recordValue("h", -1);
    const MetricsSnapshot snap = reg.snapshot();
    const MetricValue *h = snap.find("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->kind, MetricKind::Histogram);
    EXPECT_EQ(h->samples(), 6u);
    EXPECT_EQ(h->buckets.at(lo), 1u);
    EXPECT_EQ(h->buckets.at(hi), 3u);
    EXPECT_EQ(h->buckets.at(-1), 1u);
    // Bucket keys come back sorted (std::map), so the export order
    // is deterministic.
    EXPECT_EQ(h->buckets.begin()->first, lo);
    EXPECT_EQ(h->buckets.rbegin()->first, hi);
}

TEST_F(MetricsTest, HierarchyWithPrefix)
{
    auto &reg = MetricsRegistry::instance();
    reg.addCounter("llc.bank0.stream.TEX.hits", 5);
    reg.addCounter("llc.bank0.stream.RT.hits", 7);
    reg.addCounter("llc.bank1.stream.TEX.hits", 11);
    reg.addCounter("dram.ch0.row_conflicts", 13);
    const MetricsSnapshot snap = reg.snapshot();

    const MetricsSnapshot bank0 = snap.withPrefix("llc.bank0.");
    EXPECT_EQ(bank0.values().size(), 2u);
    EXPECT_EQ(bank0.counter("llc.bank0.stream.TEX.hits"), 5u);
    EXPECT_EQ(bank0.counter("llc.bank0.stream.RT.hits"), 7u);

    const MetricsSnapshot llc = snap.withPrefix("llc.");
    EXPECT_EQ(llc.values().size(), 3u);
    EXPECT_EQ(llc.find("dram.ch0.row_conflicts"), nullptr);
}

TEST_F(MetricsTest, SnapshotNamesAreSorted)
{
    auto &reg = MetricsRegistry::instance();
    reg.addCounter("z.last");
    reg.addCounter("a.first");
    reg.addCounter("m.middle");
    const MetricsSnapshot snap = reg.snapshot();
    std::vector<std::string> names;
    for (const auto &[name, value] : snap.values())
        names.push_back(name);
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a.first");
    EXPECT_EQ(names[1], "m.middle");
    EXPECT_EQ(names[2], "z.last");
}

TEST_F(MetricsTest, ResetClears)
{
    auto &reg = MetricsRegistry::instance();
    reg.addCounter("x", 9);
    reg.reset();
    EXPECT_TRUE(reg.snapshot().values().empty());
}

// ---------------------------------------------------------------
// Name collisions across kinds
// ---------------------------------------------------------------

TEST_F(MetricsDeathTest, KindCollisionPanics)
{
    auto &reg = MetricsRegistry::instance();
    reg.addCounter("dual.use");
    EXPECT_DEATH(reg.maxGauge("dual.use", 1.0), "dual.use");
}

TEST_F(MetricsDeathTest, HistogramVsCounterCollisionPanics)
{
    auto &reg = MetricsRegistry::instance();
    reg.recordValue("shape", 3);
    EXPECT_DEATH(reg.addCounter("shape"), "shape");
}

// ---------------------------------------------------------------
// Thread-local merge determinism
// ---------------------------------------------------------------

namespace
{

/** The reference workload: every item lands in the same metrics. */
void
recordItems(std::size_t begin, std::size_t end)
{
    auto &reg = MetricsRegistry::instance();
    for (std::size_t i = begin; i < end; ++i) {
        reg.addCounter("work.items");
        reg.addCounter("work.class" + std::to_string(i % 3));
        reg.recordValue("work.hist",
                        static_cast<std::int64_t>(i % 13));
        reg.maxGauge("work.peak", static_cast<double>(i % 97));
    }
}

/** JSON snapshot of the registry after @p nthreads split the work. */
std::string
snapshotJsonAfter(unsigned nthreads, std::size_t items)
{
    auto &reg = MetricsRegistry::instance();
    reg.reset();
    std::vector<std::thread> workers;
    const std::size_t chunk = (items + nthreads - 1) / nthreads;
    for (unsigned t = 0; t < nthreads; ++t) {
        const std::size_t begin = t * chunk;
        const std::size_t end = std::min(items, begin + chunk);
        workers.emplace_back(recordItems, begin, end);
    }
    for (std::thread &w : workers)
        w.join();
    std::ostringstream os;
    reg.snapshot().writeJson(os);
    return os.str();
}

} // namespace

TEST_F(MetricsTest, MergeIsDeterministicAcrossThreadCounts)
{
    const std::string serial = snapshotJsonAfter(1, 3000);
    const std::string four = snapshotJsonAfter(4, 3000);
    const std::string seven = snapshotJsonAfter(7, 3000);
    EXPECT_EQ(serial, four);
    EXPECT_EQ(serial, seven);
}

// ---------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------

TEST_F(MetricsTest, JsonCarriesSchemaAndKinds)
{
    auto &reg = MetricsRegistry::instance();
    reg.addCounter("c", 2);
    reg.maxGauge("g", 1.5);
    reg.recordValue("h", -4, 2);
    std::ostringstream os;
    reg.snapshot().writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\": \"gllc-stats-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"histogram\""), std::string::npos);
}

TEST_F(MetricsTest, CsvHasOneRowPerBucket)
{
    auto &reg = MetricsRegistry::instance();
    reg.recordValue("h", 1);
    reg.recordValue("h", 2, 5);
    std::ostringstream os;
    reg.snapshot().writeCsv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("name,type,key,value"), std::string::npos);
    EXPECT_NE(csv.find("h,histogram,1,1"), std::string::npos);
    EXPECT_NE(csv.find("h,histogram,2,5"), std::string::npos);
}

// ---------------------------------------------------------------
// Explicit latency buckets and quantiles
// ---------------------------------------------------------------

TEST_F(MetricsTest, LatencyBucketMapping)
{
    // The smallest bound >= ms wins; edges land in their own bucket.
    EXPECT_EQ(latencyBucketMs(0.0), 1);
    EXPECT_EQ(latencyBucketMs(-3.0), 1);
    EXPECT_EQ(latencyBucketMs(1.0), 1);
    EXPECT_EQ(latencyBucketMs(1.001), 2);
    EXPECT_EQ(latencyBucketMs(7.2), 10);
    EXPECT_EQ(latencyBucketMs(25.0), 25);
    EXPECT_EQ(latencyBucketMs(59999.0), 60000);
    // Past the last bound: clamp, never drop.
    EXPECT_EQ(latencyBucketMs(1e9), 60000);
}

TEST_F(MetricsTest, RecordLatencyUsesExplicitBuckets)
{
    recordLatencyMs("svc.lat", 0.4);
    recordLatencyMs("svc.lat", 7.2);
    recordLatencyMs("svc.lat", 7.9);
    recordLatencyMs("svc.lat", 400.0);
    const MetricsSnapshot snap =
        MetricsRegistry::instance().snapshot();
    const MetricValue *h = snap.find("svc.lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->kind, MetricKind::Histogram);
    EXPECT_EQ(h->samples(), 4u);
    EXPECT_EQ(h->buckets.at(1), 1u);
    EXPECT_EQ(h->buckets.at(10), 2u);
    EXPECT_EQ(h->buckets.at(500), 1u);

    // Inactive registry: recording is a no-op, not a crash.
    setMetricsActive(false);
    recordLatencyMs("svc.lat", 3.0);
    setMetricsActive(true);
    EXPECT_EQ(MetricsRegistry::instance()
                  .snapshot()
                  .find("svc.lat")
                  ->samples(),
              4u);
}

TEST_F(MetricsTest, HistogramQuantiles)
{
    auto &reg = MetricsRegistry::instance();
    // 10 samples at 1ms, 80 at 10ms, 10 at 1000ms.
    reg.recordValue("q", 1, 10);
    reg.recordValue("q", 10, 80);
    reg.recordValue("q", 1000, 10);
    const MetricsSnapshot snap = reg.snapshot();
    const MetricValue *h = snap.find("q");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(histogramQuantile(*h, 0.0), 1);
    EXPECT_EQ(histogramQuantile(*h, 0.05), 1);
    EXPECT_EQ(histogramQuantile(*h, 0.50), 10);
    EXPECT_EQ(histogramQuantile(*h, 0.90), 10);
    EXPECT_EQ(histogramQuantile(*h, 0.95), 1000);
    EXPECT_EQ(histogramQuantile(*h, 1.0), 1000);
    EXPECT_EQ(histogramQuantile(MetricValue{}, 0.5), 0);
}

TEST_F(MetricsTest, LatencyMergeCommutesAcrossThreadCounts)
{
    // The sharded histograms must merge to byte-identical snapshots
    // whether the samples came from 1 thread or from many.
    const auto record_all = [](unsigned nthreads) {
        auto &reg = MetricsRegistry::instance();
        reg.reset();
        std::vector<std::thread> workers;
        for (unsigned t = 0; t < nthreads; ++t)
            workers.emplace_back([t, nthreads] {
                for (unsigned i = t; i < 600; i += nthreads)
                    recordLatencyMs("svc.lat",
                                    static_cast<double>(i % 137));
            });
        for (std::thread &w : workers)
            w.join();
        std::ostringstream os;
        reg.snapshot().writeJson(os);
        return os.str();
    };
    const std::string one = record_all(1);
    EXPECT_EQ(one, record_all(3));
    EXPECT_EQ(one, record_all(8));
}

// ---------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------

TEST_F(MetricsTest, PrometheusExpositionGolden)
{
    auto &reg = MetricsRegistry::instance();
    reg.addCounter("svc.jobs.completed", 3);
    reg.maxGauge("svc.queue.depth", 4.0);
    reg.recordValue("svc.lat_ms", 5, 2);
    reg.recordValue("svc.lat_ms", 25, 1);
    std::ostringstream os;
    reg.snapshot().writePrometheus(os);
    EXPECT_EQ(os.str(),
              "# TYPE svc_jobs_completed_total counter\n"
              "svc_jobs_completed_total 3\n"
              "# TYPE svc_lat_ms histogram\n"
              "svc_lat_ms_bucket{le=\"5\"} 2\n"
              "svc_lat_ms_bucket{le=\"25\"} 3\n"
              "svc_lat_ms_bucket{le=\"+Inf\"} 3\n"
              "svc_lat_ms_sum 35\n"
              "svc_lat_ms_count 3\n"
              "# TYPE svc_queue_depth gauge\n"
              "svc_queue_depth 4\n");
}

TEST_F(MetricsTest, PrometheusBucketRoundTrip)
{
    // The cumulative le counts must invert back to the exact sparse
    // bucket counts the registry holds.
    auto &reg = MetricsRegistry::instance();
    const std::int64_t keys[] = {1, 10, 250, 60000};
    const std::uint64_t counts[] = {4, 9, 1, 6};
    for (int i = 0; i < 4; ++i)
        reg.recordValue("rt", keys[i], counts[i]);
    std::ostringstream os;
    reg.snapshot().writePrometheus(os);
    const std::string text = os.str();

    std::uint64_t previous = 0;
    for (int i = 0; i < 4; ++i) {
        const std::string needle = "rt_bucket{le=\""
                                   + std::to_string(keys[i])
                                   + "\"} ";
        const std::size_t at = text.find(needle);
        ASSERT_NE(at, std::string::npos) << text;
        const std::uint64_t cumulative = std::stoull(
            text.substr(at + needle.size()));
        EXPECT_EQ(cumulative - previous, counts[i]);
        previous = cumulative;
    }
    EXPECT_NE(text.find("rt_bucket{le=\"+Inf\"} 20"),
              std::string::npos);
    EXPECT_NE(text.find("rt_count 20"), std::string::npos);
}

TEST_F(MetricsTest, GaugeRearmStartsFreshWindow)
{
    auto &reg = MetricsRegistry::instance();
    reg.maxGauge("win.depth", 9.0);
    reg.maxGauge("win.depth", 2.0);
    EXPECT_DOUBLE_EQ(reg.snapshot().find("win.depth")->gauge, 9.0);

    reg.rearmGauge("win.depth");
    EXPECT_EQ(reg.snapshot().find("win.depth"), nullptr);

    // The next observation wins outright: no stale watermark.
    reg.maxGauge("win.depth", 3.0);
    EXPECT_DOUBLE_EQ(reg.snapshot().find("win.depth")->gauge, 3.0);

    // Counters and histograms are immune.
    reg.addCounter("win.count", 5);
    reg.rearmGauge("win.count");
    EXPECT_EQ(reg.snapshot().counter("win.count"), 5u);
}

// ---------------------------------------------------------------
// Observation-only guarantee (mirrors the audit layer's test)
// ---------------------------------------------------------------

namespace
{

/** Deterministic mixed-stream frame trace over a 1 MB footprint. */
FrameTrace
makeFrameTrace(std::size_t n, std::uint64_t seed)
{
    static const StreamType kStreams[] = {
        StreamType::Z, StreamType::Texture, StreamType::RenderTarget,
        StreamType::Other};
    Rng rng(seed);
    FrameTrace trace;
    trace.name = "unittest/f0";
    trace.app = "unittest";
    trace.accesses.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Addr addr = rng.below(1u << 20) & ~static_cast<Addr>(63);
        const StreamType s = kStreams[rng.below(4)];
        trace.accesses.emplace_back(addr, s,
                                    s == StreamType::RenderTarget);
    }
    return trace;
}

} // namespace

TEST_F(MetricsTest, InstrumentedReplayIsBitIdentical)
{
    const FrameTrace trace = makeFrameTrace(20000, 0x5eed);
    const PolicySpec spec = policySpec("GSPC");
    LlcConfig config;
    config.capacityBytes = 256 * 1024;
    config.ways = 8;
    config.banks = 2;

    setMetricsActive(false);
    const RunResult plain = runTrace(trace, spec, config);

    setMetricsActive(true);
    DecisionLog::setDepth(64);  // exercise decision recording too
    const RunResult instrumented = runTrace(trace, spec, config);
    DecisionLog::setDepth(0);

    for (std::size_t s = 0; s < kNumStreams; ++s) {
        EXPECT_EQ(plain.stats.stream[s].accesses,
                  instrumented.stats.stream[s].accesses);
        EXPECT_EQ(plain.stats.stream[s].hits,
                  instrumented.stats.stream[s].hits);
        EXPECT_EQ(plain.stats.stream[s].misses,
                  instrumented.stats.stream[s].misses);
        EXPECT_EQ(plain.stats.stream[s].bypasses,
                  instrumented.stats.stream[s].bypasses);
    }
    EXPECT_EQ(plain.stats.writebacks, instrumented.stats.writebacks);
    EXPECT_EQ(plain.stats.evictions, instrumented.stats.evictions);

    // And the registry actually saw the replay.
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    EXPECT_GT(snap.counter("sim.replays"), 0u);
    EXPECT_FALSE(snap.withPrefix("llc.").values().empty());
    EXPECT_FALSE(snap.withPrefix("policy.GSPC.").values().empty());
}

} // namespace
