/**
 * @file
 * Unit tests for the named policy registry.
 */

#include <gtest/gtest.h>

#include <set>

#include "analysis/policy_table.hh"

using namespace gllc;

TEST(PolicyTable, AllNamesInstantiate)
{
    for (const std::string &name : allPolicyNames()) {
        const PolicySpec spec = policySpec(name);
        EXPECT_EQ(spec.name, name);
        ASSERT_TRUE(spec.factory != nullptr) << name;
        auto policy = spec.factory();
        ASSERT_NE(policy, nullptr) << name;
        policy->configure(128, 16);
    }
}

TEST(PolicyTable, InstanceNamesMatchRegistry)
{
    for (const std::string &name : allPolicyNames()) {
        if (name == "DRRIP" || name == "GS-DRRIP" || name == "SRRIP") {
            // Registry short names map to the width-suffixed
            // instance names.
            continue;
        }
        const PolicySpec spec = policySpec(name);
        EXPECT_EQ(spec.factory()->name(), name);
    }
    EXPECT_EQ(policySpec("DRRIP").factory()->name(), "DRRIP-2");
    EXPECT_EQ(policySpec("GS-DRRIP").factory()->name(), "GS-DRRIP-2");
}

TEST(PolicyTable, UcdSuffixSetsFlag)
{
    const PolicySpec plain = policySpec("GSPC");
    EXPECT_FALSE(plain.uncachedDisplay);
    const PolicySpec ucd = policySpec("GSPC+UCD");
    EXPECT_TRUE(ucd.uncachedDisplay);
    EXPECT_EQ(ucd.name, "GSPC+UCD");
    EXPECT_EQ(ucd.factory()->name(), "GSPC");
}

TEST(PolicyTable, UcdComposesWithEveryBase)
{
    for (const std::string &name : allPolicyNames()) {
        const PolicySpec spec = policySpec(name + "+UCD");
        EXPECT_TRUE(spec.uncachedDisplay) << name;
    }
}

TEST(PolicyTable, BeladyNeedsOracle)
{
    EXPECT_TRUE(policySpec("Belady").needsOracle);
    EXPECT_TRUE(policySpec("Belady+UCD").needsOracle);
    EXPECT_FALSE(policySpec("DRRIP").needsOracle);
    EXPECT_FALSE(policySpec("GSPC").needsOracle);
}

TEST(PolicyTable, ThresholdSweepForm)
{
    for (const unsigned t : {2u, 4u, 8u, 16u}) {
        const std::string name =
            "GSPZTC(t=" + std::to_string(t) + ")";
        const PolicySpec spec = policySpec(name);
        auto policy = spec.factory();
        EXPECT_EQ(policy->name(), "GSPZTC");
    }
}

TEST(PolicyTable, SpecCarriesMachineReadableMetadata)
{
    const PolicySpec drrip = policySpec("DRRIP");
    EXPECT_EQ(drrip.baseName, "DRRIP");
    EXPECT_EQ(drrip.threshold, 0u);

    const PolicySpec swept = policySpec("GSPZTC(t=4)+UCD");
    EXPECT_EQ(swept.baseName, "GSPZTC");
    EXPECT_EQ(swept.threshold, 4u);
    EXPECT_TRUE(swept.uncachedDisplay);
}

TEST(PolicyTable, AllPolicySpecsEnumeratesVariants)
{
    const std::vector<PolicySpec> specs = allPolicySpecs();
    const std::size_t expected =
        2 * (allPolicyNames().size() + gspztcSweepThresholds().size());
    EXPECT_EQ(specs.size(), expected);

    std::set<std::string> names;
    for (const PolicySpec &spec : specs) {
        EXPECT_TRUE(names.insert(spec.name).second)
            << "duplicate " << spec.name;
        ASSERT_TRUE(spec.factory != nullptr) << spec.name;
        EXPECT_FALSE(spec.baseName.empty()) << spec.name;
    }

    // Every base appears plain and +UCD...
    for (const std::string &name : allPolicyNames()) {
        EXPECT_TRUE(names.count(name)) << name;
        EXPECT_TRUE(names.count(name + "+UCD")) << name;
    }
    // ...and the GSPZTC threshold sweep points are enumerated with
    // their parameters parsed out.
    for (const unsigned t : gspztcSweepThresholds()) {
        const std::string name =
            "GSPZTC(t=" + std::to_string(t) + ")";
        ASSERT_TRUE(names.count(name)) << name;
        for (const PolicySpec &spec : specs) {
            if (spec.name != name)
                continue;
            EXPECT_EQ(spec.baseName, "GSPZTC");
            EXPECT_EQ(spec.threshold, t);
            EXPECT_FALSE(spec.uncachedDisplay);
        }
    }
}

TEST(PolicyTableDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(policySpec("NotAPolicy"),
                ::testing::ExitedWithCode(1), "unknown policy");
}

TEST(PolicyTableDeath, MalformedThresholdIsFatal)
{
    EXPECT_EXIT(policySpec("GSPZTC(t=x)"),
                ::testing::ExitedWithCode(1), "unknown policy");
}
