/**
 * @file
 * Unit tests for the named policy registry.
 */

#include <gtest/gtest.h>

#include "analysis/policy_table.hh"

using namespace gllc;

TEST(PolicyTable, AllNamesInstantiate)
{
    for (const std::string &name : allPolicyNames()) {
        const PolicySpec spec = policySpec(name);
        EXPECT_EQ(spec.name, name);
        ASSERT_TRUE(spec.factory != nullptr) << name;
        auto policy = spec.factory();
        ASSERT_NE(policy, nullptr) << name;
        policy->configure(128, 16);
    }
}

TEST(PolicyTable, InstanceNamesMatchRegistry)
{
    for (const std::string &name : allPolicyNames()) {
        if (name == "DRRIP" || name == "GS-DRRIP" || name == "SRRIP") {
            // Registry short names map to the width-suffixed
            // instance names.
            continue;
        }
        const PolicySpec spec = policySpec(name);
        EXPECT_EQ(spec.factory()->name(), name);
    }
    EXPECT_EQ(policySpec("DRRIP").factory()->name(), "DRRIP-2");
    EXPECT_EQ(policySpec("GS-DRRIP").factory()->name(), "GS-DRRIP-2");
}

TEST(PolicyTable, UcdSuffixSetsFlag)
{
    const PolicySpec plain = policySpec("GSPC");
    EXPECT_FALSE(plain.uncachedDisplay);
    const PolicySpec ucd = policySpec("GSPC+UCD");
    EXPECT_TRUE(ucd.uncachedDisplay);
    EXPECT_EQ(ucd.name, "GSPC+UCD");
    EXPECT_EQ(ucd.factory()->name(), "GSPC");
}

TEST(PolicyTable, UcdComposesWithEveryBase)
{
    for (const std::string &name : allPolicyNames()) {
        const PolicySpec spec = policySpec(name + "+UCD");
        EXPECT_TRUE(spec.uncachedDisplay) << name;
    }
}

TEST(PolicyTable, BeladyNeedsOracle)
{
    EXPECT_TRUE(policySpec("Belady").needsOracle);
    EXPECT_TRUE(policySpec("Belady+UCD").needsOracle);
    EXPECT_FALSE(policySpec("DRRIP").needsOracle);
    EXPECT_FALSE(policySpec("GSPC").needsOracle);
}

TEST(PolicyTable, ThresholdSweepForm)
{
    for (const unsigned t : {2u, 4u, 8u, 16u}) {
        const std::string name =
            "GSPZTC(t=" + std::to_string(t) + ")";
        const PolicySpec spec = policySpec(name);
        auto policy = spec.factory();
        EXPECT_EQ(policy->name(), "GSPZTC");
    }
}

TEST(PolicyTableDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(policySpec("NotAPolicy"),
                ::testing::ExitedWithCode(1), "unknown policy");
}

TEST(PolicyTableDeath, MalformedThresholdIsFatal)
{
    EXPECT_EXIT(policySpec("GSPZTC(t=x)"),
                ::testing::ExitedWithCode(1), "unknown policy");
}
