/**
 * @file
 * Tests for the exact stack-distance measurement.
 */

#include <gtest/gtest.h>

#include "analysis/reuse_distance.hh"

using namespace gllc;

namespace
{

std::vector<MemAccess>
trace(std::initializer_list<Addr> blocks,
      StreamType s = StreamType::Other)
{
    std::vector<MemAccess> t;
    for (const Addr b : blocks)
        t.emplace_back(b * kBlockBytes, s, false);
    return t;
}

std::uint64_t
reusedAt(const ReuseDistanceHistogram &h, std::uint64_t distance)
{
    return h.bins[ReuseDistanceHistogram::binOf(distance)];
}

} // namespace

TEST(ReuseDistance, BinEdges)
{
    EXPECT_EQ(ReuseDistanceHistogram::binOf(0), 0u);
    EXPECT_EQ(ReuseDistanceHistogram::binOf(1), 1u);
    EXPECT_EQ(ReuseDistanceHistogram::binOf(2), 2u);
    EXPECT_EQ(ReuseDistanceHistogram::binOf(3), 2u);
    EXPECT_EQ(ReuseDistanceHistogram::binOf(4), 3u);
    EXPECT_EQ(ReuseDistanceHistogram::binOf(7), 3u);
    EXPECT_EQ(ReuseDistanceHistogram::binOf(8), 4u);
}

TEST(ReuseDistance, ImmediateReuseIsDistanceZero)
{
    const auto d = measureReuseDistances(trace({1, 1}));
    const auto &h = d[static_cast<std::size_t>(StreamType::Other)];
    EXPECT_EQ(h.cold, 1u);
    EXPECT_EQ(h.bins[0], 1u);
}

TEST(ReuseDistance, DistinctBlocksBetween)
{
    // 1, 2, 3, 1: two distinct blocks between the two 1s.
    const auto d = measureReuseDistances(trace({1, 2, 3, 1}));
    const auto &h = d[static_cast<std::size_t>(StreamType::Other)];
    EXPECT_EQ(h.cold, 3u);
    EXPECT_EQ(reusedAt(h, 2), 1u);
}

TEST(ReuseDistance, RepeatsDoNotInflateDistance)
{
    // 1, 2, 2, 2, 1: only ONE distinct block between the 1s.
    const auto d = measureReuseDistances(trace({1, 2, 2, 2, 1}));
    const auto &h = d[static_cast<std::size_t>(StreamType::Other)];
    EXPECT_EQ(reusedAt(h, 1), 1u);   // the far 1
    EXPECT_EQ(h.bins[0], 2u);        // the adjacent 2s
}

TEST(ReuseDistance, AttributedToAccessingStream)
{
    std::vector<MemAccess> t;
    t.emplace_back(1 * kBlockBytes, StreamType::RenderTarget, true);
    t.emplace_back(1 * kBlockBytes, StreamType::Texture, false);
    const auto d = measureReuseDistances(t);
    EXPECT_EQ(d[static_cast<std::size_t>(StreamType::RenderTarget)]
                  .cold,
              1u);
    EXPECT_EQ(
        d[static_cast<std::size_t>(StreamType::Texture)].bins[0],
        1u);
}

TEST(ReuseDistance, CyclicPatternHasConstantDistance)
{
    std::vector<Addr> blocks;
    for (int rep = 0; rep < 10; ++rep)
        for (Addr b = 0; b < 8; ++b)
            blocks.push_back(b);
    std::vector<MemAccess> t;
    for (const Addr b : blocks)
        t.emplace_back(b * kBlockBytes, StreamType::Other, false);
    const auto d = measureReuseDistances(t);
    const auto &h = d[static_cast<std::size_t>(StreamType::Other)];
    EXPECT_EQ(h.cold, 8u);
    // Every reuse sees exactly 7 distinct blocks in between.
    EXPECT_EQ(reusedAt(h, 7), 72u);
}

TEST(ReuseDistance, FractionBelow)
{
    ReuseDistanceHistogram h;
    h.record(0);    // bin 0, upper edge 1
    h.record(1);    // bin 1, upper edge 2
    h.record(100);  // bin 7, upper edge 128
    EXPECT_DOUBLE_EQ(h.fractionBelow(2), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(128), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(1), 1.0 / 3.0);
}

TEST(ReuseDistance, MergeAddsBins)
{
    ReuseDistanceHistogram a, b;
    a.record(0);
    a.cold = 2;
    b.record(0);
    b.record(5);
    a.merge(b);
    EXPECT_EQ(a.cold, 2u);
    EXPECT_EQ(a.bins[0], 2u);
    EXPECT_EQ(a.accesses(), 5u);
}

TEST(ReuseDistance, EmptyTrace)
{
    const auto d = measureReuseDistances({});
    for (const auto &h : d)
        EXPECT_EQ(h.accesses(), 0u);
}

TEST(ReuseDistance, SubBlockOffsetsAreSameBlock)
{
    std::vector<MemAccess> t;
    t.emplace_back(0, StreamType::Other, false);
    t.emplace_back(32, StreamType::Other, false);
    const auto d = measureReuseDistances(t);
    const auto &h = d[static_cast<std::size_t>(StreamType::Other)];
    EXPECT_EQ(h.cold, 1u);
    EXPECT_EQ(h.bins[0], 1u);
}
