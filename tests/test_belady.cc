/**
 * @file
 * Unit tests for Belady's optimal policy and its next-use oracle.
 */

#include <gtest/gtest.h>

#include "cache/banked_llc.hh"
#include "cache/policy/belady.hh"
#include "cache/policy/lru.hh"

using namespace gllc;

namespace
{

std::vector<MemAccess>
trace(std::initializer_list<Addr> blocks)
{
    std::vector<MemAccess> t;
    for (const Addr b : blocks)
        t.emplace_back(b * kBlockBytes, StreamType::Other, false);
    return t;
}

/** Replay a trace and return total misses. */
std::uint64_t
replay(const std::vector<MemAccess> &t, const PolicyFactory &factory,
       std::uint64_t capacity, bool oracle)
{
    LlcConfig config;
    config.capacityBytes = capacity;
    config.ways = 2;
    config.banks = 1;
    BankedLlc llc(config, factory);
    std::vector<std::uint64_t> next_use;
    if (oracle)
        next_use = buildNextUseOracle(t);
    for (std::size_t i = 0; i < t.size(); ++i)
        llc.access(t[i], i, oracle ? next_use[i] : kNever);
    return llc.stats().totalMisses();
}

} // namespace

TEST(Oracle, NextUsePointsForward)
{
    const auto t = trace({1, 2, 1, 3, 2, 1});
    const auto next = buildNextUseOracle(t);
    EXPECT_EQ(next[0], 2u);      // block 1 next at index 2
    EXPECT_EQ(next[1], 4u);      // block 2 next at index 4
    EXPECT_EQ(next[2], 5u);      // block 1 again at 5
    EXPECT_EQ(next[3], kNever);  // block 3 never again
    EXPECT_EQ(next[4], kNever);
    EXPECT_EQ(next[5], kNever);
}

TEST(Oracle, EmptyTrace)
{
    EXPECT_TRUE(buildNextUseOracle({}).empty());
}

TEST(Oracle, SubBlockOffsetsShareNextUse)
{
    std::vector<MemAccess> t;
    t.emplace_back(0, StreamType::Other, false);
    t.emplace_back(32, StreamType::Other, false);  // same block
    const auto next = buildNextUseOracle(t);
    EXPECT_EQ(next[0], 1u);
    EXPECT_EQ(next[1], kNever);
}

TEST(Belady, KeepsBlockWithNearestUse)
{
    // 2-way cache; blocks 1 and 2 resident; block 3 arrives.  Block
    // 2 is reused sooner than block 1, so block 1 must be evicted.
    const auto t = trace({1, 2, 3, 2, 1});
    const std::uint64_t misses =
        replay(t, BeladyPolicy::factory(), 128, true);
    // Misses: 1, 2, 3 cold; 2 hits; 1 misses again (was evicted).
    EXPECT_EQ(misses, 4u);
}

TEST(Belady, NeverUsedAgainEvictedFirst)
{
    const auto t = trace({1, 2, 3, 1, 2, 1, 2});
    // Block 3 is dead on arrival: OPT victimizes it (or rather never
    // lets it displace the useful pair beyond one of them once).
    const std::uint64_t misses =
        replay(t, BeladyPolicy::factory(), 128, true);
    // Cold misses 1, 2, 3; then 1 misses once more at most.
    EXPECT_LE(misses, 4u);
}

TEST(Belady, BeatsLruOnCyclicTrace)
{
    // Cyclic access over 3 blocks in a 2-way cache: LRU misses every
    // time; OPT hits half the steady-state accesses.
    std::vector<Addr> blocks;
    for (int i = 0; i < 60; ++i)
        blocks.push_back(1 + (i % 3));
    std::vector<MemAccess> t;
    for (const Addr b : blocks)
        t.emplace_back(b * kBlockBytes, StreamType::Other, false);

    const auto lru = replay(t, LruPolicy::factory(), 128, false);
    const auto opt = replay(t, BeladyPolicy::factory(), 128, true);
    EXPECT_EQ(lru, 60u);  // LRU thrashes completely
    EXPECT_LT(opt, 35u);
}

TEST(Belady, HitUpdatesNextUse)
{
    // Block 1 is hit at index 2 and must then be prioritized by its
    // NEW next use (index 6), not the stale one.
    const auto t = trace({1, 2, 1, 3, 4, 2, 1});
    const std::uint64_t misses =
        replay(t, BeladyPolicy::factory(), 128, true);
    // Optimal play: cold 1,2,3,4 = 4 misses; keep 1 or 2
    // judiciously; at most one extra miss.
    EXPECT_LE(misses, 6u);
    EXPECT_GE(misses, 4u);
}

TEST(Belady, PerfectOnFittingWorkingSet)
{
    std::vector<Addr> blocks;
    for (int rep = 0; rep < 10; ++rep)
        for (Addr b = 1; b <= 2; ++b)
            blocks.push_back(b);
    std::vector<MemAccess> t;
    for (const Addr b : blocks)
        t.emplace_back(b * kBlockBytes, StreamType::Other, false);
    EXPECT_EQ(replay(t, BeladyPolicy::factory(), 128, true), 2u);
}
