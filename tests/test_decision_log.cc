/**
 * @file
 * Tests for the ring-buffered per-access decision log
 * (src/common/decision_log.hh): bounded depth, oldest-first
 * iteration, depth reconfiguration, and the BankedLlc wiring that
 * records one entry per hit/fill/bypass decision.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cache/banked_llc.hh"
#include "cache/policy/drrip.hh"
#include "common/decision_log.hh"
#include "core/gspc_family.hh"

using namespace gllc;

namespace
{

/** Every test starts from a cleared, depth-8 ring. */
class DecisionLogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        DecisionLog::setDepth(8);
        DecisionLog::local().clear();
    }

    void TearDown() override { DecisionLog::setDepth(0); }
};

LlcDecision
decisionNumber(std::uint64_t i)
{
    LlcDecision d;
    d.index = i;
    d.addr = i * 64;
    d.outcome = DecisionOutcome::Fill;
    return d;
}

TEST_F(DecisionLogTest, ActivationFollowsDepth)
{
    EXPECT_TRUE(DecisionLog::active());
    EXPECT_EQ(DecisionLog::configuredDepth(), 8);
    DecisionLog::setDepth(0);
    EXPECT_FALSE(DecisionLog::active());
}

TEST_F(DecisionLogTest, KeepsOnlyTheLastNDecisions)
{
    DecisionLog &log = DecisionLog::local();
    for (std::uint64_t i = 0; i < 20; ++i)
        log.record(decisionNumber(i));
    ASSERT_EQ(log.size(), 8u);
    // Oldest-first: entries 12..19 survive.
    for (std::size_t i = 0; i < log.size(); ++i)
        EXPECT_EQ(log.at(i).index, 12 + i);
}

TEST_F(DecisionLogTest, PartialFillIteratesInOrder)
{
    DecisionLog &log = DecisionLog::local();
    for (std::uint64_t i = 0; i < 3; ++i)
        log.record(decisionNumber(i));
    ASSERT_EQ(log.size(), 3u);
    for (std::size_t i = 0; i < log.size(); ++i)
        EXPECT_EQ(log.at(i).index, i);
}

TEST_F(DecisionLogTest, DepthChangeClearsTheRing)
{
    DecisionLog &log = DecisionLog::local();
    for (std::uint64_t i = 0; i < 5; ++i)
        log.record(decisionNumber(i));
    DecisionLog::setDepth(4);
    log.record(decisionNumber(99));
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log.at(0).index, 99u);
}

TEST_F(DecisionLogTest, OutcomeNamesAreStable)
{
    EXPECT_STREQ(decisionOutcomeName(DecisionOutcome::Hit), "hit");
    EXPECT_STREQ(decisionOutcomeName(DecisionOutcome::Fill), "fill");
    EXPECT_STREQ(decisionOutcomeName(DecisionOutcome::Bypass),
                 "bypass");
}

// ---------------------------------------------------------------
// BankedLlc wiring
// ---------------------------------------------------------------

LlcConfig
smallConfig()
{
    LlcConfig config;
    config.capacityBytes = 64 * 1024;
    config.ways = 4;
    config.banks = 1;
    return config;
}

TEST_F(DecisionLogTest, LlcRecordsFillsAndHits)
{
    DecisionLog::setDepth(16);
    BankedLlc llc(smallConfig(), DrripPolicy::factory());

    const MemAccess miss(0x4000, StreamType::Texture, false);
    llc.access(miss, 0);
    const MemAccess hit(0x4000, StreamType::Texture, false);
    llc.access(hit, 1);

    DecisionLog &log = DecisionLog::local();
    ASSERT_EQ(log.size(), 2u);

    const LlcDecision &fill = log.at(0);
    EXPECT_EQ(fill.index, 0u);
    EXPECT_EQ(fill.outcome, DecisionOutcome::Fill);
    EXPECT_EQ(std::string(fill.stream), "TEX");
    EXPECT_GE(fill.way, 0);
    EXPECT_GE(fill.rrpv, 0);

    const LlcDecision &h = log.at(1);
    EXPECT_EQ(h.index, 1u);
    EXPECT_EQ(h.outcome, DecisionOutcome::Hit);
    EXPECT_EQ(h.way, fill.way);
}

TEST_F(DecisionLogTest, GspcDecisionsCarryFsmState)
{
    DecisionLog::setDepth(16);
    BankedLlc llc(smallConfig(),
                  GspcFamilyPolicy::factory(GspcVariant::Gspc));

    const MemAccess rt_fill(0x8000, StreamType::RenderTarget, true);
    llc.access(rt_fill, 0);

    DecisionLog &log = DecisionLog::local();
    ASSERT_GE(log.size(), 1u);
    const LlcDecision &d = log.at(log.size() - 1);
    ASSERT_NE(d.state, nullptr);
    EXPECT_EQ(std::string(d.state), "RT");
    EXPECT_TRUE(d.isWrite);
}

} // namespace
