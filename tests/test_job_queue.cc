/**
 * @file
 * Scheduling tests for the daemon's tenant-fair priority job queue.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/job_queue.hh"

using namespace gllc;

namespace
{

QueuedJob
job(std::uint64_t id, const std::string &tenant, int priority = 0)
{
    QueuedJob j;
    j.id = id;
    j.tenant = tenant;
    j.priority = priority;
    return j;
}

/** Drain the queue non-blocking, returning the pop order by id. */
std::vector<std::uint64_t>
drain(JobQueue &queue)
{
    std::vector<std::uint64_t> order;
    QueuedJob got;
    while (queue.pop(got))
        order.push_back(got.id);
    return order;
}

} // namespace

TEST(JobQueue, FifoWithinOneTenant)
{
    JobQueue queue;
    ASSERT_TRUE(queue.push(job(1, "a")));
    ASSERT_TRUE(queue.push(job(2, "a")));
    ASSERT_TRUE(queue.push(job(3, "a")));
    EXPECT_EQ(queue.depth(), 3u);
    EXPECT_EQ(drain(queue), (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(queue.depth(), 0u);
}

TEST(JobQueue, TenantsTakeTurnsWithinAClass)
{
    JobQueue queue;
    // Tenant a floods the queue before b and c submit one job each:
    // the rotation must alternate instead of serving a back-to-back.
    ASSERT_TRUE(queue.push(job(1, "a")));
    ASSERT_TRUE(queue.push(job(2, "a")));
    ASSERT_TRUE(queue.push(job(3, "a")));
    ASSERT_TRUE(queue.push(job(4, "b")));
    ASSERT_TRUE(queue.push(job(5, "c")));
    ASSERT_TRUE(queue.push(job(6, "c")));
    EXPECT_EQ(drain(queue),
              (std::vector<std::uint64_t>{1, 4, 5, 2, 6, 3}));
}

TEST(JobQueue, HigherPriorityClassRunsFirst)
{
    JobQueue queue;
    ASSERT_TRUE(queue.push(job(1, "a", 0)));
    ASSERT_TRUE(queue.push(job(2, "b", 10)));
    ASSERT_TRUE(queue.push(job(3, "a", -5)));
    ASSERT_TRUE(queue.push(job(4, "c", 10)));
    EXPECT_EQ(drain(queue),
              (std::vector<std::uint64_t>{2, 4, 1, 3}));
}

TEST(JobQueue, RotationIsDeterministicInArrivalOrder)
{
    // Same jobs pushed in the same order pop in the same order.
    for (int round = 0; round < 3; ++round) {
        JobQueue queue;
        ASSERT_TRUE(queue.push(job(1, "x")));
        ASSERT_TRUE(queue.push(job(2, "y")));
        ASSERT_TRUE(queue.push(job(3, "x")));
        ASSERT_TRUE(queue.push(job(4, "y")));
        EXPECT_EQ(drain(queue),
                  (std::vector<std::uint64_t>{1, 2, 3, 4}));
    }
}

TEST(JobQueue, PopOnEmptyIsFalse)
{
    JobQueue queue;
    QueuedJob got;
    EXPECT_FALSE(queue.pop(got));
}

TEST(JobQueue, WaitPopDeliversAcrossThreads)
{
    JobQueue queue;
    std::uint64_t got_id = 0;
    std::thread consumer([&] {
        QueuedJob got;
        if (queue.waitPop(got))
            got_id = got.id;
    });
    ASSERT_TRUE(queue.push(job(7, "a")));
    consumer.join();
    EXPECT_EQ(got_id, 7u);
}

TEST(JobQueue, CloseReleasesBlockedWaiters)
{
    JobQueue queue;
    bool delivered = true;
    std::thread consumer([&] {
        QueuedJob got;
        delivered = queue.waitPop(got);
    });
    queue.close();
    consumer.join();
    EXPECT_FALSE(delivered);

    // And waitPop after close fails fast.
    QueuedJob got;
    EXPECT_FALSE(queue.waitPop(got));
}

TEST(JobQueue, PushAfterCloseIsRefused)
{
    JobQueue queue;
    EXPECT_TRUE(queue.push(job(1, "a")));
    queue.close();
    // A push that lost the race with close() must be refused —
    // nothing will ever pop it, so accepting it would strand a
    // client waiting on the job forever.
    EXPECT_FALSE(queue.push(job(2, "a")));
    EXPECT_EQ(queue.depth(), 1u);
}

TEST(JobQueue, ConcurrentPushersAndPopperLoseNothing)
{
    // Hammer the queue the way the daemon does: many connection
    // threads pushing while the single dispatcher pops, close() at
    // the end.  Every accepted job must pop exactly once (the TSan
    // CI job additionally holds the locking honest here).
    constexpr unsigned kPushers = 8;
    constexpr std::uint64_t kJobsPerPusher = 200;
    JobQueue queue;

    std::vector<std::uint64_t> popped;
    std::thread dispatcher([&] {
        QueuedJob got;
        while (queue.waitPop(got))
            popped.push_back(got.id);
        // close() fails waitPop fast even with jobs still queued,
        // so drain the remainder non-blocking.
        while (queue.pop(got))
            popped.push_back(got.id);
    });

    std::atomic<std::uint64_t> accepted{0};
    std::vector<std::thread> pushers;
    pushers.reserve(kPushers);
    for (unsigned t = 0; t < kPushers; ++t) {
        pushers.emplace_back([&, t] {
            const std::string tenant = "t" + std::to_string(t % 3);
            for (std::uint64_t i = 0; i < kJobsPerPusher; ++i) {
                const std::uint64_t id =
                    t * kJobsPerPusher + i + 1;
                if (queue.push(job(id, tenant,
                                   static_cast<int>(i % 2))))
                    ++accepted;
            }
        });
    }
    for (std::thread &t : pushers)
        t.join();
    queue.close();
    dispatcher.join();

    // close() raced no pusher here, so nothing may be refused.
    EXPECT_EQ(accepted.load(), kPushers * kJobsPerPusher);
    ASSERT_EQ(popped.size(), kPushers * kJobsPerPusher);
    std::sort(popped.begin(), popped.end());
    EXPECT_EQ(std::adjacent_find(popped.begin(), popped.end()),
              popped.end());
    EXPECT_EQ(popped.front(), 1u);
    EXPECT_EQ(popped.back(), kPushers * kJobsPerPusher);
    EXPECT_EQ(queue.depth(), 0u);
}
