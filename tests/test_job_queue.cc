/**
 * @file
 * Scheduling tests for the daemon's tenant-fair priority job queue.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/job_queue.hh"

using namespace gllc;

namespace
{

QueuedJob
job(std::uint64_t id, const std::string &tenant, int priority = 0)
{
    QueuedJob j;
    j.id = id;
    j.tenant = tenant;
    j.priority = priority;
    return j;
}

/** Drain the queue non-blocking, returning the pop order by id. */
std::vector<std::uint64_t>
drain(JobQueue &queue)
{
    std::vector<std::uint64_t> order;
    QueuedJob got;
    while (queue.pop(got))
        order.push_back(got.id);
    return order;
}

} // namespace

TEST(JobQueue, FifoWithinOneTenant)
{
    JobQueue queue;
    ASSERT_EQ(queue.push(job(1, "a")), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(2, "a")), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(3, "a")), JobQueue::PushOutcome::Ok);
    EXPECT_EQ(queue.depth(), 3u);
    EXPECT_EQ(drain(queue), (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(queue.depth(), 0u);
}

TEST(JobQueue, TenantsTakeTurnsWithinAClass)
{
    JobQueue queue;
    // Tenant a floods the queue before b and c submit one job each:
    // the rotation must alternate instead of serving a back-to-back.
    ASSERT_EQ(queue.push(job(1, "a")), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(2, "a")), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(3, "a")), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(4, "b")), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(5, "c")), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(6, "c")), JobQueue::PushOutcome::Ok);
    EXPECT_EQ(drain(queue),
              (std::vector<std::uint64_t>{1, 4, 5, 2, 6, 3}));
}

TEST(JobQueue, HigherPriorityClassRunsFirst)
{
    JobQueue queue;
    ASSERT_EQ(queue.push(job(1, "a", 0)), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(2, "b", 10)), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(3, "a", -5)), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(4, "c", 10)), JobQueue::PushOutcome::Ok);
    EXPECT_EQ(drain(queue),
              (std::vector<std::uint64_t>{2, 4, 1, 3}));
}

TEST(JobQueue, RotationIsDeterministicInArrivalOrder)
{
    // Same jobs pushed in the same order pop in the same order.
    for (int round = 0; round < 3; ++round) {
        JobQueue queue;
        ASSERT_EQ(queue.push(job(1, "x")), JobQueue::PushOutcome::Ok);
        ASSERT_EQ(queue.push(job(2, "y")), JobQueue::PushOutcome::Ok);
        ASSERT_EQ(queue.push(job(3, "x")), JobQueue::PushOutcome::Ok);
        ASSERT_EQ(queue.push(job(4, "y")), JobQueue::PushOutcome::Ok);
        EXPECT_EQ(drain(queue),
                  (std::vector<std::uint64_t>{1, 2, 3, 4}));
    }
}

TEST(JobQueue, PopOnEmptyIsFalse)
{
    JobQueue queue;
    QueuedJob got;
    EXPECT_FALSE(queue.pop(got));
}

TEST(JobQueue, WaitPopDeliversAcrossThreads)
{
    JobQueue queue;
    std::uint64_t got_id = 0;
    std::thread consumer([&] {
        QueuedJob got;
        if (queue.waitPop(got))
            got_id = got.id;
    });
    ASSERT_EQ(queue.push(job(7, "a")), JobQueue::PushOutcome::Ok);
    consumer.join();
    EXPECT_EQ(got_id, 7u);
}

TEST(JobQueue, CloseReleasesBlockedWaiters)
{
    JobQueue queue;
    bool delivered = true;
    std::thread consumer([&] {
        QueuedJob got;
        delivered = queue.waitPop(got);
    });
    queue.close();
    consumer.join();
    EXPECT_FALSE(delivered);

    // And waitPop after close fails fast.
    QueuedJob got;
    EXPECT_FALSE(queue.waitPop(got));
}

TEST(JobQueue, PushAfterCloseIsRefused)
{
    JobQueue queue;
    EXPECT_EQ(queue.push(job(1, "a")), JobQueue::PushOutcome::Ok);
    queue.close();
    // A push that lost the race with close() must be refused —
    // nothing will ever pop it, so accepting it would strand a
    // client waiting on the job forever.
    EXPECT_EQ(queue.push(job(2, "a")), JobQueue::PushOutcome::Closed);
    EXPECT_EQ(queue.depth(), 1u);
}

TEST(JobQueue, DepthCapShedsWithTypedReason)
{
    JobQueue queue;
    queue.configureLimits({2, 0});
    EXPECT_EQ(queue.push(job(1, "a")), JobQueue::PushOutcome::Ok);
    EXPECT_EQ(queue.push(job(2, "b")), JobQueue::PushOutcome::Ok);
    EXPECT_EQ(queue.push(job(3, "c")),
              JobQueue::PushOutcome::QueueFull);
    EXPECT_EQ(queue.depth(), 2u);

    // Popping frees capacity again: the cap bounds depth, it is not
    // a one-way valve.
    QueuedJob got;
    ASSERT_TRUE(queue.pop(got));
    EXPECT_EQ(queue.push(job(4, "c")), JobQueue::PushOutcome::Ok);
}

TEST(JobQueue, TenantQuotaShedsOnlyTheGreedyTenant)
{
    JobQueue queue;
    queue.configureLimits({0, 2});
    EXPECT_EQ(queue.push(job(1, "greedy")),
              JobQueue::PushOutcome::Ok);
    // The quota counts across priority classes, so spreading the
    // flood over priorities must not evade it.
    EXPECT_EQ(queue.push(job(2, "greedy", 5)),
              JobQueue::PushOutcome::Ok);
    EXPECT_EQ(queue.push(job(3, "greedy")),
              JobQueue::PushOutcome::TenantQuotaExceeded);
    EXPECT_EQ(queue.push(job(4, "polite")),
              JobQueue::PushOutcome::Ok);

    // Draining the tenant's jobs restores its quota.
    QueuedJob got;
    ASSERT_TRUE(queue.pop(got));
    EXPECT_EQ(got.id, 2u);  // higher priority class first
    EXPECT_EQ(queue.push(job(5, "greedy")),
              JobQueue::PushOutcome::Ok);
}

TEST(JobQueue, QueueFullWinsOverTenantQuota)
{
    JobQueue queue;
    queue.configureLimits({1, 1});
    EXPECT_EQ(queue.push(job(1, "a")), JobQueue::PushOutcome::Ok);
    // Both limits are violated; the global one is reported (it is
    // the one a retrying client can do nothing about).
    EXPECT_EQ(queue.push(job(2, "a")),
              JobQueue::PushOutcome::QueueFull);
}

TEST(JobQueue, CancelRemovesQueuedJob)
{
    JobQueue queue;
    ASSERT_EQ(queue.push(job(1, "a")), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(2, "b")), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(3, "a")), JobQueue::PushOutcome::Ok);

    EXPECT_TRUE(queue.cancel(2));
    EXPECT_FALSE(queue.cancel(2));  // already gone
    EXPECT_FALSE(queue.cancel(99));
    EXPECT_EQ(queue.depth(), 2u);
    EXPECT_EQ(drain(queue), (std::vector<std::uint64_t>{1, 3}));
}

TEST(JobQueue, CancelLastJobOfTenantKeepsRotationSound)
{
    JobQueue queue;
    // b's only job is cancelled; the rotation must forget b or a
    // later pop would assert on an empty lane.
    ASSERT_EQ(queue.push(job(1, "a")), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(2, "b")), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(3, "a")), JobQueue::PushOutcome::Ok);
    EXPECT_TRUE(queue.cancel(2));
    EXPECT_EQ(drain(queue), (std::vector<std::uint64_t>{1, 3}));

    // Cancelling the sole job of the sole tenant empties the queue.
    ASSERT_EQ(queue.push(job(4, "c", 7)),
              JobQueue::PushOutcome::Ok);
    EXPECT_TRUE(queue.cancel(4));
    EXPECT_EQ(queue.depth(), 0u);
    QueuedJob got;
    EXPECT_FALSE(queue.pop(got));
}

TEST(JobQueue, CancelReleasesTenantQuota)
{
    JobQueue queue;
    queue.configureLimits({0, 1});
    ASSERT_EQ(queue.push(job(1, "a")), JobQueue::PushOutcome::Ok);
    ASSERT_EQ(queue.push(job(2, "a")),
              JobQueue::PushOutcome::TenantQuotaExceeded);
    EXPECT_TRUE(queue.cancel(1));
    EXPECT_EQ(queue.push(job(3, "a")), JobQueue::PushOutcome::Ok);
}

TEST(JobQueue, ConcurrentPushersAndPopperLoseNothing)
{
    // Hammer the queue the way the daemon does: many connection
    // threads pushing while the single dispatcher pops, close() at
    // the end.  Every accepted job must pop exactly once (the TSan
    // CI job additionally holds the locking honest here).
    constexpr unsigned kPushers = 8;
    constexpr std::uint64_t kJobsPerPusher = 200;
    JobQueue queue;

    std::vector<std::uint64_t> popped;
    std::thread dispatcher([&] {
        QueuedJob got;
        while (queue.waitPop(got))
            popped.push_back(got.id);
        // close() fails waitPop fast even with jobs still queued,
        // so drain the remainder non-blocking.
        while (queue.pop(got))
            popped.push_back(got.id);
    });

    std::atomic<std::uint64_t> accepted{0};
    std::vector<std::thread> pushers;
    pushers.reserve(kPushers);
    for (unsigned t = 0; t < kPushers; ++t) {
        pushers.emplace_back([&, t] {
            const std::string tenant = "t" + std::to_string(t % 3);
            for (std::uint64_t i = 0; i < kJobsPerPusher; ++i) {
                const std::uint64_t id =
                    t * kJobsPerPusher + i + 1;
                if (queue.push(job(id, tenant,
                                   static_cast<int>(i % 2)))
                    == JobQueue::PushOutcome::Ok)
                    ++accepted;
            }
        });
    }
    for (std::thread &t : pushers)
        t.join();
    queue.close();
    dispatcher.join();

    // close() raced no pusher here, so nothing may be refused.
    EXPECT_EQ(accepted.load(), kPushers * kJobsPerPusher);
    ASSERT_EQ(popped.size(), kPushers * kJobsPerPusher);
    std::sort(popped.begin(), popped.end());
    EXPECT_EQ(std::adjacent_find(popped.begin(), popped.end()),
              popped.end());
    EXPECT_EQ(popped.front(), 1u);
    EXPECT_EQ(popped.back(), kPushers * kJobsPerPusher);
    EXPECT_EQ(queue.depth(), 0u);
}
