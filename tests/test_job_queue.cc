/**
 * @file
 * Scheduling tests for the daemon's tenant-fair priority job queue.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "service/job_queue.hh"

using namespace gllc;

namespace
{

QueuedJob
job(std::uint64_t id, const std::string &tenant, int priority = 0)
{
    QueuedJob j;
    j.id = id;
    j.tenant = tenant;
    j.priority = priority;
    return j;
}

/** Drain the queue non-blocking, returning the pop order by id. */
std::vector<std::uint64_t>
drain(JobQueue &queue)
{
    std::vector<std::uint64_t> order;
    QueuedJob got;
    while (queue.pop(got))
        order.push_back(got.id);
    return order;
}

} // namespace

TEST(JobQueue, FifoWithinOneTenant)
{
    JobQueue queue;
    queue.push(job(1, "a"));
    queue.push(job(2, "a"));
    queue.push(job(3, "a"));
    EXPECT_EQ(queue.depth(), 3u);
    EXPECT_EQ(drain(queue), (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(queue.depth(), 0u);
}

TEST(JobQueue, TenantsTakeTurnsWithinAClass)
{
    JobQueue queue;
    // Tenant a floods the queue before b and c submit one job each:
    // the rotation must alternate instead of serving a back-to-back.
    queue.push(job(1, "a"));
    queue.push(job(2, "a"));
    queue.push(job(3, "a"));
    queue.push(job(4, "b"));
    queue.push(job(5, "c"));
    queue.push(job(6, "c"));
    EXPECT_EQ(drain(queue),
              (std::vector<std::uint64_t>{1, 4, 5, 2, 6, 3}));
}

TEST(JobQueue, HigherPriorityClassRunsFirst)
{
    JobQueue queue;
    queue.push(job(1, "a", 0));
    queue.push(job(2, "b", 10));
    queue.push(job(3, "a", -5));
    queue.push(job(4, "c", 10));
    EXPECT_EQ(drain(queue),
              (std::vector<std::uint64_t>{2, 4, 1, 3}));
}

TEST(JobQueue, RotationIsDeterministicInArrivalOrder)
{
    // Same jobs pushed in the same order pop in the same order.
    for (int round = 0; round < 3; ++round) {
        JobQueue queue;
        queue.push(job(1, "x"));
        queue.push(job(2, "y"));
        queue.push(job(3, "x"));
        queue.push(job(4, "y"));
        EXPECT_EQ(drain(queue),
                  (std::vector<std::uint64_t>{1, 2, 3, 4}));
    }
}

TEST(JobQueue, PopOnEmptyIsFalse)
{
    JobQueue queue;
    QueuedJob got;
    EXPECT_FALSE(queue.pop(got));
}

TEST(JobQueue, WaitPopDeliversAcrossThreads)
{
    JobQueue queue;
    std::uint64_t got_id = 0;
    std::thread consumer([&] {
        QueuedJob got;
        if (queue.waitPop(got))
            got_id = got.id;
    });
    queue.push(job(7, "a"));
    consumer.join();
    EXPECT_EQ(got_id, 7u);
}

TEST(JobQueue, CloseReleasesBlockedWaiters)
{
    JobQueue queue;
    bool delivered = true;
    std::thread consumer([&] {
        QueuedJob got;
        delivered = queue.waitPop(got);
    });
    queue.close();
    consumer.join();
    EXPECT_FALSE(delivered);

    // And waitPop after close fails fast.
    QueuedJob got;
    EXPECT_FALSE(queue.waitPop(got));
}

TEST(JobQueue, PushAfterCloseIsRefused)
{
    JobQueue queue;
    EXPECT_TRUE(queue.push(job(1, "a")));
    queue.close();
    // A push that lost the race with close() must be refused —
    // nothing will ever pop it, so accepting it would strand a
    // client waiting on the job forever.
    EXPECT_FALSE(queue.push(job(2, "a")));
    EXPECT_EQ(queue.depth(), 1u);
}
