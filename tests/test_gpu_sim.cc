/**
 * @file
 * Tests for the GPU simulator façade, the scan-out extension and
 * the stream-name helpers.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_simulator.hh"
#include "trace/stream.hh"
#include "workload/frame_set.hh"

using namespace gllc;

namespace
{

RenderScale
tinyScale()
{
    RenderScale s;
    s.linear = 8;
    return s;
}

const FrameTrace &
frame()
{
    static const FrameTrace t =
        renderFrame(paperApps().front(), 0, tinyScale());
    return t;
}

} // namespace

TEST(StreamNames, AllStreamsNamed)
{
    EXPECT_EQ(streamName(StreamType::Vertex), "VTX");
    EXPECT_EQ(streamName(StreamType::HiZ), "HiZ");
    EXPECT_EQ(streamName(StreamType::Z), "Z");
    EXPECT_EQ(streamName(StreamType::Stencil), "STC");
    EXPECT_EQ(streamName(StreamType::RenderTarget), "RT");
    EXPECT_EQ(streamName(StreamType::Texture), "TEX");
    EXPECT_EQ(streamName(StreamType::Display), "DISP");
    EXPECT_EQ(streamName(StreamType::Other), "OTHER");
    EXPECT_EQ(policyStreamName(PolicyStream::Z), "Z");
    EXPECT_EQ(policyStreamName(PolicyStream::Rest), "REST");
}

TEST(GpuSim, DeterministicAcrossRuns)
{
    const GpuConfig gpu = GpuConfig::baseline();
    const FrameSimResult a =
        simulateFrame(frame(), policySpec("GSPC"), gpu, tinyScale());
    const FrameSimResult b =
        simulateFrame(frame(), policySpec("GSPC"), gpu, tinyScale());
    EXPECT_EQ(a.llcStats.totalMisses(), b.llcStats.totalMisses());
    EXPECT_DOUBLE_EQ(a.timing.frameCycles, b.timing.frameCycles);
}

TEST(GpuSim, LlcGeometryFollowsConfigAndScale)
{
    // 16 MB at scale 8 -> 256 KB: fewer misses than 8 MB -> 128 KB.
    const FrameSimResult small = simulateFrame(
        frame(), policySpec("DRRIP"), GpuConfig::baseline(),
        tinyScale());
    const FrameSimResult large = simulateFrame(
        frame(), policySpec("DRRIP"), GpuConfig::baseline16M(),
        tinyScale());
    EXPECT_LT(large.llcStats.totalMisses(),
              small.llcStats.totalMisses());
}

TEST(GpuSim, UcdReducesFillsNotAccesses)
{
    const GpuConfig gpu = GpuConfig::baseline();
    const FrameSimResult plain =
        simulateFrame(frame(), policySpec("DRRIP"), gpu, tinyScale());
    const FrameSimResult ucd = simulateFrame(
        frame(), policySpec("DRRIP+UCD"), gpu, tinyScale());
    EXPECT_EQ(plain.llcStats.totalAccesses(),
              ucd.llcStats.totalAccesses());
    EXPECT_GT(ucd.llcStats.of(StreamType::Display).bypasses, 0u);
    EXPECT_EQ(ucd.llcStats.of(StreamType::Display).misses, 0u);
}

TEST(Scanout, ContentionNeverSpeedsAFrame)
{
    GpuConfig with = GpuConfig::baseline();
    with.scanoutHz = 60.0;
    with.scanoutBytes = 4ull * 240 * 150;
    const FrameSimResult base =
        simulateFrame(frame(), policySpec("DRRIP"),
                      GpuConfig::baseline(), tinyScale());
    const FrameSimResult loaded =
        simulateFrame(frame(), policySpec("DRRIP"), with, tinyScale());
    EXPECT_GE(loaded.timing.frameCycles, base.timing.frameCycles);
    // LLC behaviour is untouched by the display engine.
    EXPECT_EQ(loaded.llcStats.totalMisses(),
              base.llcStats.totalMisses());
}

TEST(Scanout, DisabledByDefault)
{
    const GpuConfig gpu = GpuConfig::baseline();
    EXPECT_EQ(gpu.scanoutHz, 0.0);
    EXPECT_EQ(gpu.scanoutBytes, 0u);
}

TEST(Scanout, HigherRefreshLoadsMore)
{
    GpuConfig hz60 = GpuConfig::baseline();
    hz60.scanoutHz = 60.0;
    hz60.scanoutBytes = 4ull * 240 * 150;
    GpuConfig hz240 = hz60;
    hz240.scanoutHz = 240.0;
    const FrameSimResult a =
        simulateFrame(frame(), policySpec("DRRIP"), hz60, tinyScale());
    const FrameSimResult b = simulateFrame(
        frame(), policySpec("DRRIP"), hz240, tinyScale());
    EXPECT_GE(b.timing.frameCycles, a.timing.frameCycles);
}
