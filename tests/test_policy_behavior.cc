/**
 * @file
 * Deeper behavioural tests: dueling leader mechanics, GSPC counter
 * decay through the policy interface, insertion-RRPV distributions
 * per GSPC variant, and UCD interplay with the learning counters.
 */

#include <gtest/gtest.h>

#include "analysis/offline_sim.hh"
#include "cache/banked_llc.hh"
#include "cache/policy/drrip.hh"
#include "cache/policy/gs_drrip.hh"
#include "core/gspc_family.hh"

using namespace gllc;

namespace
{

MemAccess
acc(Addr block, StreamType s, bool write = false)
{
    return MemAccess(block * kBlockBytes, s, write);
}

AccessInfo
info(const MemAccess &a)
{
    return AccessInfo{&a, 0, kNever};
}

} // namespace

TEST(DuelMechanics, SrripLeaderAlwaysInsertsDistant)
{
    // Set 0 is DRRIP's SRRIP leader (offset 0 in its constituency);
    // its fills must be at RRPV 2 regardless of the PSEL state.
    DrripPolicy drrip(2);
    drrip.configure(64, 4);
    const MemAccess a = acc(1, StreamType::Texture);
    // Push the duel hard toward BRRIP by missing in set 0 a lot.
    for (int i = 0; i < 2000; ++i)
        drrip.onFill(0, 0, info(a));
    const FillHistogram *h = drrip.fillHistogram();
    // All of those fills happened in the SRRIP leader: RRPV 2 only.
    EXPECT_EQ(h->fillsAt(PolicyStream::Texture, 2), 2000u);
    EXPECT_EQ(h->fillsAt(PolicyStream::Texture, 3), 0u);
}

TEST(DuelMechanics, BrripLeaderMostlyInsertsAtMax)
{
    DrripPolicy drrip(2);
    drrip.configure(64, 4);
    const MemAccess a = acc(1, StreamType::Texture);
    // Set 33 is the BRRIP leader of the first constituency.
    for (int i = 0; i < 320; ++i)
        drrip.onFill(33, 0, info(a));
    const FillHistogram *h = drrip.fillHistogram();
    EXPECT_EQ(h->fillsAt(PolicyStream::Texture, 3), 310u);
    EXPECT_EQ(h->fillsAt(PolicyStream::Texture, 2), 10u);
}

TEST(DuelMechanics, GsDrripLeadersAreStreamLocal)
{
    // A Z access in TEXTURE's leader set must not vote in texture's
    // duel: it follows Z's PSEL.  We verify leader isolation by
    // checking that stream k's leader offsets differ per stream.
    std::set<std::uint32_t> offsets;
    for (unsigned g = 0; g < 4; ++g) {
        for (std::uint32_t s = 0; s < 64; ++s) {
            if (duelRole(s, g) == DuelRole::SrripLeader)
                offsets.insert(s);
        }
    }
    EXPECT_EQ(offsets.size(), 4u);
}

TEST(GspcDecay, HalvingKeepsDecisionsFresh)
{
    // Drive a phase change through the policy: a long dead-texture
    // phase followed by an alive phase.  The ACC-driven halving must
    // let the insertion decision flip within a bounded number of
    // sample events.
    GspcFamilyPolicy p(GspcVariant::Gspc, 8);
    p.configure(128, 4);
    const MemAccess tex = acc(0, StreamType::Texture);

    for (int i = 0; i < 500; ++i)
        p.onFill(0, 0, info(tex));  // dead phase in the sample set
    p.onFill(1, 0, info(tex));
    EXPECT_EQ(p.rrpvOf(1, 0), 3);  // condemned

    // Alive phase: hits only.  Counters halve roughly every 127
    // sample accesses; the fills decay while the hits grow.
    for (int i = 0; i < 2000; ++i) {
        p.onFill(0, 0, info(tex));
        p.onHit(0, 0, info(tex));
        p.onHit(0, 1, info(tex));
        p.onHit(0, 2, info(tex));
        p.onEvict(0, 0);
    }
    p.onFill(1, 1, info(tex));
    EXPECT_EQ(p.rrpvOf(1, 1), 0);  // rehabilitated
}

TEST(GspcVariants, RtFillHistogramsDiffer)
{
    // GSPZTC fills every RT at 0; GSPC spreads RT fills across the
    // protection bands once PROD >> CONS.
    const LlcConfig config{64 * 1024, 16, 1};

    BankedLlc gspztc(config,
                     GspcFamilyPolicy::factory(GspcVariant::Gspztc));
    BankedLlc gspc(config,
                   GspcFamilyPolicy::factory(GspcVariant::Gspc));
    for (Addr b = 0; b < 20000; ++b) {
        gspztc.access(acc(b, StreamType::RenderTarget, true));
        gspc.access(acc(b, StreamType::RenderTarget, true));
    }

    const FillHistogram hz = gspztc.mergedFillHistogram();
    const FillHistogram hc = gspc.mergedFillHistogram();
    // GSPZTC: every non-sample RT fill at 0, sample fills at 2.
    EXPECT_EQ(hz.fillsAt(PolicyStream::RenderTarget, 3), 0u);
    EXPECT_GT(hz.fillsAt(PolicyStream::RenderTarget, 0),
              15000u);
    // GSPC with zero consumption: non-sample RT fills at 3.
    EXPECT_GT(hc.fillsAt(PolicyStream::RenderTarget, 3), 15000u);
}

TEST(GspcUcd, DisplayBypassKeepsProdClean)
{
    // Under +UCD, display fills never reach the policy, so PROD only
    // counts genuine render targets — the mechanism behind
    // GSPC+UCD's Figure 12/13 gains.
    FrameTrace t;
    for (Addr b = 0; b < 4096; ++b)
        t.accesses.emplace_back(b * kBlockBytes, StreamType::Display,
                                true);
    for (Addr b = 10000; b < 10128; ++b)
        t.accesses.emplace_back(b * kBlockBytes,
                                StreamType::RenderTarget, true);
    for (Addr b = 10000; b < 10128; ++b)
        t.accesses.emplace_back(b * kBlockBytes, StreamType::Texture,
                                false);

    const LlcConfig llc{64 * 1024, 16, 4};
    const RunResult plain = runTrace(t, policySpec("GSPC"), llc);
    const RunResult ucd = runTrace(t, policySpec("GSPC+UCD"), llc);

    // With UCD, all RT productions are consumable and consumed.
    EXPECT_EQ(ucd.characterization.rtProductions, 128u);
    EXPECT_EQ(ucd.characterization.rtConsumptions, 128u);
    // Without UCD, the display fills pollute the production count.
    EXPECT_GT(plain.characterization.rtProductions, 4000u);
}

TEST(GspcSamples, SampleSetsNeverConsultCounters)
{
    // Even with counters screaming "dead", sample-set texture fills
    // stay at SRRIP's RRPV 2 (Table 2).
    GspcFamilyPolicy p(GspcVariant::GspztcTse, 8);
    p.configure(128, 4);
    const MemAccess tex = acc(0, StreamType::Texture);
    for (int i = 0; i < 100; ++i)
        p.onFill(0, 0, info(tex));
    EXPECT_EQ(p.rrpvOf(0, 0), 2);
    p.onFill(65, 0, info(tex));  // the other sample set
    EXPECT_EQ(p.rrpvOf(65, 0), 2);
    p.onFill(2, 0, info(tex));   // non-sample: condemned
    EXPECT_EQ(p.rrpvOf(2, 0), 3);
}

TEST(GspcThreshold, LowerTCondemnsMore)
{
    // With FILL = 3, HIT = 1: t=2 condemns (3 > 2), t=8 does not
    // (3 > 8 is false).
    for (const std::uint32_t t : {2u, 8u}) {
        GspcFamilyPolicy p(GspcVariant::Gspztc, t);
        p.configure(128, 4);
        const MemAccess tex = acc(0, StreamType::Texture);
        for (int i = 0; i < 3; ++i)
            p.onFill(0, 0, info(tex));
        p.onHit(0, 0, info(tex));
        p.onFill(1, 0, info(tex));
        EXPECT_EQ(p.rrpvOf(1, 0), t == 2 ? 3 : 0) << "t=" << t;
    }
}
